"""E-FIG4/5: architecture placements as concrete floorplans.

Fig. 4 sketches the architectures; Fig. 5 shows the two distribution
schemes — VR tiles ringing the die (A1) vs embedded below it (A2).
This bench realizes both as legal rectangle floorplans and renders
them, asserting the geometric properties the figures illustrate.
"""

from __future__ import annotations

from repro.converters.catalog import DPMIH, DSCH
from repro.placement.floorplan import build_floorplan
from repro.placement.planner import PlacementStyle, plan_placement

DIE_MM2 = 500.0


def build_all():
    plans = {
        ("A1", "DSCH"): plan_placement(
            DSCH, PlacementStyle.PERIPHERY, 1000.0, DIE_MM2
        ),
        ("A2", "DSCH"): plan_placement(
            DSCH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2
        ),
        ("A2", "DPMIH"): plan_placement(
            DPMIH, PlacementStyle.BELOW_DIE, 1000.0, DIE_MM2
        ),
    }
    return {
        key: build_floorplan(plan, DIE_MM2) for key, plan in plans.items()
    }


def test_fig5_reproduction(benchmark, report_header):
    floorplans = build_all()

    report_header("Fig. 5 - distributed vertical power delivery floorplans")
    for (arch, topo), floorplan in floorplans.items():
        print(f"--- {arch} with {topo} ---")
        print(floorplan.render())
        print()

    a1 = floorplans[("A1", "DSCH")]
    a2 = floorplans[("A2", "DSCH")]
    a2_dpmih = floorplans[("A2", "DPMIH")]

    # Fig. 5(a): periphery tiles ring the die, none inside.
    assert a1.is_legal and a1.tiles_inside_die() == 0
    # Fig. 5(b): under-die tiles fill the die shadow.
    assert a2.is_legal and a2.tiles_inside_die() == 48
    # DPMIH: 7 embedded + periphery overflow, all legal.
    assert a2_dpmih.is_legal and a2_dpmih.tiles_inside_die() == 7

    benchmark(build_all)
