"""Ablation: A3 intermediate rail voltage sweep.

The paper evaluates 12 V and 6 V; the sweep maps the whole tradeoff
(rail I²R loss vs stage-1 conversion stress) and locates the optimum.
"""

from __future__ import annotations

import math

from repro.core.exploration import intermediate_voltage_sweep


def run_sweep():
    return intermediate_voltage_sweep(
        voltages=(3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0)
    )


def test_intermediate_voltage_ablation(benchmark, report_header):
    points = run_sweep()

    report_header("Ablation - A3 intermediate rail voltage (DSCH stage 2)")
    for point in points:
        if math.isnan(point.total_loss_w):
            print(f"V_int {point.value:5.1f} V : infeasible ({point.detail})")
        else:
            print(
                f"V_int {point.value:5.1f} V : loss {point.loss_pct:6.2f}%  "
                f"efficiency {point.efficiency:.1%}"
            )

    by_v = {p.value: p for p in points if not math.isnan(p.total_loss_w)}
    # The paper's pair: 12 V beats 6 V (rail current quadratics).
    assert by_v[12.0].total_loss_w < by_v[6.0].total_loss_w
    # Sanity: extremes are worse than the middle of the sweep.
    feasible = sorted(by_v)
    middle_best = min(by_v[v].total_loss_w for v in feasible[2:-1])
    assert by_v[feasible[0]].total_loss_w > middle_best

    benchmark(run_sweep)
