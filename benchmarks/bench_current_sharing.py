"""E-TXT-SHARE: per-VR current distribution (16-27 A vs 10-93 A)."""

from __future__ import annotations

from repro.converters.catalog import DSCH
from repro.core.architectures import single_stage_a1, single_stage_a2
from repro.core.current_sharing import analyze_current_sharing
from repro.reporting.experiments import run_experiment


def run_analysis():
    a1 = analyze_current_sharing(single_stage_a1(), DSCH)
    a2 = analyze_current_sharing(single_stage_a2(), DSCH)
    return a1, a2


def test_current_sharing_reproduction(benchmark, report_header):
    a1, a2 = run_analysis()

    report_header("Section IV - per-VR current sharing (DSCH, 48 VRs)")
    for result in (a1, a2):
        print(
            f"{result.architecture}: {result.min_current_a:5.1f} .. "
            f"{result.max_current_a:5.1f} A "
            f"(mean {result.mean_current_a:.1f}, "
            f"spread {result.spread_ratio:.1f}x, "
            f"overloaded VRs {result.overloaded_count})"
        )
    print()
    print("paper: A1 16-27 A; A2 10-93 A (center VRs heaviest)")
    for result in run_experiment("sharing"):
        flag = "OK " if result.holds else "FAIL"
        print(f"[{flag}] {result.claim}: {result.measured_value}")

    assert all(r.holds for r in run_experiment("sharing"))

    benchmark.pedantic(run_analysis, rounds=3, iterations=1)
