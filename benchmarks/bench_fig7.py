"""E-FIG7 + E-TXT-HORIZ: the headline PCB-to-POL loss study (Fig. 7).

Regenerates the stacked loss breakdown for A0, A1, A2, A3@12V and
A3@6V with the DPMIH and DSCH topologies (3LHD excluded, as in the
paper), prints the bars, and checks every claim the paper ties to the
figure.
"""

from __future__ import annotations

from repro.core.characterization import characterize_all, fig7_claims
from repro.reporting.figures import render_fig7


def run_study():
    rows = characterize_all()
    return rows, fig7_claims(rows)


def test_fig7_reproduction(benchmark, report_header):
    rows, claims = run_study()

    report_header("Fig. 7 - PCB-to-POL power loss per architecture")
    print(render_fig7(rows=rows))
    print()
    print("paper-vs-measured:")
    print(f"  A0 loss                    : {claims.a0_loss_pct:.1f}% (paper: >40%)")
    print(
        f"  best/worst vertical loss   : {claims.best_vertical_loss_pct:.1f}% / "
        f"{claims.worst_vertical_loss_pct:.1f}% (paper: ~20% for most)"
    )
    print(
        f"  horizontal reduction A3@12V: {claims.horizontal_reduction_a3_12v:.1f}x "
        "(paper: up to 19x)"
    )
    print(
        f"  horizontal reduction A3@6V : {claims.horizontal_reduction_a3_6v:.1f}x "
        "(paper: up to 7x)"
    )
    print(f"  excluded topologies        : {claims.excluded_topologies} (paper: 3LHD)")

    assert claims.a0_loss_pct > 40.0
    assert claims.best_vertical_loss_pct < 20.0
    assert claims.vertical_loss_negligible
    assert claims.all_ppdn_below_10pct and claims.all_converters_above_10pct
    assert 14.0 <= claims.horizontal_reduction_a3_12v <= 24.0
    assert 5.0 <= claims.horizontal_reduction_a3_6v <= 9.0
    assert claims.excluded_topologies == ("3LHD",)

    benchmark(run_study)
