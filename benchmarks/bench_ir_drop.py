"""Extension benchmark: die IR-drop maps per architecture."""

from __future__ import annotations

from repro.converters.catalog import DSCH
from repro.core.architectures import single_stage_a1, single_stage_a2
from repro.core.ir_drop import compare_architectures


def run_analysis():
    return compare_architectures(
        [single_stage_a1(), single_stage_a2()], DSCH
    )


def test_ir_drop(benchmark, report_header):
    reports = run_analysis()

    report_header("Extension - die IR-drop map (DSCH, hotspot map)")
    for report in reports:
        x, y = report.worst_node
        print(
            f"{report.architecture}: worst droop "
            f"{report.worst_droop_v * 1e3:6.2f} mV "
            f"({report.droop_fraction:.1%} of nominal) at die "
            f"({x:.2f}, {y:.2f}) - "
            f"{'within' if report.within_budget else 'VIOLATES'} the "
            f"{report.droop_budget_v * 1e3:.0f} mV budget"
        )
    print()
    print(
        "under-die regulation (A2) parks the VRs on the hotspot and wins "
        "on worst-case droop, not just on loss."
    )

    a1, a2 = reports
    assert a2.worst_droop_v < a1.worst_droop_v

    benchmark.pedantic(run_analysis, rounds=3, iterations=1)
