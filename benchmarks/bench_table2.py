"""E-TAB2: converter characteristics (Table II) and placement plans.

Verifies the published converter data and shows the placement plans
the VR counts imply (including DPMIH's multi-row extension and the
3LHD infeasibility at 1 kA).
"""

from __future__ import annotations

import pytest

from repro.converters.catalog import CATALOG, table_ii_rows
from repro.errors import InfeasibleError
from repro.placement.planner import PlacementStyle, plan_placement
from repro.reporting.tables import table_ii_text

#: name -> (max load A, eta peak, I at peak, switches, inductors, caps,
#:          VRs periphery, VRs below)
PAPER_TABLE_II = {
    "DPMIH": (100.0, 0.909, 30.0, 8, 4, 3, 8, 7),
    "DSCH": (30.0, 0.915, 10.0, 5, 2, 2, 48, 48),
    "3LHD": (12.0, 0.904, 3.0, 11, 3, 5, 48, 48),
}


def build_table():
    rows = table_ii_rows()
    plans = {}
    for spec in CATALOG:
        for style in PlacementStyle:
            key = (spec.name, style.value)
            try:
                plans[key] = plan_placement(spec, style, 1000.0, 500.0)
            except InfeasibleError as exc:
                plans[key] = str(exc)
    return rows, plans


def test_table2_reproduction(benchmark, report_header):
    rows, plans = build_table()

    report_header("Table II - converter characteristics + placement")
    print(table_ii_text())
    print()
    for (name, style), plan in plans.items():
        if isinstance(plan, str):
            print(f"{name:6s} {style:10s}: INFEASIBLE - {plan[:70]}")
        else:
            print(
                f"{name:6s} {style:10s}: {plan.vr_count} VRs @ "
                f"{plan.per_vr_current_a:.1f} A "
                f"(below-die {plan.below_die_count}, "
                f"overflow {plan.overflow_count})"
            )

    by_name = {row["name"]: row for row in rows}
    for name, expected in PAPER_TABLE_II.items():
        row = by_name[name]
        max_load, eta, i_peak, switches, inductors, caps, per, below = expected
        assert row["max_load_a"] == max_load
        assert row["peak_efficiency"] == pytest.approx(eta)
        assert row["i_at_peak_a"] == i_peak
        assert row["switch_count"] == switches
        assert row["inductor_count"] == inductors
        assert row["capacitor_count"] == caps
        assert row["vrs_along_periphery"] == per
        assert row["vrs_below_die"] == below

    # Placement behaviour the paper describes:
    assert plans[("DSCH", "periphery")].vr_count == 48
    assert plans[("DPMIH", "periphery")].is_multi_row
    assert plans[("DPMIH", "below-die")].below_die_count == 7
    assert isinstance(plans[("3LHD", "periphery")], str)

    benchmark(build_table)
