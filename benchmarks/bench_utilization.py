"""E-TXT-UTIL: interconnect utilization and the A0 density limit."""

from __future__ import annotations

from repro.core.architectures import single_stage_a2
from repro.core.utilization import (
    a0_die_area_requirement,
    vertical_utilization,
)
from repro.reporting.experiments import run_experiment


def run_analysis():
    report = vertical_utilization(single_stage_a2())
    a0 = a0_die_area_requirement()
    return report, a0


def test_utilization_reproduction(benchmark, report_header):
    report, a0 = run_analysis()

    report_header("Section IV - interconnect utilization & density limits")
    print(f"{'technology':18s} {'rail A':>8s} {'used/pol':>9s} "
          f"{'available':>10s} {'util':>7s}")
    for row in report.rows:
        print(
            f"{row.technology:18s} {row.rail_current_a:8.1f} "
            f"{row.elements_per_polarity:9d} {row.sites_available:10d} "
            f"{row.utilization:7.2%}"
        )
    print()
    print(
        f"A0 required die area : {a0.required_die_area_mm2:.0f} mm2 "
        "(paper: 1200 mm2)"
    )
    print(
        f"A0 density limit     : {a0.power_density_limit_a_per_mm2:.2f} A/mm2 "
        "(paper: 0.8 A/mm2)"
    )
    print(f"binding technology   : {a0.binding_technology}")
    print(
        f"feed capacities      : BGA {a0.bga_capacity_a:.0f} A @60%, "
        f"C4 {a0.c4_capacity_a:.0f} A @85%"
    )
    for result in run_experiment("utilization"):
        flag = "OK " if result.holds else "FAIL"
        print(f"[{flag}] {result.claim}: {result.measured_value}")

    assert all(r.holds for r in run_experiment("utilization"))

    benchmark(run_analysis)
