"""Substrate benchmark: sparse MNA grid-solve scaling.

Not a paper artifact — times the PDN solver across grid resolutions so
regressions in the numerical core are visible.
"""

from __future__ import annotations

import pytest

from repro.pdn.grid import GridPDN
from repro.pdn.powermap import PowerMap


def solve_grid(n: int) -> float:
    grid = GridPDN(0.0224, 0.0224, 0.62e-3, nx=n, ny=n)
    grid.set_sinks(PowerMap.hotspot_mixture(), 1000.0)
    for k in range(8):
        t = k / 8.0
        grid.add_source(f"s{k}", t, 0.0 if k % 2 else 1.0, 1.0, 1e-3)
    return grid.solve().lateral_loss_w


@pytest.mark.parametrize("n", [16, 32, 48])
def test_grid_solve_scaling(benchmark, n):
    loss = benchmark(solve_grid, n)
    assert loss > 0
