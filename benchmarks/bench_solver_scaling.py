"""Substrate benchmark: sparse MNA grid-solve scaling.

Not a paper artifact — times the PDN solver across grid resolutions so
regressions in the numerical core are visible, plus the hot-path
shapes the system-level sweeps rely on:

* ``test_grid_solve_scaling`` — cold solves (assembly + factorization
  + back-substitution) at increasing mesh resolution,
* ``test_repeated_solve_cached_factorization`` — fixed topology,
  varying sink map: the cached-factorization path used by N−1 fault
  sweeps and Monte-Carlo load scenarios,
* ``test_batched_rhs_solve_many`` — one factorization amortized over a
  stack of RHS columns via ``FactorizedPDN.solve_many``,
* ``test_ac_sweep_scalar`` / ``test_ac_sweep_compiled`` — a 200-point
  impedance sweep through the per-frequency scalar oracle vs the
  compiled stamp-structure engine (``ACSweep``),
* ``test_n1_sweep_refactorize`` / ``test_n1_sweep_woodbury`` — a
  12-scenario N−1 fault sweep with per-scenario refactorization vs
  the Woodbury-corrected shared factorization,
* ``test_nk_sweep_batched`` — the same sweep with every scenario's
  influence/RHS/refinement solves stacked through
  ``solve_modified_many`` (three batched back-substitutions total),
* ``test_grid_ac_impedance_map`` — the grid-level AC engine: die-seen
  per-node Z(f) over a 200-point sweep at mesh sizes 8/16/24
  (``GridACPDN.impedance_map``, compile once / revalue per frequency),
* ``test_grid_solve_structured`` / ``test_grid_solve_factorized_large``
  / ``test_grid_solve_structured_warm`` — the fast-Poisson DC engine
  at 128/192/256 meshes against the sparse-LU path, plus the 256×256
  warm hot loop (<50 ms target),
* ``test_grid_ac_impedance_map_spectral`` / ``..._structured`` — the
  modal AC engines head to head at 16/32/96 meshes,
* ``test_placement_opt`` — a capped decap placement-optimizer run
  (greedy moves + one adjoint gradient step) at 16/32 meshes, pinning
  the O(one batched solve) per-iteration cost,
* ``test_grid_transient`` / ``test_grid_transient_refactorize`` —
  warm factor-once droop stepping at 16/32/64 meshes vs the cold
  per-trace-refactorization baseline,
* ``test_grid_transient_batched`` / ``test_grid_transient_sequential``
  — a 16-trace load-step ensemble through one batched step loop vs 16
  single-trace runs.

Rows marked ``large_mesh`` take hundreds of milliseconds each; skip
them with ``run_benchmarks.py --skip-large`` (or ``-m "not
large_mesh"``) when iterating.

Run ``python benchmarks/run_benchmarks.py`` to record the results in
``BENCH_solver.json``; ``--check`` compares a fresh run against that
baseline and fails on >2x regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdn.ac import ACNetlist, ACSweep, probe_netlist, solve_ac
from repro.pdn.grid import GridACPDN, GridPDN
from repro.pdn.mna import FactorizedPDN
from repro.pdn.powermap import PowerMap


def make_grid(n: int, engine: str = "auto") -> GridPDN:
    grid = GridPDN(0.0224, 0.0224, 0.62e-3, nx=n, ny=n, engine=engine)
    grid.set_sinks(PowerMap.hotspot_mixture(), 1000.0)
    for k in range(8):
        t = k / 8.0
        grid.add_source(f"s{k}", t, 0.0 if k % 2 else 1.0, 1.0, 1e-3)
    return grid


def solve_grid(n: int, engine: str = "auto") -> float:
    return make_grid(n, engine).solve().lateral_loss_w


@pytest.mark.parametrize("n", [16, 32, 48, 64, 96])
def test_grid_solve_scaling(benchmark, n):
    loss = benchmark(solve_grid, n)
    assert loss > 0


# -- structured large-mesh DC solves ------------------------------------------


@pytest.mark.parametrize(
    "n",
    [
        128,
        pytest.param(192, marks=pytest.mark.large_mesh),
        pytest.param(256, marks=pytest.mark.large_mesh),
    ],
)
def test_grid_solve_structured(benchmark, n):
    """Cold solves through the fast-Poisson engine at signoff meshes."""
    loss = benchmark(solve_grid, n, "structured")
    assert loss > 0


@pytest.mark.large_mesh
@pytest.mark.parametrize("n", [128, 256])
def test_grid_solve_factorized_large(benchmark, n):
    """The sparse-LU engine on the same meshes — the old-path rows the
    structured speedup is measured against."""
    loss = benchmark(solve_grid, n, "factorized")
    assert loss > 0


@pytest.mark.large_mesh
def test_grid_solve_structured_warm(benchmark):
    """256×256 varying-sink solves on a cached structured operator:
    the interactive signoff hot loop (<50 ms target)."""
    n = 256
    grid = make_grid(n, engine="structured")
    base = PowerMap.hotspot_mixture().cell_currents(n, n, 1000.0)
    grid.solve()  # warm the DCT structure
    step = {"i": 0}

    def rescale_and_solve() -> float:
        step["i"] += 1
        grid.set_sink_array(base * (0.5 + (step["i"] % 16) / 16.0))
        return grid.solve().lateral_loss_w

    loss = benchmark(rescale_and_solve)
    assert loss > 0


def test_repeated_solve_cached_factorization(benchmark):
    """Fixed topology, varying RHS: the N−1 / Monte-Carlo hot loop."""
    n = 48
    grid = make_grid(n)
    base = PowerMap.hotspot_mixture().cell_currents(n, n, 1000.0)
    grid.solve()  # warm the factorization cache
    step = {"i": 0}

    def rescale_and_solve() -> float:
        step["i"] += 1
        grid.set_sink_array(base * (0.5 + (step["i"] % 16) / 16.0))
        return grid.solve().lateral_loss_w

    loss = benchmark(rescale_and_solve)
    assert loss > 0


def test_batched_rhs_solve_many(benchmark):
    """64 load scenarios through one factorization in a single call."""
    n = 48
    grid = make_grid(n)
    solver = FactorizedPDN(grid.compile())
    base = solver.rhs()
    scales = np.linspace(0.5, 1.5, 64)
    rhs_matrix = np.tile(base[:, None], (1, scales.size))
    cells = n * n
    rhs_matrix[:cells, :] *= scales[None, :]

    def solve_batch() -> np.ndarray:
        return solver.solve_many(rhs_matrix)

    solutions = benchmark(solve_batch)
    assert solutions.shape[1] == scales.size
    assert np.all(np.isfinite(solutions))


# -- AC frequency sweeps ------------------------------------------------------

AC_SWEEP_POINTS = 200


def make_ac_probe() -> ACNetlist:
    """The branched-decap PDN probe circuit from the AC tests."""
    net = ACNetlist()
    net.add_voltage_source("vrm", "src", 1.0)
    net.add_resistor("r_series", "src", "mid", 0.05e-3)
    net.add_inductor("l_series", "mid", "die", 1e-9)
    net.add_capacitor("c_decap", "die", "cap_tap", 1e-6)
    net.add_resistor("esr", "cap_tap", "0", 0.3e-3)
    net.add_capacitor("c_bulk", "die", "bulk_tap", 100e-6)
    net.add_resistor("esr_bulk", "bulk_tap", "0", 1e-3)
    return probe_netlist(net, "die")


def test_ac_sweep_scalar(benchmark):
    """The pre-compile path: one full scalar solve per frequency."""
    probe = make_ac_probe()
    freqs = np.logspace(3, 9, AC_SWEEP_POINTS)

    def sweep_scalar() -> float:
        return max(
            solve_ac(probe, float(f)).magnitude("die") for f in freqs
        )

    peak = benchmark(sweep_scalar)
    assert peak > 0


def test_ac_sweep_compiled(benchmark):
    """The compiled path: one stamp structure, vectorized values."""
    probe = make_ac_probe()
    freqs = np.logspace(3, 9, AC_SWEEP_POINTS)

    def sweep_compiled() -> float:
        return float(ACSweep(probe).solve(freqs).magnitude("die").max())

    peak = benchmark(sweep_compiled)
    assert peak > 0


# -- N-1 fault sweeps ---------------------------------------------------------

N1_GRID = 24
N1_SCENARIOS = 12
N1_SOURCES = 8


def make_n1_grid() -> GridPDN:
    grid = GridPDN(0.0224, 0.0224, 0.62e-3, nx=N1_GRID, ny=N1_GRID)
    grid.set_sinks(PowerMap.hotspot_mixture(), 1000.0)
    for k in range(N1_SOURCES):
        t = k / N1_SOURCES
        grid.add_source(f"s{k}", t, 0.0 if k % 2 else 1.0, 1.0, 1e-3)
    return grid


def test_n1_sweep_refactorize(benchmark):
    """Per-scenario refactorization (the pre-Woodbury sweep shape)."""
    grid = make_n1_grid()
    grid.solve()

    def sweep() -> float:
        worst = 0.0
        for k in range(N1_SCENARIOS):
            solution = grid.solve_disabled(
                (k % N1_SOURCES,), method="refactor"
            )
            worst = max(worst, float(solution.source_currents_a.max()))
        return worst

    worst = benchmark(sweep)
    assert worst > 0


def test_n1_sweep_woodbury(benchmark):
    """Woodbury-corrected scenarios on one shared factorization."""
    grid = make_n1_grid()
    grid.solve()

    def sweep() -> float:
        worst = 0.0
        for k in range(N1_SCENARIOS):
            solution = grid.solve_disabled(
                (k % N1_SOURCES,), method="woodbury"
            )
            worst = max(worst, float(solution.source_currents_a.max()))
        return worst

    worst = benchmark(sweep)
    assert worst > 0


def test_nk_sweep_batched(benchmark):
    """The whole scenario list through batched back-substitutions."""
    grid = make_n1_grid()
    grid.solve()
    scenarios = [
        (k % N1_SOURCES, (k + 1) % N1_SOURCES) for k in range(N1_SCENARIOS)
    ]

    def sweep() -> float:
        solutions = grid.solve_disabled_many(scenarios, method="woodbury")
        return max(
            float(solution.source_currents_a.max())
            for solution in solutions
        )

    worst = benchmark(sweep)
    assert worst > 0


# -- grid-level AC impedance maps --------------------------------------------

GRID_AC_POINTS = 200


def make_grid_ac(n: int) -> GridACPDN:
    """A die mesh with uniform decap allocation and an 8-VR bank."""
    pdn = GridACPDN(0.0224, 0.0224, 0.62e-3, nx=n, ny=n)
    pdn.set_decap_density(1.0, 0.2e-6, 2e-3, 1e-12)
    for k in range(8):
        t = k / 8.0
        pdn.add_source(
            f"s{k}", t, 0.0 if k % 2 else 1.0, 1.0, 1e-3, 5e-12
        )
    return pdn


@pytest.mark.parametrize("n", [8, 16, 24])
def test_grid_ac_impedance_map(benchmark, n):
    """Die-seen Z(f) at every mesh node, 200-point sweep, warm cache."""
    pdn = make_grid_ac(n)
    freqs = np.logspace(4, 9, GRID_AC_POINTS)
    pdn.impedance_map(freqs)  # compile + eigendecomposition, once

    impedance = benchmark(pdn.impedance_map, freqs)
    assert impedance.peak_impedance_ohm > 0
    assert np.all(np.isfinite(impedance.z_ohm))


@pytest.mark.parametrize("n", [16, 32])
def test_grid_ac_impedance_map_spectral(benchmark, n):
    """The previous-generation modal engine, pinned explicitly so the
    old-vs-new engine gap stays visible in the record."""
    pdn = make_grid_ac(n)
    freqs = np.logspace(4, 9, GRID_AC_POINTS)
    pdn.impedance_map(freqs, method="spectral")

    impedance = benchmark(pdn.impedance_map, freqs, method="spectral")
    assert impedance.peak_impedance_ohm > 0
    assert np.all(np.isfinite(impedance.z_ohm))


@pytest.mark.parametrize(
    "n", [32, pytest.param(96, marks=pytest.mark.large_mesh)]
)
def test_grid_ac_impedance_map_structured(benchmark, n):
    """The DCT-diagonalized engine at meshes the dense/spectral paths
    cannot reach interactively."""
    pdn = make_grid_ac(n)
    freqs = np.logspace(4, 9, GRID_AC_POINTS)
    pdn.impedance_map(freqs, method="structured")

    impedance = benchmark(pdn.impedance_map, freqs, method="structured")
    assert impedance.peak_impedance_ohm > 0
    assert np.all(np.isfinite(impedance.z_ohm))


# -- decap placement optimizer ------------------------------------------------

PLACEMENT_POINTS = 41


@pytest.mark.parametrize("n", [16, 32])
def test_placement_opt(benchmark, n):
    """A capped placement-optimizer run (two greedy moves + one
    adjoint gradient step, no coarse warm start) against a target at
    half the uniform peak.  Each iteration is O(one batched solve) —
    an impedance-map sweep per greedy trial plus one multi-RHS
    ``impedance_columns`` solve per gradient step — so these rows
    should scale like the warm ``test_grid_ac_impedance_map`` rows,
    not like per-node re-solves."""
    from repro.pdn.decap_placement import optimize_decap_placement

    pdn = make_grid_ac(n)
    freqs = np.logspace(4, 9, PLACEMENT_POINTS)
    baseline = pdn.impedance_map(freqs)  # warm compile/eigen caches
    target = 0.5 * baseline.peak_impedance_ohm

    def place():
        return optimize_decap_placement(
            pdn,
            target,
            frequencies_hz=freqs,
            max_iterations=2,
            gradient_steps=1,
            multi_resolution=False,
        )

    result = benchmark(place)
    assert result.violating_fraction_history


# -- grid transient (factor-once droop engine) --------------------------------
#
# The load-step droop rows.  ``test_grid_transient`` times warm
# factor-once stepping (the per-(topology, dt) factorization is
# cached, each 201-sample trace costs back-substitutions only);
# ``test_grid_transient_refactorize`` is the naive baseline that pays
# assembly + LU for every trace — the warm/cold pair is the
# factor-once evidence, same convention as the n1 refactorize/woodbury
# rows.  ``test_grid_transient_batched`` / ``..._sequential`` run the
# same 16-trace ensemble through one batched step loop vs 16
# single-trace loops, at two mesh sizes that sit in different
# regimes: at 16x16 the single-trace step is dominated by fixed
# per-call overhead, so batching amortizes it (>3x recorded); at
# 48x48 the batch shares every matrix/DCT pass across traces but its
# state updates are memory-bandwidth-bound, so on a single-CPU box
# the recorded gap narrows to ~1.8x — with threaded FFT/BLAS the
# shared passes parallelize and the gap widens again, same caveat as
# the ``multiproc`` rows below.

TRANSIENT_SAMPLES = 201
TRANSIENT_DT = 2e-9
TRANSIENT_TRACES = 16


def make_grid_transient(n: int, engine: str = "auto"):
    from repro.pdn.grid_transient import GridTransientPDN

    pdn = GridTransientPDN(
        0.0224, 0.0224, 0.62e-3, nx=n, ny=n,
        edge_inductance_x_h=4e-12, edge_inductance_y_h=4e-12,
        engine=engine,
    )
    for k in range(8):
        t = k / 8.0
        pdn.add_source(
            f"s{k}", t, 0.0 if k % 2 else 1.0, 1.0, 1e-3,
            inductance_h=5e-12,
        )
    pdn.set_decap_density(1.0, 0.2e-6, 2e-3, 1e-12)
    return pdn


def transient_waves(n: int, traces: int) -> list[np.ndarray]:
    base = PowerMap.hotspot_mixture().cell_currents(n, n, 1000.0)
    ramp = np.linspace(0.2, 1.0, TRANSIENT_SAMPLES)[:, None]
    rng = np.random.default_rng(11)
    return [
        np.ascontiguousarray(
            base.reshape(-1)[None, :] * ramp * (0.8 + 0.4 * rng.random())
        )
        for _ in range(traces)
    ]


@pytest.mark.parametrize(
    "n", [16, 32, pytest.param(64, marks=pytest.mark.large_mesh)]
)
def test_grid_transient(benchmark, n):
    """Warm factor-once stepping: one 201-sample load ramp per round."""
    pdn = make_grid_transient(n)
    wave = transient_waves(n, 1)[0]
    pdn.simulate(wave, TRANSIENT_DT)  # factorize + cache, once

    result = benchmark(pdn.simulate, wave, TRANSIENT_DT)
    assert result.droop_v >= 0


def test_grid_transient_refactorize(benchmark):
    """Naive cold baseline at 48x48: a fresh engine and a cleared
    factorization cache every round, so each short trace pays stamp
    assembly + sparse LU — the denominator of the factor-once claim
    (a warm step is the 48x48 sequential row's mean / 16 traces / 200
    steps)."""
    from repro.parallel.cache import process_cache

    wave = transient_waves(48, 1)[0][:2]  # minimal 2-sample trace

    def cold() -> float:
        process_cache().clear()
        pdn = make_grid_transient(48, engine="factorized")
        return pdn.simulate(wave, TRANSIENT_DT).droop_v

    droop = benchmark(cold)
    assert droop >= 0


BATCH_MESHES = [16, pytest.param(48, marks=pytest.mark.large_mesh)]


@pytest.mark.parametrize("n", BATCH_MESHES)
def test_grid_transient_batched(benchmark, n):
    """16-trace ensemble through one batched step loop."""
    pdn = make_grid_transient(n)
    waves = transient_waves(n, TRANSIENT_TRACES)
    pdn.simulate(waves[0], TRANSIENT_DT)

    results = benchmark(pdn.simulate_many, waves, TRANSIENT_DT)
    assert len(results) == TRANSIENT_TRACES


@pytest.mark.parametrize("n", BATCH_MESHES)
def test_grid_transient_sequential(benchmark, n):
    """The same 16 traces as 16 single-trace runs."""
    pdn = make_grid_transient(n)
    waves = transient_waves(n, TRANSIENT_TRACES)
    pdn.simulate(waves[0], TRANSIENT_DT)

    def sweep() -> float:
        return max(
            pdn.simulate(w, TRANSIENT_DT).droop_v for w in waves
        )

    droop = benchmark(sweep)
    assert droop > 0


# -- parallel sweep executor --------------------------------------------------
#
# The system-level sweeps through repro.parallel: a 512-draw
# Monte-Carlo and a 48-scenario N-2 fault sweep, at jobs=1 (the
# serial in-process path) and jobs=4 (process-pool sharding).  The
# jobs=4 rows are marked ``multiproc``: on a single-CPU box pool
# overhead dominates and --skip-large CI excludes them; on a
# multi-core box they are the speedup evidence.  --check compares
# each row against its own recorded baseline, so the serial and
# parallel rows gate independently.

MC_DRAWS = 512
NK_SCENARIOS = 48

JOBS_PARAMS = [1, pytest.param(4, marks=pytest.mark.multiproc)]


@pytest.mark.parametrize("jobs", JOBS_PARAMS)
def test_parallel_monte_carlo(benchmark, jobs):
    """512-draw Monte-Carlo loss sweep through the executor."""
    from repro.converters.catalog import DSCH
    from repro.core.architectures import single_stage_a1
    from repro.core.variation import monte_carlo_loss

    arch = single_stage_a1()

    def sweep() -> float:
        result = monte_carlo_loss(arch, DSCH, samples=MC_DRAWS, jobs=jobs)
        return result.mean_loss_w

    mean = benchmark(sweep)
    assert mean > 0


@pytest.mark.parametrize("jobs", JOBS_PARAMS)
def test_parallel_nk_sweep(benchmark, jobs):
    """48-scenario N-2 fault sweep on the 48-VR A1 bank."""
    from repro.converters.catalog import DSCH
    from repro.core.architectures import single_stage_a1
    from repro.core.redundancy import multi_failure_samples

    arch = single_stage_a1()

    def sweep() -> int:
        results = multi_failure_samples(
            arch, DSCH, 2, max_scenarios=NK_SCENARIOS, jobs=jobs
        )
        return sum(1 for r in results if r.survives)

    survivors = benchmark(sweep)
    assert survivors >= 0
