"""Substrate benchmark: sparse MNA grid-solve scaling.

Not a paper artifact — times the PDN solver across grid resolutions so
regressions in the numerical core are visible, plus the two hot-path
shapes the system-level sweeps rely on:

* ``test_grid_solve_scaling`` — cold solves (assembly + factorization
  + back-substitution) at increasing mesh resolution,
* ``test_repeated_solve_cached_factorization`` — fixed topology,
  varying sink map: the cached-factorization path used by N−1 fault
  sweeps and Monte-Carlo load scenarios,
* ``test_batched_rhs_solve_many`` — one factorization amortized over a
  stack of RHS columns via ``FactorizedPDN.solve_many``.

Run ``python benchmarks/run_benchmarks.py`` to record the results in
``BENCH_solver.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdn.grid import GridPDN
from repro.pdn.mna import FactorizedPDN
from repro.pdn.powermap import PowerMap


def make_grid(n: int) -> GridPDN:
    grid = GridPDN(0.0224, 0.0224, 0.62e-3, nx=n, ny=n)
    grid.set_sinks(PowerMap.hotspot_mixture(), 1000.0)
    for k in range(8):
        t = k / 8.0
        grid.add_source(f"s{k}", t, 0.0 if k % 2 else 1.0, 1.0, 1e-3)
    return grid


def solve_grid(n: int) -> float:
    return make_grid(n).solve().lateral_loss_w


@pytest.mark.parametrize("n", [16, 32, 48, 64, 96])
def test_grid_solve_scaling(benchmark, n):
    loss = benchmark(solve_grid, n)
    assert loss > 0


def test_repeated_solve_cached_factorization(benchmark):
    """Fixed topology, varying RHS: the N−1 / Monte-Carlo hot loop."""
    n = 48
    grid = make_grid(n)
    base = PowerMap.hotspot_mixture().cell_currents(n, n, 1000.0)
    grid.solve()  # warm the factorization cache
    step = {"i": 0}

    def rescale_and_solve() -> float:
        step["i"] += 1
        grid.set_sink_array(base * (0.5 + (step["i"] % 16) / 16.0))
        return grid.solve().lateral_loss_w

    loss = benchmark(rescale_and_solve)
    assert loss > 0


def test_batched_rhs_solve_many(benchmark):
    """64 load scenarios through one factorization in a single call."""
    n = 48
    grid = make_grid(n)
    solver = FactorizedPDN(grid.compile())
    base = solver.rhs()
    scales = np.linspace(0.5, 1.5, 64)
    rhs_matrix = np.tile(base[:, None], (1, scales.size))
    cells = n * n
    rhs_matrix[:cells, :] *= scales[None, :]

    def solve_batch() -> np.ndarray:
        return solver.solve_many(rhs_matrix)

    solutions = benchmark(solve_batch)
    assert solutions.shape[1] == scales.size
    assert np.all(np.isfinite(solutions))
