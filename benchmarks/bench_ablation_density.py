"""Ablation: current-density scaling — the near-future claim.

Fig. 1's caption: power density "is expected to double in the near
future".  The sweep shows the reference architecture falling off its
~0.83 A/mm² micro-bump cliff while the vertical architectures keep
closing through 4 A/mm².
"""

from __future__ import annotations

from repro.core.scaling_study import a0_density_limit, density_scaling_study


def run_study():
    return density_scaling_study()


def test_density_ablation(benchmark, report_header):
    points = run_study()

    report_header("Ablation - POL current density scaling (1 kW, DSCH)")
    print(f"A0 density cap: {a0_density_limit():.2f} A/mm2 (paper: ~0.8)\n")
    print(
        f"{'A/mm2':>6s} {'die mm2':>8s} {'A0':>12s} {'vertical':>10s} "
        f"{'loss%':>7s}"
    )
    for p in points:
        loss = (
            f"{p.vertical_loss_pct:6.2f}" if p.vertical_loss_pct else "  -  "
        )
        print(
            f"{p.density_a_per_mm2:6.1f} {p.die_area_mm2:8.0f} "
            f"{'supported' if p.a0_supported else 'INFEASIBLE':>12s} "
            f"{'closes' if p.vertical_supported else 'fails':>10s} "
            f"{loss:>7s}"
        )

    at_2 = next(p for p in points if p.density_a_per_mm2 == 2.0)
    assert not at_2.a0_supported and at_2.vertical_supported
    assert all(
        p.vertical_supported
        for p in points
        if p.density_a_per_mm2 <= 4.0
    )

    benchmark(run_study)
