"""Ablation: interposer RDL thickness vs A1 loss.

The periphery architecture's dominant interconnect loss is the RDL
spreading term; this bench quantifies the sensitivity that makes RDL
metallization a first-order design knob.
"""

from __future__ import annotations

from repro.core.exploration import rdl_thickness_sweep


def run_sweep():
    return rdl_thickness_sweep()


def test_rdl_ablation(benchmark, report_header):
    points = run_sweep()

    report_header("Ablation - interposer RDL thickness (A1 + DSCH)")
    for point in points:
        print(
            f"{point.label:12s}: loss {point.loss_pct:6.2f}%  "
            f"({point.detail})"
        )

    losses = [p.total_loss_w for p in points]
    assert losses == sorted(losses, reverse=True)
    # Thickness spans 12x; the loss delta must be material (>2% abs).
    assert points[0].loss_pct - points[-1].loss_pct > 2.0

    benchmark(run_sweep)
