"""E-FIG2: current demand vs packaging feature trends (Fig. 2)."""

from __future__ import annotations

from repro.datasets.scaling_trends import trend_summary
from repro.reporting.experiments import run_experiment
from repro.reporting.figures import fig2_series, render_fig2


def build_figure():
    series = fig2_series()
    rendering = render_fig2()
    summary = trend_summary()
    return series, rendering, summary


def test_fig2_reproduction(benchmark, report_header):
    series, rendering, summary = build_figure()

    report_header("Fig. 2 - current demand vs packaging feature size")
    print(rendering)
    print()
    print(
        f"current demand growth : {summary['current_growth_x']:.0f}x "
        "(paper: orders of magnitude)"
    )
    print(
        f"feature reduction     : {summary['feature_reduction_x']:.1f}x "
        "(paper: ~4x)"
    )
    for result in run_experiment("fig2"):
        flag = "OK " if result.holds else "FAIL"
        print(f"[{flag}] {result.claim}: {result.measured_value}")

    assert all(r.holds for r in run_experiment("fig2"))
    assert len(series["current_demand_a"]) >= 6

    benchmark(build_figure)
