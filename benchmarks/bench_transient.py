"""Extension benchmark: load-step droop, board vs interposer regulation.

The dynamic counterpart of the paper's DC message: regulating on the
interposer hides the board/package inductance behind the regulator and
shrinks the first droop.
"""

from __future__ import annotations

from repro.pdn.transient import (
    default_board_regulated_pdn,
    default_interposer_regulated_pdn,
)


def run_step_study():
    board = default_board_regulated_pdn()
    interposer = default_interposer_regulated_pdn()
    step = (5.0, 50.0)
    return (
        board.simulate_step(*step, duration_s=30e-6),
        interposer.simulate_step(*step, duration_s=30e-6),
    )


def test_transient_droop(benchmark, report_header):
    board_result, interposer_result = run_step_study()

    report_header("Extension - load-step droop (5 A -> 50 A)")
    print(
        f"board-regulated PDN (A0-style)     : droop "
        f"{board_result.droop_v * 1e3:6.1f} mV, settle "
        f"{board_result.settle_time_s * 1e6:5.1f} us"
    )
    print(
        f"interposer-regulated PDN (A1-style): droop "
        f"{interposer_result.droop_v * 1e3:6.1f} mV, settle "
        f"{interposer_result.settle_time_s * 1e6:5.1f} us"
    )

    assert interposer_result.droop_v < board_result.droop_v

    benchmark.pedantic(run_step_study, rounds=3, iterations=1)
