"""E-FIG3: power savings vs conversion location (Fig. 3 quantified).

Fig. 3 illustrates why on-interposer regulation saves power relative
to PCB-level conversion; the sweep quantifies the whole path
PCB -> package -> interposer periphery -> below die.
"""

from __future__ import annotations

from repro.core.exploration import conversion_location_sweep
from repro.reporting.figures import render_fig3


def run_sweep():
    return conversion_location_sweep()


def test_fig3_reproduction(benchmark, report_header):
    points = run_sweep()

    report_header("Fig. 3 - loss vs conversion location (DSCH)")
    print(render_fig3())
    print()
    for point in points:
        print(
            f"{point.label:22s} loss {point.loss_pct:6.2f}%  "
            f"efficiency {point.efficiency:.1%}  ({point.detail})"
        )

    losses = [p.total_loss_w for p in points]
    assert losses == sorted(losses, reverse=True), (
        "loss must fall monotonically as conversion approaches the POL"
    )
    assert points[0].loss_pct > 40.0
    assert points[-1].loss_pct < 20.0

    benchmark(run_sweep)
