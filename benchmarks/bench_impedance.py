"""Extension benchmark: PDN impedance profiles and target-impedance
compliance, board- vs interposer-regulated."""

from __future__ import annotations

import numpy as np

from repro.pdn.impedance import (
    pdn_impedance,
    size_die_decap_for_target,
    target_impedance_ohm,
)
from repro.pdn.transient import PDNStage

BOARD_STYLE = [
    PDNStage("board", 0.2e-3, 10e-9, 2e-3, 0.2e-3),
    PDNStage("package", 0.1e-3, 0.5e-9, 200e-6, 0.3e-3),
    PDNStage("die", 0.05e-3, 20e-12, 2e-6, 0.05e-3),
]
INTERPOSER_STYLE = [
    PDNStage("interposer", 0.05e-3, 100e-12, 100e-6, 0.1e-3),
    PDNStage("die", 0.02e-3, 10e-12, 2e-6, 0.05e-3),
]


def run_analysis():
    target = target_impedance_ohm(1.0, 0.05, 500.0)
    board = pdn_impedance(BOARD_STYLE)
    interposer = pdn_impedance(INTERPOSER_STYLE)
    sizing = size_die_decap_for_target(INTERPOSER_STYLE, target * 5)
    return target, board, interposer, sizing


def test_impedance_analysis(benchmark, report_header):
    target, board, interposer, sizing = run_analysis()

    report_header("Extension - PDN impedance (1 V, 5% ripple, 500 A step)")
    print(f"target impedance            : {target * 1e3:.3f} mOhm")
    print(
        f"board-regulated peak |Z|    : {board.peak_impedance_ohm * 1e3:.2f} "
        f"mOhm at {board.peak_frequency_hz / 1e6:.1f} MHz"
    )
    print(
        f"interposer-regulated peak   : "
        f"{interposer.peak_impedance_ohm * 1e3:.2f} mOhm at "
        f"{interposer.peak_frequency_hz / 1e6:.1f} MHz"
    )
    low_band = np.logspace(3, 5.9, 60)
    zb = pdn_impedance(BOARD_STYLE, frequencies_hz=low_band).impedance_ohm
    zi = pdn_impedance(
        INTERPOSER_STYLE, frequencies_hz=low_band
    ).impedance_ohm
    print(
        f"low/mid-band advantage      : {float(np.mean(zb / zi)):.1f}x "
        "lower with interposer regulation"
    )
    print(
        f"die-decap sizing (5x target): {sizing.original_farad * 1e6:.1f} uF "
        f"-> {sizing.recommended_farad * 1e6:.1f} uF "
        f"({'meets' if sizing.meets_target else 'misses'} target)"
    )

    assert np.all(zi <= zb)

    benchmark(run_analysis)
