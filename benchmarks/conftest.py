"""Benchmark configuration.

Each bench regenerates one paper artifact (table/figure/claim),
printing the paper-vs-measured rows once and timing the underlying
pipeline with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "large_mesh: hundreds-of-ms solver rows; excluded by "
        'run_benchmarks.py --skip-large / -m "not large_mesh"',
    )
    config.addinivalue_line(
        "markers",
        "multiproc: rows that spawn worker processes (jobs>1); excluded "
        "by run_benchmarks.py --skip-large so single-CPU CI stays fast",
    )


def print_header(title: str) -> None:
    """Uniform banner for bench reports."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def report_header():
    """Expose the banner helper to benches."""
    return print_header
