"""E-TAB1: vertical interconnect characteristics (Table I)."""

from __future__ import annotations

from repro.pdn.interconnect import TABLE_I, table_i_rows
from repro.reporting.tables import table_i_text

#: (type, platform mm2, diameter um, cross-area um2, height um, pitch um)
PAPER_TABLE_I = {
    "BGA": (1800.0, 400.0, 125664.0, 300.0, 800.0),
    "C4 bump": (1200.0, 100.0, 7854.0, 70.0, 200.0),
    "TSV": (1200.0, 5.0, 20.0, 50.0, 10.0),
    "u-bump": (500.0, 30.0, 707.0, 25.0, 60.0),
    "advanced Cu pad": (500.0, 0.0, 100.0, 10.0, 20.0),
}


def build_table():
    return table_i_rows(), table_i_text()


def test_table1_reproduction(benchmark, report_header):
    rows, text = build_table()

    report_header("Table I - vertical interconnect characteristics")
    print(text)

    import pytest

    by_type = {row["type"]: row for row in rows}
    for name, expected in PAPER_TABLE_I.items():
        row = by_type[name]
        platform, diameter, area, height, pitch = expected
        assert row["platform_area_mm2"] == pytest.approx(platform)
        assert row["diameter_um"] == pytest.approx(diameter)
        assert row["cross_area_um2"] == pytest.approx(area)
        assert row["height_um"] == pytest.approx(height)
        assert row["pitch_um"] == pytest.approx(pitch)
    assert len(TABLE_I) == 5

    benchmark(build_table)
