"""Ablation: electro-thermal derating of the Fig. 7 design points."""

from __future__ import annotations

from repro.converters.catalog import DSCH
from repro.core.architectures import (
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.electro_thermal import electro_thermal_loss


def run_analysis():
    return [
        electro_thermal_loss(arch, DSCH)
        for arch in (reference_a0(), single_stage_a1(), single_stage_a2())
    ]


def test_thermal_ablation(benchmark, report_header):
    results = run_analysis()

    report_header("Ablation - electro-thermal derating (DSCH)")
    for result in results:
        cold = result.breakdown_25c
        print(
            f"{cold.architecture:4s}: {cold.total_loss_w:6.1f} W at 25 C -> "
            f"{result.total_loss_w:6.1f} W at temperature "
            f"(+{result.loss_increase_w:5.1f} W, die "
            f"{result.temperatures.die_c:.0f} C, interposer "
            f"{result.temperatures.interposer_c:.0f} C, "
            f"{result.iterations} iterations)"
        )
    print()
    print(
        "vertical delivery embeds the converter loss in the package, so "
        "its thermal derating is a real co-design tax - yet the ordering "
        "vs A0 is unchanged."
    )

    a0, a1, a2 = results
    assert all(r.loss_increase_w > 0 for r in results)
    # The paper's ordering survives the thermal feedback.
    assert a2.total_loss_w < a1.total_loss_w < a0.total_loss_w

    benchmark(run_analysis)
