"""Ablation: Si vs GaN power devices over switching frequency.

Quantifies the paper's Section III argument for GaN: integrated
regulators need high frequency (small passives), and GaN's lower
charge figure-of-merit keeps switching loss acceptable there.
"""

from __future__ import annotations

from repro.core.exploration import si_vs_gan_buck


def run_sweep():
    return si_vs_gan_buck()


def test_si_vs_gan_ablation(benchmark, report_header):
    points = run_sweep()

    report_header("Ablation - Si vs GaN buck efficiency over frequency")
    by_freq: dict[float, dict[str, float]] = {}
    for point in points:
        if point.feasible:
            by_freq.setdefault(point.frequency_hz, {})[point.technology] = (
                point.efficiency
            )
    for freq in sorted(by_freq):
        eta = by_freq[freq]
        gap = eta["GaN"] - eta["Si"]
        print(
            f"{freq / 1e6:5.1f} MHz : Si {eta['Si']:.1%}  GaN {eta['GaN']:.1%}  "
            f"(GaN advantage {gap * 100:.1f} pts)"
        )

    gaps = {
        f: by_freq[f]["GaN"] - by_freq[f]["Si"] for f in by_freq
    }
    freqs = sorted(gaps)
    assert all(gaps[f] > 0 for f in freqs)
    assert gaps[freqs[-1]] > gaps[freqs[0]]

    benchmark(run_sweep)
