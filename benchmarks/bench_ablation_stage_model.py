"""Ablation: 'as-published' vs 'ratio-scaled' stage converter models.

The paper reuses published 48V-to-1V efficiency data for the A3 stage
converters (no other data existed), which makes dual-stage lose to
single-stage.  Ratio-optimized stage models flip that ordering — a
design insight the reproduction can quantify.
"""

from __future__ import annotations

from repro.core.exploration import stage_mode_comparison


def run_comparison():
    return stage_mode_comparison()


def test_stage_model_ablation(benchmark, report_header):
    results = run_comparison()

    report_header("Ablation - A3@12V stage-converter modeling policy")
    for label, breakdown in results.items():
        print(
            f"{label:18s}: loss {100 * breakdown.paper_loss_fraction:6.2f}%  "
            f"efficiency {breakdown.efficiency:.1%}  "
            f"(converters {breakdown.converter_loss_w:.0f} W)"
        )
    print()
    print(
        "paper policy (as-published) ranks dual-stage below single-stage; "
        "ratio-scaled stage converters invert the conclusion."
    )

    assert (
        results["as-published"].efficiency
        < results["single-stage-A1"].efficiency
    )
    assert (
        results["ratio-scaled"].efficiency
        > results["single-stage-A1"].efficiency
    )

    benchmark(run_comparison)
