"""Extension benchmark: Monte-Carlo tolerance analysis."""

from __future__ import annotations

from repro.converters.catalog import DSCH
from repro.core.architectures import single_stage_a2
from repro.core.variation import VariationSpec, monte_carlo_loss


def run_analysis():
    return monte_carlo_loss(
        single_stage_a2(),
        DSCH,
        samples=200,
        variation=VariationSpec(converter_loss_sigma=0.05, rdl_sigma=0.08),
    )


def test_variation(benchmark, report_header):
    result = run_analysis()

    report_header("Extension - Monte-Carlo tolerances (A2 + DSCH, n=200)")
    print(f"nominal loss : {result.nominal_loss_w:.1f} W")
    print(
        f"sampled      : mean {result.mean_loss_w:.1f} W, "
        f"sigma {result.std_loss_w:.1f} W"
    )
    print(
        f"corners      : p5 {result.percentile_w(5):.1f} W, "
        f"p95 {result.percentile_w(95):.1f} W"
    )
    for floor in (0.85, 0.88, 0.89):
        yld = result.yield_at_efficiency(floor, 1000.0)
        print(f"yield @ eta >= {floor:.0%} : {yld:.1%}")

    assert result.percentile_w(95) > result.nominal_loss_w
    assert result.yield_at_efficiency(0.85, 1000.0) > 0.95

    benchmark.pedantic(run_analysis, rounds=2, iterations=1)
