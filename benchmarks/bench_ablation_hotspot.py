"""Ablation: die hotspot severity vs per-VR current spread.

Sharpening the die power map blows up the A2 (under-die) sharing
spread while the A1 periphery ring stays comparatively balanced — the
mechanism behind the paper's 10-93 A observation.
"""

from __future__ import annotations

from repro.core.exploration import hotspot_sweep


def run_sweep():
    return hotspot_sweep(uniform_fractions=(1.0, 0.45, 0.3, 0.1))


def test_hotspot_ablation(benchmark, report_header):
    results = run_sweep()

    report_header("Ablation - hotspot severity vs per-VR current spread")
    print(f"{'uniform frac':>12s} {'A1 min-max (A)':>18s} {'A2 min-max (A)':>18s}")
    for fraction, a1, a2 in results:
        print(
            f"{fraction:12.2f} "
            f"{a1.min_current_a:8.1f}-{a1.max_current_a:<8.1f} "
            f"{a2.min_current_a:8.1f}-{a2.max_current_a:<8.1f}"
        )

    spreads_a2 = [a2.spread_ratio for _f, _a1, a2 in results]
    assert spreads_a2 == sorted(spreads_a2)
    _f, a1_sharp, a2_sharp = results[-1]
    assert a2_sharp.spread_ratio > 3 * a1_sharp.spread_ratio

    benchmark.pedantic(run_sweep, rounds=2, iterations=1)
