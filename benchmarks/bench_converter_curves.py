"""Section III artifact: the three converters' efficiency curves.

Prints the calibrated η(I) curves side by side (the data behind the
paper's Table II comparison) and cross-validates each against its
bottom-up physics model.
"""

from __future__ import annotations

from repro.converters.catalog import CATALOG
from repro.converters.topologies.physics import (
    Dickson3LPhysics,
    DPMIHPhysics,
    DSCHPhysics,
    cross_validate,
)
from repro.errors import InfeasibleError
from repro.reporting.ascii_plot import series_table


def build_curves():
    currents = [1.0, 2.0, 3.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0]
    rows = []
    for current in currents:
        row: list[object] = [f"{current:.0f} A"]
        for spec in CATALOG:
            try:
                row.append(f"{spec.loss_model.efficiency(current):.1%}")
            except InfeasibleError:
                row.append("-")
        rows.append(row)
    physics = {
        "DPMIH": cross_validate(DPMIHPhysics(), 0.909, 30.0),
        "DSCH": cross_validate(DSCHPhysics(), 0.915, 10.0),
        "3LHD": cross_validate(Dickson3LPhysics(), 0.904, 3.0),
    }
    return rows, physics


def test_converter_curves(benchmark, report_header):
    rows, physics = build_curves()

    report_header("Section III - calibrated converter efficiency curves")
    print(series_table(["load", "DPMIH", "DSCH", "3LHD"], rows))
    print()
    print("bottom-up physics cross-validation at the published peaks:")
    for name, result in physics.items():
        print(
            f"  {name:6s}: physics {result['physics_efficiency']:.1%} vs "
            f"published {result['published_efficiency']:.1%} "
            f"(gap {result['gap'] * 100:.1f} pts)"
        )

    assert all(result["gap"] < 0.02 for result in physics.values())

    benchmark(build_curves)
