"""E-FIG6: converter operating waveforms (Fig. 6).

Fig. 6 shows the SMPS buck and the series-parallel SC charge pump.
The bench simulates both and verifies the operating principles the
paper builds its argument on: the ~2% on-time of a 48V-to-1V buck and
the charge-sharing droop of the SC stage.
"""

from __future__ import annotations

from repro.converters.waveforms import (
    BuckWaveformSimulator,
    ChargePumpWaveformSimulator,
)


def simulate_both():
    buck = BuckWaveformSimulator(
        v_in_v=48.0,
        v_out_target_v=1.0,
        inductance_h=2.2e-6,
        capacitance_f=100e-6,
        frequency_hz=0.3e6,
        load_ohm=0.05,
    )
    # 480 steps/cycle makes the 2.083% duty an exact 10 samples,
    # avoiding PWM quantization bias in the open-loop average.
    buck_result = buck.simulate(cycles=150, steps_per_cycle=480)

    pump = ChargePumpWaveformSimulator(
        v_in_v=48.0,
        ratio=4,
        fly_capacitance_f=10e-6,
        out_capacitance_f=50e-6,
        frequency_hz=1e6,
        load_ohm=2.0,
    )
    pump_result = pump.simulate(cycles=200, steps_per_cycle=150)
    return buck, buck_result, pump, pump_result


def test_fig6_reproduction(benchmark, report_header):
    buck, buck_result, pump, pump_result = simulate_both()

    v_out = buck_result.steady_state_mean("output_voltage_v")
    ripple = buck_result.steady_state_ripple("output_voltage_v")
    pump_v = pump_result.steady_state_mean("output_voltage_v")
    pump_ripple = pump_result.steady_state_ripple("output_voltage_v")

    report_header("Fig. 6 - SMPS buck and SC charge-pump operation")
    print(f"buck 48V->1V duty          : {buck.duty:.2%} (paper: ~2%)")
    print(f"buck steady-state output   : {v_out:.3f} V (target 1 V)")
    print(f"buck output ripple         : {ripple * 1e3:.1f} mV pk-pk")
    print(f"SC 4:1 ideal output        : {pump.ideal_output_v:.1f} V")
    print(f"SC loaded output           : {pump_v:.2f} V (droop = SSL)")
    print(f"SC output ripple           : {pump_ripple * 1e3:.1f} mV pk-pk")

    assert 0.019 < buck.duty < 0.022
    assert abs(v_out - 1.0) < 0.1
    assert pump_v < pump.ideal_output_v

    benchmark.pedantic(simulate_both, rounds=3, iterations=1)
