"""Extension benchmark: N-1 fault tolerance of the VR banks."""

from __future__ import annotations

from repro.converters.catalog import DSCH
from repro.core.architectures import single_stage_a1, single_stage_a2
from repro.core.redundancy import failure_tolerance
from repro.pdn.powermap import PowerMap


def run_analysis():
    uniform = PowerMap.uniform()
    hotspot = PowerMap.hotspot_mixture()
    return {
        ("A1", "uniform"): failure_tolerance(
            single_stage_a1(), DSCH, power_map=uniform, sample_limit=12
        ),
        ("A1", "hotspot"): failure_tolerance(
            single_stage_a1(), DSCH, power_map=hotspot, sample_limit=12
        ),
        ("A2", "hotspot"): failure_tolerance(
            single_stage_a2(), DSCH, power_map=hotspot, sample_limit=12
        ),
    }


def test_redundancy(benchmark, report_header):
    reports = run_analysis()

    report_header("Extension - N-1 VR fault tolerance (DSCH, 48 VRs)")
    for (arch, pmap), report in reports.items():
        verdict = (
            "tolerates any single failure"
            if report.tolerates_any_single_failure
            else "FAILS N-1"
        )
        print(
            f"{arch} / {pmap:8s}: {verdict}; worst survivor at "
            f"{report.worst_single_overload_fraction:.0%} of rating "
            f"(worst failure: VR {report.worst_single_failure_index})"
        )
    print()
    print(
        "uniform dies have N-1 margin; the hotspot already saturates "
        "A2's center VRs, so redundancy needs either derating or more "
        "converters under the hotspot."
    )

    assert reports[("A1", "uniform")].tolerates_any_single_failure
    assert not reports[("A2", "hotspot")].tolerates_any_single_failure

    benchmark.pedantic(run_analysis, rounds=1, iterations=1)
