#!/usr/bin/env python
"""Run the solver benchmarks and record BENCH_solver.json.

Executes ``bench_solver_scaling.py`` under pytest-benchmark with
``--benchmark-json`` and writes the machine-readable results to
``BENCH_solver.json`` at the repository root, so the performance
trajectory of the numerical core is tracked across PRs.  Prints a
compact mean-time summary when done.

Usage::

    python benchmarks/run_benchmarks.py [extra pytest args...]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_solver.json"
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_solver_scaling.py"


def main(argv: list[str]) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        f"--benchmark-json={OUTPUT}",
        *argv,
    ]
    status = subprocess.call(command, cwd=REPO_ROOT, env=env)
    if status != 0:
        return status

    report = json.loads(OUTPUT.read_text())
    print(f"\nwrote {OUTPUT}")
    print(f"{'benchmark':<52} {'mean':>12}")
    for entry in report.get("benchmarks", []):
        mean_s = entry["stats"]["mean"]
        print(f"{entry['name']:<52} {mean_s * 1e3:>9.3f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
