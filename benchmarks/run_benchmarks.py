#!/usr/bin/env python
"""Run the solver benchmarks and record/check BENCH_solver.json.

Executes ``bench_solver_scaling.py`` under pytest-benchmark with
``--benchmark-json`` and writes the machine-readable results to
``BENCH_solver.json`` at the repository root, so the performance
trajectory of the numerical core is tracked across PRs.  Prints a
compact mean-time summary when done.

Usage::

    python benchmarks/run_benchmarks.py [extra pytest args...]
    python benchmarks/run_benchmarks.py --check [extra pytest args...]
    python benchmarks/run_benchmarks.py --check --skip-large

``--check`` is the regression gate: instead of overwriting the
recorded baseline it benchmarks into a scratch file, compares each
benchmark's mean against the baseline by name, and exits non-zero if
any is more than ``REGRESSION_FACTOR`` times slower.  It is the
opt-in performance verify step to run alongside the tier-1 test
suite.  ``--skip-large`` deselects the ``large_mesh``-marked rows
(the hundreds-of-ms 192/256-mesh solves) and the ``multiproc``-marked
rows (parallel-sweep runs at jobs>1, which spawn worker processes);
with ``--check`` the skipped rows are then exempt from the
missing-from-baseline failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_solver.json"
CHECK_OUTPUT = REPO_ROOT / "BENCH_solver.check.json"
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_solver_scaling.py"

#: A benchmark failing ``--check`` must be at least this much slower
#: than its recorded baseline mean (2x leaves ample headroom for
#: machine noise while catching real algorithmic regressions).
REGRESSION_FACTOR = 2.0


def run_pytest_benchmark(output: Path, argv: list[str]) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        f"--benchmark-json={output}",
        *argv,
    ]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def load_means(path: Path) -> dict[str, float]:
    report = json.loads(path.read_text())
    return {
        entry["name"]: entry["stats"]["mean"]
        for entry in report.get("benchmarks", [])
    }


def print_summary(path: Path) -> None:
    print(f"\nwrote {path}")
    print(f"{'benchmark':<52} {'mean':>12}")
    for name, mean_s in load_means(path).items():
        print(f"{name:<52} {mean_s * 1e3:>9.3f} ms")


def check_against_baseline(
    fresh: Path, baseline: Path, allow_missing: bool = False
) -> int:
    """Compare a fresh run to the recorded baseline; 1 on regression."""
    if not baseline.exists():
        print(
            f"no baseline at {baseline}; run without --check to record one",
            file=sys.stderr,
        )
        return 1
    base_means = load_means(baseline)
    fresh_means = load_means(fresh)
    regressions: list[str] = []
    print(
        f"{'benchmark':<52} {'baseline':>12} {'fresh':>12} {'ratio':>8}"
    )
    for name, mean_s in fresh_means.items():
        base_s = base_means.get(name)
        if base_s is None:
            print(f"{name:<52} {'(new)':>12} {mean_s * 1e3:>9.3f} ms")
            continue
        ratio = mean_s / base_s
        flag = "  REGRESSION" if ratio > REGRESSION_FACTOR else ""
        print(
            f"{name:<52} {base_s * 1e3:>9.3f} ms {mean_s * 1e3:>9.3f} ms "
            f"{ratio:>7.2f}x{flag}"
        )
        if ratio > REGRESSION_FACTOR:
            regressions.append(name)
    missing = sorted(set(base_means) - set(fresh_means))
    if missing:
        stream = sys.stdout if allow_missing else sys.stderr
        label = "skipped" if allow_missing else "missing from fresh run"
        print(f"{label}: {', '.join(missing)}", file=stream)
        if not allow_missing:
            return 1
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{REGRESSION_FACTOR:.1f}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall benchmarks within {REGRESSION_FACTOR:.1f}x of baseline")
    return 0


def main(argv: list[str]) -> int:
    check = "--check" in argv
    skip_large = "--skip-large" in argv
    argv = [a for a in argv if a not in ("--check", "--skip-large")]
    if skip_large:
        argv = ["-m", "not (large_mesh or multiproc)", *argv]
    output = CHECK_OUTPUT if check else OUTPUT
    status = run_pytest_benchmark(output, argv)
    if status != 0:
        return status
    if check:
        try:
            return check_against_baseline(
                output, OUTPUT, allow_missing=skip_large
            )
        finally:
            CHECK_OUTPUT.unlink(missing_ok=True)
    print_summary(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
