"""E-FIG1: HPC power / current-density demand scatter (Fig. 1).

Prints the reconstructed chip/server dataset and the envelope claims,
and benchmarks the dataset + rendering pipeline.
"""

from __future__ import annotations

from repro.datasets.hpc_demand import demand_envelope
from repro.reporting.experiments import run_experiment
from repro.reporting.figures import fig1_series, render_fig1


def build_figure():
    series = fig1_series()
    rendering = render_fig1()
    envelope = demand_envelope()
    return series, rendering, envelope


def test_fig1_reproduction(benchmark, report_header):
    series, rendering, envelope = build_figure()

    report_header("Fig. 1 - HPC power and current density demand")
    print(rendering)
    print()
    print(
        f"max chip power      : {envelope['max_chip_power_w']:.0f} W "
        "(paper: approaching 1 kW)"
    )
    print(
        f"max server power    : {envelope['max_server_power_w']:.0f} W "
        "(paper: approaching 20 kW)"
    )
    print(
        f"max current density : "
        f"{envelope['max_current_density_a_per_mm2']:.2f} A/mm2 "
        "(paper: approaching 1 A/mm2)"
    )
    for result in run_experiment("fig1"):
        flag = "OK " if result.holds else "FAIL"
        print(f"[{flag}] {result.claim}: {result.measured_value}")

    assert all(r.holds for r in run_experiment("fig1"))
    assert len(series["chips"]) >= 8

    benchmark(build_figure)
