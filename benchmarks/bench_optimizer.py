"""Extension benchmark: full design-space optimization."""

from __future__ import annotations

from repro.core.optimizer import DesignConstraints, optimize_design


def run_search():
    return optimize_design(constraints=DesignConstraints())


def test_optimizer(benchmark, report_header):
    result = run_search()

    report_header("Extension - design-space optimization (paper system)")
    for candidate in result.feasible:
        marker = "  <- best" if candidate is result.feasible[0] else ""
        print(
            f"{candidate.architecture:7s} {candidate.topology:10s} "
            f"efficiency {candidate.efficiency:.1%}{marker}"
        )
    for candidate in result.rejected:
        print(
            f"{candidate.architecture:7s} {candidate.topology:10s} "
            f"rejected: {candidate.rejected_reason[:55]}"
        )

    best = result.best
    assert best.architecture == "A2" and best.topology == "DSCH"
    assert len(result.rejected) == 4  # the 3LHD points

    benchmark(run_search)
