"""System-level specification of the power delivery problem.

The paper characterizes a high-power, high-current-density system:

* 1 kW delivered to the die at the point of load (POL),
* POL voltage 1 V, hence 1 kA of die current,
* current density 2 A/mm², hence a 500 mm² die,
* 48 V power signal available at the PCB.

:class:`SystemSpec` captures these numbers plus the board-level
geometry knobs the loss model needs.  All values are SI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import mm, mm2


@dataclass(frozen=True)
class PCBGeometry:
    """Board-level geometry relevant to horizontal (lateral) loss.

    Attributes:
        vrm_distance_m: lateral distance from the voltage regulator
            module (or the 48 V entry point) to the package footprint.
        plane_width_m: effective width of the power planes along that
            route.
        plane_pairs: number of copper plane pairs (power + ground)
            allocated to the rail.
        plane_thickness_m: copper thickness per plane (2 oz ≈ 70 µm).
    """

    vrm_distance_m: float = mm(40.0)
    plane_width_m: float = mm(36.0)
    plane_pairs: int = 2
    plane_thickness_m: float = 70e-6

    def __post_init__(self) -> None:
        if self.vrm_distance_m <= 0 or self.plane_width_m <= 0:
            raise ConfigError("PCB geometry lengths must be positive")
        if self.plane_pairs < 1:
            raise ConfigError("at least one plane pair is required")
        if self.plane_thickness_m <= 0:
            raise ConfigError("plane thickness must be positive")


@dataclass(frozen=True)
class SystemSpec:
    """Top-level electrical and geometric specification.

    The defaults reproduce the paper's 1 kW / 1 V / 2 A/mm² / 48 V
    study system.  ``die_area_m2`` is derived (P / V / J) unless given
    explicitly.
    """

    pol_power_w: float = 1000.0
    pol_voltage_v: float = 1.0
    input_voltage_v: float = 48.0
    current_density_a_per_mm2: float = 2.0
    die_area_m2: float | None = None
    pcb: PCBGeometry = field(default_factory=PCBGeometry)

    def __post_init__(self) -> None:
        if self.pol_power_w <= 0:
            raise ConfigError("POL power must be positive")
        if self.pol_voltage_v <= 0:
            raise ConfigError("POL voltage must be positive")
        if self.input_voltage_v <= self.pol_voltage_v:
            raise ConfigError("input voltage must exceed POL voltage")
        if self.current_density_a_per_mm2 <= 0:
            raise ConfigError("current density must be positive")
        if self.die_area_m2 is not None and self.die_area_m2 <= 0:
            raise ConfigError("die area must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def pol_current_a(self) -> float:
        """Total die current at the point of load (1 kA by default)."""
        return self.pol_power_w / self.pol_voltage_v

    @property
    def die_area(self) -> float:
        """Die area in m² (derived from current density unless overridden)."""
        if self.die_area_m2 is not None:
            return self.die_area_m2
        return mm2(self.pol_current_a / self.current_density_a_per_mm2)

    @property
    def die_area_mm2(self) -> float:
        """Die area in mm² (500 mm² for the default spec)."""
        return self.die_area / mm2(1.0)

    @property
    def die_side_m(self) -> float:
        """Side of the (square) die in meters."""
        return math.sqrt(self.die_area)

    @property
    def die_perimeter_m(self) -> float:
        """Perimeter of the square die in meters."""
        return 4.0 * self.die_side_m

    @property
    def conversion_ratio(self) -> float:
        """Overall step-down ratio (48 for the default 48V-to-1V system)."""
        return self.input_voltage_v / self.pol_voltage_v

    @property
    def input_current_nominal_a(self) -> float:
        """Input-side current assuming lossless conversion (P / V_in)."""
        return self.pol_power_w / self.input_voltage_v

    # -- convenience --------------------------------------------------------

    def with_power(self, pol_power_w: float) -> "SystemSpec":
        """Return a copy of this spec with a different POL power."""
        return replace(self, pol_power_w=pol_power_w)

    def with_density(self, current_density_a_per_mm2: float) -> "SystemSpec":
        """Return a copy with a different current density target."""
        return replace(
            self, current_density_a_per_mm2=current_density_a_per_mm2
        )

    def with_input_voltage(self, input_voltage_v: float) -> "SystemSpec":
        """Return a copy with a different PCB input voltage."""
        return replace(self, input_voltage_v=input_voltage_v)


#: The paper's study system: 1 kW, 1 V POL, 48 V input, 2 A/mm².
PAPER_SYSTEM = SystemSpec()
