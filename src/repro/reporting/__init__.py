"""Reporting: table renderers, figure data series, ASCII plots, and
the experiment registry that pairs paper claims with measured values."""

from .ascii_plot import bar_chart, scatter_plot, series_table
from .tables import render_table, table_i_text, table_ii_text
from .figures import (
    fig1_series,
    fig2_series,
    fig3_series,
    fig7_series,
    render_fig7,
)
from .experiments import EXPERIMENTS, ExperimentResult, run_experiment, run_all

__all__ = [
    "bar_chart",
    "scatter_plot",
    "series_table",
    "render_table",
    "table_i_text",
    "table_ii_text",
    "fig1_series",
    "fig2_series",
    "fig3_series",
    "fig7_series",
    "render_fig7",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "run_all",
]
