"""Markdown report generation.

Produces a single self-contained markdown document with every
reproduced artifact: the claim-level experiment table, the Fig. 7
breakdown, utilization, sharing, and the floorplan renderings.  Used
by ``python -m repro report --output FILE`` and by downstream users
who want a repo-committable record of a run.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..converters.catalog import DSCH
from ..core.architectures import single_stage_a1, single_stage_a2
from ..core.current_sharing import analyze_current_sharing
from ..core.utilization import a0_die_area_requirement, vertical_utilization
from ..placement.floorplan import build_floorplan
from ..placement.planner import plan_placement
from .experiments import run_all
from .figures import fig7_series
from .tables import table_i_text, table_ii_text


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def markdown_report(spec: SystemSpec | None = None) -> str:
    """The full reproduction report as a markdown string."""
    spec = spec or SystemSpec()
    sections: list[str] = []

    sections.append(
        "# Vertical Power Delivery — reproduction report\n\n"
        f"System: {spec.pol_power_w:.0f} W at {spec.pol_voltage_v:g} V "
        f"({spec.pol_current_a:.0f} A), {spec.input_voltage_v:g} V input, "
        f"{spec.current_density_a_per_mm2:g} A/mm², "
        f"{spec.die_area_mm2:.0f} mm² die."
    )

    # Claim-level checks.
    results = run_all(spec)
    lines = [
        "## Claim-level checks\n",
        "| Experiment | Claim | Paper | Measured | Holds |",
        "|---|---|---|---|---|",
    ]
    for r in results:
        flag = "✓" if r.holds else "✗"
        lines.append(
            f"| {r.experiment} | {r.claim} | {r.paper_value} | "
            f"{r.measured_value} | {flag} |"
        )
    failing = sum(1 for r in results if not r.holds)
    lines.append(
        f"\n**{len(results) - failing}/{len(results)} claims hold.**"
    )
    sections.append("\n".join(lines))

    # Fig. 7 table.
    rows = fig7_series(spec)
    lines = [
        "## Fig. 7 — PCB-to-POL loss (% of nominal PCB power)\n",
        "| Architecture | Topology | horizontal | VR | vertical | total | efficiency |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        if row["excluded"]:
            lines.append(
                f"| {row['architecture']} | {row['topology']} | — | — | — | "
                "excluded | — |"
            )
            continue
        vertical = (
            row["BGA"] + row["C4"] + row["TSV"] + row["die-attach"]
        )
        lines.append(
            f"| {row['architecture']} | {row['topology']} | "
            f"{row['horizontal']:.2f}% | {row['VR']:.2f}% | "
            f"{vertical:.3f}% | {row['total_pct']:.2f}% | "
            f"{row['efficiency']:.1%} |"
        )
    sections.append("\n".join(lines))

    # Tables I and II.
    sections.append(
        "## Table I — vertical interconnect\n\n" + _code_block(table_i_text())
    )
    sections.append(
        "## Table II — converters\n\n" + _code_block(table_ii_text())
    )

    # Utilization.
    report = vertical_utilization(single_stage_a2(), spec=spec)
    lines = [
        "## Interconnect utilization (vertical delivery)\n",
        "| Technology | Rail current | Elements/polarity | Utilization |",
        "|---|---|---|---|",
    ]
    for row in report.rows:
        lines.append(
            f"| {row.technology} | {row.rail_current_a:.1f} A | "
            f"{row.elements_per_polarity} | {row.utilization:.2%} |"
        )
    a0 = a0_die_area_requirement(spec)
    lines.append(
        f"\nA0 needs a {a0.required_die_area_mm2:.0f} mm² die "
        f"({a0.power_density_limit_a_per_mm2:.2f} A/mm² limit)."
    )
    sections.append("\n".join(lines))

    # Current sharing.
    lines = ["## Per-VR current sharing (DSCH)\n"]
    for arch in (single_stage_a1(), single_stage_a2()):
        sharing = analyze_current_sharing(arch, DSCH, spec=spec)
        lines.append(
            f"* **{sharing.architecture}**: {sharing.min_current_a:.1f} – "
            f"{sharing.max_current_a:.1f} A "
            f"(mean {sharing.mean_current_a:.1f} A, spread "
            f"{sharing.spread_ratio:.1f}×)"
        )
    sections.append("\n".join(lines))

    # Floorplans (Fig. 5).
    lines = ["## Floorplans (Fig. 5)\n"]
    for arch in (single_stage_a1(), single_stage_a2()):
        plan = plan_placement(
            DSCH, arch.pol_stage_style, spec.pol_current_a, spec.die_area_mm2
        )
        floorplan = build_floorplan(plan, spec.die_area_mm2)
        lines.append(f"### {arch.name}\n")
        lines.append(_code_block(floorplan.render()))
    sections.append("\n".join(lines))

    return "\n\n".join(sections) + "\n"


def write_markdown_report(path: str, spec: SystemSpec | None = None) -> str:
    """Write the report to ``path`` and return the path."""
    content = markdown_report(spec)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path
