"""Minimal ASCII plotting (no matplotlib in the offline environment).

Three primitives cover the paper's figures: horizontal bar charts
(Fig. 7), scatter plots (Fig. 1), and aligned series tables (Fig. 2
and the sweeps).  All return strings so benches/examples can print or
write them to files.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigError


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """A horizontal bar chart with one row per label."""
    if len(labels) != len(values):
        raise ConfigError("labels and values must have the same length")
    if not labels:
        raise ConfigError("nothing to plot")
    if width < 10:
        raise ConfigError("width must be at least 10")
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak)) if value > 0 else 0
        bar = "#" * filled
        lines.append(
            f"{str(label):<{label_width}} |{bar:<{width}}| "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    markers: Sequence[str] | None = None,
    width: int = 64,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """An ASCII scatter plot; optional per-point markers and log axes."""
    if len(xs) != len(ys):
        raise ConfigError("xs and ys must have the same length")
    if not xs:
        raise ConfigError("nothing to plot")
    if markers is not None and len(markers) != len(xs):
        raise ConfigError("markers must match the point count")

    def transform(value: float, log: bool) -> float:
        if log:
            if value <= 0:
                raise ConfigError("log axis requires positive values")
            return math.log10(value)
        return value

    tx = [transform(x, log_x) for x in xs]
    ty = [transform(y, log_y) for y in ys]
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (x, y) in enumerate(zip(tx, ty)):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        marker = markers[i] if markers else "*"
        grid[row][col] = marker[0]

    lines: list[str] = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"x: [{min(xs):g} .. {max(xs):g}]"
        + ("  (log)" if log_x else "")
        + f"   y: [{min(ys):g} .. {max(ys):g}]"
        + ("  (log)" if log_y else "")
    )
    return "\n".join(lines)


def series_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3g}",
) -> str:
    """An aligned plain-text table."""
    if not headers:
        raise ConfigError("headers required")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigError("row width must match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
