"""Experiment registry: paper claims vs measured values.

Every table/figure/text claim reproduced by this library is registered
here as an :class:`Experiment` producing :class:`ExperimentResult`
rows of (claim, paper value, measured value, holds?).  EXPERIMENTS.md
is generated from this registry, and the benches print the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import SystemSpec
from ..converters.catalog import CATALOG
from ..core.characterization import characterize_all, fig7_claims
from ..core.current_sharing import analyze_current_sharing
from ..core.architectures import single_stage_a1, single_stage_a2
from ..core.utilization import (
    a0_die_area_requirement,
    vertical_utilization,
)
from ..datasets.hpc_demand import demand_envelope
from ..datasets.scaling_trends import trend_summary
from ..errors import ConfigError


@dataclass(frozen=True)
class ExperimentResult:
    """One claim-level comparison row."""

    experiment: str
    claim: str
    paper_value: str
    measured_value: str
    holds: bool


def _result(
    experiment: str, claim: str, paper: str, measured: str, holds: bool
) -> ExperimentResult:
    return ExperimentResult(experiment, claim, paper, measured, holds)


# -- individual experiments ------------------------------------------------------


def exp_fig1(spec: SystemSpec) -> list[ExperimentResult]:
    """Fig. 1: HPC demand envelope."""
    env = demand_envelope()
    return [
        _result(
            "E-FIG1",
            "single chips rapidly approaching 1 kW",
            "~1 kW",
            f"{env['max_chip_power_w']:.0f} W (max non-wafer chip)",
            500.0 <= env["max_chip_power_w"] <= 1200.0,
        ),
        _result(
            "E-FIG1",
            "server systems approaching 20 kW",
            "~20 kW",
            f"{env['max_server_power_w']:.0f} W",
            15000.0 <= env["max_server_power_w"] <= 25000.0,
        ),
        _result(
            "E-FIG1",
            "power density approaching 1 A/mm2",
            "~1 A/mm2",
            f"{env['max_current_density_a_per_mm2']:.2f} A/mm2",
            0.7 <= env["max_current_density_a_per_mm2"] <= 1.3,
        ),
    ]


def exp_fig2(spec: SystemSpec) -> list[ExperimentResult]:
    """Fig. 2: demand-vs-packaging scaling gap."""
    summary = trend_summary()
    return [
        _result(
            "E-FIG2",
            "current demand grew by orders of magnitude",
            ">100x over decades",
            f"{summary['current_growth_x']:.0f}x "
            f"({summary['first_year']:.0f}-{summary['last_year']:.0f})",
            summary["current_growth_x"] > 100.0,
        ),
        _result(
            "E-FIG2",
            "packaging feature decreased only ~4x",
            "~4x",
            f"{summary['feature_reduction_x']:.1f}x",
            2.5 <= summary["feature_reduction_x"] <= 6.0,
        ),
        _result(
            "E-FIG2",
            "modern 200 mm2-class die draws >100 A",
            ">100 A (towards kA)",
            f"{summary['final_die_current_a']:.0f} A",
            summary["final_die_current_a"] > 100.0,
        ),
    ]


def exp_fig7(spec: SystemSpec) -> list[ExperimentResult]:
    """Fig. 7 and the Section IV text claims tied to it."""
    rows = characterize_all(spec=spec)
    claims = fig7_claims(rows)
    results = [
        _result(
            "E-FIG7",
            "traditional A0 exhibits over 40% power loss",
            ">40%",
            f"{claims.a0_loss_pct:.1f}%",
            claims.a0_loss_pct > 40.0,
        ),
        _result(
            "E-FIG7",
            "most proposed architectures reach ~80% efficiency",
            "~80% (loss ~20%)",
            f"best {claims.best_vertical_loss_pct:.1f}%, "
            f"worst {claims.worst_vertical_loss_pct:.1f}% loss",
            claims.best_vertical_loss_pct < 22.0
            and claims.worst_vertical_loss_pct < 35.0,
        ),
        _result(
            "E-FIG7",
            "vertical interconnect loss is negligible",
            "negligible",
            "max <1% of nominal power"
            if claims.vertical_loss_negligible
            else "exceeds 1%",
            claims.vertical_loss_negligible,
        ),
        _result(
            "E-FIG7",
            "proposed: PPDN loss <10%, converter loss >10%",
            "<10% / >10%",
            f"ppdn<10%: {claims.all_ppdn_below_10pct}, "
            f"vr>10%: {claims.all_converters_above_10pct}",
            claims.all_ppdn_below_10pct and claims.all_converters_above_10pct,
        ),
        _result(
            "E-TXT-HORIZ",
            "horizontal loss reduced up to 19x with A3@12V",
            "19x",
            f"{claims.horizontal_reduction_a3_12v:.1f}x",
            10.0 <= claims.horizontal_reduction_a3_12v <= 30.0,
        ),
        _result(
            "E-TXT-HORIZ",
            "horizontal loss reduced up to 7x with A3@6V",
            "7x",
            f"{claims.horizontal_reduction_a3_6v:.1f}x",
            4.0 <= claims.horizontal_reduction_a3_6v <= 12.0,
        ),
        _result(
            "E-FIG7",
            "3LHD excluded (20 A/VR above its 12 A rating)",
            "excluded",
            f"excluded topologies: {claims.excluded_topologies}",
            "3LHD" in claims.excluded_topologies,
        ),
    ]
    # Dual-stage vs single-stage ordering.
    by_point = {
        (r.architecture, r.topology): r.breakdown
        for r in rows
        if r.included
    }
    a1_dsch = by_point.get(("A1", "DSCH"))
    a3_dsch = by_point.get(("A3@12V", "DSCH"))
    if a1_dsch and a3_dsch:
        results.append(
            _result(
                "E-FIG7",
                "dual-stage conversion less efficient than single-stage "
                "(DSCH)",
                "A3 < A1/A2 efficiency",
                f"A1 {a1_dsch.efficiency:.1%} vs A3@12V "
                f"{a3_dsch.efficiency:.1%}",
                a3_dsch.efficiency < a1_dsch.efficiency,
            )
        )
    return results


def exp_utilization(spec: SystemSpec) -> list[ExperimentResult]:
    """Section IV utilization and density claims."""
    report = vertical_utilization(single_stage_a2(), spec=spec)
    bga = report.row("BGA").utilization
    c4 = report.row("C4 bump").utilization
    tsv = report.row("TSV").utilization
    pad = report.row("advanced Cu pad").utilization
    a0 = a0_die_area_requirement(spec=spec)
    return [
        _result(
            "E-TXT-UTIL",
            "vertical delivery uses ~1% of BGAs",
            "1%",
            f"{bga:.1%}",
            bga <= 0.02,
        ),
        _result(
            "E-TXT-UTIL",
            "vertical delivery uses ~2% of C4 bumps",
            "2%",
            f"{c4:.1%}",
            0.01 <= c4 <= 0.035,
        ),
        _result(
            "E-TXT-UTIL",
            "vertical delivery uses ~10% of TSVs",
            "10%",
            f"{tsv:.1%}",
            0.05 <= tsv <= 0.15,
        ),
        _result(
            "E-TXT-UTIL",
            "vertical delivery uses <20% of advanced Cu pads",
            "<20%",
            f"{pad:.1%}",
            pad < 0.20,
        ),
        _result(
            "E-TXT-UTIL",
            "A0 requires an unreasonably large ~1200 mm2 die for 1 kA",
            "1200 mm2",
            f"{a0.required_die_area_mm2:.0f} mm2",
            1000.0 <= a0.required_die_area_mm2 <= 1400.0,
        ),
        _result(
            "E-TXT-UTIL",
            "A0 power density limited to ~0.8 A/mm2",
            "0.8 A/mm2",
            f"{a0.power_density_limit_a_per_mm2:.2f} A/mm2",
            0.7 <= a0.power_density_limit_a_per_mm2 <= 1.0,
        ),
    ]


def exp_sharing(spec: SystemSpec) -> list[ExperimentResult]:
    """Section IV per-VR current-sharing claims (DSCH, 48 VRs)."""
    dsch = next(c for c in CATALOG if c.name == "DSCH")
    a1 = analyze_current_sharing(single_stage_a1(), dsch, spec=spec)
    a2 = analyze_current_sharing(single_stage_a2(), dsch, spec=spec)
    return [
        _result(
            "E-TXT-SHARE",
            "A1 per-VR current varies between 16 and 27 A",
            "16-27 A",
            f"{a1.min_current_a:.1f}-{a1.max_current_a:.1f} A "
            f"(mean {a1.mean_current_a:.1f})",
            12.0 <= a1.min_current_a and a1.max_current_a <= 32.0,
        ),
        _result(
            "E-TXT-SHARE",
            "A2 per-VR current spans ~10 to ~93 A (center VRs heavy)",
            "10-93 A",
            f"{a2.min_current_a:.1f}-{a2.max_current_a:.1f} A "
            f"(mean {a2.mean_current_a:.1f})",
            a2.max_current_a >= 2.0 * a1.max_current_a
            and a2.min_current_a <= a1.min_current_a + 2.0,
        ),
        _result(
            "E-TXT-SHARE",
            "A2 requires a much broader current range than A1",
            "broader",
            f"spread A2 {a2.spread_ratio:.1f}x vs A1 {a1.spread_ratio:.1f}x",
            a2.spread_ratio > 2.0 * a1.spread_ratio,
        ),
    ]


#: Registry of all claim-level experiments.
EXPERIMENTS: dict[str, Callable[[SystemSpec], list[ExperimentResult]]] = {
    "fig1": exp_fig1,
    "fig2": exp_fig2,
    "fig7": exp_fig7,
    "utilization": exp_utilization,
    "sharing": exp_sharing,
}


def run_experiment(
    name: str, spec: SystemSpec | None = None
) -> list[ExperimentResult]:
    """Run one registered experiment."""
    if name not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {name!r}; have {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](spec or SystemSpec())


def run_all(spec: SystemSpec | None = None) -> list[ExperimentResult]:
    """Run every registered experiment."""
    spec = spec or SystemSpec()
    results: list[ExperimentResult] = []
    for name in EXPERIMENTS:
        results.extend(EXPERIMENTS[name](spec))
    return results
