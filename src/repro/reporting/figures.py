"""Figure data series and text renderings.

Each ``figN_series`` function returns plain data (lists/dicts) that
the benches print and assert on; the ``render_*`` helpers produce the
ASCII rendering for humans.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..core.characterization import CharacterizationRow, characterize_all
from ..core.exploration import conversion_location_sweep
from ..datasets.hpc_demand import chips, servers
from ..datasets.scaling_trends import (
    current_demand_series,
    feature_size_series,
    ppdn_resistance_series,
)
from .ascii_plot import bar_chart, scatter_plot, series_table


def fig1_series() -> dict[str, list[tuple[str, float, float, float]]]:
    """Fig. 1 data: (name, power W, current density, efficiency) for
    chips and servers."""
    return {
        "chips": [
            (p.name, p.power_w, p.current_density_a_per_mm2, p.delivery_efficiency)
            for p in chips()
        ],
        "servers": [
            (p.name, p.power_w, p.current_density_a_per_mm2, p.delivery_efficiency)
            for p in servers()
        ],
    }


def render_fig1() -> str:
    """ASCII rendering of Fig. 1 (power vs current density, log-power)."""
    data = fig1_series()
    xs, ys, markers = [], [], []
    for name, power, density, _eta in data["chips"]:
        xs.append(density)
        ys.append(power)
        markers.append("c")
    for name, power, density, _eta in data["servers"]:
        xs.append(density)
        ys.append(power)
        markers.append("S")
    plot = scatter_plot(
        xs,
        ys,
        markers=markers,
        log_y=True,
        title="Fig.1: power vs current density (c = chip, S = server)",
    )
    return plot


def fig2_series() -> dict[str, list[tuple[int, float]]]:
    """Fig. 2 data: die-current demand, packaging feature size, and
    the (relative) PPDN conductance improvement over time."""
    return {
        "current_demand_a": current_demand_series(),
        "feature_um": feature_size_series(),
        "relative_conductance": ppdn_resistance_series(),
    }


def render_fig2() -> str:
    """Fig. 2 as an aligned table of the two trends."""
    demand = dict(current_demand_series())
    feature = dict(feature_size_series())
    years = sorted(set(demand) | set(feature))
    rows = []
    for year in years:
        rows.append(
            [
                year,
                f"{demand[year]:.2f}" if year in demand else "-",
                f"{feature[year]:.0f}" if year in feature else "-",
            ]
        )
    return series_table(
        ["Year", "Die current (A, 200 mm2)", "Packaging feature (um)"], rows
    )


def fig3_series(spec: SystemSpec | None = None) -> list[dict[str, float]]:
    """Fig. 3 quantified: loss vs conversion location."""
    points = conversion_location_sweep(spec=spec)
    return [
        {
            "location": p.label,
            "loss_pct": p.loss_pct,
            "efficiency": p.efficiency,
        }
        for p in points
    ]


def render_fig3(spec: SystemSpec | None = None) -> str:
    """Fig. 3 as a bar chart of loss vs conversion location."""
    data = fig3_series(spec)
    return bar_chart(
        [d["location"] for d in data],
        [d["loss_pct"] for d in data],
        unit="%",
        title="Fig.3: PCB-to-POL loss vs conversion location (DSCH)",
    )


def fig7_series(
    spec: SystemSpec | None = None,
    rows: list[CharacterizationRow] | None = None,
) -> list[dict[str, object]]:
    """Fig. 7 data: per design point, the stacked loss components in
    percent of the nominal PCB power, or the exclusion reason."""
    rows = rows if rows is not None else characterize_all(spec=spec)
    out: list[dict[str, object]] = []
    for row in rows:
        entry: dict[str, object] = {
            "architecture": row.architecture,
            "topology": row.topology,
        }
        if row.breakdown is None:
            entry["excluded"] = True
            entry["reason"] = row.excluded_reason
        else:
            entry["excluded"] = False
            entry.update(row.breakdown.fig7_bars())
            entry["total_pct"] = 100.0 * row.breakdown.paper_loss_fraction
            entry["efficiency"] = row.breakdown.efficiency
        out.append(entry)
    return out


def render_fig7(
    spec: SystemSpec | None = None,
    rows: list[CharacterizationRow] | None = None,
) -> str:
    """Fig. 7 as a bar chart (total loss) plus the component table."""
    data = fig7_series(spec, rows)
    included = [d for d in data if not d["excluded"]]
    labels = [f"{d['architecture']}/{d['topology']}" for d in included]
    totals = [float(d["total_pct"]) for d in included]
    chart = bar_chart(
        labels,
        totals,
        unit="%",
        title="Fig.7: PCB-to-POL power loss (% of 1 kW at PCB)",
    )
    headers = [
        "Arch/Topo",
        "BGA%",
        "C4%",
        "TSV%",
        "die-attach%",
        "horizontal%",
        "VR%",
        "total%",
    ]
    table_rows = []
    for d in included:
        table_rows.append(
            [
                f"{d['architecture']}/{d['topology']}",
                f"{d['BGA']:.3f}",
                f"{d['C4']:.3f}",
                f"{d['TSV']:.3f}",
                f"{d['die-attach']:.3f}",
                f"{d['horizontal']:.2f}",
                f"{d['VR']:.2f}",
                f"{d['total_pct']:.2f}",
            ]
        )
    excluded_lines = [
        f"excluded: {d['architecture']}/{d['topology']} - {d['reason']}"
        for d in data
        if d["excluded"]
    ]
    parts = [chart, "", series_table(headers, table_rows)]
    if excluded_lines:
        parts.append("")
        parts.extend(excluded_lines)
    return "\n".join(parts)
