"""Table renderers for the paper's Table I and Table II."""

from __future__ import annotations

from typing import Sequence

from ..converters.catalog import table_ii_rows
from ..pdn.interconnect import table_i_rows
from .ascii_plot import series_table


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Generic aligned table (thin wrapper kept for API symmetry)."""
    return series_table(headers, rows)


def table_i_text() -> str:
    """Table I: vertical interconnect characteristics (direct data
    plus the derived per-element resistance and site counts)."""
    headers = [
        "Level",
        "Platform mm2",
        "Type",
        "Material",
        "Dia um",
        "Area um2",
        "Height um",
        "Pitch um",
        "R/elem mOhm",
        "Sites",
    ]
    rows = []
    for entry in table_i_rows():
        rows.append(
            [
                entry["level"],
                f"{entry['platform_area_mm2']:.0f}",
                entry["type"],
                entry["material"],
                f"{entry['diameter_um']:.0f}" if entry["diameter_um"] else "-",
                f"{entry['cross_area_um2']:.0f}",
                f"{entry['height_um']:.0f}",
                f"{entry['pitch_um']:.0f}",
                f"{entry['element_resistance_ohm'] * 1e3:.3f}",
                f"{entry['sites_total']}",
            ]
        )
    return series_table(headers, rows)


def table_ii_text() -> str:
    """Table II: converter characteristics (direct data plus the
    derived per-VR footprint)."""
    headers = [
        "",
        "DPMIH",
        "DSCH",
        "3LHD",
    ]
    rows_by_name = {row["name"]: row for row in table_ii_rows()}
    order = ["DPMIH", "DSCH", "3LHD"]

    def line(label: str, fmt) -> list[object]:
        return [label] + [fmt(rows_by_name[name]) for name in order]

    rows = [
        line("Conversion scheme", lambda r: r["conversion_scheme"]),
        line("Max load current", lambda r: f"{r['max_load_a']:.0f} A"),
        line("Peak efficiency", lambda r: f"{r['peak_efficiency'] * 100:.1f}%"),
        line("Current at peak eff.", lambda r: f"{r['i_at_peak_a']:.0f} A"),
        line("Number of switches", lambda r: f"{r['switch_count']}"),
        line("Switches per mm2", lambda r: f"{r['switches_per_mm2']:.2f}"),
        line("Number of inductors", lambda r: f"{r['inductor_count']}"),
        line("Total inductance", lambda r: f"{r['total_inductance_uH']:.2f} uH"),
        line("Number of capacitors", lambda r: f"{r['capacitor_count']}"),
        line(
            "Total capacitance", lambda r: f"{r['total_capacitance_uF']:.1f} uF"
        ),
        line("VRs along die periphery", lambda r: f"{r['vrs_along_periphery']}"),
        line("VRs below the die", lambda r: f"{r['vrs_below_die']}"),
        line("Area per VR (derived)", lambda r: f"{r['area_mm2']:.1f} mm2"),
    ]
    return series_table(headers, rows)
