"""CSV export of the reproduced figure/table data.

Plot-tool-agnostic escape hatch: every figure series can be written as
a CSV so downstream users can regenerate the paper's plots in their
tool of choice (the offline environment has no plotting backend).
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

from ..config import SystemSpec
from ..errors import ConfigError
from .figures import fig1_series, fig2_series, fig3_series, fig7_series


def _write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    if not headers:
        raise ConfigError("headers required")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_fig1_csv(path: str) -> str:
    """Fig. 1 scatter data: one row per chip/server point."""
    data = fig1_series()
    rows: list[list[object]] = []
    for kind in ("chips", "servers"):
        for name, power, density, efficiency in data[kind]:
            rows.append([kind[:-1], name, power, density, efficiency])
    return _write_csv(
        path,
        ["kind", "name", "power_w", "current_density_a_per_mm2",
         "delivery_efficiency"],
        rows,
    )


def export_fig2_csv(path: str) -> str:
    """Fig. 2 trend data: year-aligned demand and feature series."""
    data = fig2_series()
    demand = dict(data["current_demand_a"])
    feature = dict(data["feature_um"])
    years = sorted(set(demand) | set(feature))
    rows = [
        [year, demand.get(year, ""), feature.get(year, "")]
        for year in years
    ]
    return _write_csv(
        path, ["year", "die_current_a", "packaging_feature_um"], rows
    )


def export_fig3_csv(path: str, spec: SystemSpec | None = None) -> str:
    """Fig. 3 data: loss vs conversion location."""
    rows = [
        [d["location"], d["loss_pct"], d["efficiency"]]
        for d in fig3_series(spec)
    ]
    return _write_csv(path, ["location", "loss_pct", "efficiency"], rows)


def export_fig7_csv(path: str, spec: SystemSpec | None = None) -> str:
    """Fig. 7 data: stacked loss components per design point."""
    rows: list[list[object]] = []
    for d in fig7_series(spec):
        if d["excluded"]:
            rows.append(
                [d["architecture"], d["topology"], "", "", "", "", "", "",
                 "excluded"]
            )
            continue
        rows.append(
            [
                d["architecture"],
                d["topology"],
                d["BGA"],
                d["C4"],
                d["TSV"],
                d["die-attach"],
                d["horizontal"],
                d["VR"],
                d["total_pct"],
            ]
        )
    return _write_csv(
        path,
        [
            "architecture",
            "topology",
            "bga_pct",
            "c4_pct",
            "tsv_pct",
            "die_attach_pct",
            "horizontal_pct",
            "vr_pct",
            "total_pct",
        ],
        rows,
    )


def export_all(directory: str, spec: SystemSpec | None = None) -> list[str]:
    """Write every figure CSV into ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    return [
        export_fig1_csv(os.path.join(directory, "fig1_demand.csv")),
        export_fig2_csv(os.path.join(directory, "fig2_trends.csv")),
        export_fig3_csv(os.path.join(directory, "fig3_location.csv"), spec),
        export_fig7_csv(os.path.join(directory, "fig7_losses.csv"), spec),
    ]
