"""Current-density scaling study — the paper's forward-looking claim.

Fig. 1's caption warns that power density "is expected to double in
the near future".  This study sweeps the POL current density at fixed
power and asks, per architecture: does the design still close?

* A0 is capped by its die-level vertical interconnect at
  ~0.83 A/mm² (`a0_die_area_requirement`), so it fails the paper's
  2 A/mm² system and everything beyond;
* the vertical architectures ride the advanced Cu-Cu pads
  (~8.5 mA/pad at 20 µm pitch → ~42 A/mm² ceiling) and keep closing
  as the die shrinks — but their *loss* rises because the same
  current concentrates the converters onto less area.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec, DSCH
from ..errors import InfeasibleError
from .architectures import ArchitectureSpec, single_stage_a2
from .loss_analysis import LossAnalyzer
from .utilization import a0_die_area_requirement


@dataclass(frozen=True)
class DensityPoint:
    """One density step of the scaling study."""

    density_a_per_mm2: float
    die_area_mm2: float
    a0_supported: bool
    vertical_supported: bool
    vertical_loss_pct: float | None
    note: str = ""


def density_ceiling_a_per_mm2(arch: ArchitectureSpec) -> float:
    """The die-attach technology's density ceiling for an
    architecture: rating / (2 · pitch²), independent of die size."""
    tech = arch.die_attach
    pitch_mm = tech.pitch_m * 1e3
    return (
        tech.rated_current_a
        * tech.power_site_fraction
        / (2.0 * pitch_mm**2)
    )


def density_scaling_study(
    densities: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0),
    pol_power_w: float = 1000.0,
    topology: ConverterSpec = DSCH,
) -> list[DensityPoint]:
    """Sweep POL current density at fixed power.

    For each density: is the reference architecture's die-attach able
    to carry the current in the implied die area, and does the
    vertical architecture still close (placement + ratings)?
    """
    points: list[DensityPoint] = []
    for density in densities:
        spec = SystemSpec(
            pol_power_w=pol_power_w,
            current_density_a_per_mm2=density,
        )
        a0_report = a0_die_area_requirement(spec)
        a0_ok = a0_report.feasible_at_spec_die

        arch = single_stage_a2()
        vertical_ceiling = density_ceiling_a_per_mm2(arch)
        note = ""
        vertical_ok = density <= vertical_ceiling
        loss_pct: float | None = None
        if vertical_ok:
            try:
                breakdown = LossAnalyzer(spec).analyze(arch, topology)
                loss_pct = 100.0 * breakdown.paper_loss_fraction
            except InfeasibleError as exc:
                vertical_ok = False
                note = str(exc)
        else:
            note = (
                f"beyond the {vertical_ceiling:.1f} A/mm2 Cu-pad ceiling"
            )
        points.append(
            DensityPoint(
                density_a_per_mm2=density,
                die_area_mm2=spec.die_area_mm2,
                a0_supported=a0_ok,
                vertical_supported=vertical_ok,
                vertical_loss_pct=loss_pct,
                note=note,
            )
        )
    return points


def a0_density_limit() -> float:
    """The reference architecture's density cap (≈0.83 A/mm²)."""
    return a0_die_area_requirement().power_density_limit_a_per_mm2
