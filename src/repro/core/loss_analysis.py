"""PCB-to-POL DC loss analysis — the engine behind Fig. 7.

The engine walks each architecture's power path *backwards* from the
POL: interconnect segments below a converter stage add to the power
that stage must deliver, so converter losses are evaluated at the true
throughput.  Interconnect I²R terms use the nominal rail currents
(P/V at each voltage domain), matching the paper's accounting, and the
total is reported as a percentage of the nominal 1 kW "available at
the PCB" — the normalization under which the paper's A0 shows >40%
loss.

Component categories:

* ``vertical``  — BGA, C4, TSV, die-attach arrays (Table I),
* ``horizontal``— PCB planes, package convergence, interposer RDL,
  intermediate rail, die BEOL grid,
* ``converter`` — VR stages.

Vertical arrays are sized per architecture: the 48 V feed of the
vertical architectures uses rating-minimal arrays (which is what makes
the paper's "1% of BGAs / 2% of C4 / 10% of TSVs" utilization claims);
A0's 1 kA path uses the full utilization-capped platforms since a
kilo-amp design has no slack to leave bumps unused.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec, StageModelMode
from ..converters.topologies.transformer_stage import pcb_reference_converter
from ..errors import ConfigError
from ..pdn.interconnect import BGA, C4_BUMP, TSV, VerticalInterconnect
from ..pdn.planes import (
    annular_spreading_resistance,
    disk_edge_feed_resistance,
    distributed_cell_feed_resistance,
    equivalent_radius,
    plane_resistance,
    sheet_resistance,
)
from ..pdn.stackup import PackagingStack, default_stack
from ..placement.planner import (
    PlacementPlan,
    PlacementStyle,
    optimal_stage_count,
    plan_placement,
)
from .architectures import ArchitectureKind, ArchitectureSpec

#: Utilization caps the paper quotes for the reference architecture.
BGA_UTILIZATION_CAP = 0.60
C4_UTILIZATION_CAP = 0.85


@dataclass(frozen=True)
class LossModelParameters:
    """Calibration knobs of the loss engine (defaults reproduce the
    paper's anchors; see EXPERIMENTS.md for the calibration record).

    Attributes:
        die_grid_resistance_ohm: effective rail-pair resistance of the
            on-die global BEOL grid redistribution.  Derived as
            R_sq(BEOL)/(8π·n_clusters) per polarity with
            R_sq ≈ 2.8 mΩ/sq (6 µm Cu) and ~18 feed clusters → ~6 µΩ.
        intermediate_rail_squares: RDL squares (per polarity) of the
            dedicated intermediate-voltage routes from the periphery
            stage-1 ring to the under-die stage-2 region.
        stage_mode: how stage converters are modeled off their
            published 48V-to-1V operating point.
        interposer_area_mm2: interposer platform area for placement
            budgets.
    """

    die_grid_resistance_ohm: float = 6.0e-6
    intermediate_rail_squares: float = 0.97
    stage_mode: StageModelMode = StageModelMode.AS_PUBLISHED
    interposer_area_mm2: float = 1200.0

    def __post_init__(self) -> None:
        if self.die_grid_resistance_ohm <= 0:
            raise ConfigError("die grid resistance must be positive")
        if self.intermediate_rail_squares <= 0:
            raise ConfigError("rail squares must be positive")
        if self.interposer_area_mm2 <= 0:
            raise ConfigError("interposer area must be positive")


@dataclass(frozen=True)
class LossComponent:
    """One named loss term."""

    name: str
    category: str  # "vertical" | "horizontal" | "converter"
    loss_w: float
    detail: str = ""

    def __post_init__(self) -> None:
        if self.category not in ("vertical", "horizontal", "converter"):
            raise ConfigError(f"unknown category {self.category!r}")
        if self.loss_w < 0:
            raise ConfigError("loss must be non-negative")


@dataclass(frozen=True)
class StageReport:
    """Operating point of one converter stage."""

    name: str
    converter: str
    vr_count: int
    per_vr_current_a: float
    per_vr_efficiency: float
    output_power_w: float
    loss_w: float
    placement: str


@dataclass(frozen=True)
class LossBreakdown:
    """Complete PCB-to-POL loss decomposition for one design point."""

    architecture: str
    topology: str
    spec: SystemSpec
    components: tuple[LossComponent, ...]
    stages: tuple[StageReport, ...]
    pol_plan: PlacementPlan | None = None

    def category_loss_w(self, category: str) -> float:
        """Total loss of one category."""
        return sum(c.loss_w for c in self.components if c.category == category)

    @property
    def vertical_loss_w(self) -> float:
        """Loss in vertical interconnect (BGA + C4 + TSV + die attach)."""
        return self.category_loss_w("vertical")

    @property
    def horizontal_loss_w(self) -> float:
        """Loss in lateral interconnect at all levels."""
        return self.category_loss_w("horizontal")

    @property
    def converter_loss_w(self) -> float:
        """Loss inside the VR stages."""
        return self.category_loss_w("converter")

    @property
    def ppdn_loss_w(self) -> float:
        """Interconnect (non-converter) loss."""
        return self.vertical_loss_w + self.horizontal_loss_w

    @property
    def total_loss_w(self) -> float:
        """Total PCB-to-POL loss."""
        return sum(c.loss_w for c in self.components)

    @property
    def paper_loss_fraction(self) -> float:
        """Loss as a fraction of the nominal power at the PCB (the
        paper's Fig. 7 normalization)."""
        return self.total_loss_w / self.spec.pol_power_w

    @property
    def efficiency(self) -> float:
        """True end-to-end efficiency P_POL / (P_POL + losses)."""
        return self.spec.pol_power_w / (
            self.spec.pol_power_w + self.total_loss_w
        )

    def component_loss_w(self, name_prefix: str) -> float:
        """Sum of losses whose component name starts with a prefix."""
        return sum(
            c.loss_w for c in self.components if c.name.startswith(name_prefix)
        )

    def fig7_bars(self) -> dict[str, float]:
        """The Fig. 7 stacked-bar values (percent of nominal power)."""
        scale = 100.0 / self.spec.pol_power_w
        return {
            "BGA": self.component_loss_w("bga") * scale,
            "C4": self.component_loss_w("c4") * scale,
            "TSV": self.component_loss_w("tsv") * scale,
            "die-attach": self.component_loss_w("die-attach") * scale,
            "horizontal": self.horizontal_loss_w * scale,
            "VR": self.converter_loss_w * scale,
        }


class LossAnalyzer:
    """Evaluates the PCB-to-POL loss of an architecture/topology pair."""

    def __init__(
        self,
        spec: SystemSpec | None = None,
        params: LossModelParameters | None = None,
        stack: PackagingStack | None = None,
    ) -> None:
        self.spec = spec or SystemSpec()
        self.params = params or LossModelParameters()
        self.stack = stack or default_stack(self.spec)

    # -- public API -------------------------------------------------------------

    def analyze(
        self, arch: ArchitectureSpec, topology: ConverterSpec
    ) -> LossBreakdown:
        """Full loss breakdown for one design point.

        Raises:
            InfeasibleError: if the topology cannot supply the load
                within its published rating under the paper's count
                policy (3LHD at ~21 A per VR).
        """
        if arch.kind is ArchitectureKind.PCB_CONVERSION:
            return self._analyze_a0(arch, topology)
        return self._analyze_vertical(arch, topology)

    # -- shared primitives --------------------------------------------------------

    def _rdl_sheet(self) -> float:
        """Interposer RDL sheet resistance (one polarity)."""
        return self.stack.level("Interposer").lateral.sheet_ohm_sq

    def _pkg_sheet(self) -> float:
        """Package plane sheet resistance (one polarity)."""
        return self.stack.level("PKG").lateral.sheet_ohm_sq

    def _pcb_resistance_pair(self) -> float:
        """PCB lateral plane resistance, rail pair."""
        pcb = self.spec.pcb
        sheet = sheet_resistance(pcb.plane_thickness_m * pcb.plane_pairs)
        return 2.0 * plane_resistance(
            sheet, pcb.vrm_distance_m, pcb.plane_width_m
        )

    def _pkg_convergence_pair(self, from_area_m2: float) -> float:
        """Package-plane annular convergence to the die shadow, pair."""
        inner = equivalent_radius(self.spec.die_area)
        outer = equivalent_radius(from_area_m2)
        if outer <= inner:
            return 0.0
        return 2.0 * annular_spreading_resistance(
            self._pkg_sheet(), inner, outer
        )

    def _die_grid_component(self, current_a: float) -> LossComponent:
        """On-die BEOL global grid redistribution loss."""
        return LossComponent(
            name="die-grid",
            category="horizontal",
            loss_w=current_a**2 * self.params.die_grid_resistance_ohm,
            detail="on-die BEOL redistribution",
        )

    def _die_attach_component(
        self, tech: VerticalInterconnect, current_a: float, minimal: bool
    ) -> LossComponent:
        """Die-attach (micro-bump or Cu-pad) array loss."""
        if minimal:
            count = max(
                1, int(current_a / tech.rated_current_a) + 1
            )
            count = min(count, max(tech.sites_on_area(self.spec.die_area) // 2, 1))
        else:
            count = max(tech.sites_on_area(self.spec.die_area) // 2, 1)
        array = tech.array(count)
        return LossComponent(
            name="die-attach",
            category="vertical",
            loss_w=array.loss_w(current_a),
            detail=f"{tech.name} x{count} per polarity",
        )

    def _feed_array_components(
        self, current_a: float, minimal: bool, include_tsv: bool
    ) -> list[LossComponent]:
        """BGA / C4 / (TSV) array losses for the board-side feed."""
        components: list[LossComponent] = []
        caps = {BGA.name: BGA_UTILIZATION_CAP, C4_BUMP.name: C4_UTILIZATION_CAP}
        techs: list[VerticalInterconnect] = [BGA, C4_BUMP]
        if include_tsv:
            techs.append(TSV)
        for tech in techs:
            if minimal:
                count = max(1, int(current_a / tech.rated_current_a) + 1)
                count = min(count, tech.power_sites_per_polarity)
            else:
                cap = caps.get(tech.name, 1.0)
                count = max(int(tech.power_sites_per_polarity * cap), 1)
            array = tech.array(count)
            name = {"BGA": "bga", "C4 bump": "c4", "TSV": "tsv"}[tech.name]
            components.append(
                LossComponent(
                    name=name,
                    category="vertical",
                    loss_w=array.loss_w(current_a),
                    detail=f"{tech.name} x{count} per polarity",
                )
            )
        return components

    # -- A0 ------------------------------------------------------------------------

    def _analyze_a0(
        self, arch: ArchitectureSpec, topology: ConverterSpec
    ) -> LossBreakdown:
        """Reference architecture: conversion at the PCB, POL current
        through the entire PPDN.  ``topology`` is ignored (the paper
        models A0 with its fixed 90% transformer+buck converter) but
        recorded for reporting."""
        spec = self.spec
        i_pol = spec.pol_current_a
        components: list[LossComponent] = []

        components.append(self._die_grid_component(i_pol))
        components.append(
            self._die_attach_component(arch.die_attach, i_pol, minimal=False)
        )
        # Interposer lateral: C4s sit densely under the die shadow, so
        # spreading is distributed over very many cells — negligible
        # but accounted.
        c4_cells = max(
            C4_BUMP.sites_on_area(spec.die_area) // 2, 1
        )
        components.append(
            LossComponent(
                name="interposer-spread",
                category="horizontal",
                loss_w=i_pol**2
                * 2.0
                * distributed_cell_feed_resistance(self._rdl_sheet(), c4_cells),
                detail="dense C4 feed under die",
            )
        )
        # A0 is the traditional flip-chip stack: C4s land on the
        # package (no passive TSV interposer in the 1 kA path).
        components.extend(
            self._feed_array_components(i_pol, minimal=False, include_tsv=False)
        )
        components.append(
            LossComponent(
                name="pkg-convergence",
                category="horizontal",
                loss_w=i_pol**2 * self._pkg_convergence_pair(BGA.platform_area_m2),
                detail="BGA field -> die shadow through package planes",
            )
        )
        components.append(
            LossComponent(
                name="pcb-planes",
                category="horizontal",
                loss_w=i_pol**2 * self._pcb_resistance_pair(),
                detail="VRM -> socket power planes",
            )
        )

        downstream = sum(c.loss_w for c in components)
        converter = pcb_reference_converter(
            spec.input_voltage_v, spec.pol_voltage_v
        )
        p_out = spec.pol_power_w + downstream
        conv_loss = converter.loss_w(p_out / spec.pol_voltage_v)
        components.append(
            LossComponent(
                name="vr-pcb",
                category="converter",
                loss_w=conv_loss,
                detail="transformer 48->12 + multiphase buck 12->1 @ 90%",
            )
        )
        stage = StageReport(
            name="pcb-stage",
            converter="transformer+buck",
            vr_count=1,
            per_vr_current_a=p_out / spec.pol_voltage_v,
            per_vr_efficiency=0.90,
            output_power_w=p_out,
            loss_w=conv_loss,
            placement="pcb",
        )
        return LossBreakdown(
            architecture=arch.name,
            topology=topology.name,
            spec=spec,
            components=tuple(components),
            stages=(stage,),
        )

    # -- vertical architectures -------------------------------------------------------

    def _pol_lateral_component(
        self, plan: PlacementPlan, current_a: float
    ) -> LossComponent:
        """Interposer-RDL lateral loss from the POL VR outputs into the
        die: rim-fed disk for periphery plans, distributed cells for
        under-die plans (with the overflow share rim-fed)."""
        sheet = self._rdl_sheet()
        if plan.style is PlacementStyle.PERIPHERY:
            resistance = 2.0 * disk_edge_feed_resistance(sheet)
            loss = current_a**2 * resistance
            detail = "periphery ring -> die (rim-fed disk)"
        else:
            below = max(plan.below_die_count, 1)
            f_below = plan.below_die_count / plan.vr_count
            i_below = current_a * f_below
            i_ring = current_a - i_below
            loss = i_below**2 * 2.0 * distributed_cell_feed_resistance(
                sheet, below
            )
            loss += i_ring**2 * 2.0 * disk_edge_feed_resistance(sheet)
            detail = f"{plan.below_die_count} under-die cells"
            if plan.overflow_count:
                detail += f" + {plan.overflow_count} periphery overflow"
        return LossComponent(
            name="interposer-spread",
            category="horizontal",
            loss_w=loss,
            detail=detail,
        )

    def _analyze_vertical(
        self, arch: ArchitectureSpec, topology: ConverterSpec
    ) -> LossBreakdown:
        spec = self.spec
        params = self.params
        i_pol = spec.pol_current_a
        die_mm2 = spec.die_area_mm2
        components: list[LossComponent] = []
        stages: list[StageReport] = []

        # 1. POL-voltage side (1 V domain).
        components.append(self._die_grid_component(i_pol))
        components.append(
            self._die_attach_component(arch.die_attach, i_pol, minimal=True)
        )
        p_into_die = spec.pol_power_w + sum(c.loss_w for c in components)

        # 2. POL VR stage.
        pol_current_required = p_into_die / spec.pol_voltage_v
        plan = plan_placement(
            topology,
            arch.pol_stage_style,
            pol_current_required,
            die_mm2,
            params.interposer_area_mm2,
        )
        components.append(
            self._pol_lateral_component(plan, pol_current_required)
        )
        pol_current_required = (
            spec.pol_power_w + sum(c.loss_w for c in components)
        ) / spec.pol_voltage_v
        v_in_pol_stage = (
            arch.intermediate_voltage_v
            if arch.is_dual_stage
            else spec.input_voltage_v
        )
        pol_model = topology.stage_loss_model(
            v_in_v=v_in_pol_stage,
            v_out_v=spec.pol_voltage_v,
            mode=params.stage_mode,
        )
        per_vr = pol_current_required / plan.vr_count
        topology.require_feasible(per_vr)
        pol_loss = plan.vr_count * pol_model.loss_w(per_vr)
        components.append(
            LossComponent(
                name="vr-pol",
                category="converter",
                loss_w=pol_loss,
                detail=(
                    f"{plan.vr_count}x {topology.name} @ {per_vr:.1f} A "
                    f"({plan.style.value})"
                ),
            )
        )
        stages.append(
            StageReport(
                name="pol-stage",
                converter=topology.name,
                vr_count=plan.vr_count,
                per_vr_current_a=per_vr,
                per_vr_efficiency=pol_model.efficiency(per_vr),
                output_power_w=pol_current_required * spec.pol_voltage_v,
                loss_w=pol_loss,
                placement=plan.style.value,
            )
        )
        p_above_pol_stage = spec.pol_power_w + sum(
            c.loss_w for c in components
        )

        # 3. Intermediate rail + first stage (A3 only).
        if arch.is_dual_stage:
            v_int = arch.intermediate_voltage_v
            i_int = p_above_pol_stage / v_int
            rail_resistance = (
                2.0 * self._rdl_sheet() * params.intermediate_rail_squares
            )
            rail_loss = i_int**2 * rail_resistance
            components.append(
                LossComponent(
                    name="intermediate-rail",
                    category="horizontal",
                    loss_w=rail_loss,
                    detail=f"{v_int:g} V RDL routes, periphery -> under-die",
                )
            )
            stage1_spec = arch.stage1_converter
            stage1_model = stage1_spec.stage_loss_model(
                v_in_v=spec.input_voltage_v,
                v_out_v=v_int,
                mode=params.stage_mode,
            )
            i_stage1_out = (
                p_above_pol_stage + rail_loss
            ) / v_int
            count1 = optimal_stage_count(
                stage1_model,
                i_stage1_out,
                max_count=max(stage1_spec.vrs_along_periphery, 1),
            )
            per_vr1 = i_stage1_out / count1
            stage1_loss = count1 * stage1_model.loss_w(per_vr1)
            components.append(
                LossComponent(
                    name="vr-stage1",
                    category="converter",
                    loss_w=stage1_loss,
                    detail=(
                        f"{count1}x {stage1_spec.name} 48->{v_int:g} V @ "
                        f"{per_vr1:.1f} A (periphery)"
                    ),
                )
            )
            stages.append(
                StageReport(
                    name="stage1",
                    converter=stage1_spec.name,
                    vr_count=count1,
                    per_vr_current_a=per_vr1,
                    per_vr_efficiency=stage1_model.efficiency(per_vr1),
                    output_power_w=i_stage1_out * v_int,
                    loss_w=stage1_loss,
                    placement="periphery",
                )
            )

        # 4. 48 V feed from the PCB.
        p_total_so_far = spec.pol_power_w + sum(c.loss_w for c in components)
        i_input = p_total_so_far / spec.input_voltage_v
        components.extend(
            self._feed_array_components(i_input, minimal=True, include_tsv=True)
        )
        v_in = spec.input_voltage_v
        components.append(
            LossComponent(
                name="pkg-convergence",
                category="horizontal",
                loss_w=i_input**2
                * self._pkg_convergence_pair(BGA.platform_area_m2),
                detail=f"{v_in:g} V feed through package planes",
            )
        )
        components.append(
            LossComponent(
                name="pcb-planes",
                category="horizontal",
                loss_w=i_input**2 * self._pcb_resistance_pair(),
                detail=f"{v_in:g} V feed, VRM/entry -> socket",
            )
        )

        return LossBreakdown(
            architecture=arch.name,
            topology=topology.name,
            spec=spec,
            components=tuple(components),
            stages=tuple(stages),
            pol_plan=plan,
        )

    # -- convenience -----------------------------------------------------------------

    def with_params(self, **overrides: object) -> "LossAnalyzer":
        """A copy of this analyzer with modified parameters."""
        return LossAnalyzer(
            spec=self.spec,
            params=replace(self.params, **overrides),
            stack=self.stack,
        )
