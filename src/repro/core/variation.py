"""Monte-Carlo variation analysis.

The calibrated models carry tolerances: converter efficiency spreads
across units, RDL plating thickness varies a few percent, and derated
interconnect ratings are conservative means.  This module perturbs
the loss model's inputs and reports the distribution of total loss,
answering "with what margin does the design meet its efficiency
target?" — the kind of robustness question the paper's companion
methodology [11] centers on.

Sampling is deterministic given the seed (numpy Generator).  All
random factors are drawn in one batched call up front (one
``(samples, 4)`` normal draw instead of per-sample scalar draws), and
the packaging stack is built once and shared across the per-sample
analyzers.  The per-sample evaluation loop routes through the sweep
executor (:mod:`repro.parallel`): because the factors are drawn in the
parent before sharding, ``jobs=N`` evaluates exactly the draws
``jobs=1`` does — bit-identical results, any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec
from ..converters.loss_model import QuadraticLossModel
from ..core.architectures import ArchitectureSpec
from ..core.loss_analysis import LossAnalyzer, LossModelParameters
from ..errors import ConfigError, InfeasibleError
from ..parallel import Scenario, SweepPlan, run_sweep


@dataclass(frozen=True)
class VariationSpec:
    """Relative 1-sigma tolerances applied per sample.

    Attributes:
        converter_loss_sigma: on each converter-loss coefficient.
        rdl_sigma: on the die-grid / intermediate-rail resistance
            (plating thickness variation).
        seed: RNG seed (determinism contract).
    """

    converter_loss_sigma: float = 0.05
    rdl_sigma: float = 0.08
    seed: int = 2023

    def __post_init__(self) -> None:
        for name in ("converter_loss_sigma", "rdl_sigma"):
            value = getattr(self, name)
            if not 0.0 <= value < 0.5:
                raise ConfigError(f"{name} must be in [0, 0.5)")


@dataclass(frozen=True)
class VariationResult:
    """Monte-Carlo outcome for one design point.

    Attributes:
        samples_w: total-loss samples (watts).
        nominal_loss_w: the unperturbed total loss.
        infeasible_count: samples where the perturbed converter could
            no longer carry its share.
    """

    samples_w: np.ndarray
    nominal_loss_w: float
    infeasible_count: int

    @property
    def mean_loss_w(self) -> float:
        """Mean of the feasible samples."""
        return float(self.samples_w.mean())

    @property
    def std_loss_w(self) -> float:
        """Standard deviation of the feasible samples."""
        return float(self.samples_w.std())

    def percentile_w(self, q: float) -> float:
        """Loss percentile (e.g. 95 for the pessimistic corner)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigError("percentile must be in [0, 100]")
        return float(np.percentile(self.samples_w, q))

    def yield_at_efficiency(
        self, min_efficiency: float, pol_power_w: float
    ) -> float:
        """Fraction of samples meeting an efficiency floor."""
        if not 0.0 < min_efficiency < 1.0:
            raise ConfigError("efficiency floor must be in (0, 1)")
        max_loss = pol_power_w * (1.0 / min_efficiency - 1.0)
        total = len(self.samples_w) + self.infeasible_count
        good = int(np.count_nonzero(self.samples_w <= max_loss))
        return good / total


def _perturbed_spec(
    topology: ConverterSpec, factors: np.ndarray
) -> ConverterSpec:
    """A copy of the converter spec with scaled loss coefficients."""
    base = topology.loss_model
    model = QuadraticLossModel(
        v_out_v=base.v_out_v,
        a_w=base.a_w * factors[0],
        b_v=base.b_v * factors[1],
        c_ohm=base.c_ohm * factors[2],
        i_max_a=base.i_max_a,
    )
    return replace(topology, loss_model=model)


def spawn_variation_seeds(
    variation: VariationSpec, count: int
) -> list[np.random.SeedSequence]:
    """Independent child seed sequences rooted at the variation seed.

    ``SeedSequence.spawn`` guarantees non-overlapping streams, so a
    sweep sharded across processes can hand each worker its own child
    and draw locally without any coordination — and without two
    workers ever replaying the same draws.
    """
    if count < 1:
        raise ConfigError("need at least one child seed")
    return np.random.SeedSequence(variation.seed).spawn(count)


def sample_variation_factors(
    variation: VariationSpec,
    samples: int,
    rng: "np.random.Generator | np.random.SeedSequence | int | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw all Monte-Carlo factors in one batch.

    Returns ``(loss_factors, rdl_factors)`` with shapes
    ``(samples, 3)`` and ``(samples,)`` — log-normal multipliers for
    the converter loss coefficients and the RDL resistances.

    ``rng`` selects the random stream: ``None`` keeps the historical
    contract (a fresh generator seeded from ``variation.seed``, so the
    same spec always reproduces the same draws); a ``Generator``,
    ``SeedSequence`` (e.g. a child from :func:`spawn_variation_seeds`),
    or integer seed gives callers — worker processes in particular —
    an explicit, non-overlapping stream.
    """
    if rng is None:
        rng = np.random.default_rng(variation.seed)
    elif not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    normals = rng.normal(0.0, 1.0, size=(samples, 4))
    loss_factors = np.exp(variation.converter_loss_sigma * normals[:, :3])
    rdl_factors = np.exp(variation.rdl_sigma * normals[:, 3])
    return loss_factors, rdl_factors


def _variation_chunk(payload: tuple, scenarios: tuple) -> list:
    """Evaluate one chunk of Monte-Carlo draws.

    Returns per-scenario ``total_loss_w`` floats, or ``None`` for
    draws where the perturbed converter is infeasible.
    """
    arch, topology, spec, stack = payload
    results: list = []
    for scenario in scenarios:
        loss_factor, rdl_factor = scenario.params
        perturbed_topology = _perturbed_spec(topology, loss_factor)
        params = LossModelParameters(
            die_grid_resistance_ohm=6.0e-6 * rdl_factor,
            intermediate_rail_squares=0.97 * rdl_factor,
        )
        analyzer = LossAnalyzer(spec=spec, params=params, stack=stack)
        try:
            breakdown = analyzer.analyze(arch, perturbed_topology)
        except InfeasibleError:
            results.append(None)
        else:
            results.append(breakdown.total_loss_w)
    return results


def monte_carlo_loss(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    variation: VariationSpec | None = None,
    samples: int = 200,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
    target_ci_w: float | None = None,
    progress: "Callable[[int, int], None] | None" = None,
) -> VariationResult:
    """Sample the total loss of a design point under tolerances.

    Args:
        jobs: worker processes for the sample sweep (``1`` = serial,
            ``"auto"`` = available CPUs).  Results are bit-identical
            for any value: all factors are drawn up front.
        chunk_size: samples per executor chunk.
        target_ci_w: optional early-stop — stop consuming chunks once
            the 95% confidence-interval half-width of the mean loss is
            below this many watts (at least two chunks are always
            evaluated).  The retained samples are a deterministic
            prefix of the chunk stream.
        progress: optional ``callback(samples_done, samples_total)``.
    """
    if samples < 2:
        raise ConfigError("need at least two samples")
    spec = spec or SystemSpec()
    variation = variation or VariationSpec()

    nominal_analyzer = LossAnalyzer(spec=spec)
    nominal = nominal_analyzer.analyze(arch, topology)
    # The stack depends only on the spec: share it across samples
    # instead of rebuilding the packaging hierarchy per draw.
    stack = nominal_analyzer.stack

    # Factors are drawn once, in the parent, before sharding: workers
    # receive explicit (loss_factor, rdl_factor) rows, so the result
    # set cannot depend on worker count or scheduling.
    loss_factors, rdl_factors = sample_variation_factors(variation, samples)
    scenarios = tuple(
        Scenario(key=i, params=(loss_factors[i], rdl_factors[i]))
        for i in range(samples)
    )
    plan = SweepPlan(
        scenarios=scenarios,
        runner=_variation_chunk,
        payload=(arch, topology, spec, stack),
        chunk_size=chunk_size,
        label="monte-carlo loss",
    )

    # Chunks land in completion order; index them so the retained
    # sample set (and any early-stop decision) follows plan order.
    by_index: dict[int, tuple] = {}
    done = 0
    stream = run_sweep(plan, jobs=jobs, chunk_size=chunk_size)
    for chunk in stream:
        by_index[chunk.index] = chunk.results
        done += len(chunk.results)
        if progress is not None:
            progress(done, samples)
        if target_ci_w is not None and len(by_index) >= 2:
            flat = [
                value
                for index in sorted(by_index)
                for value in by_index[index]
                if value is not None
            ]
            if len(flat) >= 2:
                arr = np.asarray(flat)
                half_width = 1.96 * arr.std(ddof=1) / np.sqrt(len(arr))
                if half_width < target_ci_w:
                    stream.close()
                    break

    results: list[float] = []
    infeasible = 0
    for index in sorted(by_index):
        for value in by_index[index]:
            if value is None:
                infeasible += 1
            else:
                results.append(value)

    if not results:
        raise InfeasibleError(
            "every Monte-Carlo sample was infeasible; the design has no "
            "margin against the modeled tolerances"
        )
    return VariationResult(
        samples_w=np.asarray(results),
        nominal_loss_w=nominal.total_loss_w,
        infeasible_count=infeasible,
    )
