"""Electro-thermal coupling of the DC loss engine.

Losses heat the stack; copper/solder resistivity and switch R_on rise
with temperature; the hotter stack dissipates more.
:func:`electro_thermal_loss` iterates that fixed point on top of the
:class:`~repro.pdn.thermal.ThermalStack` ladder.

Vertical power delivery concentrates converter loss *inside* the
package, so the thermal feedback penalizes A1/A2 slightly more than
A0 — a real co-design effect the paper's conclusion alludes to
("vital to improve the efficiency of the converters").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..converters.catalog import ConverterSpec
from ..errors import ConfigError, SolverError
from ..pdn.thermal import (
    CONVERTER_TEMPCO_PER_C,
    INTERCONNECT_TEMPCO_PER_C,
    REFERENCE_TEMPERATURE_C,
    StackTemperatures,
    ThermalStack,
)
from .architectures import ArchitectureSpec
from .loss_analysis import LossAnalyzer, LossBreakdown


@dataclass(frozen=True)
class ElectroThermalResult:
    """Converged electro-thermal operating point.

    Attributes:
        breakdown_25c: the reference (25 °C) loss breakdown.
        total_loss_w: converged total loss including thermal derating.
        temperatures: converged stack temperatures.
        loss_increase_w: extra loss attributable to heating.
        iterations: fixed-point iterations used.
    """

    breakdown_25c: LossBreakdown
    total_loss_w: float
    temperatures: StackTemperatures
    loss_increase_w: float
    iterations: int

    @property
    def efficiency(self) -> float:
        """End-to-end efficiency at temperature."""
        p_pol = self.breakdown_25c.spec.pol_power_w
        return p_pol / (p_pol + self.total_loss_w)


def _thermally_scaled_loss(
    breakdown: LossBreakdown, temperatures: StackTemperatures
) -> float:
    """Total loss rescaled to the given stack temperatures.

    Interconnect I²R scales with ρ(T) of its level.  Converter loss is
    roughly half conduction at the paper's operating points, so half
    of it follows the switches' R_on(T).
    """

    def scale(delta_c: float, tempco: float) -> float:
        return 1.0 + tempco * delta_c

    interposer_delta = temperatures.interposer_c - REFERENCE_TEMPERATURE_C
    board_delta = temperatures.board_c - REFERENCE_TEMPERATURE_C
    die_delta = temperatures.die_c - REFERENCE_TEMPERATURE_C

    total = 0.0
    for component in breakdown.components:
        loss = component.loss_w
        if component.category == "converter":
            factor = 1.0 + 0.5 * CONVERTER_TEMPCO_PER_C * interposer_delta
        elif component.name in ("pcb-planes", "bga"):
            factor = scale(board_delta, INTERCONNECT_TEMPCO_PER_C)
        elif component.name in ("die-grid", "die-attach"):
            factor = scale(die_delta, INTERCONNECT_TEMPCO_PER_C)
        else:
            factor = scale(interposer_delta, INTERCONNECT_TEMPCO_PER_C)
        total += loss * factor
    return total


def electro_thermal_loss(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    analyzer: LossAnalyzer | None = None,
    stack: ThermalStack | None = None,
    max_iterations: int = 50,
    tolerance_w: float = 0.01,
) -> ElectroThermalResult:
    """Fixed-point electro-thermal solve for one design point.

    Losses are computed at 25 °C, injected into the thermal ladder,
    the stack temperatures rescale the losses, and the loop repeats
    until the total changes by less than ``tolerance_w``.
    """
    if max_iterations < 1:
        raise ConfigError("need at least one iteration")
    if tolerance_w <= 0:
        raise ConfigError("tolerance must be positive")
    analyzer = analyzer or LossAnalyzer()
    stack = stack or ThermalStack()

    breakdown = analyzer.analyze(arch, topology)
    spec = breakdown.spec
    total = breakdown.total_loss_w

    for iteration in range(1, max_iterations + 1):
        # Where the conversion loss lands thermally depends on the
        # architecture: on-package (vertical) vs on the board (A0).
        if arch.is_vertical:
            interposer_heat = breakdown.converter_loss_w
            board_heat = total - interposer_heat
        else:
            interposer_heat = 0.0
            board_heat = total
        temperatures = stack.temperatures(
            die_power_w=spec.pol_power_w,
            interposer_power_w=interposer_heat,
            board_power_w=board_heat,
        )
        new_total = _thermally_scaled_loss(breakdown, temperatures)
        if abs(new_total - total) < tolerance_w:
            return ElectroThermalResult(
                breakdown_25c=breakdown,
                total_loss_w=new_total,
                temperatures=temperatures,
                loss_increase_w=new_total - breakdown.total_loss_w,
                iterations=iteration,
            )
        total = new_total
    raise SolverError(
        f"electro-thermal iteration did not converge in {max_iterations} "
        "steps (thermal runaway?)"
    )
