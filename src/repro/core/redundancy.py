"""VR fault injection and N−1 redundancy analysis.

A vertical power delivery system paralleling 48 regulators will see
unit failures in the field; the companion methodology the paper builds
on ([11], "A Robust Integrated Power Delivery Method...") makes
robustness a first-class requirement.  This module answers:

* if *k* VRs drop out, does the remaining bank still carry the load
  within its ratings (`inject_failures`)?
* how many arbitrary failures can the design absorb in the worst case
  (`failure_tolerance`)?

Failures are modeled by open-circuiting the failed VRs' sources on
the die-level grid and re-solving: surviving neighbours pick up the
orphaned region through the lateral metal, so *which* VR fails
matters — a corner failure is benign, a hotspot failure is not.  A
failed VR's output resistor and ring-bus tap stay in the metal (the
passives don't vanish when a converter dies); only its regulation
loop drops out, i.e. its source branch is forced to carry zero
current.

That formulation makes every scenario a rank-k correction of one
shared system: the whole bank is attached and factorized once per
sweep, and each failure set is solved with a Sherman–Morrison–Woodbury
update (:meth:`repro.pdn.mna.FactorizedPDN.solve_modified` via
:meth:`repro.pdn.grid.GridPDN.solve_disabled`) instead of
refactorizing the grid per scenario.

Sweeps (``failure_tolerance``, ``multi_failure_samples``) route their
scenario lists through the chunked executor (:mod:`repro.parallel`).
Each chunk rebuilds the shared grid from a picklable payload (spec +
sampled sink currents + placement plan) and solves its scenarios
through the batched Woodbury path; the process-wide factorization
cache makes the rebuild cheap, and fixed chunk boundaries make
``jobs=N`` results bit-identical to ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec
from ..errors import ConfigError
from ..parallel import Scenario, SweepPlan, run_sweep_collect
from ..pdn.grid import GridPDN
from ..pdn.powermap import PowerMap
from ..pdn.stackup import default_stack
from ..placement.planner import PlacementStyle, plan_placement
from .architectures import ArchitectureSpec
from .current_sharing import (
    DEFAULT_OUTPUT_RESISTANCE_OHM,
    RING_BUS_SHEET_OHM_SQ,
    RING_BUS_WIDTH_M,
)

#: Default die-grid resolution for fault-injection solves; shared by
#: every entry point so single- and multi-failure results stay
#: comparable.
DEFAULT_GRID_NODES = 24


@dataclass(frozen=True)
class FailureResult:
    """Outcome of one failure scenario.

    Attributes:
        failed_indices: the VRs removed (plan position order).
        survivor_currents_a: per-surviving-VR currents.
        overloaded_count: survivors beyond the converter rating.
        worst_overload_fraction: max survivor current over the rating
            (1.0 = exactly at rating).
        worst_droop_v: node-voltage spread after the failure.
    """

    failed_indices: tuple[int, ...]
    survivor_currents_a: np.ndarray
    overloaded_count: int
    worst_overload_fraction: float
    worst_droop_v: float

    @property
    def survives(self) -> bool:
        """True when no surviving VR exceeds its rating."""
        return self.overloaded_count == 0


def _base_grid(
    spec: SystemSpec, power_map: PowerMap, grid_nodes: int
) -> GridPDN:
    """The die-level grid with sinks attached but no sources yet.

    Built once per sweep: the mesh and sink map are scenario
    independent, so every fault scenario shares this structure.
    """
    stack = default_stack(spec)
    sheet = stack.level("Interposer").lateral.sheet_ohm_sq
    grid = GridPDN(
        width_m=spec.die_side_m,
        height_m=spec.die_side_m,
        sheet_ohm_sq=sheet,
        nx=grid_nodes,
        ny=grid_nodes,
    )
    grid.set_sinks(power_map, spec.pol_current_a)
    return grid


def _attach_bank(
    grid: GridPDN,
    plan,
    spec: SystemSpec,
    output_resistance_ohm: float,
) -> None:
    """Attach the full VR bank (and its ring bus) to a sweep grid.

    Every fault scenario shares this one topology and factorization;
    failures are expressed per scenario by disabling source branches,
    never by re-attaching a survivor subset.
    """
    for index, position in enumerate(plan.positions):
        grid.add_source(
            f"vr{index}",
            position.x,
            position.y,
            spec.pol_voltage_v,
            output_resistance_ohm,
        )
    if plan.style is PlacementStyle.PERIPHERY and plan.vr_count >= 3:
        spacing = 4.0 * spec.die_side_m / plan.vr_count
        grid.connect_sources_with_ring_bus(
            RING_BUS_SHEET_OHM_SQ * spacing / RING_BUS_WIDTH_M
        )


def _failure_result(
    plan,
    topology: ConverterSpec,
    failed: tuple[int, ...],
    solution,
) -> FailureResult:
    """Package one solved fault scenario into a :class:`FailureResult`."""
    currents = np.delete(solution.source_currents_a, list(failed))
    limit = topology.max_load_a
    overloaded = int(np.count_nonzero(currents > limit * (1 + 1e-9)))
    return FailureResult(
        failed_indices=tuple(failed),
        survivor_currents_a=currents,
        overloaded_count=overloaded,
        worst_overload_fraction=float(currents.max() / limit),
        worst_droop_v=solution.worst_droop_v,
    )


def _check_failed(plan, failed: tuple[int, ...]) -> None:
    if any(i < 0 or i >= plan.vr_count for i in failed):
        raise ConfigError("failed index out of range")
    if len(failed) >= plan.vr_count:
        raise ConfigError("cannot fail every VR")


def _solve_scenario(
    grid: GridPDN,
    plan,
    topology: ConverterSpec,
    failed: tuple[int, ...],
) -> FailureResult:
    """Solve one fault scenario on the shared full-bank grid.

    The grid must already carry the full bank (:func:`_attach_bank`);
    the failed VRs are disabled via the Woodbury-corrected solve, so
    every scenario after the first costs back-substitutions only.
    """
    _check_failed(plan, failed)
    return _failure_result(plan, topology, failed, grid.solve_disabled(failed))


def _solve_scenarios(
    grid: GridPDN,
    plan,
    topology: ConverterSpec,
    scenarios: list[tuple[int, ...]],
) -> list[FailureResult]:
    """Solve a whole fault sweep through the batched Woodbury path.

    One shared factorization, with the influence columns and modified
    right-hand sides of every scenario stacked into batched
    back-substitutions (:meth:`repro.pdn.grid.GridPDN.solve_disabled_many`).
    """
    for failed in scenarios:
        _check_failed(plan, failed)
    solutions = grid.solve_disabled_many(scenarios)
    return [
        _failure_result(plan, topology, failed, solution)
        for failed, solution in zip(scenarios, solutions)
    ]


def _grid_from_cells(
    spec: SystemSpec, sink_cells: np.ndarray, grid_nodes: int
) -> GridPDN:
    """Rebuild the sweep grid from an explicit sink-current array.

    The picklable twin of :func:`_base_grid`: power maps carry density
    closures that cannot cross a process boundary, so sweep payloads
    ship the sampled ``(ny, nx)`` cell currents instead.
    """
    stack = default_stack(spec)
    sheet = stack.level("Interposer").lateral.sheet_ohm_sq
    grid = GridPDN(
        width_m=spec.die_side_m,
        height_m=spec.die_side_m,
        sheet_ohm_sq=sheet,
        nx=grid_nodes,
        ny=grid_nodes,
    )
    grid.set_sink_array(sink_cells)
    return grid


def _failure_chunk(payload: tuple, scenarios: tuple) -> list:
    """Evaluate one chunk of fault scenarios on a rebuilt sweep grid.

    The grid assembly is repeated per chunk, but its factorization is
    shared through the process-wide content-hashed cache
    (:mod:`repro.parallel.cache`), so each worker pays one LU per
    topology across its whole lifetime.
    """
    spec, sink_cells, plan, topology, grid_nodes, output_resistance_ohm = (
        payload
    )
    grid = _grid_from_cells(spec, sink_cells, grid_nodes)
    _attach_bank(grid, plan, spec, output_resistance_ohm)
    return _solve_scenarios(
        grid, plan, topology, [scenario.params for scenario in scenarios]
    )


def _run_failure_sweep(
    spec: SystemSpec,
    sink_cells: np.ndarray,
    plan,
    topology: ConverterSpec,
    grid_nodes: int,
    output_resistance_ohm: float,
    scenarios: list[tuple[int, ...]],
    label: str,
    jobs: "int | str | None",
    chunk_size: int | None,
) -> list[FailureResult]:
    """Route a fault-scenario list through the sweep executor."""
    for failed in scenarios:
        _check_failed(plan, failed)
    plan_obj = SweepPlan(
        scenarios=tuple(
            Scenario(key=failed, params=failed) for failed in scenarios
        ),
        runner=_failure_chunk,
        payload=(
            spec,
            sink_cells,
            plan,
            topology,
            grid_nodes,
            output_resistance_ohm,
        ),
        chunk_size=chunk_size,
        label=label,
    )
    return run_sweep_collect(plan_obj, jobs=jobs, chunk_size=chunk_size)


def _solve_with_failures(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    failed: tuple[int, ...],
    spec: SystemSpec,
    power_map: PowerMap,
    grid_nodes: int,
    output_resistance_ohm: float,
) -> FailureResult:
    plan = plan_placement(
        topology,
        arch.pol_stage_style,
        spec.pol_current_a,
        spec.die_area_mm2,
    )
    grid = _base_grid(spec, power_map, grid_nodes)
    _attach_bank(grid, plan, spec, output_resistance_ohm)
    return _solve_scenario(grid, plan, topology, failed)


def inject_failures(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    failed_indices: tuple[int, ...],
    spec: SystemSpec | None = None,
    power_map: PowerMap | None = None,
    grid_nodes: int = DEFAULT_GRID_NODES,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
) -> FailureResult:
    """Remove the given VRs and re-solve the sharing network."""
    if not arch.is_vertical:
        raise ConfigError("fault injection applies to on-package VR banks")
    spec = spec or SystemSpec()
    power_map = power_map or PowerMap.hotspot_mixture()
    return _solve_with_failures(
        arch,
        topology,
        tuple(failed_indices),
        spec,
        power_map,
        grid_nodes,
        output_resistance_ohm,
    )


@dataclass(frozen=True)
class ToleranceReport:
    """Worst-case failure tolerance of a design point."""

    architecture: str
    topology: str
    vr_count: int
    tolerates_any_single_failure: bool
    worst_single_failure_index: int
    worst_single_overload_fraction: float


def failure_tolerance(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    power_map: PowerMap | None = None,
    grid_nodes: int = DEFAULT_GRID_NODES,
    sample_limit: int | None = None,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
) -> ToleranceReport:
    """Exhaustive N−1 sweep: fail each VR in turn, find the worst.

    Args:
        sample_limit: optionally only test the first k single-failure
            scenarios (for quick checks on large banks).
        jobs: worker processes for the scenario sweep (``1`` = serial,
            ``"auto"`` = available CPUs); results are identical for
            any value.
        chunk_size: scenarios per executor chunk.
    """
    if not arch.is_vertical:
        raise ConfigError("fault injection applies to on-package VR banks")
    spec = spec or SystemSpec()
    power_map = power_map or PowerMap.hotspot_mixture()
    plan = plan_placement(
        topology,
        arch.pol_stage_style,
        spec.pol_current_a,
        spec.die_area_mm2,
    )
    indices = list(range(plan.vr_count))
    if sample_limit is not None:
        if sample_limit < 1:
            raise ConfigError("sample limit must be >= 1")
        indices = indices[:sample_limit]

    # One shared topology, one cached factorization, and batched
    # scenarios: the N−1 enumeration goes through stacked
    # back-substitutions, chunked and optionally sharded across
    # processes by the sweep executor.
    sink_cells = power_map.cell_currents(
        grid_nodes, grid_nodes, spec.pol_current_a
    )
    worst_fraction = 0.0
    worst_index = -1
    all_survive = True
    results = _run_failure_sweep(
        spec,
        sink_cells,
        plan,
        topology,
        grid_nodes,
        DEFAULT_OUTPUT_RESISTANCE_OHM,
        [(index,) for index in indices],
        "N-1 failure tolerance",
        jobs,
        chunk_size,
    )
    for index, result in zip(indices, results):
        if result.worst_overload_fraction > worst_fraction:
            worst_fraction = result.worst_overload_fraction
            worst_index = index
        if not result.survives:
            all_survive = False
    return ToleranceReport(
        architecture=arch.name,
        topology=topology.name,
        vr_count=plan.vr_count,
        tolerates_any_single_failure=all_survive,
        worst_single_failure_index=worst_index,
        worst_single_overload_fraction=worst_fraction,
    )


def multi_failure_samples(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    failure_count: int,
    spec: SystemSpec | None = None,
    max_scenarios: int = 20,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
) -> list[FailureResult]:
    """A deterministic sample of k-failure scenarios (first
    ``max_scenarios`` index combinations).

    ``jobs``/``chunk_size`` shard the scenario list across worker
    processes through the sweep executor; results are identical for
    any worker count.
    """
    if failure_count < 1:
        raise ConfigError("failure count must be >= 1")
    if max_scenarios < 1:
        raise ConfigError("need at least one scenario")
    if not arch.is_vertical:
        raise ConfigError("fault injection applies to on-package VR banks")
    spec = spec or SystemSpec()
    plan = plan_placement(
        topology,
        arch.pol_stage_style,
        spec.pol_current_a,
        spec.die_area_mm2,
    )
    scenarios = []
    for combo in combinations(range(plan.vr_count), failure_count):
        scenarios.append(combo)
        if len(scenarios) >= max_scenarios:
            break
    sink_cells = PowerMap.hotspot_mixture().cell_currents(
        DEFAULT_GRID_NODES, DEFAULT_GRID_NODES, spec.pol_current_a
    )
    return _run_failure_sweep(
        spec,
        sink_cells,
        plan,
        topology,
        DEFAULT_GRID_NODES,
        DEFAULT_OUTPUT_RESISTANCE_OHM,
        scenarios,
        f"N-{failure_count} failure samples",
        jobs,
        chunk_size,
    )
