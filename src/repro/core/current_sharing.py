"""Per-VR current sharing via the grid PDN solver.

The paper observes that although A1 and A2 look similar with DSCH or
3LHD converters, the *distribution* of load among the VRs differs
dramatically: periphery VRs (A1) share within 16–27 A, while under-die
VRs (A2) span 10–93 A because converters under the die's hot center
pick up the local demand.

This module reproduces that analysis: it builds the die-level grid
PDN, attaches the architecture's VR placement as droop-controlled
sources (1 V references behind a small output resistance) and the die
power map as distributed sinks, solves the network, and reports the
per-VR current statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec
from ..errors import ConfigError
from ..pdn.grid import GridPDN
from ..pdn.powermap import PowerMap
from ..pdn.stackup import default_stack
from ..placement.planner import PlacementPlan, plan_placement
from .architectures import ArchitectureSpec

#: Default droop (output) resistance of each VR used for sharing.
DEFAULT_OUTPUT_RESISTANCE_OHM = 0.15e-3

#: The dedicated periphery output ring bus (Fig. 5(a)): a wide ring of
#: stacked thick metal whose segments equalize A1's periphery VRs.
RING_BUS_SHEET_OHM_SQ = 45.0e-6
RING_BUS_WIDTH_M = 4.0e-3


@dataclass(frozen=True)
class SharingResult:
    """Per-VR current-sharing statistics for one design point.

    Attributes:
        architecture / topology: design-point labels.
        plan: the placement that was analyzed.
        currents_a: per-VR output currents (plan position order).
        lateral_loss_w: rail-pair lateral loss observed in the grid.
        worst_droop_v: max node-voltage spread across the die.
    """

    architecture: str
    topology: str
    plan: PlacementPlan
    currents_a: np.ndarray
    lateral_loss_w: float
    worst_droop_v: float

    @property
    def min_current_a(self) -> float:
        """Lightest-loaded VR."""
        return float(self.currents_a.min())

    @property
    def max_current_a(self) -> float:
        """Heaviest-loaded VR."""
        return float(self.currents_a.max())

    @property
    def mean_current_a(self) -> float:
        """Average VR current."""
        return float(self.currents_a.mean())

    @property
    def spread_ratio(self) -> float:
        """max / min current ratio (sharing imbalance metric)."""
        lo = self.min_current_a
        return float("inf") if lo <= 0 else self.max_current_a / lo

    @property
    def overloaded_count(self) -> int:
        """VRs whose share exceeds the converter's published rating."""
        limit = self.plan.converter.max_load_a * (1.0 + 1e-9)
        return int(np.count_nonzero(self.currents_a > limit))


def analyze_current_sharing(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    power_map: PowerMap | None = None,
    grid_nodes: int = 28,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
) -> SharingResult:
    """Solve the die-level network and return per-VR currents.

    Args:
        arch: a vertical architecture (A1/A2/A3 — A0 has no on-package
            VRs to share between).
        topology: the POL-stage converter.
        spec: system spec (paper system by default).
        power_map: die demand map; defaults to the calibrated
            hotspot mixture (DESIGN.md substitution #5).
        grid_nodes: grid resolution per axis.
        output_resistance_ohm: per-VR droop resistance.
    """
    if not arch.is_vertical:
        raise ConfigError("current sharing applies to on-package VR stages")
    if output_resistance_ohm <= 0:
        raise ConfigError("output resistance must be positive")
    spec = spec or SystemSpec()
    power_map = power_map or PowerMap.hotspot_mixture()

    plan = plan_placement(
        topology,
        arch.pol_stage_style,
        spec.pol_current_a,
        spec.die_area_mm2,
    )

    stack = default_stack(spec)
    sheet = stack.level("Interposer").lateral.sheet_ohm_sq
    grid = GridPDN(
        width_m=spec.die_side_m,
        height_m=spec.die_side_m,
        sheet_ohm_sq=sheet,
        nx=grid_nodes,
        ny=grid_nodes,
    )
    grid.set_sinks(power_map, spec.pol_current_a)
    for index, position in enumerate(plan.positions):
        grid.add_source(
            f"vr{index}",
            position.x,
            position.y,
            spec.pol_voltage_v,
            output_resistance_ohm,
        )
    from ..placement.planner import PlacementStyle

    if plan.style is PlacementStyle.PERIPHERY and plan.vr_count >= 3:
        # Periphery VRs share the contiguous output ring of Fig. 5(a);
        # each inter-VR segment is (spacing / ring width) squares of
        # the dedicated thick ring metal.
        spacing = 4.0 * spec.die_side_m / plan.vr_count
        segment = RING_BUS_SHEET_OHM_SQ * spacing / RING_BUS_WIDTH_M
        grid.connect_sources_with_ring_bus(segment)
    solution = grid.solve()
    return SharingResult(
        architecture=arch.name,
        topology=topology.name,
        plan=plan,
        currents_a=solution.source_currents_a,
        lateral_loss_w=solution.lateral_loss_w,
        worst_droop_v=solution.worst_droop_v,
    )
