"""Architecture/topology design optimizer.

The paper closes by calling for "power delivery architectures, and
design methodologies"; this module provides the obvious methodology:
enumerate the feasible design space (architecture × POL topology ×
intermediate rail) for a given system spec and constraints, rank by
end-to-end efficiency, and report the frontier.

The search is exhaustive — the space is tiny (tens of points) and
exactness beats cleverness here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemSpec
from ..converters.catalog import CATALOG, ConverterSpec, StageModelMode
from ..errors import ConfigError, InfeasibleError
from .architectures import (
    ArchitectureSpec,
    dual_stage_a3,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from .loss_analysis import LossAnalyzer, LossBreakdown, LossModelParameters


@dataclass(frozen=True)
class DesignConstraints:
    """Constraints the optimizer enforces.

    Attributes:
        max_vr_count: cap on POL-stage VR count (control complexity).
        min_efficiency: designs below this end-to-end efficiency are
            rejected.
        max_converter_area_mm2: cap on total VR silicon/passives area.
        allow_pcb_conversion: include A0 in the search.
        intermediate_rails_v: candidate A3 rail voltages.
    """

    max_vr_count: int | None = None
    min_efficiency: float = 0.0
    max_converter_area_mm2: float | None = None
    allow_pcb_conversion: bool = True
    intermediate_rails_v: tuple[float, ...] = (6.0, 12.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_efficiency < 1.0:
            raise ConfigError("min efficiency must be in [0, 1)")
        if self.max_vr_count is not None and self.max_vr_count < 1:
            raise ConfigError("max VR count must be >= 1")
        if not self.intermediate_rails_v:
            raise ConfigError("at least one candidate rail required")


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated design point."""

    architecture: str
    topology: str
    breakdown: LossBreakdown | None
    rejected_reason: str | None = None

    @property
    def feasible(self) -> bool:
        """True if the point passed feasibility and constraints."""
        return self.breakdown is not None

    @property
    def efficiency(self) -> float:
        """End-to-end efficiency (0 for rejected points)."""
        return self.breakdown.efficiency if self.breakdown else 0.0


@dataclass
class OptimizationResult:
    """Ranked outcome of a design-space search."""

    candidates: list[DesignCandidate] = field(default_factory=list)

    @property
    def feasible(self) -> list[DesignCandidate]:
        """Feasible candidates, best efficiency first."""
        return sorted(
            (c for c in self.candidates if c.feasible),
            key=lambda c: -c.efficiency,
        )

    @property
    def best(self) -> DesignCandidate:
        """The most efficient feasible candidate."""
        ranked = self.feasible
        if not ranked:
            raise InfeasibleError("no feasible design in the search space")
        return ranked[0]

    @property
    def rejected(self) -> list[DesignCandidate]:
        """Candidates rejected by feasibility or constraints."""
        return [c for c in self.candidates if not c.feasible]


def _candidate_architectures(
    constraints: DesignConstraints,
) -> list[ArchitectureSpec]:
    archs: list[ArchitectureSpec] = []
    if constraints.allow_pcb_conversion:
        archs.append(reference_a0())
    archs.append(single_stage_a1())
    archs.append(single_stage_a2())
    for rail in constraints.intermediate_rails_v:
        archs.append(dual_stage_a3(rail))
    return archs


def optimize_design(
    spec: SystemSpec | None = None,
    constraints: DesignConstraints | None = None,
    topologies: tuple[ConverterSpec, ...] | None = None,
    stage_mode: StageModelMode = StageModelMode.AS_PUBLISHED,
) -> OptimizationResult:
    """Search the architecture × topology space for the given system.

    Every point is evaluated with the full loss engine; infeasible
    points (ratings, slots, area) and constraint violations are kept
    in the result with their rejection reason, so the report can show
    *why* the frontier looks the way it does.
    """
    spec = spec or SystemSpec()
    constraints = constraints or DesignConstraints()
    topologies = topologies or CATALOG
    analyzer = LossAnalyzer(
        spec=spec, params=LossModelParameters(stage_mode=stage_mode)
    )

    result = OptimizationResult()
    for arch in _candidate_architectures(constraints):
        arch_topologies = topologies if arch.is_vertical else topologies[:1]
        for topology in arch_topologies:
            label_topo = topology.name if arch.is_vertical else "PCB stage"
            try:
                breakdown = analyzer.analyze(arch, topology)
            except InfeasibleError as exc:
                result.candidates.append(
                    DesignCandidate(
                        architecture=arch.name,
                        topology=label_topo,
                        breakdown=None,
                        rejected_reason=f"infeasible: {exc}",
                    )
                )
                continue
            reason = _constraint_violation(breakdown, constraints)
            if reason is not None:
                result.candidates.append(
                    DesignCandidate(
                        architecture=arch.name,
                        topology=label_topo,
                        breakdown=None,
                        rejected_reason=reason,
                    )
                )
                continue
            result.candidates.append(
                DesignCandidate(
                    architecture=arch.name,
                    topology=label_topo,
                    breakdown=breakdown,
                )
            )
    return result


def _constraint_violation(
    breakdown: LossBreakdown, constraints: DesignConstraints
) -> str | None:
    """The first violated constraint, or None."""
    if breakdown.efficiency < constraints.min_efficiency:
        return (
            f"efficiency {breakdown.efficiency:.1%} below the "
            f"{constraints.min_efficiency:.1%} floor"
        )
    total_vrs = sum(stage.vr_count for stage in breakdown.stages)
    if (
        constraints.max_vr_count is not None
        and total_vrs > constraints.max_vr_count
    ):
        return (
            f"{total_vrs} VRs exceed the {constraints.max_vr_count} cap"
        )
    if constraints.max_converter_area_mm2 is not None:
        if breakdown.pol_plan is not None:
            area = breakdown.pol_plan.area_used_mm2
            if area > constraints.max_converter_area_mm2:
                return (
                    f"VR area {area:.0f} mm2 exceeds the "
                    f"{constraints.max_converter_area_mm2:.0f} mm2 cap"
                )
    return None
