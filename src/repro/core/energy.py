"""Fleet-level energy economics of power delivery efficiency.

The paper's Fig. 1 motivation is ultimately economic: a 20 kW server
wasting 25–45% of its power between the PCB and the die pays for that
loss twice — once at the meter and again in the cooling plant (PUE).
This module turns a :class:`~repro.core.loss_analysis.LossBreakdown`
into annual energy and cost, so the A0 → A2 comparison reads in
megawatt-hours and dollars instead of percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .loss_analysis import LossBreakdown

#: Hours in a (non-leap) year.
HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class DeploymentModel:
    """A fleet deployment for energy accounting.

    Attributes:
        chip_count: accelerators in the fleet.
        utilization: average duty (fraction of peak power drawn).
        pue: datacenter power usage effectiveness (cooling overhead
            multiplies every wasted watt).
        energy_cost_per_kwh: electricity price.
    """

    chip_count: int = 1000
    utilization: float = 0.7
    pue: float = 1.3
    energy_cost_per_kwh: float = 0.10

    def __post_init__(self) -> None:
        if self.chip_count < 1:
            raise ConfigError("fleet needs at least one chip")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigError("utilization must be in (0, 1]")
        if self.pue < 1.0:
            raise ConfigError("PUE cannot be below 1")
        if self.energy_cost_per_kwh <= 0:
            raise ConfigError("energy cost must be positive")


@dataclass(frozen=True)
class EnergyReport:
    """Annual energy accounting for one design point.

    Attributes:
        architecture / topology: design-point labels.
        delivery_loss_kwh_per_year: fleet-wide PDN+conversion waste
            (at the meter, including PUE).
        delivery_cost_per_year: that waste priced.
        compute_energy_kwh_per_year: useful (POL) energy.
    """

    architecture: str
    topology: str
    delivery_loss_kwh_per_year: float
    delivery_cost_per_year: float
    compute_energy_kwh_per_year: float

    @property
    def overhead_fraction(self) -> float:
        """Wasted over useful energy."""
        return (
            self.delivery_loss_kwh_per_year
            / self.compute_energy_kwh_per_year
        )


def annual_energy(
    breakdown: LossBreakdown,
    deployment: DeploymentModel | None = None,
) -> EnergyReport:
    """Annual fleet energy for one characterized design point."""
    deployment = deployment or DeploymentModel()
    hours_equiv = HOURS_PER_YEAR * deployment.utilization
    scale = deployment.chip_count * hours_equiv / 1000.0  # W -> kWh

    loss_kwh = breakdown.total_loss_w * scale * deployment.pue
    compute_kwh = breakdown.spec.pol_power_w * scale
    return EnergyReport(
        architecture=breakdown.architecture,
        topology=breakdown.topology,
        delivery_loss_kwh_per_year=loss_kwh,
        delivery_cost_per_year=loss_kwh * deployment.energy_cost_per_kwh,
        compute_energy_kwh_per_year=compute_kwh,
    )


def annual_savings(
    baseline: LossBreakdown,
    improved: LossBreakdown,
    deployment: DeploymentModel | None = None,
) -> dict[str, float]:
    """Yearly savings of one design point over another.

    Returns kWh and cost deltas (positive = the improved design
    saves).  Both points must describe the same system spec.
    """
    if baseline.spec.pol_power_w != improved.spec.pol_power_w:
        raise ConfigError("design points must share the system spec")
    deployment = deployment or DeploymentModel()
    base = annual_energy(baseline, deployment)
    new = annual_energy(improved, deployment)
    return {
        "energy_kwh_per_year": (
            base.delivery_loss_kwh_per_year - new.delivery_loss_kwh_per_year
        ),
        "cost_per_year": (
            base.delivery_cost_per_year - new.delivery_cost_per_year
        ),
    }
