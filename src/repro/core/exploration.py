"""Design-space exploration and ablations.

* :func:`conversion_location_sweep` — Fig. 3's message quantified:
  total loss vs where the 48V-to-1V conversion happens (PCB → package
  → interposer periphery → below die).
* :func:`intermediate_voltage_sweep` — A3 total loss vs intermediate
  rail voltage (the paper evaluates 12 V and 6 V; the sweep shows the
  whole curve).
* :func:`stage_mode_comparison` — "as-published" vs "ratio-scaled"
  stage models: the paper's conservative reuse makes dual-stage lose
  to single-stage; ratio-optimized stage converters flip the ordering.
* :func:`rdl_thickness_sweep` / :func:`hotspot_sweep` — substrate
  ablations for the horizontal-loss and current-sharing results.
* :func:`si_vs_gan_buck` — device-technology ablation on a physics
  buck model (the paper's motivation for GaN).
* :func:`decap_density_sweep` — worst-node die-seen Z(f) vs the
  per-node decap allocation, on the real grid-level AC engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..converters.catalog import DSCH, ConverterSpec, StageModelMode
from ..converters.devices import Capacitor, Inductor, PowerSwitch
from ..converters.topologies.buck import SynchronousBuck
from ..errors import ConfigError, InfeasibleError
from ..materials import GAN_100V, SI_POWER_MOSFET, TransistorTechnology
from ..parallel import Scenario, SweepPlan, run_sweep_collect
from ..pdn.powermap import PowerMap
from .architectures import (
    dual_stage_a3,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from .current_sharing import SharingResult, analyze_current_sharing
from .ir_drop import (
    DEFAULT_DECAP_PER_UNIT_F,
    ImpedanceMapReport,
    PlacementReport,
    TransientDroopReport,
    analyze_impedance_map,
    analyze_load_step,
    optimize_decap_placement_map,
)
from .loss_analysis import LossAnalyzer, LossBreakdown, LossModelParameters


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D sweep."""

    label: str
    value: float
    total_loss_w: float
    loss_pct: float
    efficiency: float
    detail: str = ""


#: Fig. 3 sweep locations in presentation order (label -> x value).
_LOCATION_ORDER: tuple[tuple[str, float], ...] = (
    ("PCB", 0.0),
    ("package", 1.0),
    ("interposer-periphery", 2.0),
    ("below-die", 3.0),
)


def _location_chunk(payload: tuple, scenarios: tuple) -> list:
    """Evaluate conversion-location points (one analyzer per chunk)."""
    spec, topology = payload
    analyzer = LossAnalyzer(spec=spec)
    points: list[SweepPoint] = []
    for scenario in scenarios:
        label, value = scenario.params
        if label == "PCB":
            points.append(
                _sweep_point(label, value, analyzer.analyze(reference_a0(), topology))
            )
        elif label == "package":
            # Package-level conversion: A0 minus the PCB lateral run at
            # 1 V, with the board planes recomputed at 48 V.
            a0 = analyzer.analyze(reference_a0(), topology)
            pkg_loss = a0.total_loss_w - a0.component_loss_w("pcb-planes")
            i_input = (spec.pol_power_w + pkg_loss) / spec.input_voltage_v
            pcb_at_48v = i_input**2 * analyzer._pcb_resistance_pair()
            pkg_total = pkg_loss + pcb_at_48v
            points.append(
                SweepPoint(
                    label=label,
                    value=value,
                    total_loss_w=pkg_total,
                    loss_pct=100.0 * pkg_total / spec.pol_power_w,
                    efficiency=spec.pol_power_w
                    / (spec.pol_power_w + pkg_total),
                    detail="A0 with the board lateral run at 48 V",
                )
            )
        elif label == "interposer-periphery":
            points.append(
                _sweep_point(
                    label, value, analyzer.analyze(single_stage_a1(), topology)
                )
            )
        elif label == "below-die":
            points.append(
                _sweep_point(
                    label, value, analyzer.analyze(single_stage_a2(), topology)
                )
            )
        else:
            raise ConfigError(f"unknown conversion location {label!r}")
    return points


def conversion_location_sweep(
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
    jobs: "int | str | None" = 1,
) -> list[SweepPoint]:
    """Total loss vs conversion location (Fig. 3 quantified).

    "PCB" is A0; "interposer-periphery" is A1; "below-die" is A2.
    "package" approximates package-level conversion by removing the
    PCB lateral run from A0's 1 V path (conversion after the board
    planes, before the BGA field).  ``jobs`` shards the four points
    across worker processes; results are identical for any value.
    """
    spec = spec or SystemSpec()
    plan = SweepPlan(
        scenarios=tuple(
            Scenario(key=label, params=(label, value))
            for label, value in _LOCATION_ORDER
        ),
        runner=_location_chunk,
        payload=(spec, topology),
        chunk_size=1,
        label="conversion-location sweep",
    )
    return run_sweep_collect(plan, jobs=jobs)


def _sweep_point(
    label: str, value: float, breakdown: LossBreakdown
) -> SweepPoint:
    return SweepPoint(
        label=label,
        value=value,
        total_loss_w=breakdown.total_loss_w,
        loss_pct=100.0 * breakdown.paper_loss_fraction,
        efficiency=breakdown.efficiency,
        detail=f"{breakdown.architecture} ({breakdown.topology})",
    )


def intermediate_voltage_sweep(
    voltages: tuple[float, ...] = (3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0),
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
    mode: StageModelMode = StageModelMode.AS_PUBLISHED,
) -> list[SweepPoint]:
    """A3 total loss vs intermediate rail voltage."""
    spec = spec or SystemSpec()
    analyzer = LossAnalyzer(
        spec=spec, params=LossModelParameters(stage_mode=mode)
    )
    points: list[SweepPoint] = []
    for v_int in voltages:
        arch = dual_stage_a3(v_int)
        try:
            breakdown = analyzer.analyze(arch, topology)
        except InfeasibleError as exc:
            points.append(
                SweepPoint(
                    label=arch.name,
                    value=v_int,
                    total_loss_w=float("nan"),
                    loss_pct=float("nan"),
                    efficiency=float("nan"),
                    detail=f"infeasible: {exc}",
                )
            )
            continue
        points.append(_sweep_point(arch.name, v_int, breakdown))
    return points


def stage_mode_comparison(
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
    intermediate_voltage_v: float = 12.0,
) -> dict[str, LossBreakdown]:
    """Dual-stage A3 under both stage-model policies, plus the
    single-stage A1 baseline for the ordering comparison."""
    spec = spec or SystemSpec()
    arch = dual_stage_a3(intermediate_voltage_v)
    results: dict[str, LossBreakdown] = {}
    for mode in StageModelMode:
        analyzer = LossAnalyzer(
            spec=spec, params=LossModelParameters(stage_mode=mode)
        )
        results[mode.value] = analyzer.analyze(arch, topology)
    results["single-stage-A1"] = LossAnalyzer(spec=spec).analyze(
        single_stage_a1(), topology
    )
    return results


def rdl_thickness_sweep(
    thicknesses_um: tuple[float, ...] = (9.0, 18.0, 27.0, 54.0, 108.0),
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
) -> list[SweepPoint]:
    """A1 horizontal loss vs interposer RDL copper thickness.

    The RDL sheet resistance sets the periphery architecture's
    dominant interconnect loss; this ablation shows the sensitivity.
    """
    from ..pdn.stackup import LateralMetal, PackagingLevel, PackagingStack
    from ..pdn.stackup import default_stack
    from ..units import um

    spec = spec or SystemSpec()
    points: list[SweepPoint] = []
    for thickness in thicknesses_um:
        base = default_stack(spec)
        levels = list(base.levels)
        interposer = levels[2]
        levels[2] = PackagingLevel(
            name=interposer.name,
            lateral=LateralMetal(
                name="interposer RDL", thickness_m=um(thickness)
            ),
            down_interface=interposer.down_interface,
        )
        stack = PackagingStack(levels=tuple(levels), spec=spec)
        analyzer = LossAnalyzer(spec=spec, stack=stack)
        breakdown = analyzer.analyze(single_stage_a1(), topology)
        points.append(
            SweepPoint(
                label=f"RDL {thickness:g} um",
                value=thickness,
                total_loss_w=breakdown.total_loss_w,
                loss_pct=100.0 * breakdown.paper_loss_fraction,
                efficiency=breakdown.efficiency,
                detail=f"horizontal {breakdown.horizontal_loss_w:.1f} W",
            )
        )
    return points


def hotspot_sweep(
    uniform_fractions: tuple[float, ...] = (1.0, 0.7, 0.45, 0.25, 0.1),
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
) -> list[tuple[float, SharingResult, SharingResult]]:
    """A1 vs A2 per-VR current spread as the hotspot sharpens.

    Returns (uniform_fraction, A1 sharing, A2 sharing) tuples; as the
    map concentrates, A2's spread explodes while A1's stays bounded —
    the paper's qualitative point.
    """
    spec = spec or SystemSpec()
    results = []
    for fraction in uniform_fractions:
        if fraction >= 1.0:
            pmap = PowerMap.uniform()
        else:
            pmap = PowerMap.hotspot_mixture(uniform_fraction=fraction)
        a1 = analyze_current_sharing(
            single_stage_a1(), topology, spec=spec, power_map=pmap
        )
        a2 = analyze_current_sharing(
            single_stage_a2(), topology, spec=spec, power_map=pmap
        )
        results.append((fraction, a1, a2))
    return results


@dataclass(frozen=True)
class DeviceComparisonPoint:
    """Si vs GaN buck comparison at one switching frequency."""

    frequency_hz: float
    technology: str
    feasible: bool
    efficiency: float
    loss_w: float


def si_vs_gan_buck(
    frequencies_hz: tuple[float, ...] = (0.5e6, 1e6, 2e6, 5e6),
    v_in_v: float = 12.0,
    v_out_v: float = 1.0,
    i_out_a: float = 25.0,
) -> list[DeviceComparisonPoint]:
    """Physics-based buck efficiency for Si vs GaN over frequency.

    Shows GaN's advantage growing with frequency — the paper's case
    for GaN in small-form-factor integrated regulators.
    """
    technologies: list[TransistorTechnology] = [SI_POWER_MOSFET, GAN_100V]
    results: list[DeviceComparisonPoint] = []
    for frequency in frequencies_hz:
        for tech in technologies:
            try:
                buck = SynchronousBuck(
                    v_in_v=v_in_v,
                    v_out_v=v_out_v,
                    frequency_hz=frequency,
                    inductor=Inductor(
                        inductance_h=200e-9 * (1e6 / frequency),
                        dcr_ohm=0.3e-3,
                        rated_current_a=60.0,
                    ),
                    output_capacitor=Capacitor(100e-6, esr_ohm=0.2e-3),
                    high_side=PowerSwitch.sized_for(2e-3, tech),
                    low_side=PowerSwitch.sized_for(1e-3, tech),
                    max_load_a=60.0,
                )
                efficiency = buck.efficiency(i_out_a)
                loss = buck.loss_w(i_out_a)
                feasible = True
            except InfeasibleError:
                efficiency, loss, feasible = 0.0, float("nan"), False
            results.append(
                DeviceComparisonPoint(
                    frequency_hz=frequency,
                    technology=tech.material,
                    feasible=feasible,
                    efficiency=efficiency,
                    loss_w=loss,
                )
            )
    return results


@dataclass(frozen=True)
class DecapDensityPoint:
    """Worst-node impedance at one per-node decap allocation."""

    label: str
    density: float
    peak_impedance_ohm: float
    peak_frequency_hz: float
    meets_target: bool


def _decap_chunk(payload: tuple, scenarios: tuple) -> list:
    """Evaluate decap-density points (full impedance map per point)."""
    spec, topology, arch, grid_nodes, kwargs = payload
    points: list[DecapDensityPoint] = []
    for scenario in scenarios:
        density = scenario.params
        report: ImpedanceMapReport = analyze_impedance_map(
            arch,
            topology,
            spec=spec,
            grid_nodes=grid_nodes,
            decap_density=density,
            **kwargs,
        )
        points.append(
            DecapDensityPoint(
                label=f"{density:g} cells/node",
                density=density,
                peak_impedance_ohm=report.peak_impedance_ohm,
                peak_frequency_hz=report.peak_frequency_hz,
                meets_target=report.meets_target,
            )
        )
    return points


@dataclass(frozen=True)
class TransientEnsemblePoint:
    """Load-step droop at one per-node decap allocation."""

    label: str
    density: float
    droop_v: float
    settle_time_s: float
    within_budget: bool
    engine: str


def _transient_chunk(payload: tuple, scenarios: tuple) -> list:
    """Evaluate load-step points (full transient run per point).

    Module-level so the process-pool executor can pickle it; each
    point factors its (topology, Δt, C_eff) mesh once and steps the
    whole trace at back-substitution cost.
    """
    spec, topology, arch, grid_nodes, kwargs = payload
    points: list[TransientEnsemblePoint] = []
    for scenario in scenarios:
        density = scenario.params
        report: TransientDroopReport = analyze_load_step(
            arch,
            topology,
            spec=spec,
            grid_nodes=grid_nodes,
            decap_density=density,
            **kwargs,
        )
        points.append(
            TransientEnsemblePoint(
                label=f"{density:g} cells/node",
                density=density,
                droop_v=report.droop_v,
                settle_time_s=report.settle_time_s,
                within_budget=report.within_budget,
                engine=report.engine,
            )
        )
    return points


def load_step_ensemble(
    densities: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
    arch=None,
    grid_nodes: int = 12,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
    **kwargs,
) -> list[TransientEnsemblePoint]:
    """Worst-node load-step droop vs per-node decap allocation.

    The time-domain companion of :func:`decap_density_sweep`: each
    point runs the full factor-once grid transient engine
    (:func:`~repro.core.ir_drop.analyze_load_step`) at ``density``
    decap unit cells per mesh node and records the worst-node droop
    and settle time.  Extra keyword arguments are forwarded to
    :func:`~repro.core.ir_drop.analyze_load_step`.

    Each point is a full load-step simulation — factored once, then
    stepped at back-substitution cost; ``jobs`` fans the points across
    worker processes (one density per chunk by default) with results
    identical for any worker count.
    """
    if not densities:
        raise ConfigError("at least one density required")
    spec = spec or SystemSpec()
    arch = arch or single_stage_a2()
    plan = SweepPlan(
        scenarios=tuple(
            Scenario(key=float(d), params=float(d)) for d in densities
        ),
        runner=_transient_chunk,
        payload=(spec, topology, arch, grid_nodes, kwargs),
        chunk_size=1 if chunk_size is None else chunk_size,
        label="load-step ensemble",
    )
    return run_sweep_collect(plan, jobs=jobs)


def decap_density_sweep(
    densities: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
    arch=None,
    grid_nodes: int = 12,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
    **kwargs,
) -> list[DecapDensityPoint]:
    """Worst-node die-seen Z(f) vs per-node decap allocation.

    The AC ablation the grid-level engine enables: each point re-sweeps
    the full per-node impedance map of the architecture (default A2)
    with ``density`` decap unit cells per mesh node.  More cells in
    parallel push the anti-resonant peak down — the knob a designer
    turns when :class:`~repro.core.ir_drop.ImpedanceMapReport` fails
    its target.  Extra keyword arguments are forwarded to
    :func:`~repro.core.ir_drop.analyze_impedance_map`.

    Each point is a full AC map solve, so the executor defaults to one
    density per chunk; ``jobs`` fans the points across processes with
    identical results for any worker count.
    """
    if not densities:
        raise ConfigError("at least one density required")
    spec = spec or SystemSpec()
    arch = arch or single_stage_a2()
    plan = SweepPlan(
        scenarios=tuple(
            Scenario(key=float(d), params=float(d)) for d in densities
        ),
        runner=_decap_chunk,
        payload=(spec, topology, arch, grid_nodes, kwargs),
        chunk_size=1 if chunk_size is None else chunk_size,
        label="decap-density sweep",
    )
    return run_sweep_collect(plan, jobs=jobs)


@dataclass(frozen=True)
class PlacementBudgetPoint:
    """Optimized-placement outcome at one total-capacitance budget."""

    label: str
    budget_scale: float
    capacitance_budget_f: float
    peak_impedance_ohm: float
    violating_fraction: float
    iterations: int
    meets_target: bool


def _placement_chunk(payload: tuple, scenarios: tuple) -> list:
    """Evaluate placement-budget points (full optimizer run per point)."""
    spec, topology, arch, grid_nodes, kwargs = payload
    # The attached total the scales multiply: density unit cells on
    # every mesh node.
    base_f = (
        kwargs.get("decap_density", 1.0)
        * grid_nodes
        * grid_nodes
        * kwargs.get("decap_per_unit_f", DEFAULT_DECAP_PER_UNIT_F)
    )
    points: list[PlacementBudgetPoint] = []
    for scenario in scenarios:
        scale = scenario.params
        report: PlacementReport = optimize_decap_placement_map(
            arch,
            topology,
            spec=spec,
            grid_nodes=grid_nodes,
            budget_f=scale * base_f,
            **kwargs,
        )
        points.append(
            PlacementBudgetPoint(
                label=f"{scale:g}x budget",
                budget_scale=scale,
                capacitance_budget_f=report.capacitance_budget_f,
                peak_impedance_ohm=report.placement.peak_impedance_after_ohm,
                violating_fraction=report.placement.violating_fraction_after,
                iterations=report.placement.iterations,
                meets_target=report.meets_target,
            )
        )
    return points


def placement_budget_sweep(
    budget_scales: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    spec: SystemSpec | None = None,
    topology: ConverterSpec = DSCH,
    arch=None,
    grid_nodes: int = 12,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
    **kwargs,
) -> list[PlacementBudgetPoint]:
    """Optimized decap placement vs total-capacitance budget.

    The spatial successor of :func:`decap_density_sweep`: instead of
    asking "what does a uniform density of ``d`` buy", each point asks
    "what does the *optimally placed* budget of ``scale × attached
    total`` buy" — running the full greedy + adjoint placement
    optimizer (:func:`~repro.core.ir_drop.optimize_decap_placement_map`)
    per point and recording the post-optimization peak |Z| and
    violating-node fraction.  Extra keyword arguments are forwarded to
    the optimizer.

    Each point is a full optimization run, so the executor defaults to
    one budget per chunk; ``jobs`` fans the points across worker
    processes with results identical for any worker count.
    """
    if not budget_scales:
        raise ConfigError("at least one budget scale required")
    if any(s <= 0 for s in budget_scales):
        raise ConfigError("budget scales must be positive")
    spec = spec or SystemSpec()
    arch = arch or single_stage_a2()
    plan = SweepPlan(
        scenarios=tuple(
            Scenario(key=float(s), params=float(s)) for s in budget_scales
        ),
        runner=_placement_chunk,
        payload=(spec, topology, arch, grid_nodes, kwargs),
        chunk_size=1 if chunk_size is None else chunk_size,
        label="placement-budget sweep",
    )
    return run_sweep_collect(plan, jobs=jobs)
