"""The power delivery architectures of Section II.

====== ===========================================================
A0     48V-to-1V at PCB (transformer + multiphase buck, 90%);
       POL current crosses every packaging level laterally and
       vertically.  Die attach: solder micro-bumps.
A1     single-stage 48V-to-1V; power transistors ON the interposer
       along the die periphery, passives embedded in-interposer
       beneath them.  Die attach: advanced Cu-Cu pads.
A2     single-stage 48V-to-1V; transistors and passives embedded IN
       the interposer, distributed below the die.
A3@12V 48V→12V on-interposer periphery (DPMIH), 12V→1V below the
       die (on a dedicated power die / in-interposer).
A3@6V  as A3@12V with a 6 V intermediate rail.
====== ===========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..converters.catalog import DPMIH, ConverterSpec
from ..errors import ConfigError
from ..pdn.interconnect import ADVANCED_CU_PAD, MICRO_BUMP, VerticalInterconnect
from ..placement.planner import PlacementStyle


class ArchitectureKind(enum.Enum):
    """Structural family of an architecture."""

    PCB_CONVERSION = "pcb-conversion"
    SINGLE_STAGE_VERTICAL = "single-stage-vertical"
    DUAL_STAGE_VERTICAL = "dual-stage-vertical"


@dataclass(frozen=True)
class ArchitectureSpec:
    """A power delivery architecture.

    Attributes:
        name: paper name ("A0", "A1", "A2", "A3@12V", "A3@6V").
        kind: structural family.
        description: one-line summary.
        die_attach: interposer-to-die vertical technology.
        pol_stage_style: placement of the POL-voltage regulators
            (None for A0, whose conversion happens at the PCB).
        intermediate_voltage_v: intermediate rail voltage for
            dual-stage architectures (None otherwise).
        stage1_converter: converter used for the first stage of a
            dual-stage architecture (the paper fixes DPMIH).
    """

    name: str
    kind: ArchitectureKind
    description: str
    die_attach: VerticalInterconnect
    pol_stage_style: PlacementStyle | None
    intermediate_voltage_v: float | None = None
    stage1_converter: ConverterSpec | None = None

    def __post_init__(self) -> None:
        if self.kind is ArchitectureKind.PCB_CONVERSION:
            if self.pol_stage_style is not None:
                raise ConfigError("A0 has no on-package POL stage")
            if self.intermediate_voltage_v is not None:
                raise ConfigError("A0 carries no intermediate rail")
        else:
            if self.pol_stage_style is None:
                raise ConfigError(
                    "vertical architectures must place their POL stage"
                )
        if self.kind is ArchitectureKind.DUAL_STAGE_VERTICAL:
            if self.intermediate_voltage_v is None:
                raise ConfigError("dual-stage needs an intermediate voltage")
            if self.intermediate_voltage_v <= 1.0:
                raise ConfigError("intermediate voltage must exceed V_POL")
            if self.stage1_converter is None:
                raise ConfigError("dual-stage needs a stage-1 converter")
        elif self.intermediate_voltage_v is not None:
            raise ConfigError("only dual-stage carries an intermediate rail")

    @property
    def is_vertical(self) -> bool:
        """True for the proposed (non-A0) architectures."""
        return self.kind is not ArchitectureKind.PCB_CONVERSION

    @property
    def is_dual_stage(self) -> bool:
        """True for A3 variants."""
        return self.kind is ArchitectureKind.DUAL_STAGE_VERTICAL


def reference_a0() -> ArchitectureSpec:
    """A0: the traditional PCB-level conversion reference."""
    return ArchitectureSpec(
        name="A0",
        kind=ArchitectureKind.PCB_CONVERSION,
        description=(
            "48V-to-1V at the PCB (transformer 48->12 + multiphase buck), "
            "POL current distributed through the full PPDN"
        ),
        die_attach=MICRO_BUMP,
        pol_stage_style=None,
    )


def single_stage_a1() -> ArchitectureSpec:
    """A1: single-stage conversion, VRs on-interposer along the die
    periphery, passives embedded beneath them (Fig. 4(a))."""
    return ArchitectureSpec(
        name="A1",
        kind=ArchitectureKind.SINGLE_STAGE_VERTICAL,
        description=(
            "single-stage 48V-to-1V, on-interposer periphery power "
            "transistors, in-interposer passives"
        ),
        die_attach=ADVANCED_CU_PAD,
        pol_stage_style=PlacementStyle.PERIPHERY,
    )


def single_stage_a2() -> ArchitectureSpec:
    """A2: single-stage conversion fully embedded in-interposer,
    distributed below the die (Fig. 4(b))."""
    return ArchitectureSpec(
        name="A2",
        kind=ArchitectureKind.SINGLE_STAGE_VERTICAL,
        description=(
            "single-stage 48V-to-1V, in-interposer power transistors and "
            "passives distributed below the die"
        ),
        die_attach=ADVANCED_CU_PAD,
        pol_stage_style=PlacementStyle.BELOW_DIE,
    )


def dual_stage_a3(
    intermediate_voltage_v: float,
    stage1_converter: ConverterSpec = DPMIH,
) -> ArchitectureSpec:
    """A3: dual-stage conversion — 48V to the intermediate rail on the
    interposer periphery, intermediate-to-1V below the die (Fig. 4(c)).

    The paper evaluates 12 V and 6 V intermediate rails (A3@12V and
    A3@6V) with DPMIH as the first stage.
    """
    if intermediate_voltage_v not in (6.0, 12.0):
        # Other rails are allowed for exploration but flagged by name.
        name = f"A3@{intermediate_voltage_v:g}V*"
    else:
        name = f"A3@{intermediate_voltage_v:g}V"
    return ArchitectureSpec(
        name=name,
        kind=ArchitectureKind.DUAL_STAGE_VERTICAL,
        description=(
            f"dual-stage 48V->{intermediate_voltage_v:g}V (periphery) then "
            f"{intermediate_voltage_v:g}V->1V (below die)"
        ),
        die_attach=ADVANCED_CU_PAD,
        pol_stage_style=PlacementStyle.BELOW_DIE,
        intermediate_voltage_v=intermediate_voltage_v,
        stage1_converter=stage1_converter,
    )


def all_architectures() -> list[ArchitectureSpec]:
    """A0 plus the four proposed architectures, in paper order."""
    return [
        reference_a0(),
        single_stage_a1(),
        single_stage_a2(),
        dual_stage_a3(12.0),
        dual_stage_a3(6.0),
    ]


#: The paper's architecture set (A0, A1, A2, A3@12V, A3@6V).
ALL_ARCHITECTURES: tuple[ArchitectureSpec, ...] = tuple(all_architectures())


def architecture(name: str) -> ArchitectureSpec:
    """Look up an architecture by paper name (case-insensitive)."""
    for arch in ALL_ARCHITECTURES:
        if arch.name.lower() == name.lower():
            return arch
    raise ConfigError(f"unknown architecture: {name!r}")
