"""Full architecture × topology characterization (the Fig. 7 study).

Runs the loss engine for every (architecture, converter) pair,
recording infeasible pairs with the exclusion reason instead of
failing — exactly how the paper handles 3LHD ("the efficiency for the
required current load of 20 A per VR is not reported ... power loss
... with the 3LHD topology is not shown in Figure 7").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..converters.catalog import CATALOG, ConverterSpec
from ..errors import InfeasibleError
from .architectures import ALL_ARCHITECTURES, ArchitectureSpec
from .loss_analysis import LossAnalyzer, LossBreakdown, LossModelParameters


@dataclass(frozen=True)
class CharacterizationRow:
    """One Fig. 7 design point: a breakdown or an exclusion reason."""

    architecture: str
    topology: str
    breakdown: LossBreakdown | None
    excluded_reason: str | None

    @property
    def included(self) -> bool:
        """True when the design point appears in Fig. 7."""
        return self.breakdown is not None


def characterize_all(
    spec: SystemSpec | None = None,
    architectures: tuple[ArchitectureSpec, ...] | None = None,
    topologies: tuple[ConverterSpec, ...] | None = None,
    params: LossModelParameters | None = None,
) -> list[CharacterizationRow]:
    """Characterize every architecture × topology pair.

    A0 is evaluated once (its converter is the fixed PCB stage, not a
    swept topology); vertical architectures are evaluated per topology.
    """
    spec = spec or SystemSpec()
    architectures = architectures or ALL_ARCHITECTURES
    topologies = topologies or CATALOG
    analyzer = LossAnalyzer(spec=spec, params=params)

    rows: list[CharacterizationRow] = []
    for arch in architectures:
        if not arch.is_vertical:
            breakdown = analyzer.analyze(arch, topologies[0])
            rows.append(
                CharacterizationRow(
                    architecture=arch.name,
                    topology="PCB 48V-to-1V",
                    breakdown=breakdown,
                    excluded_reason=None,
                )
            )
            continue
        for topo in topologies:
            try:
                breakdown = analyzer.analyze(arch, topo)
            except InfeasibleError as exc:
                rows.append(
                    CharacterizationRow(
                        architecture=arch.name,
                        topology=topo.name,
                        breakdown=None,
                        excluded_reason=str(exc),
                    )
                )
            else:
                rows.append(
                    CharacterizationRow(
                        architecture=arch.name,
                        topology=topo.name,
                        breakdown=breakdown,
                        excluded_reason=None,
                    )
                )
    return rows


@dataclass(frozen=True)
class Fig7Claims:
    """The quantitative claims the paper attaches to Fig. 7."""

    a0_loss_pct: float
    best_vertical_loss_pct: float
    worst_vertical_loss_pct: float
    vertical_loss_negligible: bool
    all_ppdn_below_10pct: bool
    all_converters_above_10pct: bool
    horizontal_reduction_a3_12v: float
    horizontal_reduction_a3_6v: float
    excluded_topologies: tuple[str, ...]


def fig7_claims(rows: list[CharacterizationRow]) -> Fig7Claims:
    """Extract the paper's headline claims from a characterization."""
    by_arch: dict[str, list[CharacterizationRow]] = {}
    for row in rows:
        by_arch.setdefault(row.architecture, []).append(row)

    a0_rows = [r for r in by_arch.get("A0", []) if r.included]
    if not a0_rows:
        raise InfeasibleError("characterization lacks an A0 row")
    a0 = a0_rows[0].breakdown

    vertical = [
        r.breakdown
        for r in rows
        if r.included and r.architecture != "A0"
    ]
    if not vertical:
        raise InfeasibleError("characterization lacks vertical rows")

    def pct(b: LossBreakdown) -> float:
        return 100.0 * b.paper_loss_fraction

    a0_horizontal = a0.horizontal_loss_w

    def horizontal_reduction(arch_name: str) -> float:
        candidates = [
            r.breakdown
            for r in by_arch.get(arch_name, [])
            if r.included
        ]
        if not candidates:
            return float("nan")
        best = min(c.horizontal_loss_w for c in candidates)
        return a0_horizontal / best

    nominal = a0.spec.pol_power_w
    return Fig7Claims(
        a0_loss_pct=pct(a0),
        best_vertical_loss_pct=min(pct(b) for b in vertical),
        worst_vertical_loss_pct=max(pct(b) for b in vertical),
        vertical_loss_negligible=all(
            b.vertical_loss_w / nominal < 0.01 for b in vertical + [a0]
        ),
        all_ppdn_below_10pct=all(
            b.ppdn_loss_w / nominal < 0.10 for b in vertical
        ),
        all_converters_above_10pct=all(
            b.converter_loss_w / nominal > 0.10 for b in vertical
        ),
        horizontal_reduction_a3_12v=horizontal_reduction("A3@12V"),
        horizontal_reduction_a3_6v=horizontal_reduction("A3@6V"),
        excluded_topologies=tuple(
            sorted({r.topology for r in rows if not r.included})
        ),
    )
