"""The paper's primary contribution: vertical power delivery
architectures and their characterization.

* :mod:`~repro.core.architectures` — A0 (reference) and the four
  proposed vertical architectures (A1, A2, A3@12V, A3@6V),
* :mod:`~repro.core.loss_analysis` — the PCB-to-POL DC loss engine
  (Fig. 7),
* :mod:`~repro.core.current_sharing` — per-VR current distribution via
  the grid PDN solver (the 16–27 A / 10–93 A observations),
* :mod:`~repro.core.utilization` — vertical-interconnect utilization
  and the A0 power-density limit,
* :mod:`~repro.core.characterization` — the full architecture x
  topology study,
* :mod:`~repro.core.exploration` — design-space sweeps and ablations.
"""

from .architectures import (
    ALL_ARCHITECTURES,
    ArchitectureKind,
    ArchitectureSpec,
    architecture,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
    dual_stage_a3,
)
from .loss_analysis import (
    LossAnalyzer,
    LossBreakdown,
    LossComponent,
    LossModelParameters,
)
from .current_sharing import SharingResult, analyze_current_sharing
from .utilization import (
    A0DensityReport,
    UtilizationReport,
    UtilizationRow,
    a0_die_area_requirement,
    vertical_utilization,
)
from .characterization import CharacterizationRow, characterize_all, fig7_claims
from .electro_thermal import ElectroThermalResult, electro_thermal_loss
from .energy import DeploymentModel, EnergyReport, annual_energy, annual_savings
from .ir_drop import (
    ImpedanceMapReport,
    IRDropReport,
    PlacementReport,
    TransientDroopReport,
    analyze_impedance_map,
    analyze_ir_drop,
    analyze_load_step,
    compare_architectures,
    optimize_decap_placement_map,
)
from .optimizer import (
    DesignCandidate,
    DesignConstraints,
    OptimizationResult,
    optimize_design,
)
from .redundancy import (
    FailureResult,
    ToleranceReport,
    failure_tolerance,
    inject_failures,
)
from .scaling_study import (
    DensityPoint,
    a0_density_limit,
    density_scaling_study,
)
from .exploration import (
    DecapDensityPoint,
    PlacementBudgetPoint,
    SweepPoint,
    TransientEnsemblePoint,
    decap_density_sweep,
    load_step_ensemble,
    placement_budget_sweep,
)
from .variation import VariationResult, VariationSpec, monte_carlo_loss

__all__ = [
    "ArchitectureKind",
    "ArchitectureSpec",
    "architecture",
    "reference_a0",
    "single_stage_a1",
    "single_stage_a2",
    "dual_stage_a3",
    "ALL_ARCHITECTURES",
    "LossAnalyzer",
    "LossBreakdown",
    "LossComponent",
    "LossModelParameters",
    "SharingResult",
    "analyze_current_sharing",
    "UtilizationReport",
    "UtilizationRow",
    "A0DensityReport",
    "vertical_utilization",
    "a0_die_area_requirement",
    "CharacterizationRow",
    "characterize_all",
    "fig7_claims",
    "ElectroThermalResult",
    "electro_thermal_loss",
    "DeploymentModel",
    "EnergyReport",
    "annual_energy",
    "annual_savings",
    "IRDropReport",
    "analyze_ir_drop",
    "compare_architectures",
    "ImpedanceMapReport",
    "analyze_impedance_map",
    "PlacementReport",
    "optimize_decap_placement_map",
    "TransientDroopReport",
    "analyze_load_step",
    "SweepPoint",
    "DecapDensityPoint",
    "decap_density_sweep",
    "PlacementBudgetPoint",
    "placement_budget_sweep",
    "TransientEnsemblePoint",
    "load_step_ensemble",
    "DesignConstraints",
    "DesignCandidate",
    "OptimizationResult",
    "optimize_design",
    "VariationSpec",
    "VariationResult",
    "monte_carlo_loss",
    "DensityPoint",
    "density_scaling_study",
    "a0_density_limit",
    "FailureResult",
    "ToleranceReport",
    "inject_failures",
    "failure_tolerance",
]
