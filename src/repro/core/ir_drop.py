"""Die-level IR-drop (voltage map) analysis.

The DC loss numbers say how much power an architecture wastes; the
IR-drop map says whether the die even *works* — every POL node must
stay above the minimum supply voltage (a 3–5% droop budget at 1 V).
This analysis solves the same die-level grid used for current sharing
and reports the spatial voltage statistics per architecture, showing
why distributed under-die regulation (A2) beats the periphery ring
(A1) on worst-case droop even when the loss numbers are close.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec
from ..errors import ConfigError
from ..pdn.grid import GridPDN
from ..pdn.powermap import PowerMap
from ..pdn.stackup import default_stack
from ..placement.planner import PlacementStyle, plan_placement
from .architectures import ArchitectureSpec
from .current_sharing import (
    DEFAULT_OUTPUT_RESISTANCE_OHM,
    RING_BUS_SHEET_OHM_SQ,
    RING_BUS_WIDTH_M,
)

#: Default droop budget: the die must stay within 5% of nominal.
DEFAULT_DROOP_BUDGET_FRACTION = 0.05


@dataclass(frozen=True)
class IRDropReport:
    """Spatial voltage statistics of one design point.

    Attributes:
        architecture / topology: design-point labels.
        nominal_v: the POL target voltage.
        min_voltage_v / mean_voltage_v: across all die nodes.
        worst_droop_v: nominal minus the minimum node voltage.
        droop_budget_v: the allowed droop.
        voltage_map: full (ny, nx) node-voltage array.
        worst_node: (x_frac, y_frac) of the worst node.
    """

    architecture: str
    topology: str
    nominal_v: float
    min_voltage_v: float
    mean_voltage_v: float
    worst_droop_v: float
    droop_budget_v: float
    voltage_map: np.ndarray
    worst_node: tuple[float, float]

    @property
    def within_budget(self) -> bool:
        """True if the worst droop respects the budget."""
        return self.worst_droop_v <= self.droop_budget_v + 1e-12

    @property
    def droop_fraction(self) -> float:
        """Worst droop as a fraction of nominal."""
        return self.worst_droop_v / self.nominal_v


def analyze_ir_drop(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    power_map: PowerMap | None = None,
    grid_nodes: int = 28,
    droop_budget_fraction: float = DEFAULT_DROOP_BUDGET_FRACTION,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
) -> IRDropReport:
    """Solve the die voltage map for a vertical architecture.

    The VRs regulate to ``nominal + budget/2`` (centering the band, as
    a real design would) and the report measures the excursion of the
    worst node from nominal.
    """
    if not arch.is_vertical:
        raise ConfigError("IR-drop maps apply to on-package VR stages")
    if not 0.0 < droop_budget_fraction < 0.5:
        raise ConfigError("droop budget fraction must be in (0, 0.5)")
    spec = spec or SystemSpec()
    power_map = power_map or PowerMap.hotspot_mixture()

    plan = plan_placement(
        topology,
        arch.pol_stage_style,
        spec.pol_current_a,
        spec.die_area_mm2,
    )
    stack = default_stack(spec)
    sheet = stack.level("Interposer").lateral.sheet_ohm_sq
    grid = GridPDN(
        width_m=spec.die_side_m,
        height_m=spec.die_side_m,
        sheet_ohm_sq=sheet,
        nx=grid_nodes,
        ny=grid_nodes,
    )
    grid.set_sinks(power_map, spec.pol_current_a)

    nominal = spec.pol_voltage_v
    budget = droop_budget_fraction * nominal
    setpoint = nominal + budget / 2.0
    for index, position in enumerate(plan.positions):
        grid.add_source(
            f"vr{index}", position.x, position.y, setpoint, output_resistance_ohm
        )
    if plan.style is PlacementStyle.PERIPHERY and plan.vr_count >= 3:
        spacing = 4.0 * spec.die_side_m / plan.vr_count
        grid.connect_sources_with_ring_bus(
            RING_BUS_SHEET_OHM_SQ * spacing / RING_BUS_WIDTH_M
        )

    solution = grid.solve()
    vmap = solution.voltage_map
    iy, ix = np.unravel_index(int(np.argmin(vmap)), vmap.shape)
    return IRDropReport(
        architecture=arch.name,
        topology=topology.name,
        nominal_v=nominal,
        min_voltage_v=float(vmap.min()),
        mean_voltage_v=float(vmap.mean()),
        worst_droop_v=float(nominal - vmap.min()),
        droop_budget_v=budget,
        voltage_map=vmap,
        worst_node=(ix / (grid_nodes - 1), iy / (grid_nodes - 1)),
    )


def compare_architectures(
    architectures: list[ArchitectureSpec],
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    **kwargs: object,
) -> list[IRDropReport]:
    """IR-drop reports for several architectures, same conditions."""
    if not architectures:
        raise ConfigError("at least one architecture required")
    return [
        analyze_ir_drop(arch, topology, spec=spec, **kwargs)
        for arch in architectures
    ]
