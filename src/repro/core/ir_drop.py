"""Die-level IR-drop (voltage map) and AC impedance-map analysis.

The DC loss numbers say how much power an architecture wastes; the
IR-drop map says whether the die even *works* — every POL node must
stay above the minimum supply voltage (a 3–5% droop budget at 1 V).
This analysis solves the same die-level grid used for current sharing
and reports the spatial voltage statistics per architecture, showing
why distributed under-die regulation (A2) beats the periphery ring
(A1) on worst-case droop even when the loss numbers are close.

:func:`analyze_impedance_map` is the frequency-domain companion: the
same die grid and VR placement, with per-node decap allocation and
bump/TSV inductance, swept for the die-seen impedance Z(f) at every
node (:class:`~repro.pdn.grid.GridACPDN`) and judged against the
standard target impedance ``Z_t = V · ripple / ΔI``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemSpec
from ..converters.catalog import ConverterSpec
from ..errors import ConfigError
from ..pdn.decap_placement import (
    PlacementResult,
    optimize_decap_placement,
    size_decap_placement_for_target,
)
from ..pdn.grid import GridACPDN, GridImpedanceMap, GridPDN
from ..pdn.grid_transient import GridTransientPDN
from ..pdn.impedance import target_impedance_ohm
from ..pdn.powermap import PowerMap
from ..pdn.stackup import default_stack
from ..placement.planner import PlacementStyle, plan_placement
from .architectures import ArchitectureSpec
from .current_sharing import (
    DEFAULT_OUTPUT_RESISTANCE_OHM,
    RING_BUS_SHEET_OHM_SQ,
    RING_BUS_WIDTH_M,
)

#: Default droop budget: the die must stay within 5% of nominal.
DEFAULT_DROOP_BUDGET_FRACTION = 0.05

#: Default per-node decap unit cell for the impedance map: on-die /
#: on-interposer MIM-style capacitance with its parasitics.
DEFAULT_DECAP_PER_UNIT_F = 0.2e-6
DEFAULT_DECAP_ESR_OHM = 2e-3
DEFAULT_DECAP_ESL_H = 1e-12

#: Bump/TSV loop inductance in series with each VR output.
DEFAULT_SOURCE_INDUCTANCE_H = 5e-12

#: Fraction of the POL current assumed to swing in a load transient
#: when deriving the target impedance.
DEFAULT_TRANSIENT_FRACTION = 0.5


@dataclass(frozen=True)
class IRDropReport:
    """Spatial voltage statistics of one design point.

    Attributes:
        architecture / topology: design-point labels.
        nominal_v: the POL target voltage.
        min_voltage_v / mean_voltage_v: across all die nodes.
        worst_droop_v: nominal minus the minimum node voltage.
        droop_budget_v: the allowed droop.
        voltage_map: full (ny, nx) node-voltage array.
        worst_node: (x_frac, y_frac) of the worst node.
    """

    architecture: str
    topology: str
    nominal_v: float
    min_voltage_v: float
    mean_voltage_v: float
    worst_droop_v: float
    droop_budget_v: float
    voltage_map: np.ndarray
    worst_node: tuple[float, float]

    @property
    def within_budget(self) -> bool:
        """True if the worst droop respects the budget."""
        return self.worst_droop_v <= self.droop_budget_v + 1e-12

    @property
    def droop_fraction(self) -> float:
        """Worst droop as a fraction of nominal."""
        return self.worst_droop_v / self.nominal_v


def _die_grid_with_bank(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec,
    power_map: PowerMap | None,
    grid_nodes: int,
    setpoint_v: float,
    output_resistance_ohm: float,
):
    """The die-level grid with the architecture's VR bank attached.

    One builder shared by the DC IR-drop map and the AC impedance map
    so both analyses see the identical mesh, sheet resistance, VR
    placement, and ring bus.  Returns ``(grid, plan)``.
    """
    if not arch.is_vertical:
        raise ConfigError("die-grid maps apply to on-package VR stages")
    plan = plan_placement(
        topology,
        arch.pol_stage_style,
        spec.pol_current_a,
        spec.die_area_mm2,
    )
    stack = default_stack(spec)
    sheet = stack.level("Interposer").lateral.sheet_ohm_sq
    grid = GridPDN(
        width_m=spec.die_side_m,
        height_m=spec.die_side_m,
        sheet_ohm_sq=sheet,
        nx=grid_nodes,
        ny=grid_nodes,
    )
    if power_map is not None:
        grid.set_sinks(power_map, spec.pol_current_a)
    for index, position in enumerate(plan.positions):
        grid.add_source(
            f"vr{index}",
            position.x,
            position.y,
            setpoint_v,
            output_resistance_ohm,
        )
    if plan.style is PlacementStyle.PERIPHERY and plan.vr_count >= 3:
        spacing = 4.0 * spec.die_side_m / plan.vr_count
        grid.connect_sources_with_ring_bus(
            RING_BUS_SHEET_OHM_SQ * spacing / RING_BUS_WIDTH_M
        )
    return grid, plan


def analyze_ir_drop(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    power_map: PowerMap | None = None,
    grid_nodes: int = 28,
    droop_budget_fraction: float = DEFAULT_DROOP_BUDGET_FRACTION,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
) -> IRDropReport:
    """Solve the die voltage map for a vertical architecture.

    The VRs regulate to ``nominal + budget/2`` (centering the band, as
    a real design would) and the report measures the excursion of the
    worst node from nominal.
    """
    if not arch.is_vertical:
        raise ConfigError("IR-drop maps apply to on-package VR stages")
    if not 0.0 < droop_budget_fraction < 0.5:
        raise ConfigError("droop budget fraction must be in (0, 0.5)")
    spec = spec or SystemSpec()
    power_map = power_map or PowerMap.hotspot_mixture()

    nominal = spec.pol_voltage_v
    budget = droop_budget_fraction * nominal
    setpoint = nominal + budget / 2.0
    grid, _ = _die_grid_with_bank(
        arch,
        topology,
        spec,
        power_map,
        grid_nodes,
        setpoint,
        output_resistance_ohm,
    )

    solution = grid.solve()
    vmap = solution.voltage_map
    iy, ix = np.unravel_index(int(np.argmin(vmap)), vmap.shape)
    return IRDropReport(
        architecture=arch.name,
        topology=topology.name,
        nominal_v=nominal,
        min_voltage_v=float(vmap.min()),
        mean_voltage_v=float(vmap.mean()),
        worst_droop_v=float(nominal - vmap.min()),
        droop_budget_v=budget,
        voltage_map=vmap,
        worst_node=(ix / (grid_nodes - 1), iy / (grid_nodes - 1)),
    )


def compare_architectures(
    architectures: list[ArchitectureSpec],
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    **kwargs: object,
) -> list[IRDropReport]:
    """IR-drop reports for several architectures, same conditions."""
    if not architectures:
        raise ConfigError("at least one architecture required")
    return [
        analyze_ir_drop(arch, topology, spec=spec, **kwargs)
        for arch in architectures
    ]


@dataclass(frozen=True)
class ImpedanceMapReport:
    """Per-node die-seen Z(f) statistics of one design point.

    Attributes:
        architecture / topology: design-point labels.
        target_ohm: the target impedance the PDN must stay below.
        peak_impedance_ohm: worst |Z| over all nodes and frequencies.
        peak_frequency_hz: frequency of that worst |Z|.
        worst_node: (x_frac, y_frac) of the node with the worst peak.
        meets_target: True when every node passes everywhere.
        impedance: the full per-node impedance map.
    """

    architecture: str
    topology: str
    target_ohm: float
    peak_impedance_ohm: float
    peak_frequency_hz: float
    worst_node: tuple[float, float]
    meets_target: bool
    impedance: GridImpedanceMap

    @property
    def margin(self) -> float:
        """Target over peak: > 1 means the design passes with room."""
        return self.target_ohm / self.peak_impedance_ohm


def analyze_impedance_map(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    grid_nodes: int = 16,
    ripple_fraction: float = DEFAULT_DROOP_BUDGET_FRACTION,
    transient_fraction: float = DEFAULT_TRANSIENT_FRACTION,
    decap_density: float = 1.0,
    decap_per_unit_f: float = DEFAULT_DECAP_PER_UNIT_F,
    decap_esr_ohm: float = DEFAULT_DECAP_ESR_OHM,
    decap_esl_h: float = DEFAULT_DECAP_ESL_H,
    source_inductance_h: float = DEFAULT_SOURCE_INDUCTANCE_H,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
    frequencies_hz: np.ndarray | None = None,
) -> ImpedanceMapReport:
    """Sweep the die-seen per-node Z(f) of a vertical architecture.

    Builds the *same* die grid and VR placement as
    :func:`analyze_ir_drop`, adds the per-node decap allocation
    (``decap_density`` unit cells per node) and the vertical bump/TSV
    inductance of each VR output, and sweeps the grid-level impedance
    map.  The verdict compares every mesh node against the standard
    target impedance ``Z_t = V · ripple / ΔI`` with
    ``ΔI = transient_fraction · I_pol`` — the real-grid replacement
    for the closed-form ladder check.
    """
    if not arch.is_vertical:
        raise ConfigError("impedance maps apply to on-package VR stages")
    if not 0.0 < transient_fraction <= 1.0:
        raise ConfigError("transient fraction must be in (0, 1]")
    if decap_density <= 0:
        raise ConfigError("decap density must be positive")
    spec = spec or SystemSpec()
    if frequencies_hz is None:
        frequencies_hz = np.logspace(4, 9, 121)

    grid, _ = _die_grid_with_bank(
        arch,
        topology,
        spec,
        None,
        grid_nodes,
        spec.pol_voltage_v,
        output_resistance_ohm,
    )
    pdn = GridACPDN.from_grid(grid, source_inductance_h=source_inductance_h)
    pdn.set_decap_density(
        decap_density, decap_per_unit_f, decap_esr_ohm, decap_esl_h
    )
    impedance = pdn.impedance_map(frequencies_hz)

    target = target_impedance_ohm(
        spec.pol_voltage_v,
        ripple_fraction,
        transient_fraction * spec.pol_current_a,
    )
    ix, iy = impedance.worst_node()
    denom_x = max(impedance.nx - 1, 1)
    denom_y = max(impedance.ny - 1, 1)
    return ImpedanceMapReport(
        architecture=arch.name,
        topology=topology.name,
        target_ohm=target,
        peak_impedance_ohm=impedance.peak_impedance_ohm,
        peak_frequency_hz=impedance.peak_frequency_hz,
        worst_node=(ix / denom_x, iy / denom_y),
        meets_target=impedance.meets_target(target),
        impedance=impedance,
    )


@dataclass(frozen=True)
class PlacementReport:
    """Spatially-optimized decap placement for one design point.

    Attributes:
        architecture / topology: design-point labels.
        target_ohm: the target impedance the placement was driven to.
        placement: the full optimizer outcome (before/after density
            and peak maps, violating-fraction history, budget).
    """

    architecture: str
    topology: str
    target_ohm: float
    placement: PlacementResult

    @property
    def meets_target(self) -> bool:
        return self.placement.meets_target

    @property
    def capacitance_budget_f(self) -> float:
        return self.placement.capacitance_budget_f

    @property
    def peak_reduction_fraction(self) -> float:
        """Fractional peak-|Z| improvement over the attached map."""
        before = self.placement.peak_impedance_before_ohm
        after = self.placement.peak_impedance_after_ohm
        return 1.0 - after / before


def optimize_decap_placement_map(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    grid_nodes: int = 16,
    ripple_fraction: float = DEFAULT_DROOP_BUDGET_FRACTION,
    transient_fraction: float = DEFAULT_TRANSIENT_FRACTION,
    decap_density: float = 1.0,
    decap_per_unit_f: float = DEFAULT_DECAP_PER_UNIT_F,
    decap_esr_ohm: float = DEFAULT_DECAP_ESR_OHM,
    decap_esl_h: float = DEFAULT_DECAP_ESL_H,
    source_inductance_h: float = DEFAULT_SOURCE_INDUCTANCE_H,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
    frequencies_hz: np.ndarray | None = None,
    size_budget: bool = False,
    **placement_kwargs,
) -> PlacementReport:
    """Spatially optimize the decap allocation of a design point.

    Builds the identical die grid, VR bank, and decap attachment as
    :func:`analyze_impedance_map`, derives the same target impedance,
    and redistributes the decap budget toward the violating nodes with
    :func:`~repro.pdn.decap_placement.optimize_decap_placement`.  With
    ``size_budget=True`` the total budget itself is searched
    (:func:`~repro.pdn.decap_placement.size_decap_placement_for_target`)
    for the smallest optimized allocation that meets target — the
    spatial replacement for the uniform
    :func:`~repro.pdn.impedance.size_grid_decap_for_target` doubling.
    Extra keyword arguments are forwarded to the optimizer
    (``budget_f``, ``max_iterations``, ``coarse_shape``...).
    """
    if not arch.is_vertical:
        raise ConfigError("impedance maps apply to on-package VR stages")
    if not 0.0 < transient_fraction <= 1.0:
        raise ConfigError("transient fraction must be in (0, 1]")
    if decap_density <= 0:
        raise ConfigError("decap density must be positive")
    spec = spec or SystemSpec()
    if frequencies_hz is None:
        frequencies_hz = np.logspace(4, 9, 121)

    grid, _ = _die_grid_with_bank(
        arch,
        topology,
        spec,
        None,
        grid_nodes,
        spec.pol_voltage_v,
        output_resistance_ohm,
    )
    pdn = GridACPDN.from_grid(grid, source_inductance_h=source_inductance_h)
    pdn.set_decap_density(
        decap_density, decap_per_unit_f, decap_esr_ohm, decap_esl_h
    )
    target = target_impedance_ohm(
        spec.pol_voltage_v,
        ripple_fraction,
        transient_fraction * spec.pol_current_a,
    )
    if size_budget:
        placement = size_decap_placement_for_target(
            pdn, target, frequencies_hz=frequencies_hz, **placement_kwargs
        )
    else:
        placement = optimize_decap_placement(
            pdn, target, frequencies_hz=frequencies_hz, **placement_kwargs
        )
    return PlacementReport(
        architecture=arch.name,
        topology=topology.name,
        target_ohm=target,
        placement=placement,
    )


@dataclass(frozen=True)
class TransientDroopReport:
    """Spatio-temporal load-step droop of one design point.

    The time-domain closure of the DC map / AC map pair: the same die
    grid, VR bank, and decap allocation, hit with an idle→full load
    step and judged on the worst *dynamic* excursion any node takes
    below nominal.

    Attributes:
        architecture / topology: design-point labels.
        nominal_v: the POL target voltage.
        droop_v: worst per-node dynamic droop below the pre-step DC.
        settle_time_s: when the worst-node trace re-enters the band.
        droop_budget_v: the allowed droop.
        worst_node: (x_frac, y_frac) of the worst-droop node.
        droop_map: full (ny, nx) per-node droop array.
        engine: transient engine that produced the trace.
    """

    architecture: str
    topology: str
    nominal_v: float
    droop_v: float
    settle_time_s: float
    droop_budget_v: float
    worst_node: tuple[float, float]
    droop_map: np.ndarray
    engine: str

    @property
    def within_budget(self) -> bool:
        """True if the worst dynamic droop respects the budget."""
        return self.droop_v <= self.droop_budget_v + 1e-12

    @property
    def droop_fraction(self) -> float:
        """Worst dynamic droop as a fraction of nominal."""
        return self.droop_v / self.nominal_v


def analyze_load_step(
    arch: ArchitectureSpec,
    topology: ConverterSpec,
    spec: SystemSpec | None = None,
    power_map: PowerMap | None = None,
    grid_nodes: int = 24,
    droop_budget_fraction: float = DEFAULT_DROOP_BUDGET_FRACTION,
    transient_fraction: float = DEFAULT_TRANSIENT_FRACTION,
    duration_s: float = 2e-7,
    dt_s: float = 2e-10,
    decap_density: float = 1.0,
    decap_per_unit_f: float = DEFAULT_DECAP_PER_UNIT_F,
    decap_esr_ohm: float = DEFAULT_DECAP_ESR_OHM,
    decap_esl_h: float = DEFAULT_DECAP_ESL_H,
    source_inductance_h: float = DEFAULT_SOURCE_INDUCTANCE_H,
    output_resistance_ohm: float = DEFAULT_OUTPUT_RESISTANCE_OHM,
) -> TransientDroopReport:
    """Step the die from partial to full load and report dynamic droop.

    Builds the *same* die grid and VR placement as
    :func:`analyze_ir_drop`, adds the impedance map's decap allocation
    and bump/TSV inductance, then applies a load step from
    ``(1 − transient_fraction)·I_pol`` to ``I_pol`` over the power
    map's spatial profile — the time-domain companion of the
    target-impedance verdict, on the factor-once mesh engine.
    """
    if not arch.is_vertical:
        raise ConfigError("load-step maps apply to on-package VR stages")
    if not 0.0 < droop_budget_fraction < 0.5:
        raise ConfigError("droop budget fraction must be in (0, 0.5)")
    if not 0.0 < transient_fraction <= 1.0:
        raise ConfigError("transient fraction must be in (0, 1]")
    if decap_density <= 0:
        raise ConfigError("decap density must be positive")
    spec = spec or SystemSpec()
    power_map = power_map or PowerMap.hotspot_mixture()

    nominal = spec.pol_voltage_v
    budget = droop_budget_fraction * nominal
    grid, _ = _die_grid_with_bank(
        arch,
        topology,
        spec,
        power_map,
        grid_nodes,
        nominal + budget / 2.0,
        output_resistance_ohm,
    )
    pdn = GridTransientPDN.from_grid(
        grid, source_inductance_h=source_inductance_h
    )
    pdn.set_decap_density(
        decap_density, decap_per_unit_f, decap_esr_ohm, decap_esl_h
    )
    result = pdn.simulate_step(
        (1.0 - transient_fraction) * spec.pol_current_a,
        spec.pol_current_a,
        duration_s=duration_s,
        dt_s=dt_s,
        settle_band_v=budget / 2.0,
    )
    ix, iy = result.worst_node
    denom = max(grid_nodes - 1, 1)
    return TransientDroopReport(
        architecture=arch.name,
        topology=topology.name,
        nominal_v=nominal,
        droop_v=result.droop_v,
        settle_time_s=result.settle_time_s,
        droop_budget_v=budget,
        worst_node=(ix / denom, iy / denom),
        droop_map=result.droop_map,
        engine=result.engine,
    )
