"""Vertical interconnect utilization and power-density limits.

Reproduces the Section IV utilization discussion:

* with vertical power delivery, 1 kA reaches a 500 mm² die while
  using only ~1% of BGAs, ~2% of C4 bumps, ~10% of TSVs and <20% of
  the advanced Cu-Cu pads (the 48 V feed is ~25 A);
* with the reference architecture the die-level vertical interconnect
  must carry the full 1 kA, which (with 60%/85% caps on BGA/C4 and
  derated micro-bump ratings) forces a ~1200 mm² die and caps power
  density at ~0.8 A/mm².
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SystemSpec
from ..errors import ConfigError
from ..pdn.interconnect import (
    ADVANCED_CU_PAD,
    BGA,
    C4_BUMP,
    MICRO_BUMP,
    TSV,
    VerticalInterconnect,
)
from ..units import mm2
from .architectures import ArchitectureSpec
from .loss_analysis import BGA_UTILIZATION_CAP, C4_UTILIZATION_CAP


@dataclass(frozen=True)
class UtilizationRow:
    """Utilization of one vertical technology.

    ``utilization`` counts both polarities against the technology's
    power-allocatable sites, matching how the paper quotes it.
    """

    technology: str
    rail_current_a: float
    elements_per_polarity: int
    sites_available: int
    utilization: float
    utilization_cap: float
    rated_current_a: float

    @property
    def within_cap(self) -> bool:
        """True if the allocation respects the platform cap."""
        return self.utilization <= self.utilization_cap + 1e-12


@dataclass(frozen=True)
class UtilizationReport:
    """Per-technology utilization for one architecture."""

    architecture: str
    rows: tuple[UtilizationRow, ...]

    def row(self, technology: str) -> UtilizationRow:
        """Look up a row by technology name."""
        for entry in self.rows:
            if entry.technology.lower() == technology.lower():
                return entry
        raise ConfigError(f"no utilization row for {technology!r}")

    @property
    def all_within_caps(self) -> bool:
        """True when every technology respects its cap."""
        return all(row.within_cap for row in self.rows)


def _row(
    tech: VerticalInterconnect,
    rail_current_a: float,
    cap: float = 1.0,
    die_area_m2: float | None = None,
) -> UtilizationRow:
    """Rating-minimal allocation of one technology for a rail current."""
    if rail_current_a <= 0:
        raise ConfigError("rail current must be positive")
    needed = math.ceil(rail_current_a / tech.rated_current_a)
    if die_area_m2 is not None:
        available = tech.sites_on_area(die_area_m2)
    else:
        available = tech.power_sites
    utilization = 2.0 * needed / max(available, 1)
    return UtilizationRow(
        technology=tech.name,
        rail_current_a=rail_current_a,
        elements_per_polarity=needed,
        sites_available=available,
        utilization=utilization,
        utilization_cap=cap,
        rated_current_a=tech.rated_current_a,
    )


def vertical_utilization(
    arch: ArchitectureSpec,
    spec: SystemSpec | None = None,
    input_current_a: float | None = None,
) -> UtilizationReport:
    """Utilization of every vertical technology for an architecture.

    Args:
        arch: the architecture (decides which current each level sees).
        spec: system spec.
        input_current_a: actual 48 V feed current including conversion
            losses; estimated as P/(0.8·48) when not provided.
    """
    spec = spec or SystemSpec()
    if input_current_a is None:
        input_current_a = spec.pol_power_w / (0.8 * spec.input_voltage_v)

    if arch.is_vertical:
        # 48 V feed crosses BGA/C4/TSV; the POL current only crosses
        # the die attach.
        rows = (
            _row(BGA, input_current_a, BGA_UTILIZATION_CAP),
            _row(C4_BUMP, input_current_a, C4_UTILIZATION_CAP),
            _row(TSV, input_current_a),
            _row(
                arch.die_attach,
                spec.pol_current_a,
                die_area_m2=spec.die_area,
            ),
        )
    else:
        i_pol = spec.pol_current_a
        rows = (
            _row(BGA, i_pol, BGA_UTILIZATION_CAP),
            _row(C4_BUMP, i_pol, C4_UTILIZATION_CAP),
            _row(
                arch.die_attach,
                i_pol,
                die_area_m2=spec.die_area,
            ),
        )
    return UtilizationReport(architecture=arch.name, rows=rows)


@dataclass(frozen=True)
class A0DensityReport:
    """Die-size requirement of the reference architecture.

    Attributes:
        required_die_area_mm2: smallest die whose vertical die-level
            interconnect can sink the POL current.
        power_density_limit_a_per_mm2: POL current over that area.
        binding_technology: which technology forces the area.
        bga_capacity_a / c4_capacity_a: platform feed capacities under
            the paper's 60% / 85% caps.
        feasible_at_spec_die: True if the nominal die already suffices.
    """

    required_die_area_mm2: float
    power_density_limit_a_per_mm2: float
    binding_technology: str
    bga_capacity_a: float
    c4_capacity_a: float
    feasible_at_spec_die: bool


def a0_die_area_requirement(
    spec: SystemSpec | None = None,
    die_attach: VerticalInterconnect = MICRO_BUMP,
) -> A0DensityReport:
    """How large must the A0 die be to sink the POL current?

    The die-level technology (micro-bumps by default) scales with die
    area: each polarity gets half the sites, each site carries at most
    its derated rating.  Solving ``sites(area)/2 · rating = I`` for the
    area reproduces the paper's ~1200 mm² / ~0.8 A/mm² numbers.
    """
    spec = spec or SystemSpec()
    i_pol = spec.pol_current_a

    per_site = die_attach.rated_current_a
    sites_needed = 2.0 * math.ceil(i_pol / per_site)
    required_area_m2 = (
        sites_needed * die_attach.pitch_m**2 / die_attach.power_site_fraction
    )
    required_area_mm2 = required_area_m2 / mm2(1.0)

    bga_capacity = BGA.max_current_a(BGA_UTILIZATION_CAP)
    c4_capacity = C4_BUMP.max_current_a(C4_UTILIZATION_CAP)

    binding = die_attach.name
    if bga_capacity < i_pol or c4_capacity < i_pol:
        binding = "BGA" if bga_capacity <= c4_capacity else "C4 bump"

    return A0DensityReport(
        required_die_area_mm2=required_area_mm2,
        power_density_limit_a_per_mm2=i_pol / required_area_mm2,
        binding_technology=binding,
        bga_capacity_a=bga_capacity,
        c4_capacity_a=c4_capacity,
        feasible_at_spec_die=required_area_mm2 <= spec.die_area_mm2 + 1e-9,
    )


def cu_pad_utilization_at_pol(spec: SystemSpec | None = None) -> float:
    """Fraction of advanced Cu-Cu pads needed to sink the POL current
    (the paper's "<20%" claim)."""
    spec = spec or SystemSpec()
    report_row = _row(
        ADVANCED_CU_PAD, spec.pol_current_a, die_area_m2=spec.die_area
    )
    return report_row.utilization
