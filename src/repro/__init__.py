"""repro — vertical power delivery for 2.5D/3D integration.

A reproduction of "Vertical Power Delivery for Emerging Packaging and
Integration Platforms — Power Conversion and Distribution"
(Krishnakumar & Partin-Vaisband, SOCC 2023): packaging PDN models,
integrated voltage regulator (IVR) loss models, and the A0–A3
architecture characterization.

Quickstart::

    from repro import SystemSpec, LossAnalyzer, single_stage_a1, DSCH

    analyzer = LossAnalyzer(SystemSpec())
    result = analyzer.analyze(single_stage_a1(), DSCH)
    print(f"loss: {result.paper_loss_fraction:.1%}")
"""

from .config import PAPER_SYSTEM, PCBGeometry, SystemSpec
from .converters import (
    CATALOG,
    DPMIH,
    DSCH,
    THREE_LEVEL_HYBRID_DICKSON,
    ConverterSpec,
    QuadraticLossModel,
    StageModelMode,
    converter,
)
from .core import (
    ALL_ARCHITECTURES,
    ArchitectureSpec,
    LossAnalyzer,
    LossBreakdown,
    LossModelParameters,
    analyze_current_sharing,
    a0_die_area_requirement,
    architecture,
    characterize_all,
    dual_stage_a3,
    fig7_claims,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
    vertical_utilization,
)
from .errors import (
    CalibrationError,
    ConfigError,
    DatasetError,
    InfeasibleError,
    ReproError,
    SolverError,
)
from .pdn import (
    ADVANCED_CU_PAD,
    BGA,
    C4_BUMP,
    MICRO_BUMP,
    TABLE_I,
    TSV,
    CompiledNetlist,
    FactorizedPDN,
    GridACPDN,
    GridPDN,
    Netlist,
    PowerMap,
    solve_dc,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "SystemSpec",
    "PCBGeometry",
    "PAPER_SYSTEM",
    # errors
    "ReproError",
    "ConfigError",
    "InfeasibleError",
    "SolverError",
    "CalibrationError",
    "DatasetError",
    # pdn
    "Netlist",
    "CompiledNetlist",
    "FactorizedPDN",
    "solve_dc",
    "GridPDN",
    "GridACPDN",
    "PowerMap",
    "TABLE_I",
    "BGA",
    "C4_BUMP",
    "TSV",
    "MICRO_BUMP",
    "ADVANCED_CU_PAD",
    # converters
    "ConverterSpec",
    "QuadraticLossModel",
    "StageModelMode",
    "CATALOG",
    "DPMIH",
    "DSCH",
    "THREE_LEVEL_HYBRID_DICKSON",
    "converter",
    # core
    "ArchitectureSpec",
    "ALL_ARCHITECTURES",
    "architecture",
    "reference_a0",
    "single_stage_a1",
    "single_stage_a2",
    "dual_stage_a3",
    "LossAnalyzer",
    "LossBreakdown",
    "LossModelParameters",
    "characterize_all",
    "fig7_claims",
    "analyze_current_sharing",
    "vertical_utilization",
    "a0_die_area_requirement",
]
