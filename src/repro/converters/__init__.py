"""Power conversion substrate.

* :mod:`~repro.converters.devices` — switch-level loss primitives on
  top of the Si/GaN technology models,
* :mod:`~repro.converters.loss_model` — quadratic converter loss
  curves fitted to published efficiency points,
* :mod:`~repro.converters.topologies` — buck, switched-capacitor and
  the paper's three hybrid 48V-to-1V converters (DSCH, DPMIH, 3LHD),
* :mod:`~repro.converters.catalog` — the Table II registry used by the
  architecture characterization,
* :mod:`~repro.converters.waveforms` — switching waveform simulation
  (Fig. 6 reproduction).
"""

from .catalog import (
    CATALOG,
    DPMIH,
    DSCH,
    THREE_LEVEL_HYBRID_DICKSON,
    ConverterSpec,
    StageModelMode,
    converter,
    table_ii_rows,
)
from .devices import PowerSwitch
from .loss_model import QuadraticLossModel

__all__ = [
    "PowerSwitch",
    "QuadraticLossModel",
    "ConverterSpec",
    "StageModelMode",
    "CATALOG",
    "DPMIH",
    "DSCH",
    "THREE_LEVEL_HYBRID_DICKSON",
    "converter",
    "table_ii_rows",
]
