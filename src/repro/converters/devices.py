"""Switch-level loss primitives.

A :class:`PowerSwitch` wraps a
:class:`~repro.materials.TransistorTechnology` scaled to a target
on-resistance and provides the three canonical loss terms of a hard- or
soft-switched power stage:

* conduction: ``I_rms² · R_on`` (duty-weighted by the caller),
* overlap switching: ``½ · V · I · (t_r + t_f) · f_sw``,
* charge-based: ``(Q_g · V_drive + Q_oss · V) · f_sw``.

These are textbook first-order models — adequate for the architecture
trade-offs the paper studies and for the Si-vs-GaN ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..materials import GAN_100V, TransistorTechnology


@dataclass(frozen=True)
class PowerSwitch:
    """One power switch instance inside a converter.

    Attributes:
        technology: the (scaled) device technology.
        transition_time_s: combined effective voltage/current overlap
            time per edge (t_r ≈ t_f assumed).
        soft_switched: when True, overlap (V-I) switching loss is
            waived — the hybrid converters in the paper achieve soft
            switching via their inductors — while charge-based gate
            loss remains.
    """

    technology: TransistorTechnology
    transition_time_s: float = 2e-9
    soft_switched: bool = False

    def __post_init__(self) -> None:
        if self.transition_time_s <= 0:
            raise ConfigError("transition time must be positive")

    @staticmethod
    def sized_for(
        r_on_ohm: float,
        technology: TransistorTechnology = GAN_100V,
        soft_switched: bool = False,
    ) -> "PowerSwitch":
        """A switch of the given technology scaled to a target R_on."""
        return PowerSwitch(
            technology=technology.scaled(r_on_ohm),
            soft_switched=soft_switched,
        )

    # -- loss terms -----------------------------------------------------------

    def conduction_loss_w(self, rms_current_a: float, duty: float = 1.0) -> float:
        """Conduction loss for the given RMS current and conduction duty."""
        if rms_current_a < 0:
            raise ConfigError("RMS current must be non-negative")
        if not 0.0 <= duty <= 1.0:
            raise ConfigError("duty must be in [0, 1]")
        return rms_current_a**2 * self.technology.r_on_ohm * duty

    def switching_loss_w(
        self, blocking_voltage_v: float, switched_current_a: float, frequency_hz: float
    ) -> float:
        """Hard-switching overlap loss (zero when soft-switched)."""
        if blocking_voltage_v < 0 or switched_current_a < 0:
            raise ConfigError("voltage and current must be non-negative")
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.soft_switched:
            return 0.0
        return (
            blocking_voltage_v
            * switched_current_a
            * self.transition_time_s
            * frequency_hz
        )

    def charge_loss_w(self, blocking_voltage_v: float, frequency_hz: float) -> float:
        """Gate-drive plus output-charge loss per cycle."""
        if blocking_voltage_v < 0:
            raise ConfigError("voltage must be non-negative")
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        tech = self.technology
        gate = tech.gate_charge_c * tech.gate_drive_v
        output = tech.output_charge_c * blocking_voltage_v
        return (gate + output) * frequency_hz

    def total_loss_w(
        self,
        rms_current_a: float,
        blocking_voltage_v: float,
        switched_current_a: float,
        frequency_hz: float,
        duty: float = 1.0,
    ) -> float:
        """Sum of conduction, overlap, and charge losses."""
        return (
            self.conduction_loss_w(rms_current_a, duty)
            + self.switching_loss_w(
                blocking_voltage_v, switched_current_a, frequency_hz
            )
            + self.charge_loss_w(blocking_voltage_v, frequency_hz)
        )


@dataclass(frozen=True)
class Inductor:
    """A power inductor with a DC-resistance loss model."""

    inductance_h: float
    dcr_ohm: float
    rated_current_a: float

    def __post_init__(self) -> None:
        if self.inductance_h <= 0:
            raise ConfigError("inductance must be positive")
        if self.dcr_ohm < 0:
            raise ConfigError("DCR must be non-negative")
        if self.rated_current_a <= 0:
            raise ConfigError("rated current must be positive")

    def conduction_loss_w(self, rms_current_a: float) -> float:
        """Copper (DCR) loss at the given RMS current."""
        if rms_current_a < 0:
            raise ConfigError("RMS current must be non-negative")
        return rms_current_a**2 * self.dcr_ohm

    def is_within_rating(self, peak_current_a: float) -> bool:
        """True if the peak current respects the saturation rating."""
        return peak_current_a <= self.rated_current_a


@dataclass(frozen=True)
class Capacitor:
    """A (flying or output) capacitor with ESR loss."""

    capacitance_f: float
    esr_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ConfigError("capacitance must be positive")
        if self.esr_ohm < 0:
            raise ConfigError("ESR must be non-negative")

    def conduction_loss_w(self, rms_current_a: float) -> float:
        """ESR loss at the given RMS ripple current."""
        if rms_current_a < 0:
            raise ConfigError("RMS current must be non-negative")
        return rms_current_a**2 * self.esr_ohm
