"""Converter catalog — the Table II registry.

Binds each of the paper's three 48V-to-1V converters to its published
structural data and calibrated loss curve, and provides the stage-model
policy used by the dual-stage (A3) architectures:

* ``StageModelMode.AS_PUBLISHED`` (paper fidelity): the published
  48V-to-1V loss-vs-current curve is reused for the stage converter,
  only the output voltage (throughput power) changes.  This is the
  conservative choice the paper's numbers imply — no other efficiency
  data existed for these devices.
* ``StageModelMode.RATIO_SCALED`` (ablation): first-order physics
  scaling of the curve with the reduced input voltage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError, InfeasibleError
from .loss_model import QuadraticLossModel
from .topologies import dickson3l, dpmih, dsch


class StageModelMode(enum.Enum):
    """How stage converters are modeled when V_in/V_out differ from
    the published 48V-to-1V operating point."""

    AS_PUBLISHED = "as-published"
    RATIO_SCALED = "ratio-scaled"


@dataclass(frozen=True)
class ConverterSpec:
    """A Table II row plus the calibrated loss model.

    Attributes mirror the table: conversion scheme, max load current,
    peak efficiency and its current, switch/passive counts and
    densities, and the VR counts the paper uses for periphery and
    under-die placement.
    """

    name: str
    full_name: str
    conversion_scheme: str
    max_load_a: float
    peak_efficiency: float
    i_at_peak_a: float
    switch_count: int
    switches_per_mm2: float
    inductor_count: int
    total_inductance_h: float
    capacitor_count: int
    total_capacitance_f: float
    vrs_along_periphery: int
    vrs_below_die: int
    loss_model: QuadraticLossModel

    def __post_init__(self) -> None:
        if self.max_load_a <= 0:
            raise ConfigError(f"{self.name}: max load must be positive")
        if not 0.0 < self.peak_efficiency < 1.0:
            raise ConfigError(f"{self.name}: peak efficiency out of range")
        if self.switches_per_mm2 <= 0:
            raise ConfigError(f"{self.name}: switch density must be positive")

    @property
    def area_mm2(self) -> float:
        """Converter footprint implied by switch count and density.

        Per the paper, passives are assumed to fit within the switch
        footprint (embedded in interposer / RDL), so this is the VR's
        total placement area.
        """
        return self.switch_count / self.switches_per_mm2

    @property
    def inductance_per_inductor_h(self) -> float:
        """Average inductance per inductor."""
        return self.total_inductance_h / self.inductor_count

    @property
    def capacitance_per_capacitor_f(self) -> float:
        """Average capacitance per capacitor."""
        return self.total_capacitance_f / self.capacitor_count

    # -- feasibility ------------------------------------------------------------

    def is_feasible_load(self, i_out_a: float) -> bool:
        """True if a per-VR output current is within the rating."""
        return 0.0 <= i_out_a <= self.max_load_a * (1.0 + 1e-9)

    def require_feasible(self, i_out_a: float) -> None:
        """Raise :class:`InfeasibleError` when the rating is exceeded —
        the rule by which the paper drops 3LHD from Fig. 7."""
        if not self.is_feasible_load(i_out_a):
            raise InfeasibleError(
                f"{self.name}: required {i_out_a:.1f} A per VR exceeds the "
                f"published maximum of {self.max_load_a:.1f} A "
                "(efficiency at this load is not reported)"
            )

    # -- stage models -------------------------------------------------------------

    def stage_loss_model(
        self,
        v_in_v: float,
        v_out_v: float,
        mode: StageModelMode = StageModelMode.AS_PUBLISHED,
    ) -> QuadraticLossModel:
        """Loss model for this converter used as a stage of a
        multi-stage architecture.

        Args:
            v_in_v: stage input voltage.
            v_out_v: stage output voltage.
            mode: AS_PUBLISHED reuses the published curve verbatim
                against the new output voltage; RATIO_SCALED re-rates
                the coefficients for the new input voltage first.
        """
        if v_out_v >= v_in_v:
            raise ConfigError("stage must step the voltage down")
        if mode is StageModelMode.AS_PUBLISHED:
            return self.loss_model.reused_at_output_voltage(v_out_v)
        return self.loss_model.scaled_to_ratio(
            v_in_old_v=48.0, v_in_new_v=v_in_v, v_out_new_v=v_out_v
        )


# ---------------------------------------------------------------------------
# Registry (Table II)
# ---------------------------------------------------------------------------

DPMIH = ConverterSpec(
    name="DPMIH",
    full_name="Dual-phase multi-inductor hybrid",
    conversion_scheme="48V-to-1V",
    max_load_a=dpmih.PUBLISHED_MAX_LOAD_A,
    peak_efficiency=dpmih.PUBLISHED_PEAK_EFFICIENCY,
    i_at_peak_a=dpmih.PUBLISHED_I_AT_PEAK_A,
    switch_count=dpmih.SWITCH_COUNT,
    switches_per_mm2=dpmih.SWITCHES_PER_MM2,
    inductor_count=dpmih.INDUCTOR_COUNT,
    total_inductance_h=dpmih.TOTAL_INDUCTANCE_H,
    capacitor_count=dpmih.CAPACITOR_COUNT,
    total_capacitance_f=dpmih.TOTAL_CAPACITANCE_F,
    vrs_along_periphery=8,
    vrs_below_die=7,
    loss_model=dpmih.published_loss_model(),
)

DSCH = ConverterSpec(
    name="DSCH",
    full_name="Double series-capacitor hybrid",
    conversion_scheme="48V-to-1V",
    max_load_a=dsch.PUBLISHED_MAX_LOAD_A,
    peak_efficiency=dsch.PUBLISHED_PEAK_EFFICIENCY,
    i_at_peak_a=dsch.PUBLISHED_I_AT_PEAK_A,
    switch_count=dsch.SWITCH_COUNT,
    switches_per_mm2=dsch.SWITCHES_PER_MM2,
    inductor_count=dsch.INDUCTOR_COUNT,
    total_inductance_h=dsch.TOTAL_INDUCTANCE_H,
    capacitor_count=dsch.CAPACITOR_COUNT,
    total_capacitance_f=dsch.TOTAL_CAPACITANCE_F,
    vrs_along_periphery=48,
    vrs_below_die=48,
    loss_model=dsch.published_loss_model(),
)

THREE_LEVEL_HYBRID_DICKSON = ConverterSpec(
    name="3LHD",
    full_name="Three-level hybrid Dickson",
    conversion_scheme="48V-to-1V",
    max_load_a=dickson3l.PUBLISHED_MAX_LOAD_A,
    peak_efficiency=dickson3l.PUBLISHED_PEAK_EFFICIENCY,
    i_at_peak_a=dickson3l.PUBLISHED_I_AT_PEAK_A,
    switch_count=dickson3l.SWITCH_COUNT,
    switches_per_mm2=dickson3l.SWITCHES_PER_MM2,
    inductor_count=dickson3l.INDUCTOR_COUNT,
    total_inductance_h=dickson3l.TOTAL_INDUCTANCE_H,
    capacitor_count=dickson3l.CAPACITOR_COUNT,
    total_capacitance_f=dickson3l.TOTAL_CAPACITANCE_F,
    vrs_along_periphery=48,
    vrs_below_die=48,
    loss_model=dickson3l.published_loss_model(),
)

#: Table II order.
CATALOG: tuple[ConverterSpec, ...] = (DPMIH, DSCH, THREE_LEVEL_HYBRID_DICKSON)


def converter(name: str) -> ConverterSpec:
    """Look up a catalog converter by (case-insensitive) name."""
    for spec in CATALOG:
        if spec.name.lower() == name.lower():
            return spec
    raise ConfigError(f"unknown converter: {name!r}")


def table_ii_rows() -> list[dict[str, object]]:
    """Table II as dict rows (direct data plus derived area)."""
    rows: list[dict[str, object]] = []
    for spec in CATALOG:
        rows.append(
            {
                "name": spec.name,
                "conversion_scheme": spec.conversion_scheme,
                "max_load_a": spec.max_load_a,
                "peak_efficiency": spec.peak_efficiency,
                "i_at_peak_a": spec.i_at_peak_a,
                "switch_count": spec.switch_count,
                "switches_per_mm2": spec.switches_per_mm2,
                "inductor_count": spec.inductor_count,
                "total_inductance_uH": spec.total_inductance_h * 1e6,
                "capacitor_count": spec.capacitor_count,
                "total_capacitance_uF": spec.total_capacitance_f * 1e6,
                "vrs_along_periphery": spec.vrs_along_periphery,
                "vrs_below_die": spec.vrs_below_die,
                "area_mm2": spec.area_mm2,
            }
        )
    return rows
