"""Switched-capacitor series-parallel charge pump — Fig. 6(b).

Implements the Seeman–Sanders output-impedance model: at low frequency
the converter is slow-switching-limited (SSL, impedance 1/(fC)); at
high frequency it is fast-switching-limited (FSL, switch resistance).
For an n:1 series-parallel converter with n−1 equal flying capacitors:

    R_SSL = (n − 1) / (n² · C_fly · f_sw)
    R_FSL = 2 · Σ a_sw,i² · R_on  ≈ 2 · (2(n−1)+1) · R_on / n²

(the charge multipliers of all switches are 1/n; phase-A has n−1+1
switches in the series path, phase-B has n−1 parallel legs).  The two
asymptotes are combined in quadrature, the standard approximation.
"""

from __future__ import annotations

import math

from ...errors import ConfigError, InfeasibleError
from ..devices import PowerSwitch
from .base import SwitchingConverter


class SeriesParallelSC(SwitchingConverter):
    """An n:1 series-parallel switched-capacitor converter.

    Args:
        v_in_v: input voltage.
        ratio: integer step-down ratio n (v_out_ideal = v_in / n).
        fly_capacitance_f: capacitance of each flying capacitor.
        frequency_hz: switching frequency.
        switch: the (identical) power switch model.
        max_load_a: output current rating.
    """

    def __init__(
        self,
        v_in_v: float,
        ratio: int,
        fly_capacitance_f: float,
        frequency_hz: float,
        switch: PowerSwitch,
        max_load_a: float = 50.0,
    ) -> None:
        if ratio < 2:
            raise ConfigError("step-down ratio must be >= 2")
        super().__init__(v_in_v, v_in_v / ratio, max_load_a)
        if fly_capacitance_f <= 0:
            raise ConfigError("flying capacitance must be positive")
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        self.ratio = ratio
        self.fly_capacitance_f = fly_capacitance_f
        self.frequency_hz = frequency_hz
        self.switch = switch

    # -- impedance model ---------------------------------------------------------

    @property
    def switch_count(self) -> int:
        """Total switches: series path (n) plus parallel legs (2(n−1))."""
        return 3 * (self.ratio - 1) + 1

    @property
    def r_ssl_ohm(self) -> float:
        """Slow-switching-limit output impedance."""
        n = self.ratio
        return (n - 1) / (n**2 * self.fly_capacitance_f * self.frequency_hz)

    @property
    def r_fsl_ohm(self) -> float:
        """Fast-switching-limit output impedance."""
        n = self.ratio
        active_per_phase = 2 * (n - 1) + 1
        return (
            2.0
            * active_per_phase
            * self.switch.technology.r_on_ohm
            / n**2
        )

    @property
    def r_out_ohm(self) -> float:
        """Combined output impedance, sqrt(SSL² + FSL²)."""
        return math.hypot(self.r_ssl_ohm, self.r_fsl_ohm)

    def output_voltage_v(self, i_out_a: float) -> float:
        """Loaded output voltage: v_in/n − I·R_out."""
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        return self.v_in_v / self.ratio - i_out_a * self.r_out_ohm

    # -- losses -------------------------------------------------------------------

    def loss_w(self, i_out_a: float) -> float:
        """Charge-sharing (I²·R_out) plus gate-charge losses."""
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if not self.is_feasible(i_out_a):
            raise InfeasibleError(
                f"load {i_out_a:.1f} A exceeds rating {self.max_load_a:.1f} A"
            )
        if self.output_voltage_v(i_out_a) <= 0:
            raise InfeasibleError(
                "output collapses at this load; raise frequency or C_fly"
            )
        impedance = i_out_a**2 * self.r_out_ohm
        # Each switch blocks roughly v_in/n in this topology.
        gates = self.switch_count * self.switch.charge_loss_w(
            self.v_in_v / self.ratio, self.frequency_hz
        )
        return impedance + gates

    def efficiency(self, i_out_a: float) -> float:
        """Efficiency including the intrinsic charge-sharing droop.

        For an SC converter, output power is taken at the *loaded*
        output voltage, so efficiency is bounded by
        v_out(I) / (v_in / n) even before gate loss.
        """
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if i_out_a == 0:
            return 0.0
        v_loaded = self.output_voltage_v(i_out_a)
        p_out = v_loaded * i_out_a
        return p_out / (p_out + self.loss_w(i_out_a))
