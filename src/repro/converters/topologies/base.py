"""Common interface for converter topology models."""

from __future__ import annotations

from abc import ABC, abstractmethod

from ...errors import ConfigError


class SwitchingConverter(ABC):
    """A DC-DC step-down converter model.

    Concrete classes provide the loss at a given output current; the
    base class derives efficiency and validates the operating point.
    """

    def __init__(self, v_in_v: float, v_out_v: float, max_load_a: float) -> None:
        if v_in_v <= 0 or v_out_v <= 0:
            raise ConfigError("voltages must be positive")
        if v_out_v >= v_in_v:
            raise ConfigError("step-down converter needs v_out < v_in")
        if max_load_a <= 0:
            raise ConfigError("maximum load must be positive")
        self.v_in_v = v_in_v
        self.v_out_v = v_out_v
        self.max_load_a = max_load_a

    @property
    def conversion_ratio(self) -> float:
        """Step-down ratio V_in / V_out."""
        return self.v_in_v / self.v_out_v

    @abstractmethod
    def loss_w(self, i_out_a: float) -> float:
        """Total converter loss at the given output current."""

    def efficiency(self, i_out_a: float) -> float:
        """P_out / (P_out + P_loss); zero at zero load."""
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if i_out_a == 0:
            return 0.0
        p_out = self.v_out_v * i_out_a
        return p_out / (p_out + self.loss_w(i_out_a))

    def input_power_w(self, i_out_a: float) -> float:
        """Input power needed to deliver ``i_out_a`` at the output."""
        return self.v_out_v * i_out_a + self.loss_w(i_out_a)

    def is_feasible(self, i_out_a: float) -> bool:
        """True if the load current is within the converter rating."""
        return 0.0 <= i_out_a <= self.max_load_a * (1.0 + 1e-9)
