"""Three-level hybrid Dickson (3LHD) converter [Gong, Zhang &
Raychowdhury, VLSI 2022].

A three-phase hybrid Dickson: eleven switches, five self-balanced
flying capacitors and three inductors.  The Dickson front steps the
input down by 10x (48 V -> 4.8 V), relaxing switch stress and pushing
the effective on-time from ~2% to ~20%.  Published 48V-to-1V figures:
12 A maximum load, 90.4% peak efficiency at 3 A (two GaN + nine Si in
the original; the paper evaluates an all-GaN variant).

With 48 VRs sharing 1 kA each converter would have to deliver
20.8 A — beyond the published 12 A rating — so the paper excludes
3LHD from its Fig. 7 results.  The catalog reproduces that exclusion.
"""

from __future__ import annotations

from ..loss_model import QuadraticLossModel
from .base import SwitchingConverter

#: Published characteristics (Table II + §III).
PUBLISHED_V_IN = 48.0
PUBLISHED_V_OUT = 1.0
PUBLISHED_MAX_LOAD_A = 12.0
PUBLISHED_PEAK_EFFICIENCY = 0.904
PUBLISHED_I_AT_PEAK_A = 3.0
#: Full-load efficiency assumed for the curve fit ([10]'s plot rolls
#: off to the mid-80s at the 12 A corner).
ASSUMED_FULL_LOAD_EFFICIENCY = 0.85

#: Structural data (Table II).
SWITCH_COUNT = 11
SWITCHES_PER_MM2 = 1.22
INDUCTOR_COUNT = 3
TOTAL_INDUCTANCE_H = 1.86e-6
CAPACITOR_COUNT = 5
TOTAL_CAPACITANCE_F = 5.0e-6

#: Dickson-front division factor (48 V -> 4.8 V).
DICKSON_DIVISION_FACTOR = 10.0


class ThreeLevelHybridDickson(SwitchingConverter):
    """3LHD model driven by the published-curve fit."""

    def __init__(
        self,
        v_in_v: float = PUBLISHED_V_IN,
        v_out_v: float = PUBLISHED_V_OUT,
        loss_model: QuadraticLossModel | None = None,
    ) -> None:
        super().__init__(v_in_v, v_out_v, PUBLISHED_MAX_LOAD_A)
        self.loss_model = loss_model or published_loss_model()

    @property
    def intermediate_voltage_v(self) -> float:
        """Voltage after the Dickson front (V_in / 10)."""
        return self.v_in_v / DICKSON_DIVISION_FACTOR

    @property
    def effective_on_time_fraction(self) -> float:
        """Effective regulation on-time: V_out over the divided input
        (~20% for 48V-to-1V, vs ~2% for a plain buck)."""
        return self.v_out_v / self.intermediate_voltage_v

    @property
    def area_mm2(self) -> float:
        """Switch-area footprint from the Table II density figure."""
        return SWITCH_COUNT / SWITCHES_PER_MM2

    @property
    def capacitors_self_balance(self) -> bool:
        """All five flying capacitors balance without extra control."""
        return True

    def loss_w(self, i_out_a: float) -> float:
        """Published-curve loss at the given output current."""
        return self.loss_model.loss_w(i_out_a)


def published_loss_model(v_out_v: float = PUBLISHED_V_OUT) -> QuadraticLossModel:
    """The calibrated quadratic loss curve for the published device."""
    return QuadraticLossModel.fit(
        v_out_v=v_out_v,
        i_peak_a=PUBLISHED_I_AT_PEAK_A,
        eta_peak=PUBLISHED_PEAK_EFFICIENCY,
        i_max_a=PUBLISHED_MAX_LOAD_A,
        eta_max=ASSUMED_FULL_LOAD_EFFICIENCY,
    )
