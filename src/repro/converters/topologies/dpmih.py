"""Dual-phase multi-inductor hybrid (DPMIH) converter [Das & Le,
APEC 2019].

An SC-derived hybrid with eight switches, four inductors and three
capacitors.  Every flying capacitor is paired with an inductor, which
soft-switches the capacitor transitions and removes the discrete-ratio
restriction of classic SC converters.  Published 48V-to-1V figures:
100 A maximum load, 90.9% peak efficiency at 30 A with GaN devices.

Its large inductor count makes it the area-heavy option, preferred by
the paper for high-current single-stage conversion (A1/A2) and for the
first stage of the A3 dual-stage architectures.
"""

from __future__ import annotations

from ..loss_model import QuadraticLossModel
from .base import SwitchingConverter

#: Published characteristics (Table II + §III; the running text and
#: [9] quote 90.9% peak where Table II prints 90.0% — we follow the
#: text/source, see EXPERIMENTS.md).
PUBLISHED_V_IN = 48.0
PUBLISHED_V_OUT = 1.0
PUBLISHED_MAX_LOAD_A = 100.0
PUBLISHED_PEAK_EFFICIENCY = 0.909
PUBLISHED_I_AT_PEAK_A = 30.0
#: Full-load efficiency assumed for the curve fit ([9] reports ~86.5%
#: at the 100 A corner).
ASSUMED_FULL_LOAD_EFFICIENCY = 0.865

#: Structural data (Table II).
SWITCH_COUNT = 8
SWITCHES_PER_MM2 = 0.15
INDUCTOR_COUNT = 4
TOTAL_INDUCTANCE_H = 4.0e-6
CAPACITOR_COUNT = 3
TOTAL_CAPACITANCE_F = 15.0e-6


class DPMIHConverter(SwitchingConverter):
    """DPMIH model driven by the published-curve fit."""

    def __init__(
        self,
        v_in_v: float = PUBLISHED_V_IN,
        v_out_v: float = PUBLISHED_V_OUT,
        loss_model: QuadraticLossModel | None = None,
    ) -> None:
        super().__init__(v_in_v, v_out_v, PUBLISHED_MAX_LOAD_A)
        self.loss_model = loss_model or published_loss_model()

    @property
    def area_mm2(self) -> float:
        """Switch-area footprint from the Table II density figure."""
        return SWITCH_COUNT / SWITCHES_PER_MM2

    @property
    def is_soft_switched(self) -> bool:
        """The inductors soft-switch every capacitor transition."""
        return True

    def loss_w(self, i_out_a: float) -> float:
        """Published-curve loss at the given output current."""
        return self.loss_model.loss_w(i_out_a)


def published_loss_model(v_out_v: float = PUBLISHED_V_OUT) -> QuadraticLossModel:
    """The calibrated quadratic loss curve for the published device."""
    return QuadraticLossModel.fit(
        v_out_v=v_out_v,
        i_peak_a=PUBLISHED_I_AT_PEAK_A,
        eta_peak=PUBLISHED_PEAK_EFFICIENCY,
        i_max_a=PUBLISHED_MAX_LOAD_A,
        eta_max=ASSUMED_FULL_LOAD_EFFICIENCY,
    )
