"""Synchronous (multi-phase) buck converter — the SMPS of Fig. 6(a).

Beyond the loss model, this class encodes the argument the paper makes
against single-stage buck conversion at high ratios: a 48V-to-1V buck
runs at ~2% duty, so for any realistic minimum controllable on-time the
switching frequency is capped (``max_frequency_hz``), which in turn
forces bulky inductors — exactly why the hybrid topologies exist.
"""

from __future__ import annotations

import math

from ...errors import ConfigError, InfeasibleError
from ..devices import Capacitor, Inductor, PowerSwitch
from .base import SwitchingConverter


class SynchronousBuck(SwitchingConverter):
    """A hard-switched synchronous buck with ``n_phases`` phases.

    Args:
        v_in_v / v_out_v: conversion endpoints.
        frequency_hz: per-phase switching frequency.
        inductor: per-phase inductor model.
        output_capacitor: shared output capacitor.
        high_side / low_side: switch models.
        n_phases: number of interleaved phases.
        min_on_time_s: minimum controllable PWM on-time.
        max_load_a: converter output current rating.
    """

    def __init__(
        self,
        v_in_v: float,
        v_out_v: float,
        frequency_hz: float,
        inductor: Inductor,
        output_capacitor: Capacitor,
        high_side: PowerSwitch,
        low_side: PowerSwitch,
        n_phases: int = 1,
        min_on_time_s: float = 20e-9,
        max_load_a: float = 100.0,
    ) -> None:
        super().__init__(v_in_v, v_out_v, max_load_a)
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if n_phases < 1:
            raise ConfigError("at least one phase required")
        if min_on_time_s <= 0:
            raise ConfigError("minimum on-time must be positive")
        self.frequency_hz = frequency_hz
        self.inductor = inductor
        self.output_capacitor = output_capacitor
        self.high_side = high_side
        self.low_side = low_side
        self.n_phases = n_phases
        self.min_on_time_s = min_on_time_s
        if self.on_time_s < min_on_time_s:
            raise InfeasibleError(
                f"on-time {self.on_time_s * 1e9:.1f} ns below the "
                f"{min_on_time_s * 1e9:.1f} ns minimum at "
                f"{frequency_hz / 1e6:.2f} MHz and duty {self.duty:.3%}"
            )

    # -- operating point -------------------------------------------------------

    @property
    def duty(self) -> float:
        """Ideal CCM duty cycle D = V_out / V_in (~2% for 48V-to-1V)."""
        return self.v_out_v / self.v_in_v

    @property
    def on_time_s(self) -> float:
        """High-side on-time per cycle, D / f."""
        return self.duty / self.frequency_hz

    @property
    def max_frequency_hz(self) -> float:
        """Highest frequency honouring the minimum on-time at this duty."""
        return self.duty / self.min_on_time_s

    def inductor_ripple_a(self) -> float:
        """Peak-to-peak inductor current ripple per phase."""
        return (
            (self.v_in_v - self.v_out_v)
            * self.duty
            / (self.inductor.inductance_h * self.frequency_hz)
        )

    def output_ripple_v(self, i_out_a: float) -> float:
        """Peak-to-peak output-voltage ripple (capacitor charge model,
        interleaving reduces the effective ripple by n_phases)."""
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        ripple = self.inductor_ripple_a() / self.n_phases
        return ripple / (
            8.0 * self.output_capacitor.capacitance_f * self.frequency_hz
        )

    # -- losses -------------------------------------------------------------------

    def loss_w(self, i_out_a: float) -> float:
        """Conduction + switching + magnetics + capacitor losses."""
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if not self.is_feasible(i_out_a):
            raise InfeasibleError(
                f"load {i_out_a:.1f} A exceeds rating {self.max_load_a:.1f} A"
            )
        per_phase = i_out_a / self.n_phases
        ripple = self.inductor_ripple_a()
        # RMS of a triangular-ripple trapezoid around the DC value.
        rms_sq = per_phase**2 + ripple**2 / 12.0
        rms = math.sqrt(rms_sq)

        conduction = (
            self.high_side.conduction_loss_w(rms, self.duty)
            + self.low_side.conduction_loss_w(rms, 1.0 - self.duty)
        )
        switching = self.high_side.switching_loss_w(
            self.v_in_v, per_phase, self.frequency_hz
        )
        charge = self.high_side.charge_loss_w(
            self.v_in_v, self.frequency_hz
        ) + self.low_side.charge_loss_w(self.v_in_v, self.frequency_hz)
        magnetics = self.inductor.conduction_loss_w(rms)
        cap = self.output_capacitor.conduction_loss_w(
            ripple / math.sqrt(12.0)
        )
        per_phase_loss = conduction + switching + charge + magnetics + cap
        return per_phase_loss * self.n_phases
