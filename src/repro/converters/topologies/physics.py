"""Bottom-up physics models of the paper's hybrid converters.

The calibrated quadratic curves are the source of truth for the
architecture study (they *are* the published data); these models
rebuild each converter's loss from switch/inductor/capacitor
primitives instead, serving two purposes:

* **cross-validation** — a sanity check that devices of plausible
  size reproduce the published efficiency within a reasonable band
  (tested in ``tests/test_physics_models.py``),
* **what-if studies** the fitted curves cannot answer: device
  technology swaps (Si vs GaN), frequency scaling, R_on sizing.

Loss accounting per topology (first order, matching Section III):

DSCH    five switches; the SC front divides by 3 so the dual-phase
        buck runs at duty 3·V_o/V_in; the series-capacitor phase
        carries ~60% of the current (the imbalance the paper notes).
DPMIH   eight soft-switched switches and four inductors; no overlap
        loss, gate/output-charge loss at V_in/2 stress, conduction
        split across two interleaved phases.
3LHD    eleven switches; the Dickson front divides by 10, so
        regulation runs at ~20% duty with low-voltage switches; five
        flying capacitors add ESR loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError
from ...materials import GAN_30V, GAN_60V, GAN_100V, TransistorTechnology
from ..devices import Capacitor, Inductor, PowerSwitch
from .base import SwitchingConverter
from . import dickson3l, dpmih, dsch


@dataclass(frozen=True)
class PhysicsDesign:
    """Common device-level knobs for a physics model."""

    technology: TransistorTechnology = GAN_100V
    switch_r_on_ohm: float = 2.0e-3
    frequency_hz: float = 1.0e6
    inductor_dcr_ohm: float = 0.35e-3
    capacitor_esr_ohm: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.switch_r_on_ohm <= 0:
            raise ConfigError("switch R_on must be positive")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.inductor_dcr_ohm < 0 or self.capacitor_esr_ohm < 0:
            raise ConfigError("parasitics must be non-negative")


class DSCHPhysics(SwitchingConverter):
    """Device-level DSCH: series-capacitor front + dual-phase buck."""

    def __init__(
        self,
        v_in_v: float = dsch.PUBLISHED_V_IN,
        v_out_v: float = dsch.PUBLISHED_V_OUT,
        design: PhysicsDesign | None = None,
    ) -> None:
        super().__init__(v_in_v, v_out_v, dsch.PUBLISHED_MAX_LOAD_A)
        # The /3 front leaves 16 V stress: 30 V-class devices suffice.
        self.design = design or PhysicsDesign(
            technology=GAN_30V, switch_r_on_ohm=2.0e-3, frequency_hz=1.0e6
        )
        d = self.design
        self.switch = PowerSwitch.sized_for(
            d.switch_r_on_ohm, d.technology, soft_switched=False
        )
        per_inductor = dsch.TOTAL_INDUCTANCE_H / dsch.INDUCTOR_COUNT
        self.inductor = Inductor(
            per_inductor, d.inductor_dcr_ohm, rated_current_a=self.max_load_a
        )
        per_cap = dsch.TOTAL_CAPACITANCE_F / dsch.CAPACITOR_COUNT
        self.capacitor = Capacitor(per_cap, d.capacitor_esr_ohm)

    @property
    def buck_duty(self) -> float:
        """Duty of the internal buck (input divided by 3 first)."""
        return self.v_out_v * dsch.SC_DIVISION_FACTOR / self.v_in_v

    def loss_w(self, i_out_a: float) -> float:
        """Front + buck conduction, switching, and passive losses."""
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        d = self.design
        heavy, light = 0.6 * i_out_a, 0.4 * i_out_a
        duty = self.buck_duty
        stress = self.v_in_v / dsch.SC_DIVISION_FACTOR

        conduction = 0.0
        for phase_current in (heavy, light):
            # High-side path: two devices in series (SC + buck).
            conduction += 2 * self.switch.conduction_loss_w(
                phase_current, duty
            )
            conduction += self.switch.conduction_loss_w(
                phase_current, 1.0 - duty
            )
            conduction += self.inductor.conduction_loss_w(phase_current)
        switching = 2 * self.switch.switching_loss_w(
            stress, i_out_a / 2, d.frequency_hz
        )
        charge = dsch.SWITCH_COUNT * self.switch.charge_loss_w(
            stress, d.frequency_hz
        )
        # The flying capacitors carry the heavy phase's AC current.
        cap = 2 * self.capacitor.conduction_loss_w(0.3 * i_out_a)
        return conduction + switching + charge + cap


class DPMIHPhysics(SwitchingConverter):
    """Device-level DPMIH: fully soft-switched multi-inductor hybrid."""

    def __init__(
        self,
        v_in_v: float = dpmih.PUBLISHED_V_IN,
        v_out_v: float = dpmih.PUBLISHED_V_OUT,
        design: PhysicsDesign | None = None,
    ) -> None:
        super().__init__(v_in_v, v_out_v, dpmih.PUBLISHED_MAX_LOAD_A)
        # Half-bus stress (~24 V): 60 V-class devices, big (low R_on)
        # because this is the 100 A topology.
        self.design = design or PhysicsDesign(
            technology=GAN_60V, switch_r_on_ohm=1.5e-3, frequency_hz=0.5e6
        )
        d = self.design
        self.switch = PowerSwitch.sized_for(
            d.switch_r_on_ohm, d.technology, soft_switched=True
        )
        per_inductor = dpmih.TOTAL_INDUCTANCE_H / dpmih.INDUCTOR_COUNT
        self.inductor = Inductor(
            per_inductor, d.inductor_dcr_ohm, rated_current_a=self.max_load_a
        )
        per_cap = dpmih.TOTAL_CAPACITANCE_F / dpmih.CAPACITOR_COUNT
        self.capacitor = Capacitor(per_cap, d.capacitor_esr_ohm)

    def loss_w(self, i_out_a: float) -> float:
        """Soft-switched: conduction + charge + magnetics only."""
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        d = self.design
        per_phase = i_out_a / 2.0
        stress = self.v_in_v / 2.0

        # Each phase's current path crosses two on switches.
        conduction = 2 * (
            2 * self.switch.conduction_loss_w(per_phase)
        )
        # The four inductors each carry roughly a quarter of the load.
        magnetics = dpmih.INDUCTOR_COUNT * self.inductor.conduction_loss_w(
            i_out_a / dpmih.INDUCTOR_COUNT
        )
        charge = dpmih.SWITCH_COUNT * self.switch.charge_loss_w(
            stress, d.frequency_hz
        )
        cap = dpmih.CAPACITOR_COUNT * self.capacitor.conduction_loss_w(
            0.2 * i_out_a
        )
        return conduction + magnetics + charge + cap


class Dickson3LPhysics(SwitchingConverter):
    """Device-level 3LHD: Dickson /10 front + three-phase regulation."""

    def __init__(
        self,
        v_in_v: float = dickson3l.PUBLISHED_V_IN,
        v_out_v: float = dickson3l.PUBLISHED_V_OUT,
        design: PhysicsDesign | None = None,
    ) -> None:
        super().__init__(v_in_v, v_out_v, dickson3l.PUBLISHED_MAX_LOAD_A)
        # The /10 front leaves ~4.8 V stress; the 12 A rating allows
        # small (higher R_on) switches at a higher frequency.
        self.design = design or PhysicsDesign(
            technology=GAN_30V, switch_r_on_ohm=8.0e-3, frequency_hz=2.0e6
        )
        d = self.design
        self.switch = PowerSwitch.sized_for(
            d.switch_r_on_ohm, d.technology, soft_switched=False
        )
        per_inductor = (
            dickson3l.TOTAL_INDUCTANCE_H / dickson3l.INDUCTOR_COUNT
        )
        self.inductor = Inductor(
            per_inductor, d.inductor_dcr_ohm, rated_current_a=self.max_load_a
        )
        per_cap = (
            dickson3l.TOTAL_CAPACITANCE_F / dickson3l.CAPACITOR_COUNT
        )
        self.capacitor = Capacitor(per_cap, d.capacitor_esr_ohm)

    @property
    def regulation_duty(self) -> float:
        """~20% duty after the /10 Dickson front."""
        return (
            self.v_out_v
            * dickson3l.DICKSON_DIVISION_FACTOR
            / self.v_in_v
        )

    def loss_w(self, i_out_a: float) -> float:
        """Dickson charge transfer + low-voltage regulation losses."""
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        d = self.design
        stress = self.v_in_v / dickson3l.DICKSON_DIVISION_FACTOR
        per_phase = i_out_a / dickson3l.INDUCTOR_COUNT
        duty = self.regulation_duty

        conduction = dickson3l.INDUCTOR_COUNT * (
            2 * self.switch.conduction_loss_w(per_phase, duty)
            + self.switch.conduction_loss_w(per_phase, 1.0 - duty)
            + self.inductor.conduction_loss_w(per_phase)
        )
        switching = dickson3l.INDUCTOR_COUNT * self.switch.switching_loss_w(
            stress, per_phase, d.frequency_hz
        )
        charge = dickson3l.SWITCH_COUNT * self.switch.charge_loss_w(
            stress, d.frequency_hz
        )
        cap = dickson3l.CAPACITOR_COUNT * self.capacitor.conduction_loss_w(
            0.25 * i_out_a
        )
        return conduction + switching + charge + cap


def cross_validate(
    physics: SwitchingConverter,
    published_efficiency: float,
    i_test_a: float,
) -> dict[str, float]:
    """Compare a physics model against a published efficiency point.

    Returns the two efficiencies and their absolute gap; callers (and
    tests) decide the acceptance band.
    """
    if not 0.0 < published_efficiency < 1.0:
        raise ConfigError("published efficiency out of range")
    model_eta = physics.efficiency(i_test_a)
    return {
        "physics_efficiency": model_eta,
        "published_efficiency": published_efficiency,
        "gap": abs(model_eta - published_efficiency),
    }
