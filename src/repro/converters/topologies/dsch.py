"""Double series-capacitor hybrid (DSCH) converter [Kirshenboim &
Peretz, TPEL 2017].

A buck-derived hybrid: a compact two-capacitor/one-switch SC front
divides the input by three, then a dual-phase buck regulates to the
POL voltage.  Published 48V-to-1V figures used by the paper: 30 A
maximum load, 91.5% peak efficiency at 10 A (Si devices; the paper
assumes GaN when embedding).

The paper notes the inter-phase current imbalance of this topology as
its main conduction-loss liability; ``phase_current_imbalance``
exposes that first-order asymmetry for the ablation benches.
"""

from __future__ import annotations

from ...errors import ConfigError
from ..loss_model import QuadraticLossModel
from .base import SwitchingConverter

#: Published characteristics (Table II + §III of the paper).
PUBLISHED_V_IN = 48.0
PUBLISHED_V_OUT = 1.0
PUBLISHED_MAX_LOAD_A = 30.0
PUBLISHED_PEAK_EFFICIENCY = 0.915
PUBLISHED_I_AT_PEAK_A = 10.0
#: Full-load efficiency assumed for the curve fit (documented
#: substitution; [8] reports high-20s% currents a few points below peak).
ASSUMED_FULL_LOAD_EFFICIENCY = 0.88

#: Structural data (Table II).
SWITCH_COUNT = 5
SWITCHES_PER_MM2 = 0.69
INDUCTOR_COUNT = 2
TOTAL_INDUCTANCE_H = 0.88e-6
CAPACITOR_COUNT = 2
TOTAL_CAPACITANCE_F = 6.6e-6

#: The SC front divides V_in by this factor before the buck stage.
SC_DIVISION_FACTOR = 3.0


class DSCHConverter(SwitchingConverter):
    """DSCH model driven by the published-curve fit."""

    def __init__(
        self,
        v_in_v: float = PUBLISHED_V_IN,
        v_out_v: float = PUBLISHED_V_OUT,
        loss_model: QuadraticLossModel | None = None,
    ) -> None:
        super().__init__(v_in_v, v_out_v, PUBLISHED_MAX_LOAD_A)
        self.loss_model = loss_model or published_loss_model()

    @property
    def intermediate_voltage_v(self) -> float:
        """Voltage after the series-capacitor divider (V_in / 3)."""
        return self.v_in_v / SC_DIVISION_FACTOR

    @property
    def buck_duty(self) -> float:
        """Duty of the internal dual-phase buck (vs. 2% for a plain
        48V-to-1V buck — the topology's key advantage)."""
        return self.v_out_v / self.intermediate_voltage_v

    @property
    def area_mm2(self) -> float:
        """Switch-area footprint from the Table II density figure."""
        return SWITCH_COUNT / SWITCHES_PER_MM2

    def phase_current_imbalance(self, i_out_a: float) -> tuple[float, float]:
        """First-order per-phase currents of the dual-phase output.

        The series-capacitor phase conducts the capacitor charging
        current on top of its share, yielding roughly a 60/40 split —
        the imbalance the paper calls out as extra conduction loss.
        """
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        return 0.6 * i_out_a, 0.4 * i_out_a

    def loss_w(self, i_out_a: float) -> float:
        """Published-curve loss at the given output current."""
        return self.loss_model.loss_w(i_out_a)


def published_loss_model(v_out_v: float = PUBLISHED_V_OUT) -> QuadraticLossModel:
    """The calibrated quadratic loss curve for the published device."""
    return QuadraticLossModel.fit(
        v_out_v=v_out_v,
        i_peak_a=PUBLISHED_I_AT_PEAK_A,
        eta_peak=PUBLISHED_PEAK_EFFICIENCY,
        i_max_a=PUBLISHED_MAX_LOAD_A,
        eta_max=ASSUMED_FULL_LOAD_EFFICIENCY,
    )
