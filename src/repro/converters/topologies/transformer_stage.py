"""The reference architecture's PCB-level converter.

A0 converts 48V-to-1V at the board with a transformer-based
48V-to-12V first stage followed by a multi-phase synchronous buck.
The paper models the composite simply as a 90%-efficient block, which
:func:`pcb_reference_converter` reproduces;
:class:`FixedEfficiencyConverter` is the general building block.
"""

from __future__ import annotations

from ...errors import ConfigError, InfeasibleError
from .base import SwitchingConverter

#: Composite efficiency the paper assigns to the A0 PCB converter.
PCB_REFERENCE_EFFICIENCY = 0.90


class FixedEfficiencyConverter(SwitchingConverter):
    """A converter with load-independent efficiency.

    Useful for board-level supplies whose efficiency is flat over the
    relevant load range (the paper's A0 assumption).
    """

    def __init__(
        self,
        v_in_v: float,
        v_out_v: float,
        efficiency: float,
        max_load_a: float = 2000.0,
    ) -> None:
        super().__init__(v_in_v, v_out_v, max_load_a)
        if not 0.0 < efficiency < 1.0:
            raise ConfigError("efficiency must be in (0, 1)")
        self._efficiency = efficiency

    def loss_w(self, i_out_a: float) -> float:
        """Loss implied by the fixed efficiency at this load."""
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if not self.is_feasible(i_out_a):
            raise InfeasibleError(
                f"load {i_out_a:.1f} A exceeds rating {self.max_load_a:.1f} A"
            )
        p_out = self.v_out_v * i_out_a
        return p_out * (1.0 / self._efficiency - 1.0)

    def efficiency(self, i_out_a: float) -> float:
        """The fixed efficiency (zero at zero load by convention)."""
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if i_out_a == 0:
            return 0.0
        return self._efficiency


def pcb_reference_converter(
    v_in_v: float = 48.0, v_out_v: float = 1.0
) -> FixedEfficiencyConverter:
    """The A0 board converter: transformer 48->12 + multiphase buck
    12->1, modeled as a single 90%-efficient step."""
    return FixedEfficiencyConverter(
        v_in_v=v_in_v,
        v_out_v=v_out_v,
        efficiency=PCB_REFERENCE_EFFICIENCY,
    )
