"""Converter topology models.

Physics-based models (buck, switched-capacitor) and the paper's three
published hybrid 48V-to-1V converters (DSCH, DPMIH, 3LHD), plus the
reference architecture's PCB-level transformer + multiphase-buck stage.
"""

from .base import SwitchingConverter
from .buck import SynchronousBuck
from .sc import SeriesParallelSC
from .dsch import DSCHConverter
from .dpmih import DPMIHConverter
from .dickson3l import ThreeLevelHybridDickson
from .transformer_stage import FixedEfficiencyConverter, pcb_reference_converter

__all__ = [
    "SwitchingConverter",
    "SynchronousBuck",
    "SeriesParallelSC",
    "DSCHConverter",
    "DPMIHConverter",
    "ThreeLevelHybridDickson",
    "FixedEfficiencyConverter",
    "pcb_reference_converter",
]
