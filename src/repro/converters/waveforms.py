"""Switching-waveform simulation (Fig. 6 reproduction).

Two fixed-timestep simulators demonstrate the operating principles the
paper's Fig. 6 illustrates:

* :class:`BuckWaveformSimulator` — the SMPS buck of Fig. 6(a): PWM
  drive, inductor current triangle, output ripple.  At 48V-to-1V the
  simulated duty settles at ~2%, the paper's ultra-low on-time
  argument, and the steady-state average output matches V_in·D.
* :class:`ChargePumpWaveformSimulator` — the series-parallel SC of
  Fig. 6(b): phase-1 series charging of the flying capacitors from
  the input, phase-2 parallel discharge into the load, reproducing
  the charge-sharing output droop predicted by the SSL model.

Both integrate simple piecewise-linear ODEs explicitly with small
steps — accuracy is validated in tests against analytic steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class WaveformResult:
    """Simulated waveforms.

    Attributes:
        time_s: sample times.
        signals: named waveform arrays (same length as ``time_s``).
    """

    time_s: np.ndarray
    signals: dict[str, np.ndarray]

    def signal(self, name: str) -> np.ndarray:
        """A named waveform."""
        if name not in self.signals:
            raise ConfigError(
                f"unknown signal {name!r}; have {sorted(self.signals)}"
            )
        return self.signals[name]

    def steady_state_mean(self, name: str, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of a waveform."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigError("fraction must be in (0, 1]")
        data = self.signal(name)
        start = int(len(data) * (1.0 - fraction))
        return float(np.mean(data[start:]))

    def steady_state_ripple(self, name: str, fraction: float = 0.25) -> float:
        """Peak-to-peak excursion of the last ``fraction`` of a waveform."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigError("fraction must be in (0, 1]")
        data = self.signal(name)
        start = int(len(data) * (1.0 - fraction))
        tail = data[start:]
        return float(tail.max() - tail.min())


class BuckWaveformSimulator:
    """Open-loop synchronous buck: L-C output filter with a resistive
    load, driven by an ideal PWM at duty D = V_out_target / V_in."""

    def __init__(
        self,
        v_in_v: float,
        v_out_target_v: float,
        inductance_h: float,
        capacitance_f: float,
        frequency_hz: float,
        load_ohm: float,
    ) -> None:
        if v_in_v <= 0 or v_out_target_v <= 0:
            raise ConfigError("voltages must be positive")
        if v_out_target_v >= v_in_v:
            raise ConfigError("buck needs v_out < v_in")
        if min(inductance_h, capacitance_f, frequency_hz, load_ohm) <= 0:
            raise ConfigError("L, C, f, and load must be positive")
        self.v_in_v = v_in_v
        self.v_out_target_v = v_out_target_v
        self.inductance_h = inductance_h
        self.capacitance_f = capacitance_f
        self.frequency_hz = frequency_hz
        self.load_ohm = load_ohm

    @property
    def duty(self) -> float:
        """Ideal duty cycle (≈2.1% for 48V-to-1V)."""
        return self.v_out_target_v / self.v_in_v

    def simulate(
        self, cycles: int = 200, steps_per_cycle: int = 400
    ) -> WaveformResult:
        """Integrate the switching waveforms over ``cycles`` periods."""
        if cycles < 1 or steps_per_cycle < 10:
            raise ConfigError("need >= 1 cycle and >= 10 steps per cycle")
        period = 1.0 / self.frequency_hz
        dt = period / steps_per_cycle
        total = cycles * steps_per_cycle

        time = np.arange(total) * dt
        switch_node = np.where(
            (time % period) < self.duty * period, self.v_in_v, 0.0
        )

        i_l = np.empty(total)
        v_c = np.empty(total)
        # Start at the analytic operating point to shorten settling.
        i_l[0] = self.v_out_target_v / self.load_ohm
        v_c[0] = self.v_out_target_v
        for k in range(total - 1):
            di = (switch_node[k] - v_c[k]) / self.inductance_h
            dv = (i_l[k] - v_c[k] / self.load_ohm) / self.capacitance_f
            i_l[k + 1] = i_l[k] + di * dt
            v_c[k + 1] = v_c[k] + dv * dt

        return WaveformResult(
            time_s=time,
            signals={
                "switch_node_v": switch_node,
                "inductor_current_a": i_l,
                "output_voltage_v": v_c,
            },
        )


class ChargePumpWaveformSimulator:
    """Series-parallel n:1 charge pump with an output capacitor and a
    resistive load; flying capacitors charge in series during phase 1
    and discharge in parallel during phase 2 (Fig. 6(b))."""

    def __init__(
        self,
        v_in_v: float,
        ratio: int,
        fly_capacitance_f: float,
        out_capacitance_f: float,
        frequency_hz: float,
        load_ohm: float,
        switch_resistance_ohm: float = 5e-3,
    ) -> None:
        if ratio < 2:
            raise ConfigError("ratio must be >= 2")
        if v_in_v <= 0:
            raise ConfigError("input voltage must be positive")
        if (
            min(
                fly_capacitance_f,
                out_capacitance_f,
                frequency_hz,
                load_ohm,
                switch_resistance_ohm,
            )
            <= 0
        ):
            raise ConfigError("all component values must be positive")
        self.v_in_v = v_in_v
        self.ratio = ratio
        self.fly_capacitance_f = fly_capacitance_f
        self.out_capacitance_f = out_capacitance_f
        self.frequency_hz = frequency_hz
        self.load_ohm = load_ohm
        self.switch_resistance_ohm = switch_resistance_ohm

    @property
    def ideal_output_v(self) -> float:
        """No-load output voltage, V_in / n."""
        return self.v_in_v / self.ratio

    def simulate(
        self, cycles: int = 400, steps_per_cycle: int = 200
    ) -> WaveformResult:
        """Integrate the two-phase operation over ``cycles`` periods.

        All n−1 flying capacitors see identical conditions, so one
        representative capacitor voltage is integrated and applied to
        all (exact for ideal matching).
        """
        if cycles < 1 or steps_per_cycle < 10:
            raise ConfigError("need >= 1 cycle and >= 10 steps per cycle")
        n = self.ratio
        n_fly = n - 1
        period = 1.0 / self.frequency_hz
        dt = period / steps_per_cycle
        total = cycles * steps_per_cycle

        time = np.arange(total) * dt
        v_fly = np.empty(total)
        v_out = np.empty(total)
        phase = np.empty(total)
        v_fly[0] = self.ideal_output_v
        v_out[0] = self.ideal_output_v

        r_sw = self.switch_resistance_ohm
        for k in range(total - 1):
            in_phase1 = (time[k] % period) < 0.5 * period
            phase[k] = 1.0 if in_phase1 else 2.0
            if in_phase1:
                # Input -> n-1 caps in series -> output node.
                series_r = n * r_sw
                i_chain = (
                    self.v_in_v - n_fly * v_fly[k] - v_out[k]
                ) / series_r
                dv_fly = i_chain / self.fly_capacitance_f
                i_to_out = i_chain
            else:
                # All caps in parallel across the output.
                leg_r = 2.0 * r_sw
                i_leg = (v_fly[k] - v_out[k]) / leg_r
                dv_fly = -i_leg / self.fly_capacitance_f
                i_to_out = n_fly * i_leg
            dv_out = (
                i_to_out - v_out[k] / self.load_ohm
            ) / self.out_capacitance_f
            v_fly[k + 1] = v_fly[k] + dv_fly * dt
            v_out[k + 1] = v_out[k] + dv_out * dt
        phase[-1] = phase[-2]

        return WaveformResult(
            time_s=time,
            signals={
                "flying_cap_v": v_fly,
                "output_voltage_v": v_out,
                "phase": phase,
            },
        )
