"""Quadratic converter loss curves fitted to published data.

The paper characterizes its architectures with three published
48V-to-1V converters, each reported as "(peak efficiency @ current,
maximum load current)".  We reconstruct a full P_loss(I) curve with
the standard decomposition

    P_loss(I) = a + b·I + c·I²

where ``a`` captures fixed (gate/charge/control) switching loss,
``b`` current-proportional loss, and ``c`` conduction loss.  The
published data pins the curve exactly:

* peak efficiency at I* forces ``a = c·I*²`` (d(P/I)/dI = 0),
* efficiency at the peak fixes ``b + 2·c·I* = V·(1/η* − 1)``,
* a full-load efficiency point fixes ``c``.

The fit therefore *interpolates* the published points rather than
approximating them, which is what "calibrated to the paper" means here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CalibrationError, ConfigError, InfeasibleError


@dataclass(frozen=True)
class QuadraticLossModel:
    """P_loss(I) = a + b·I + c·I² for a converter with output ``v_out``.

    Attributes:
        v_out_v: output voltage used for efficiency computation.
        a_w: fixed loss (W).
        b_v: current-proportional loss coefficient (V, i.e. W/A).
        c_ohm: conduction-loss coefficient (Ω, i.e. W/A²).
        i_max_a: maximum load current; queries beyond raise unless
            extrapolation is explicitly allowed.
    """

    v_out_v: float
    a_w: float
    b_v: float
    c_ohm: float
    i_max_a: float

    def __post_init__(self) -> None:
        if self.v_out_v <= 0:
            raise ConfigError("output voltage must be positive")
        if self.a_w < 0 or self.b_v < 0 or self.c_ohm < 0:
            raise CalibrationError(
                "loss coefficients must be non-negative: "
                f"a={self.a_w}, b={self.b_v}, c={self.c_ohm}"
            )
        if self.i_max_a <= 0:
            raise ConfigError("maximum load current must be positive")

    # -- construction ----------------------------------------------------------

    @staticmethod
    def fit(
        v_out_v: float,
        i_peak_a: float,
        eta_peak: float,
        i_max_a: float,
        eta_max: float,
    ) -> "QuadraticLossModel":
        """Fit (a, b, c) through the published efficiency points.

        Args:
            v_out_v: converter output voltage.
            i_peak_a: load current at peak efficiency.
            eta_peak: peak efficiency (0..1).
            i_max_a: maximum load current.
            eta_max: efficiency at maximum load (must be < eta_peak).
        """
        if not 0.0 < eta_max < eta_peak < 1.0:
            raise CalibrationError(
                "need 0 < eta_max < eta_peak < 1 "
                f"(got eta_peak={eta_peak}, eta_max={eta_max})"
            )
        if not 0.0 < i_peak_a < i_max_a:
            raise CalibrationError(
                "need 0 < i_peak < i_max "
                f"(got i_peak={i_peak_a}, i_max={i_max_a})"
            )
        c = (
            v_out_v
            * i_max_a
            * (1.0 / eta_max - 1.0 / eta_peak)
            / (i_max_a - i_peak_a) ** 2
        )
        b = v_out_v * (1.0 / eta_peak - 1.0) - 2.0 * c * i_peak_a
        a = c * i_peak_a**2
        if b < 0:
            raise CalibrationError(
                "published points imply a negative linear coefficient "
                f"(b={b:.4g}); the (eta_peak, eta_max) pair is "
                "inconsistent with a quadratic loss curve"
            )
        return QuadraticLossModel(
            v_out_v=v_out_v, a_w=a, b_v=b, c_ohm=c, i_max_a=i_max_a
        )

    # -- evaluation --------------------------------------------------------------

    def loss_w(self, i_out_a: float, allow_extrapolation: bool = False) -> float:
        """Converter loss at the given output current."""
        if i_out_a < 0:
            raise ConfigError("output current must be non-negative")
        if i_out_a > self.i_max_a * (1.0 + 1e-9) and not allow_extrapolation:
            raise InfeasibleError(
                f"load {i_out_a:.2f} A exceeds the converter's maximum "
                f"{self.i_max_a:.2f} A (the paper excludes such points)"
            )
        return self.a_w + self.b_v * i_out_a + self.c_ohm * i_out_a**2

    def efficiency(self, i_out_a: float, allow_extrapolation: bool = False) -> float:
        """Efficiency P_out / (P_out + P_loss) at the given current."""
        if i_out_a <= 0:
            return 0.0
        p_out = self.v_out_v * i_out_a
        return p_out / (p_out + self.loss_w(i_out_a, allow_extrapolation))

    def loss_for_power_w(
        self, p_out_w: float, allow_extrapolation: bool = False
    ) -> float:
        """Loss when delivering ``p_out_w`` at the rated output voltage."""
        if p_out_w < 0:
            raise ConfigError("output power must be non-negative")
        return self.loss_w(p_out_w / self.v_out_v, allow_extrapolation)

    @property
    def i_peak_a(self) -> float:
        """Current of maximum efficiency, sqrt(a/c) (i_max if c = 0)."""
        if self.c_ohm == 0.0:
            return self.i_max_a
        return math.sqrt(self.a_w / self.c_ohm)

    @property
    def peak_efficiency(self) -> float:
        """Efficiency at the optimum current."""
        return self.efficiency(min(self.i_peak_a, self.i_max_a))

    def is_feasible(self, i_out_a: float) -> bool:
        """True if the current is within the converter's rating."""
        return 0.0 <= i_out_a <= self.i_max_a * (1.0 + 1e-9)

    # -- transformation -----------------------------------------------------------

    def scaled_to_ratio(
        self, v_in_old_v: float, v_in_new_v: float, v_out_new_v: float | None = None
    ) -> "QuadraticLossModel":
        """Physics-based re-rating of the curve for a new input voltage.

        Used by the "ratio-scaled" dual-stage mode (an ablation; the
        paper's own method reuses the published 48V-to-1V curves).
        First-order scaling rules:

        * fixed switching loss ``a`` scales with V_in^1.5 (output-charge
          loss is ~quadratic in V_in, gate loss constant — 1.5 is the
          blended exponent),
        * linear loss ``b`` scales with sqrt(V_in) (overlap loss),
        * conduction ``c`` is unchanged (same devices, same current).
        """
        if v_in_old_v <= 0 or v_in_new_v <= 0:
            raise ConfigError("input voltages must be positive")
        ratio = v_in_new_v / v_in_old_v
        return QuadraticLossModel(
            v_out_v=v_out_new_v if v_out_new_v is not None else self.v_out_v,
            a_w=self.a_w * ratio**1.5,
            b_v=self.b_v * math.sqrt(ratio),
            c_ohm=self.c_ohm,
            i_max_a=self.i_max_a,
        )

    def reused_at_output_voltage(self, v_out_v: float) -> "QuadraticLossModel":
        """Reuse the published efficiency-vs-current behaviour at a new
        output voltage (the paper's "as-published" stage model).

        The published data pins η(I); keeping η(I) while the output
        voltage changes means the loss at current I scales with the
        throughput power, i.e. with v_out:

            loss_new(I) = v_out_new / v_out_old · loss_old(I)

        so all three coefficients scale by the voltage ratio.  This is
        the conservative stage model the paper's numbers imply — no
        ratio-specific efficiency data existed for these devices.
        """
        if v_out_v <= 0:
            raise ConfigError("output voltage must be positive")
        scale = v_out_v / self.v_out_v
        return QuadraticLossModel(
            v_out_v=v_out_v,
            a_w=self.a_w * scale,
            b_v=self.b_v * scale,
            c_ohm=self.c_ohm * scale,
            i_max_a=self.i_max_a,
        )

    def paralleled(self, count: int) -> "QuadraticLossModel":
        """Aggregate model of ``count`` identical converters sharing
        load equally (a scales up, c scales down, b unchanged)."""
        if count < 1:
            raise ConfigError("count must be >= 1")
        return QuadraticLossModel(
            v_out_v=self.v_out_v,
            a_w=self.a_w * count,
            b_v=self.b_v,
            c_ohm=self.c_ohm / count,
            i_max_a=self.i_max_a * count,
        )


def published_efficiency_check(
    model: QuadraticLossModel,
    i_peak_a: float,
    eta_peak: float,
    tolerance: float = 1e-9,
) -> bool:
    """True if the model reproduces a published (I, η) point exactly."""
    return abs(model.efficiency(i_peak_a) - eta_peak) <= tolerance
