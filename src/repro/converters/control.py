"""Closed-loop regulation models: droop control and load sharing.

The paper's architectures parallel dozens of VRs onto one rail; in
practice they share load through *droop control* — each regulator's
setpoint falls linearly with its output current, so paralleled units
reach a common bus voltage with currents set by their droop gains and
setpoint mismatches.  This module provides:

* :class:`VoltageRegulator` — setpoint, droop gain, control bandwidth,
  closed-loop output impedance ``Z_ol / (1 + T)`` with an
  integrator-style loop gain,
* :func:`droop_sharing` — the analytic bus solution for N paralleled
  droop-controlled regulators (with setpoint tolerance),
* :func:`sharing_with_mismatch` — Monte-Carlo setpoint spread, the
  control-side counterpart of the network-driven sharing spread in
  :mod:`repro.core.current_sharing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class VoltageRegulator:
    """A droop-controlled regulator's terminal behaviour.

    Attributes:
        v_ref_v: no-load setpoint.
        droop_ohm: droop gain (output resistance by design).
        bandwidth_hz: control-loop crossover frequency.
        l_out_h: effective output inductance (filter + layout).
        r_out_ohm: open-loop (power-stage) output resistance.
    """

    v_ref_v: float = 1.0
    droop_ohm: float = 0.15e-3
    bandwidth_hz: float = 500e3
    l_out_h: float = 5e-9
    r_out_ohm: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.v_ref_v <= 0:
            raise ConfigError("setpoint must be positive")
        if self.droop_ohm <= 0:
            raise ConfigError("droop gain must be positive")
        if self.bandwidth_hz <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.l_out_h <= 0 or self.r_out_ohm <= 0:
            raise ConfigError("output parasitics must be positive")

    def output_voltage_v(self, i_out_a: float) -> float:
        """Static regulation: V = V_ref − R_droop·I."""
        if i_out_a < 0:
            raise ConfigError("current must be non-negative")
        return self.v_ref_v - self.droop_ohm * i_out_a

    def load_regulation_fraction(self, i_max_a: float) -> float:
        """Full-load voltage deviation as a fraction of the setpoint."""
        if i_max_a <= 0:
            raise ConfigError("current must be positive")
        return self.droop_ohm * i_max_a / self.v_ref_v

    def open_loop_impedance_ohm(self, frequency_hz: float) -> complex:
        """Power-stage output impedance R + jωL."""
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        return self.r_out_ohm + 1j * 2 * math.pi * frequency_hz * self.l_out_h

    def loop_gain(self, frequency_hz: float) -> complex:
        """Integrator-style loop gain T(f) = f_c / (j·f)."""
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        return self.bandwidth_hz / (1j * frequency_hz)

    def closed_loop_impedance_ohm(self, frequency_hz: float) -> complex:
        """Z_cl(f) = Z_ol(f) / (1 + T(f)) — low below crossover,
        approaching the open-loop impedance above it."""
        z_ol = self.open_loop_impedance_ohm(frequency_hz)
        return z_ol / (1.0 + self.loop_gain(frequency_hz))

    def worst_case_deviation_v(
        self, step_current_a: float, frequencies_hz: np.ndarray | None = None
    ) -> float:
        """Peak small-signal deviation for a load step: the step
        excites the worst |Z_cl| across the band."""
        if step_current_a < 0:
            raise ConfigError("step current must be non-negative")
        if frequencies_hz is None:
            frequencies_hz = np.logspace(3, 8, 201)
        magnitudes = np.array(
            [
                abs(self.closed_loop_impedance_ohm(float(f)))
                for f in frequencies_hz
            ]
        )
        return float(step_current_a * magnitudes.max())


def droop_sharing(
    v_refs_v: np.ndarray | list[float],
    droops_ohm: np.ndarray | list[float],
    i_load_a: float,
) -> tuple[np.ndarray, float]:
    """Bus solution for N paralleled droop-controlled regulators.

    Each unit satisfies ``i_k = (v_ref_k − v_bus) / r_droop_k`` and
    the currents sum to the load.  Solving for the bus:

        v_bus = (Σ v_ref_k/r_k − I_load) / Σ 1/r_k

    Returns (per-unit currents, bus voltage).  Units whose setpoint
    falls below the bus (strong mismatch, light load) sink negative
    current — a real behaviour droop designs must guard against, so
    it is reported rather than clipped.
    """
    refs = np.asarray(v_refs_v, dtype=float)
    droops = np.asarray(droops_ohm, dtype=float)
    if refs.shape != droops.shape or refs.ndim != 1 or len(refs) == 0:
        raise ConfigError("need matching 1-D setpoint and droop arrays")
    if np.any(droops <= 0):
        raise ConfigError("droop gains must be positive")
    if i_load_a < 0:
        raise ConfigError("load must be non-negative")
    conductances = 1.0 / droops
    v_bus = (np.sum(refs * conductances) - i_load_a) / np.sum(conductances)
    currents = (refs - v_bus) * conductances
    return currents, float(v_bus)


@dataclass(frozen=True)
class MismatchSharingResult:
    """Monte-Carlo droop-sharing statistics."""

    worst_spread_a: float
    mean_spread_a: float
    reverse_current_fraction: float


def sharing_with_mismatch(
    unit_count: int,
    i_load_a: float,
    droop_ohm: float = 0.15e-3,
    setpoint_sigma_v: float = 2e-3,
    samples: int = 200,
    seed: int = 7,
) -> MismatchSharingResult:
    """Spread of per-unit currents under setpoint tolerance.

    The expected spread scales as ``sigma_vref / r_droop`` — the
    design rule that links the droop gain to the trimming accuracy.
    """
    if unit_count < 2:
        raise ConfigError("need at least two units")
    if samples < 1:
        raise ConfigError("need at least one sample")
    if setpoint_sigma_v < 0:
        raise ConfigError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    spreads = np.empty(samples)
    reverse = 0
    droops = np.full(unit_count, droop_ohm)
    for k in range(samples):
        refs = 1.0 + rng.normal(0.0, setpoint_sigma_v, size=unit_count)
        currents, _v_bus = droop_sharing(refs, droops, i_load_a)
        spreads[k] = currents.max() - currents.min()
        if np.any(currents < 0):
            reverse += 1
    return MismatchSharingResult(
        worst_spread_a=float(spreads.max()),
        mean_spread_a=float(spreads.mean()),
        reverse_current_fraction=reverse / samples,
    )
