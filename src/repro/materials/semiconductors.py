"""Power transistor technology models (Si vs GaN).

The paper motivates GaN power devices for on-/in-interposer conversion
because of their superior R_on x Q_g figure of merit: for a given
on-resistance a GaN switch has far less gate/output charge, so it can
switch at the high frequencies integrated passives require without the
switching loss exploding.

The numbers below are representative of published 100 V-class devices
(e.g. EPC eGaN FETs vs state-of-the-art Si trench MOSFETs) and are only
used for the bottom-up ("physics") converter models and the Si-vs-GaN
ablation; the paper-calibrated loss curves do not depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TransistorTechnology:
    """A power-switch technology operating point.

    Attributes:
        name: technology label.
        material: 'Si' or 'GaN'.
        voltage_rating_v: maximum drain-source voltage.
        r_on_ohm: on-resistance of the reference device.
        gate_charge_c: total gate charge Q_g of the reference device.
        output_charge_c: output charge Q_oss of the reference device.
        gate_drive_v: gate drive voltage used for switching-loss
            estimates.
        specific_r_on_ohm_mm2: R_on x area product; device area for a
            target R_on is ``specific_r_on_ohm_mm2 / r_on``.
    """

    name: str
    material: str
    voltage_rating_v: float
    r_on_ohm: float
    gate_charge_c: float
    output_charge_c: float
    gate_drive_v: float
    specific_r_on_ohm_mm2: float

    def __post_init__(self) -> None:
        if self.material not in ("Si", "GaN"):
            raise ConfigError("material must be 'Si' or 'GaN'")
        for field_name in (
            "voltage_rating_v",
            "r_on_ohm",
            "gate_charge_c",
            "output_charge_c",
            "gate_drive_v",
            "specific_r_on_ohm_mm2",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")

    @property
    def figure_of_merit(self) -> float:
        """R_on x Q_g figure of merit (lower is better), in ohm-coulomb."""
        return self.r_on_ohm * self.gate_charge_c

    def scaled(self, r_on_target_ohm: float) -> "TransistorTechnology":
        """Return a device scaled (by area) to a target on-resistance.

        Charges scale inversely with R_on (wider device, more charge),
        keeping the figure of merit constant, which is the standard
        first-order device-scaling rule.
        """
        if r_on_target_ohm <= 0:
            raise ConfigError("target R_on must be positive")
        ratio = self.r_on_ohm / r_on_target_ohm
        return TransistorTechnology(
            name=f"{self.name} (scaled)",
            material=self.material,
            voltage_rating_v=self.voltage_rating_v,
            r_on_ohm=r_on_target_ohm,
            gate_charge_c=self.gate_charge_c * ratio,
            output_charge_c=self.output_charge_c * ratio,
            gate_drive_v=self.gate_drive_v,
            specific_r_on_ohm_mm2=self.specific_r_on_ohm_mm2,
        )

    def device_area_mm2(self, r_on_target_ohm: float) -> float:
        """Die area needed to hit a target on-resistance."""
        if r_on_target_ohm <= 0:
            raise ConfigError("target R_on must be positive")
        return self.specific_r_on_ohm_mm2 / r_on_target_ohm


#: 100 V-class silicon trench power MOSFET (representative).
SI_POWER_MOSFET = TransistorTechnology(
    name="Si trench MOSFET 100V",
    material="Si",
    voltage_rating_v=100.0,
    r_on_ohm=4.0e-3,
    gate_charge_c=40e-9,
    output_charge_c=60e-9,
    gate_drive_v=10.0,
    specific_r_on_ohm_mm2=60e-3,
)

#: 100 V-class GaN HEMT (representative of EPC-style eGaN devices).
GAN_100V = TransistorTechnology(
    name="GaN HEMT 100V",
    material="GaN",
    voltage_rating_v=100.0,
    r_on_ohm=4.0e-3,
    gate_charge_c=5e-9,
    output_charge_c=15e-9,
    gate_drive_v=5.0,
    specific_r_on_ohm_mm2=25e-3,
)

#: 30 V-class GaN HEMT (post-division low-stress switches, e.g. the
#: regulation stage behind a /3 or /10 SC front).
GAN_30V = TransistorTechnology(
    name="GaN HEMT 30V",
    material="GaN",
    voltage_rating_v=30.0,
    r_on_ohm=2.0e-3,
    gate_charge_c=3e-9,
    output_charge_c=6e-9,
    gate_drive_v=5.0,
    specific_r_on_ohm_mm2=12e-3,
)

#: 60 V-class GaN HEMT (half-bus stress in 48 V hybrid stages).
GAN_60V = TransistorTechnology(
    name="GaN HEMT 60V",
    material="GaN",
    voltage_rating_v=60.0,
    r_on_ohm=2.0e-3,
    gate_charge_c=4e-9,
    output_charge_c=10e-9,
    gate_drive_v=5.0,
    specific_r_on_ohm_mm2=18e-3,
)

#: 650 V-class GaN HEMT (first-stage / high-bus-voltage duty).
GAN_650V = TransistorTechnology(
    name="GaN HEMT 650V",
    material="GaN",
    voltage_rating_v=650.0,
    r_on_ohm=50e-3,
    gate_charge_c=6e-9,
    output_charge_c=30e-9,
    gate_drive_v=6.0,
    specific_r_on_ohm_mm2=180e-3,
)
