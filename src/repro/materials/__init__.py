"""Material models: interconnect conductors and power semiconductors."""

from .conductors import (
    ALUMINUM,
    COPPER,
    SOLDER_SAC305,
    Conductor,
    resistivity_at,
)
from .semiconductors import (
    GAN_30V,
    GAN_60V,
    GAN_100V,
    GAN_650V,
    SI_POWER_MOSFET,
    TransistorTechnology,
)

__all__ = [
    "Conductor",
    "COPPER",
    "ALUMINUM",
    "SOLDER_SAC305",
    "resistivity_at",
    "TransistorTechnology",
    "SI_POWER_MOSFET",
    "GAN_30V",
    "GAN_60V",
    "GAN_100V",
    "GAN_650V",
]
