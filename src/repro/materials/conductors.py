"""Conductor materials used across the packaging stack.

Resistivities are room-temperature bulk values; packaging-grade films
and solder joints are somewhat worse, which is captured by each
interconnect technology's geometry factor rather than by fudging the
material constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Reference temperature for the tabulated resistivities (Celsius).
REFERENCE_TEMPERATURE_C = 25.0


@dataclass(frozen=True)
class Conductor:
    """An electrical conductor material.

    Attributes:
        name: human-readable material name.
        resistivity_ohm_m: bulk resistivity at 25 °C.
        temp_coefficient_per_c: linear temperature coefficient of
            resistivity (1/°C).
    """

    name: str
    resistivity_ohm_m: float
    temp_coefficient_per_c: float

    def __post_init__(self) -> None:
        if self.resistivity_ohm_m <= 0:
            raise ConfigError(f"{self.name}: resistivity must be positive")

    def resistivity(self, temperature_c: float = REFERENCE_TEMPERATURE_C) -> float:
        """Resistivity at the given temperature (linear model)."""
        delta = temperature_c - REFERENCE_TEMPERATURE_C
        factor = 1.0 + self.temp_coefficient_per_c * delta
        if factor <= 0:
            raise ConfigError(
                f"{self.name}: temperature {temperature_c} C out of the "
                "linear-model range"
            )
        return self.resistivity_ohm_m * factor

    def wire_resistance(
        self,
        length_m: float,
        cross_section_m2: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> float:
        """Resistance of a uniform conductor: R = rho * l / A."""
        if length_m < 0:
            raise ConfigError("length must be non-negative")
        if cross_section_m2 <= 0:
            raise ConfigError("cross-section must be positive")
        return self.resistivity(temperature_c) * length_m / cross_section_m2

    def sheet_resistance(
        self,
        thickness_m: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> float:
        """Sheet resistance of a film: R_sq = rho / t (ohm per square)."""
        if thickness_m <= 0:
            raise ConfigError("thickness must be positive")
        return self.resistivity(temperature_c) / thickness_m


#: Electrodeposited copper (planes, RDL, TSV fill, hybrid-bond pads).
COPPER = Conductor(
    name="Cu", resistivity_ohm_m=1.68e-8, temp_coefficient_per_c=3.9e-3
)

#: Aluminum (legacy on-chip metal; kept for BEOL comparisons).
ALUMINUM = Conductor(
    name="Al", resistivity_ohm_m=2.82e-8, temp_coefficient_per_c=3.9e-3
)

#: SAC305 lead-free solder (BGA balls, C4 bumps, micro-bumps).
SOLDER_SAC305 = Conductor(
    name="SAC305", resistivity_ohm_m=1.32e-7, temp_coefficient_per_c=2.0e-3
)


def resistivity_at(material: Conductor, temperature_c: float) -> float:
    """Functional wrapper over :meth:`Conductor.resistivity`."""
    return material.resistivity(temperature_c)
