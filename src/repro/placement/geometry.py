"""Placement geometry helpers.

Positions are expressed in fractional die coordinates (x, y) in
[0, 1]² so they can be handed directly to the grid PDN solver.
Periphery VRs physically sit on the interposer just outside the die
edge; electrically they feed the die edge, so their positions are
clamped to the die boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

#: Golden angle used by the sunflower layout (radians).
_GOLDEN_ANGLE = math.pi * (3.0 - math.sqrt(5.0))


@dataclass(frozen=True)
class Position:
    """A placement site in fractional die coordinates."""

    x: float
    y: float
    ring: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.x <= 1.0 or not 0.0 <= self.y <= 1.0:
            raise ConfigError(f"position ({self.x}, {self.y}) outside die")


def periphery_positions(count: int, inset: float = 0.02) -> list[Position]:
    """``count`` positions evenly spaced along the die boundary.

    The walk starts mid-top-edge and proceeds clockwise; positions are
    inset slightly so they land on interior grid nodes.
    """
    if count < 1:
        raise ConfigError("count must be >= 1")
    if not 0.0 <= inset < 0.5:
        raise ConfigError("inset must be in [0, 0.5)")
    lo, hi = inset, 1.0 - inset
    side = hi - lo
    perimeter = 4.0 * side
    positions: list[Position] = []
    for k in range(count):
        distance = (k + 0.5) / count * perimeter
        edge, along = divmod(distance, side)
        if edge == 0:  # top edge, left -> right
            x, y = lo + along, lo
        elif edge == 1:  # right edge, top -> bottom
            x, y = hi, lo + along
        elif edge == 2:  # bottom edge, right -> left
            x, y = hi - along, hi
        else:  # left edge, bottom -> top
            x, y = lo, hi - along
        positions.append(Position(x=x, y=y, ring=0))
    return positions


def multi_ring_positions(
    counts_per_ring: list[int], ring_spacing: float = 0.06
) -> list[Position]:
    """Positions for several concentric periphery rings.

    Ring 0 hugs the die edge; each deeper ring is inset by
    ``ring_spacing`` more.  (Physically, additional rings sit farther
    *outside* the die on the interposer; electrically they feed the
    same edge region, so deeper rings are modeled closer toward the
    die interior only slightly.)
    """
    if not counts_per_ring:
        raise ConfigError("at least one ring required")
    if ring_spacing <= 0:
        raise ConfigError("ring spacing must be positive")
    positions: list[Position] = []
    for ring, count in enumerate(counts_per_ring):
        if count <= 0:
            continue
        inset = 0.02 + ring * ring_spacing
        if inset >= 0.5:
            raise ConfigError("too many rings for the die")
        ring_pos = periphery_positions(count, inset=inset)
        positions.extend(
            Position(x=p.x, y=p.y, ring=ring) for p in ring_pos
        )
    return positions


def grid_positions(count: int, margin: float = 0.08) -> list[Position]:
    """``count`` positions in a centered near-square grid.

    Used for under-die placement: rows × cols with the last row
    centered when partially filled.
    """
    if count < 1:
        raise ConfigError("count must be >= 1")
    if not 0.0 <= margin < 0.5:
        raise ConfigError("margin must be in [0, 0.5)")
    cols = math.ceil(math.sqrt(count))
    rows = math.ceil(count / cols)
    span = 1.0 - 2.0 * margin
    positions: list[Position] = []
    placed = 0
    for r in range(rows):
        in_row = min(cols, count - placed)
        y = margin + (r + 0.5) / rows * span
        for c in range(in_row):
            x = margin + (c + 0.5) / in_row * span
            positions.append(Position(x=x, y=y, ring=0))
        placed += in_row
    return positions


def sunflower_positions(count: int, radius: float = 0.42) -> list[Position]:
    """``count`` positions in a golden-angle sunflower disk.

    An alternative under-die layout with uniform areal density; used
    by the placement ablation bench.
    """
    if count < 1:
        raise ConfigError("count must be >= 1")
    if not 0.0 < radius <= 0.5:
        raise ConfigError("radius must be in (0, 0.5]")
    positions: list[Position] = []
    for k in range(count):
        r = radius * math.sqrt((k + 0.5) / count)
        theta = k * _GOLDEN_ANGLE
        positions.append(
            Position(
                x=0.5 + r * math.cos(theta),
                y=0.5 + r * math.sin(theta),
                ring=0,
            )
        )
    return positions


def mixed_positions(
    below_count: int, periphery_count: int, margin: float = 0.12
) -> list[Position]:
    """Under-die grid plus a periphery ring (the DPMIH A2 pattern:
    slots below the die are exhausted and the remainder overflows to
    the periphery)."""
    positions: list[Position] = []
    if below_count > 0:
        positions.extend(grid_positions(below_count, margin=margin))
    if periphery_count > 0:
        ring = periphery_positions(periphery_count)
        positions.extend(Position(x=p.x, y=p.y, ring=1) for p in ring)
    if not positions:
        raise ConfigError("at least one VR required")
    return positions
