"""VR placement engine.

Turns a converter spec plus a die geometry into a concrete placement
plan: how many VRs, where they sit (periphery rings on the interposer
surface, or embedded below the die), and whether the plan satisfies
the area and per-VR-current constraints.  The count policy mirrors the
paper (Table II slot counts, demand-driven row extension for sparse
converters, and the 3LHD exclusion).
"""

from .geometry import Position, periphery_positions, grid_positions, sunflower_positions
from .area_budget import AreaBudget, below_die_budget, periphery_budget
from .planner import (
    OVERFLOW_AREA_THRESHOLD_MM2,
    PlacementPlan,
    PlacementStyle,
    optimal_stage_count,
    plan_placement,
)

__all__ = [
    "Position",
    "periphery_positions",
    "grid_positions",
    "sunflower_positions",
    "AreaBudget",
    "periphery_budget",
    "below_die_budget",
    "PlacementStyle",
    "PlacementPlan",
    "plan_placement",
    "optimal_stage_count",
    "OVERFLOW_AREA_THRESHOLD_MM2",
]
