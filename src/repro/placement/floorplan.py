"""Concrete interposer floorplans (the Fig. 4/5 artifacts).

Turns a :class:`~repro.placement.planner.PlacementPlan` into actual
rectangles on the interposer: VR tiles sized from the converter's
switch-density footprint, centered on the plan's positions, clipped
against each other and the region budgets.  Provides overlap checks
(a plan that passes the area budget must also *place* without
overlap) and an ASCII rendering that reproduces the paper's Fig. 5
illustration — periphery ring vs under-die distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from .planner import PlacementPlan, PlacementStyle


@dataclass(frozen=True)
class Tile:
    """One placed VR rectangle in die-fraction coordinates.

    The die occupies [0,1]²; periphery tiles may extend beyond it
    (they sit on the interposer around the die).
    """

    index: int
    x_center: float
    y_center: float
    width: float
    height: float
    ring: int

    @property
    def x_min(self) -> float:
        """Left edge."""
        return self.x_center - self.width / 2

    @property
    def x_max(self) -> float:
        """Right edge."""
        return self.x_center + self.width / 2

    @property
    def y_min(self) -> float:
        """Bottom edge."""
        return self.y_center - self.height / 2

    @property
    def y_max(self) -> float:
        """Top edge."""
        return self.y_center + self.height / 2

    def overlaps(self, other: "Tile", tolerance: float = 1e-9) -> bool:
        """Axis-aligned rectangle overlap test."""
        return not (
            self.x_max <= other.x_min + tolerance
            or other.x_max <= self.x_min + tolerance
            or self.y_max <= other.y_min + tolerance
            or other.y_max <= self.y_min + tolerance
        )


@dataclass(frozen=True)
class Floorplan:
    """A realized VR floorplan.

    Attributes:
        plan: the placement plan this floorplan realizes.
        tiles: one rectangle per VR.
        die_span: the die occupies [0, die_span]² in floorplan
            coordinates (1.0; kept for clarity in rendering).
    """

    plan: PlacementPlan
    tiles: tuple[Tile, ...]
    die_span: float = 1.0

    def overlapping_pairs(self) -> list[tuple[int, int]]:
        """All pairs of tiles that overlap (should be empty)."""
        pairs: list[tuple[int, int]] = []
        for i, a in enumerate(self.tiles):
            for b in self.tiles[i + 1 :]:
                if a.overlaps(b):
                    pairs.append((a.index, b.index))
        return pairs

    @property
    def is_legal(self) -> bool:
        """True when no two tiles overlap."""
        return not self.overlapping_pairs()

    def tiles_inside_die(self) -> int:
        """Tiles fully within the die shadow."""
        count = 0
        for tile in self.tiles:
            if (
                tile.x_min >= -1e-9
                and tile.y_min >= -1e-9
                and tile.x_max <= self.die_span + 1e-9
                and tile.y_max <= self.die_span + 1e-9
            ):
                count += 1
        return count

    def render(self, width: int = 58, height: int = 29) -> str:
        """ASCII rendering: die outline plus numbered VR tiles.

        Periphery tiles (outside the die edge) render on an extended
        canvas, reproducing the Fig. 5(a)/(b) contrast.
        """
        if width < 20 or height < 10:
            raise ConfigError("canvas too small")
        # Canvas spans [-margin, 1+margin]^2 around the die.
        margin = 0.18
        span = 1.0 + 2 * margin

        def to_col(x: float) -> int:
            return int((x + margin) / span * (width - 1))

        def to_row(y: float) -> int:
            return int((y + margin) / span * (height - 1))

        grid = [[" "] * width for _ in range(height)]

        # Die outline.
        for x_edge in (0.0, 1.0):
            col = to_col(x_edge)
            for row in range(to_row(0.0), to_row(1.0) + 1):
                grid[row][col] = "|"
        for y_edge in (0.0, 1.0):
            row = to_row(y_edge)
            for col in range(to_col(0.0), to_col(1.0) + 1):
                grid[row][col] = "-"

        for tile in self.tiles:
            c0, c1 = to_col(tile.x_min), to_col(tile.x_max)
            r0, r1 = to_row(tile.y_min), to_row(tile.y_max)
            for row in range(max(r0, 0), min(r1 + 1, height)):
                for col in range(max(c0, 0), min(c1 + 1, width)):
                    grid[row][col] = "#"

        lines = ["".join(row) for row in grid]
        legend = (
            f"{self.plan.converter.name} x{self.plan.vr_count} "
            f"({self.plan.style.value}); '#' = VR tile, box = die edge"
        )
        return "\n".join(lines + [legend])


def build_floorplan(plan: PlacementPlan, die_area_mm2: float) -> Floorplan:
    """Realize a placement plan as rectangles.

    VR tiles are squares of side ``sqrt(area_mm2)`` scaled to die
    fractions.  Under-die tiles are re-gridded to a legal pitch
    (the electrical plan's positions carry routing margin; geometry
    needs tight packing).  Periphery tiles are pushed just outside the
    die edge (the interposer surface around the die, per Fig. 5(a));
    dense rings stagger alternate tiles into a second sub-row so they
    never overlap along the edge, and deeper rings move farther out.
    """
    if die_area_mm2 <= 0:
        raise ConfigError("die area must be positive")
    die_side_mm = math.sqrt(die_area_mm2)
    tile_side = math.sqrt(plan.converter.area_mm2) / die_side_mm

    # Re-grid the under-die tiles on a ceil-sqrt lattice.
    below_indices = [
        index
        for index, position in enumerate(plan.positions)
        if plan.style is PlacementStyle.BELOW_DIE and position.ring == 0
    ]
    below_centers: dict[int, tuple[float, float]] = {}
    if below_indices:
        count = len(below_indices)
        cols = math.ceil(math.sqrt(count))
        rows = math.ceil(count / cols)
        pitch = 1.0 / max(cols, rows)
        if pitch < tile_side - 1e-9:
            raise ConfigError(
                f"{plan.converter.name}: {count} tiles of side "
                f"{tile_side:.3f} (die fractions) cannot be gridded "
                "inside the die shadow"
            )
        for slot, index in enumerate(below_indices):
            row, col = divmod(slot, cols)
            in_row = min(cols, count - row * cols)
            x = (col + 0.5) / in_row if in_row < cols else (col + 0.5) / cols
            y = (row + 0.5) / rows
            below_centers[index] = (x, y)

    # Along-edge spacing check for periphery rings: stagger when the
    # tiles outnumber the edge length.
    ring_counts: dict[int, int] = {}
    for position in plan.positions:
        if plan.style is PlacementStyle.PERIPHERY or position.ring > 0:
            ring_counts[position.ring] = ring_counts.get(position.ring, 0) + 1

    def needs_stagger(ring: int) -> bool:
        count = ring_counts.get(ring, 0)
        return count > 0 and (4.0 / count) < tile_side * 1.05

    tiles: list[Tile] = []
    for index, position in enumerate(plan.positions):
        if index in below_centers:
            x, y = below_centers[index]
            tiles.append(
                Tile(index, x, y, tile_side, tile_side, position.ring)
            )
            continue
        x, y = position.x, position.y
        if plan.style is PlacementStyle.PERIPHERY or position.ring > 0:
            stagger = index % 2 if needs_stagger(position.ring) else 0
            offset = tile_side * (0.55 + 1.1 * (position.ring + stagger))
            distances = {
                "left": x,
                "right": 1.0 - x,
                "bottom": y,
                "top": 1.0 - y,
            }
            nearest = min(distances, key=distances.get)
            if nearest == "left":
                x = -offset
            elif nearest == "right":
                x = 1.0 + offset
            elif nearest == "bottom":
                y = -offset
            else:
                y = 1.0 + offset
        tiles.append(
            Tile(
                index=index,
                x_center=x,
                y_center=y,
                width=tile_side,
                height=tile_side,
                ring=position.ring,
            )
        )
    return Floorplan(plan=plan, tiles=tuple(tiles))
