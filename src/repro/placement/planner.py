"""VR count and position planning.

The count policy mirrors the paper's (reconstructed) procedure:

1. Start from the Table II slot count for the placement style
   (``vrs_along_periphery`` for A1/stage-1, ``vrs_below_die`` for
   A2/stage-2).
2. If the slot count already keeps every VR within its published
   maximum load current, use it (DSCH: 48 slots at ~21 A each).
3. Otherwise the *required* count is ``ceil(I / I_max)``, rounded up
   to a multiple of four for layout symmetry.  Only sparse,
   high-current converters (unit footprint above
   ``OVERFLOW_AREA_THRESHOLD_MM2``) may overflow beyond their slots
   into additional periphery rows — the paper extends rows for DPMIH
   but keeps the dense converters slot-bound, which is exactly what
   excludes 3LHD (48 slots x 12 A < 1 kA) from Fig. 7.
4. Every plan is checked against the region area budgets.

``optimal_stage_count`` implements the efficiency-optimal count used
for the A3 first stage: minimizing ``n · P(I/n)`` over n gives
``n* = I·sqrt(c/a)``, i.e. each VR runs at its peak-efficiency
current.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..converters.catalog import ConverterSpec
from ..converters.loss_model import QuadraticLossModel
from ..errors import ConfigError, InfeasibleError
from .area_budget import (
    AreaBudget,
    below_die_budget,
    periphery_budget,
)
from .geometry import (
    Position,
    grid_positions,
    mixed_positions,
    multi_ring_positions,
    periphery_positions,
)

#: Converters with a unit footprint above this threshold are "sparse"
#: and may overflow beyond their Table II slot counts (DPMIH);
#: dense converters are slot-bound (DSCH, 3LHD).
OVERFLOW_AREA_THRESHOLD_MM2 = 20.0


class PlacementStyle(enum.Enum):
    """Where the VRs sit."""

    PERIPHERY = "periphery"
    BELOW_DIE = "below-die"


@dataclass(frozen=True)
class PlacementPlan:
    """A concrete VR placement.

    Attributes:
        style: periphery or below-die.
        converter: the converter spec being placed.
        vr_count: number of VRs.
        positions: fractional die coordinates per VR.
        below_die_count: VRs inside the die shadow (below-die style).
        overflow_count: VRs placed beyond the primary region.
        area_used_mm2: total VR footprint.
        per_vr_current_a: uniform-share current per VR for the load
            this plan was built for.
    """

    style: PlacementStyle
    converter: ConverterSpec
    vr_count: int
    positions: tuple[Position, ...]
    below_die_count: int
    overflow_count: int
    area_used_mm2: float
    per_vr_current_a: float

    def __post_init__(self) -> None:
        if self.vr_count < 1:
            raise ConfigError("plan must place at least one VR")
        if len(self.positions) != self.vr_count:
            raise ConfigError("positions must match the VR count")

    @property
    def is_multi_row(self) -> bool:
        """True if the plan needed rows beyond the primary region."""
        return self.overflow_count > 0


def _round_up_to_multiple(value: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= ``value``."""
    return ((value + multiple - 1) // multiple) * multiple


def required_count(spec: ConverterSpec, current_a: float) -> int:
    """Minimum VR count keeping per-VR load within the rating."""
    if current_a <= 0:
        raise ConfigError("current must be positive")
    return math.ceil(current_a / spec.max_load_a)


def plan_placement(
    spec: ConverterSpec,
    style: PlacementStyle,
    total_current_a: float,
    die_area_mm2: float,
    interposer_area_mm2: float = 1200.0,
) -> PlacementPlan:
    """Plan a placement for one conversion stage.

    Raises:
        InfeasibleError: when no feasible count exists (per-VR current
            above rating with no overflow allowed, or area exhausted) —
            the rule that drops 3LHD from the paper's Fig. 7.
    """
    if total_current_a <= 0:
        raise ConfigError("total current must be positive")
    if die_area_mm2 <= 0:
        raise ConfigError("die area must be positive")
    # Off-nominal dies get a platform scaled like Table I's
    # interposer:die ratio (1200:500 = 2.4).
    interposer_area_mm2 = max(interposer_area_mm2, 2.4 * die_area_mm2)

    slots = (
        spec.vrs_along_periphery
        if style is PlacementStyle.PERIPHERY
        else spec.vrs_below_die
    )
    demand = required_count(spec, total_current_a)
    peripheral = periphery_budget(die_area_mm2, interposer_area_mm2)
    below = below_die_budget(die_area_mm2)

    if demand <= slots:
        count = slots
        overflow = 0
    else:
        if spec.area_mm2 < OVERFLOW_AREA_THRESHOLD_MM2:
            raise InfeasibleError(
                f"{spec.name}: {slots} slots supply at most "
                f"{slots * spec.max_load_a:.0f} A but {total_current_a:.0f} A "
                f"is required ({total_current_a / slots:.1f} A per VR "
                f"exceeds the {spec.max_load_a:.0f} A rating); dense "
                "converters are slot-bound (paper: 3LHD excluded)"
            )
        count = _round_up_to_multiple(demand, 4)
        overflow = count - slots

    area_used = count * spec.area_mm2
    if style is PlacementStyle.PERIPHERY:
        _check_periphery_area(spec, count, peripheral)
        positions = _periphery_layout(spec, slots, count)
        below_count = 0
    else:
        below_count = min(count, slots, below.capacity(spec.area_mm2))
        ring_count = count - below_count
        if ring_count > 0 and not peripheral.fits(
            ring_count, spec.area_mm2
        ):
            raise InfeasibleError(
                f"{spec.name}: below-die overflow of {ring_count} VRs does "
                f"not fit the periphery budget "
                f"({peripheral.available_mm2:.0f} mm2)"
            )
        positions = (
            mixed_positions(below_count, ring_count)
            if ring_count > 0
            else grid_positions(count)
        )
        overflow = ring_count

    per_vr = total_current_a / count
    spec.require_feasible(per_vr)
    return PlacementPlan(
        style=style,
        converter=spec,
        vr_count=count,
        positions=tuple(positions),
        below_die_count=below_count,
        overflow_count=overflow,
        area_used_mm2=area_used,
        per_vr_current_a=per_vr,
    )


def _check_periphery_area(
    spec: ConverterSpec, count: int, budget: AreaBudget
) -> None:
    """Validate a periphery plan against the off-die interposer area."""
    if not budget.fits(count, spec.area_mm2):
        raise InfeasibleError(
            f"{spec.name}: {count} VRs x {spec.area_mm2:.1f} mm2 exceed "
            f"the periphery budget of {budget.available_mm2:.0f} mm2"
        )


def _periphery_layout(
    spec: ConverterSpec, slots: int, count: int
) -> list[Position]:
    """Positions for a periphery plan, adding rows beyond the slot
    count when needed ("additional rows of VRs farther away from the
    perimeter of the die")."""
    if count <= slots:
        return periphery_positions(count)
    rings: list[int] = []
    remaining = count
    ring_capacity = slots
    while remaining > 0:
        take = min(remaining, ring_capacity)
        rings.append(take)
        remaining -= take
    return multi_ring_positions(rings)


def optimal_stage_count(
    loss_model: QuadraticLossModel,
    total_current_a: float,
    max_count: int | None = None,
) -> int:
    """Efficiency-optimal number of paralleled converters.

    Minimizes total loss ``n · (a + b·I/n + c·(I/n)²)`` over n, whose
    continuous optimum is ``n* = I·sqrt(c/a)`` (each converter at its
    peak-efficiency current).  The integer neighbours of n* are
    compared explicitly, and the count is clamped to keep per-VR
    current feasible.
    """
    if total_current_a <= 0:
        raise ConfigError("total current must be positive")
    floor_count = math.ceil(total_current_a / loss_model.i_max_a)
    if loss_model.a_w == 0.0 or loss_model.c_ohm == 0.0:
        best = floor_count
    else:
        star = total_current_a * math.sqrt(
            loss_model.c_ohm / loss_model.a_w
        )
        candidates = {
            max(floor_count, int(math.floor(star))),
            max(floor_count, int(math.ceil(star))),
            floor_count,
        }

        def total_loss(n: int) -> float:
            return n * loss_model.loss_w(total_current_a / n)

        best = min(candidates, key=total_loss)
    if max_count is not None:
        if max_count < floor_count:
            raise InfeasibleError(
                f"even {max_count} converters leave per-unit current "
                f"above the {loss_model.i_max_a:.0f} A rating"
            )
        best = min(best, max_count)
    return max(best, 1)
