"""Area budgets for VR placement regions.

Two regions exist in the paper's layouts:

* the **periphery** — the interposer surface around the die shadow
  (interposer area minus die area, derated for routing keep-out),
* the **below-die** region — the die shadow inside the interposer,
  of which the paper says the embedded VRs occupy roughly half to
  three quarters; we budget 75% (matches the Table II DPMIH count of
  7 x 53.3 mm² = 373 mm² on a 500 mm² die).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import mm2

#: Fraction of the off-die interposer surface usable for periphery VRs.
PERIPHERY_USABLE_FRACTION = 0.95

#: Fraction of the die shadow usable for embedded below-die VRs.
BELOW_DIE_USABLE_FRACTION = 0.75

#: Default interposer platform area (Table I, PKG/Interposer level).
DEFAULT_INTERPOSER_AREA_MM2 = 1200.0


@dataclass(frozen=True)
class AreaBudget:
    """An available placement area and its accounting.

    Attributes:
        region: label (``"periphery"`` or ``"below-die"``).
        available_mm2: usable area for VR footprints.
    """

    region: str
    available_mm2: float

    def __post_init__(self) -> None:
        if self.available_mm2 <= 0:
            raise ConfigError(f"{self.region}: budget must be positive")

    def capacity(self, vr_area_mm2: float) -> int:
        """How many VRs of the given footprint fit."""
        if vr_area_mm2 <= 0:
            raise ConfigError("VR area must be positive")
        return int(self.available_mm2 / vr_area_mm2)

    def fits(self, count: int, vr_area_mm2: float) -> bool:
        """True if ``count`` VRs fit in this budget."""
        if count < 0:
            raise ConfigError("count must be non-negative")
        return count * vr_area_mm2 <= self.available_mm2 * (1.0 + 1e-9)

    def used_fraction(self, count: int, vr_area_mm2: float) -> float:
        """Fraction of the budget consumed by ``count`` VRs."""
        return count * vr_area_mm2 / self.available_mm2


def periphery_budget(
    die_area_mm2: float,
    interposer_area_mm2: float = DEFAULT_INTERPOSER_AREA_MM2,
    usable_fraction: float = PERIPHERY_USABLE_FRACTION,
) -> AreaBudget:
    """Budget for VRs on the interposer surface around the die."""
    if interposer_area_mm2 <= die_area_mm2:
        raise ConfigError("interposer must be larger than the die")
    if not 0.0 < usable_fraction <= 1.0:
        raise ConfigError("usable fraction must be in (0, 1]")
    return AreaBudget(
        region="periphery",
        available_mm2=(interposer_area_mm2 - die_area_mm2) * usable_fraction,
    )


def below_die_budget(
    die_area_mm2: float,
    usable_fraction: float = BELOW_DIE_USABLE_FRACTION,
) -> AreaBudget:
    """Budget for VRs embedded in the interposer below the die."""
    if die_area_mm2 <= 0:
        raise ConfigError("die area must be positive")
    if not 0.0 < usable_fraction <= 1.0:
        raise ConfigError("usable fraction must be in (0, 1]")
    return AreaBudget(
        region="below-die",
        available_mm2=die_area_mm2 * usable_fraction,
    )


def die_area_mm2_from_m2(area_m2: float) -> float:
    """Convenience conversion used by the planner."""
    return area_m2 / mm2(1.0)
