"""2-D lateral grid PDN model.

Discretizes one polarity of a metal layer (interposer RDL or the die
BEOL grid) over the die area into an ``nx x ny`` node mesh.  Adjacent
nodes are connected by resistors derived from the layer's sheet
resistance; POL sinks come from a :class:`~repro.pdn.powermap.PowerMap`
and regulator outputs attach as voltage sources with a series output
resistance at arbitrary grid positions.

Loss accounting convention: the grid models ONE polarity.  For a
symmetric power + ground pair the reported lateral loss is doubled via
``rail_pair_factor`` (default 2.0).

Solving is array-native: the mesh is assembled directly into a
:class:`~repro.pdn.network.CompiledNetlist` (vectorized edge
construction, no per-element Python objects) and the sparse LU
factorization is cached on the grid, so repeated solves that only
change the sink map or the source voltages — load sweeps, Monte-Carlo
scenarios, droop-setpoint studies — pay back-substitution cost only.
Attaching/removing sources or the ring bus changes the topology and
transparently refactorizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, SolverError
from .mna import DCSolution, FactorizedPDN
from .network import GROUND_INDEX, CompiledNetlist, Netlist
from .powermap import PowerMap


@dataclass(frozen=True)
class GridSolution:
    """Solved grid operating point.

    Attributes:
        dc: raw MNA solution.
        source_currents_a: output current of each attached source, in
            attachment order.
        lateral_loss_w: I²R loss in the grid metal for the rail pair.
        source_loss_w: I²R loss inside the sources' output resistances
            (not part of interconnect loss; useful for diagnostics).
        voltage_map: node voltages as an (ny, nx) array.
        grid_edge_currents_a: signed current through each mesh edge
            (x edges then y edges), when solved via the fast path.
    """

    dc: DCSolution
    source_currents_a: np.ndarray
    lateral_loss_w: float
    source_loss_w: float
    voltage_map: np.ndarray
    grid_edge_currents_a: np.ndarray | None = None

    @property
    def worst_droop_v(self) -> float:
        """Difference between the best and worst node voltages."""
        return float(self.voltage_map.max() - self.voltage_map.min())

    def edge_current_stats(self) -> dict[str, float]:
        """Grid-edge current statistics (lateral EM screening).

        Returns max/mean absolute edge current in amperes.  Combined
        with the metal cross-section per strip, this is the lateral
        electromigration check that complements the per-element
        ratings on the vertical arrays.
        """
        if self.grid_edge_currents_a is not None:
            edge_currents = np.abs(self.grid_edge_currents_a)
        else:
            # Name-keyed fallback for externally-constructed solutions.
            edge_currents = np.abs(
                np.array(
                    [
                        current
                        for name, current in self.dc.resistor_currents.items()
                        if name.startswith("grid.")
                    ]
                )
            )
        if not edge_currents.size:
            return {"max_a": 0.0, "mean_a": 0.0}
        return {
            "max_a": float(edge_currents.max()),
            "mean_a": float(edge_currents.mean()),
        }


@dataclass
class _GridStructure:
    """Cached assembly (and, lazily, factorization) of one topology.

    ``key`` captures everything that shapes the MNA matrix (mesh
    resistances, source attachment points and output resistances, ring
    bus).  Sink currents and source voltages are RHS-only and do not
    participate.  The factorization is created on first solve so that
    :meth:`GridPDN.compile` can hand out the array form without paying
    for (or duplicating) an LU decomposition.
    """

    key: tuple
    compiled: CompiledNetlist
    grid_edge_count: int
    lateral_count: int  # grid edges + ring segments
    _solver: FactorizedPDN | None = None

    @property
    def solver(self) -> FactorizedPDN:
        if self._solver is None:
            self._solver = FactorizedPDN(self.compiled)
        return self._solver


class GridPDN:
    """A rectangular one-polarity PDN grid over the die area.

    Args:
        width_m: die width (x extent).
        height_m: die height (y extent).
        sheet_ohm_sq: sheet resistance of the modeled metal stack.
        nx, ny: node counts in x and y (>= 2 each).
        rail_pair_factor: multiply lateral loss by this factor to
            account for the return (ground) network; 2.0 assumes a
            symmetric ground grid.
    """

    def __init__(
        self,
        width_m: float,
        height_m: float,
        sheet_ohm_sq: float,
        nx: int = 24,
        ny: int = 24,
        rail_pair_factor: float = 2.0,
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise ConfigError("grid extents must be positive")
        if sheet_ohm_sq <= 0:
            raise ConfigError("sheet resistance must be positive")
        if nx < 2 or ny < 2:
            raise ConfigError("grid needs at least 2x2 nodes")
        if rail_pair_factor < 1.0:
            raise ConfigError("rail pair factor must be >= 1")
        self.width_m = width_m
        self.height_m = height_m
        self.sheet_ohm_sq = sheet_ohm_sq
        self.nx = nx
        self.ny = ny
        self.rail_pair_factor = rail_pair_factor
        self._sources: list[tuple[str, int, int, float, float]] = []
        self._sink_map: np.ndarray | None = None
        self._ring_bus_ohm: float | None = None
        self._mesh_edges_cache: tuple[np.ndarray, ...] | None = None
        self._structure: _GridStructure | None = None
        self._topology_dirty = True

    # -- construction ---------------------------------------------------------

    def set_sinks(self, power_map: PowerMap, total_current_a: float) -> None:
        """Attach POL sinks from a power map (replaces existing sinks)."""
        self._sink_map = power_map.cell_currents(
            self.nx, self.ny, total_current_a
        )

    def set_sink_array(self, cell_currents: np.ndarray) -> None:
        """Attach POL sinks from an explicit (ny, nx) current array."""
        arr = np.asarray(cell_currents, dtype=float)
        if arr.shape != (self.ny, self.nx):
            raise ConfigError(
                f"sink array must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(arr < 0):
            raise ConfigError("sink currents must be non-negative")
        self._sink_map = arr

    def add_source(
        self,
        name: str,
        x_frac: float,
        y_frac: float,
        voltage_v: float,
        output_resistance_ohm: float,
    ) -> None:
        """Attach a regulator output at fractional die coordinates.

        Sources snap to the nearest grid node.  ``output_resistance_ohm``
        must be positive — it regularizes the solve and models the
        converter's finite output impedance.
        """
        if not 0.0 <= x_frac <= 1.0 or not 0.0 <= y_frac <= 1.0:
            raise ConfigError("source position must be inside the die")
        if output_resistance_ohm <= 0:
            raise ConfigError("source output resistance must be positive")
        if any(existing == name for existing, *_ in self._sources):
            raise ConfigError(f"duplicate source name: {name!r}")
        ix = min(int(round(x_frac * (self.nx - 1))), self.nx - 1)
        iy = min(int(round(y_frac * (self.ny - 1))), self.ny - 1)
        self._sources.append(
            (name, ix, iy, voltage_v, output_resistance_ohm)
        )
        self._topology_dirty = True

    def clear_sources(self) -> None:
        """Remove all attached sources."""
        self._sources.clear()
        self._ring_bus_ohm = None
        self._topology_dirty = True

    def connect_sources_with_ring_bus(self, segment_resistance_ohm: float) -> None:
        """Join consecutive sources with a dedicated ring bus.

        Periphery VR rings share a contiguous low-impedance metal ring
        (the embedded passive/output ring of Fig. 5(a)), which
        equalizes their load sharing; under-die VRs have no such bus.
        Segments connect sources in attachment order (and close the
        loop), each with the given one-polarity resistance.
        """
        if segment_resistance_ohm <= 0:
            raise ConfigError("ring segment resistance must be positive")
        if len(self._sources) < 3:
            raise ConfigError("a ring bus needs at least three sources")
        self._ring_bus_ohm = segment_resistance_ohm
        self._topology_dirty = True

    @property
    def source_names(self) -> list[str]:
        """Names of attached sources in attachment order."""
        return [s[0] for s in self._sources]

    # -- edge resistances -------------------------------------------------------

    @property
    def edge_resistance_x_ohm(self) -> float:
        """Resistance of one x-direction edge (R_sq * dx / dy_strip)."""
        dx = self.width_m / (self.nx - 1)
        strip = self.height_m / self.ny
        return self.sheet_ohm_sq * dx / strip

    @property
    def edge_resistance_y_ohm(self) -> float:
        """Resistance of one y-direction edge."""
        dy = self.height_m / (self.ny - 1)
        strip = self.width_m / self.nx
        return self.sheet_ohm_sq * dy / strip

    # -- solving -----------------------------------------------------------------

    def build_netlist(self) -> Netlist:
        """Assemble the netlist for the current sinks and sources."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        netlist = Netlist()
        rx = self.edge_resistance_x_ohm
        ry = self.edge_resistance_y_ohm

        def node(ix: int, iy: int) -> tuple[str, int, int]:
            return ("g", ix, iy)

        for iy in range(self.ny):
            for ix in range(self.nx):
                if ix + 1 < self.nx:
                    netlist.add_resistor(
                        f"grid.x[{ix},{iy}]", node(ix, iy), node(ix + 1, iy), rx
                    )
                if iy + 1 < self.ny:
                    netlist.add_resistor(
                        f"grid.y[{ix},{iy}]", node(ix, iy), node(ix, iy + 1), ry
                    )

        # Sinks: cell (i,j) current attached to its node.
        for iy in range(self.ny):
            for ix in range(self.nx):
                current = float(self._sink_map[iy, ix])
                if current > 0.0:
                    netlist.add_load(
                        f"sink[{ix},{iy}]", node(ix, iy), current
                    )

        for name, ix, iy, voltage, r_out in self._sources:
            netlist.add_source_with_impedance(
                f"src.{name}", node(ix, iy), voltage, r_out
            )

        if self._ring_bus_ohm is not None:
            count = len(self._sources)
            for k in range(count):
                _, ix_a, iy_a, _, _ = self._sources[k]
                _, ix_b, iy_b, _, _ = self._sources[(k + 1) % count]
                if (ix_a, iy_a) == (ix_b, iy_b):
                    continue
                netlist.add_resistor(
                    f"ring[{k}]",
                    node(ix_a, iy_a),
                    node(ix_b, iy_b),
                    self._ring_bus_ohm,
                )
        return netlist

    # -- vectorized assembly / cached factorization ------------------------------

    def _mesh_edges(self) -> tuple[np.ndarray, ...]:
        """Mesh edge endpoints as row-index arrays (x edges, y edges).

        Grid node (ix, iy) occupies row ``iy * nx + ix``; the arrays
        depend only on (nx, ny) and are computed once per grid.
        """
        if self._mesh_edges_cache is None:
            rows = np.arange(
                self.nx * self.ny, dtype=np.int64
            ).reshape(self.ny, self.nx)
            self._mesh_edges_cache = (
                rows[:, :-1].ravel(),
                rows[:, 1:].ravel(),
                rows[:-1, :].ravel(),
                rows[1:, :].ravel(),
            )
        return self._mesh_edges_cache

    def _ring_segments(self) -> list[tuple[int, int, int]]:
        """Ring-bus segments as (k, row_a, row_b), degenerates skipped."""
        if self._ring_bus_ohm is None:
            return []
        segments: list[tuple[int, int, int]] = []
        count = len(self._sources)
        for k in range(count):
            _, ix_a, iy_a, _, _ = self._sources[k]
            _, ix_b, iy_b, _, _ = self._sources[(k + 1) % count]
            if (ix_a, iy_a) == (ix_b, iy_b):
                continue
            segments.append((k, iy_a * self.nx + ix_a, iy_b * self.nx + ix_b))
        return segments

    def _structure_key(self) -> tuple:
        return (
            self.edge_resistance_x_ohm,
            self.edge_resistance_y_ohm,
            tuple((name, ix, iy, r_out) for name, ix, iy, _, r_out in self._sources),
            self._ring_bus_ohm,
        )

    def _build_structure(self, key: tuple) -> _GridStructure:
        nx, ny = self.nx, self.ny
        cells = nx * ny
        x_a, x_b, y_a, y_b = self._mesh_edges()
        rx = self.edge_resistance_x_ohm
        ry = self.edge_resistance_y_ohm
        sources = list(self._sources)
        segments = self._ring_segments()

        emf_rows = cells + np.arange(len(sources), dtype=np.int64)
        attach_rows = np.array(
            [iy * nx + ix for _, ix, iy, _, _ in sources], dtype=np.int64
        )
        ring_a = np.array([a for _, a, _ in segments], dtype=np.int64)
        ring_b = np.array([b for _, _, b in segments], dtype=np.int64)

        res_a = np.concatenate([x_a, y_a, ring_a, emf_rows])
        res_b = np.concatenate([x_b, y_b, ring_b, attach_rows])
        res_ohm = np.concatenate(
            [
                np.full(x_a.size, rx),
                np.full(y_a.size, ry),
                np.full(len(segments), self._ring_bus_ohm or 0.0),
                np.array([r_out for *_, r_out in sources]),
            ]
        )

        def resistor_names() -> list[str]:
            names = [
                f"grid.x[{ix},{iy}]"
                for iy in range(ny)
                for ix in range(nx - 1)
            ]
            names += [
                f"grid.y[{ix},{iy}]"
                for iy in range(ny - 1)
                for ix in range(nx)
            ]
            names += [f"ring[{k}]" for k, _, _ in segments]
            names += [f"src.{name}.rout" for name, *_ in sources]
            return names

        def sink_names() -> list[str]:
            return [
                f"sink[{ix},{iy}]" for iy in range(ny) for ix in range(nx)
            ]

        nodes = tuple(
            ("g", ix, iy) for iy in range(ny) for ix in range(nx)
        ) + tuple((f"src.{name}", "emf") for name, *_ in sources)

        compiled = CompiledNetlist(
            nodes=nodes,
            res_a=res_a,
            res_b=res_b,
            res_ohm=res_ohm,
            cs_from=np.arange(cells, dtype=np.int64),
            cs_to=np.full(cells, GROUND_INDEX, dtype=np.int64),
            cs_amp=np.zeros(cells),
            vs_plus=emf_rows,
            vs_minus=np.full(len(sources), GROUND_INDEX, dtype=np.int64),
            vs_volt=np.zeros(len(sources)),
            res_names=resistor_names,
            cs_names=sink_names,
            vs_names=tuple(f"src.{name}.v" for name, *_ in sources),
        )
        grid_edge_count = x_a.size + y_a.size
        return _GridStructure(
            key=key,
            compiled=compiled,
            grid_edge_count=grid_edge_count,
            lateral_count=grid_edge_count + len(segments),
        )

    def _ensure_structure(self) -> _GridStructure:
        # The key is only recomputed after a topology mutator ran:
        # steady-state sweep loops (N-1 scenarios, sink sweeps) skip
        # the per-solve key construction entirely.
        if self._structure is None or self._topology_dirty:
            key = self._structure_key()
            if self._structure is None or self._structure.key != key:
                self._structure = self._build_structure(key)
            self._topology_dirty = False
        return self._structure

    def compile(self) -> CompiledNetlist:
        """The grid as a compiled netlist with current sinks/voltages."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        return self._ensure_structure().compiled.with_sources(
            cs_amp=np.ascontiguousarray(self._sink_map, dtype=float).ravel(),
            vs_volt=np.array([s[3] for s in self._sources]),
        )

    def solve(self, check: bool = True) -> GridSolution:
        """Solve the grid and return per-source currents and losses.

        The first solve of a topology assembles and factorizes the MNA
        system; later solves with the same topology (possibly new sink
        maps or source voltages) reuse the factorization.
        """
        structure, sinks, volts = self._solve_inputs()
        dc = structure.solver.solve(cs_amp=sinks, vs_volt=volts, check=check)
        return self._package_solution(structure, dc, sinks)

    def solve_disabled(
        self,
        disabled_sources: "tuple[int, ...] | list[int] | np.ndarray",
        check: bool = True,
        method: str = "auto",
    ) -> GridSolution:
        """Solve with a subset of the attached sources disabled.

        A disabled source's branch current is forced to zero (an
        open-circuited regulator: its output resistor and ring tap
        stay in the metal but carry nothing), expressed as a rank-k
        Woodbury correction on the *shared* factorization — an N−1/N−k
        sweep pays one factorization for the whole bank and k+1
        back-substitutions per scenario.  Indices follow attachment
        order; disabled sources report exactly 0 A.  ``method`` is
        forwarded to :meth:`~repro.pdn.mna.FactorizedPDN.solve_modified`
        (``"auto"`` falls back to refactorization when the correction
        is ill-conditioned).
        """
        indices = tuple(int(i) for i in disabled_sources)
        if any(i < 0 or i >= len(self._sources) for i in indices):
            raise ConfigError("disabled source index out of range")
        if len(set(indices)) >= len(self._sources):
            raise ConfigError("cannot disable every source")
        structure, sinks, volts = self._solve_inputs()
        dc = structure.solver.solve_modified(
            disable_sources=indices,
            cs_amp=sinks,
            vs_volt=volts,
            check=check,
            method=method,
        )
        solution = self._package_solution(structure, dc, sinks)
        # The dead rout branches carry only O(eps) numerical residue.
        solution.source_currents_a[list(set(indices))] = 0.0
        return solution

    def preload_failure_sweep(
        self,
        indices: "tuple[int, ...] | list[int] | range | None" = None,
    ) -> None:
        """Warm everything an N−1/N−k sweep needs in batched calls.

        Factorizes the full attached topology (if not already cached)
        and back-substitutes the influence columns for the given
        source indices (default: all) in one call, so each subsequent
        :meth:`solve_disabled` scenario pays only two
        back-substitutions.
        """
        structure, _, _ = self._solve_inputs()
        structure.solver.preload_source_influence(indices)

    def _solve_inputs(self) -> tuple[_GridStructure, np.ndarray, np.ndarray]:
        """Validate attachments and gather the per-scenario RHS data."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        structure = self._ensure_structure()
        sinks = np.ascontiguousarray(self._sink_map, dtype=float).ravel()
        volts = np.array([s[3] for s in self._sources])
        return structure, sinks, volts

    def _package_solution(
        self,
        structure: _GridStructure,
        dc: DCSolution,
        sinks: np.ndarray,
    ) -> GridSolution:
        losses = dc.resistor_loss_array
        branch_currents = dc.resistor_current_array
        currents = branch_currents[structure.lateral_count :].copy()
        total_sink = float(sinks.sum())
        if abs(currents.sum() - total_sink) > 1e-6 * max(total_sink, 1.0):
            raise SolverError(
                "source currents do not sum to the load current: "
                f"{currents.sum():.6f} vs {total_sink:.6f}"
            )

        lateral = (
            losses[: structure.lateral_count].sum() * self.rail_pair_factor
        )
        source_loss = losses[structure.lateral_count :].sum()
        voltage_map = (
            dc.node_voltage_array[: self.nx * self.ny]
            .reshape(self.ny, self.nx)
            .copy()
        )
        return GridSolution(
            dc=dc,
            source_currents_a=currents,
            lateral_loss_w=float(lateral),
            source_loss_w=float(source_loss),
            voltage_map=voltage_map,
            grid_edge_currents_a=branch_currents[: structure.grid_edge_count],
        )
