"""2-D lateral grid PDN model.

Discretizes one polarity of a metal layer (interposer RDL or the die
BEOL grid) over the die area into an ``nx x ny`` node mesh.  Adjacent
nodes are connected by resistors derived from the layer's sheet
resistance; POL sinks come from a :class:`~repro.pdn.powermap.PowerMap`
and regulator outputs attach as voltage sources with a series output
resistance at arbitrary grid positions.

Loss accounting convention: the grid models ONE polarity.  For a
symmetric power + ground pair the reported lateral loss is doubled via
``rail_pair_factor`` (default 2.0).

Solving is array-native: the mesh is assembled directly into a
:class:`~repro.pdn.network.CompiledNetlist` (vectorized edge
construction, no per-element Python objects) and the sparse LU
factorization is cached on the grid, so repeated solves that only
change the sink map or the source voltages — load sweeps, Monte-Carlo
scenarios, droop-setpoint studies — pay back-substitution cost only.
Attaching/removing sources or the ring bus changes the topology and
transparently refactorizes.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConfigError, SolverError
from .ac import (
    _DENSE_BATCH_ENTRIES,
    ACSweepSolution,
    CompiledACNetlist,
    check_frequencies,
    grid_direct_mode,
    shared_csc_pattern,
)
from .fast_poisson import (
    StructuredGridPDN,
    StructuredSolveError,
    dct2_basis,
    poisson_mode_eigenvalues,
)
from .impedance import ImpedanceProfile
from .mna import (
    SINGULARITY_PROBE_TOL,
    DCSolution,
    FactorizedPDN,
    singularity_probe,
)
from .network import (
    GROUND_INDEX,
    CompiledNetlist,
    Netlist,
    admittance_stamp_entries,
)
from .powermap import PowerMap


def mesh_edge_rows(nx: int, ny: int) -> tuple[np.ndarray, ...]:
    """Endpoint row indices of a rectangular mesh's edges.

    Grid node ``(ix, iy)`` occupies row ``iy * nx + ix``; returns
    ``(x_a, x_b, y_a, y_b)`` — the endpoint arrays of the x-direction
    and y-direction edges.  Degenerate axes (``nx == 1`` or
    ``ny == 1``, the 1-D chains the AC ladder cross-checks use) simply
    produce empty edge arrays.  Shared by the DC and AC mesh
    assemblers so both stamp the identical lateral topology.
    """
    rows = np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)
    return (
        rows[:, :-1].ravel(),
        rows[:, 1:].ravel(),
        rows[:-1, :].ravel(),
        rows[1:, :].ravel(),
    )


@dataclass(frozen=True)
class GridSolution:
    """Solved grid operating point.

    Attributes:
        dc: raw MNA solution.
        source_currents_a: output current of each attached source, in
            attachment order.
        lateral_loss_w: I²R loss in the grid metal for the rail pair.
        source_loss_w: I²R loss inside the sources' output resistances
            (not part of interconnect loss; useful for diagnostics).
        voltage_map: node voltages as an (ny, nx) array.
        grid_edge_currents_a: signed current through each mesh edge
            (x edges then y edges), when solved via the fast path.
    """

    dc: DCSolution
    source_currents_a: np.ndarray
    lateral_loss_w: float
    source_loss_w: float
    voltage_map: np.ndarray
    grid_edge_currents_a: np.ndarray | None = None

    @property
    def worst_droop_v(self) -> float:
        """Difference between the best and worst node voltages."""
        return float(self.voltage_map.max() - self.voltage_map.min())

    def edge_current_stats(self) -> dict[str, float]:
        """Grid-edge current statistics (lateral EM screening).

        Returns max/mean absolute edge current in amperes.  Combined
        with the metal cross-section per strip, this is the lateral
        electromigration check that complements the per-element
        ratings on the vertical arrays.
        """
        if self.grid_edge_currents_a is not None:
            edge_currents = np.abs(self.grid_edge_currents_a)
        else:
            # Name-keyed fallback for externally-constructed solutions.
            edge_currents = np.abs(
                np.array(
                    [
                        current
                        for name, current in self.dc.resistor_currents.items()
                        if name.startswith("grid.")
                    ]
                )
            )
        if not edge_currents.size:
            return {"max_a": 0.0, "mean_a": 0.0}
        return {
            "max_a": float(edge_currents.max()),
            "mean_a": float(edge_currents.mean()),
        }


#: ``engine="auto"`` meshes at or above this cell count solve through
#: the structured (fast-Poisson) engine; smaller meshes stay on the
#: cached sparse LU, whose warm back-substitutions are already cheap
#: and whose cold factorization only starts to hurt past this size.
STRUCTURED_AUTO_MIN_CELLS = 4096


@dataclass
class _GridStructure:
    """Cached assembly (and, lazily, factorization) of one topology.

    ``key`` captures everything that shapes the MNA matrix (mesh
    resistances, source attachment points and output resistances, ring
    bus, per-edge variation).  Sink currents and source voltages are
    RHS-only and do not participate.  Both engines are created on
    first use: the sparse LU factorization so that
    :meth:`GridPDN.compile` can hand out the array form without paying
    for (or duplicating) an LU decomposition, and the structured
    fast-Poisson engine so that factorized-only workloads never pay
    for transforms.
    """

    key: tuple
    compiled: CompiledNetlist
    grid_edge_count: int
    lateral_count: int  # grid edges + ring segments
    fast_spec: dict | None = None
    _solver: FactorizedPDN | None = None
    _fast: StructuredGridPDN | None = None

    @property
    def solver(self) -> FactorizedPDN:
        if self._solver is None:
            # Route through the process-wide content-hashed cache so
            # grid rebuilds of the same topology (sweep workers, CLI
            # re-runs) share one LU factorization.  Lazy import: the
            # parallel layer sits above pdn in the dependency graph.
            from ..parallel.cache import get_factorized

            self._solver = get_factorized(self.compiled)
        return self._solver

    @property
    def fast(self) -> StructuredGridPDN:
        if self._fast is None:
            self._fast = StructuredGridPDN(
                compiled=self.compiled, **self.fast_spec
            )
        return self._fast


class GridPDN:
    """A rectangular one-polarity PDN grid over the die area.

    Args:
        width_m: die width (x extent).
        height_m: die height (y extent).
        sheet_ohm_sq: sheet resistance of the modeled metal stack.
        nx, ny: node counts in x and y (>= 2 each).
        rail_pair_factor: multiply lateral loss by this factor to
            account for the return (ground) network; 2.0 assumes a
            symmetric ground grid.
        engine: DC solve engine — ``"auto"`` (structured fast-Poisson
            at or above :data:`STRUCTURED_AUTO_MIN_CELLS` cells with a
            transparent sparse-LU fallback, cached LU below),
            ``"structured"`` (force the fast path; raises
            :class:`~repro.pdn.fast_poisson.StructuredSolveError` when
            it cannot converge), or ``"factorized"`` (force the exact
            sparse-LU oracle).
    """

    _ENGINES = ("auto", "structured", "factorized")

    def __init__(
        self,
        width_m: float,
        height_m: float,
        sheet_ohm_sq: float,
        nx: int = 24,
        ny: int = 24,
        rail_pair_factor: float = 2.0,
        engine: str = "auto",
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise ConfigError("grid extents must be positive")
        if sheet_ohm_sq <= 0:
            raise ConfigError("sheet resistance must be positive")
        if nx < 2 or ny < 2:
            raise ConfigError("grid needs at least 2x2 nodes")
        if rail_pair_factor < 1.0:
            raise ConfigError("rail pair factor must be >= 1")
        self.width_m = width_m
        self.height_m = height_m
        self.sheet_ohm_sq = sheet_ohm_sq
        self.nx = nx
        self.ny = ny
        self.rail_pair_factor = rail_pair_factor
        if engine not in self._ENGINES:
            raise ConfigError(
                f"unknown solve engine {engine!r}; expected one of "
                f"{', '.join(self._ENGINES)}"
            )
        self.engine = engine
        self._sources: list[tuple[str, int, int, float, float]] = []
        self._sink_map: np.ndarray | None = None
        self._ring_bus_ohm: float | None = None
        self._edge_scale_x: np.ndarray | None = None
        self._edge_scale_y: np.ndarray | None = None
        self._mesh_edges_cache: tuple[np.ndarray, ...] | None = None
        self._structure: _GridStructure | None = None
        self._topology_dirty = True

    # -- construction ---------------------------------------------------------

    def set_sinks(self, power_map: PowerMap, total_current_a: float) -> None:
        """Attach POL sinks from a power map (replaces existing sinks)."""
        self._sink_map = power_map.cell_currents(
            self.nx, self.ny, total_current_a
        )

    def set_sink_array(self, cell_currents: np.ndarray) -> None:
        """Attach POL sinks from an explicit (ny, nx) current array."""
        arr = np.asarray(cell_currents, dtype=float)
        if arr.shape != (self.ny, self.nx):
            raise ConfigError(
                f"sink array must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(arr < 0):
            raise ConfigError("sink currents must be non-negative")
        self._sink_map = arr

    def add_source(
        self,
        name: str,
        x_frac: float,
        y_frac: float,
        voltage_v: float,
        output_resistance_ohm: float,
    ) -> None:
        """Attach a regulator output at fractional die coordinates.

        Sources snap to the nearest grid node.  ``output_resistance_ohm``
        must be positive — it regularizes the solve and models the
        converter's finite output impedance.
        """
        if not 0.0 <= x_frac <= 1.0 or not 0.0 <= y_frac <= 1.0:
            raise ConfigError("source position must be inside the die")
        if output_resistance_ohm <= 0:
            raise ConfigError("source output resistance must be positive")
        if any(existing == name for existing, *_ in self._sources):
            raise ConfigError(f"duplicate source name: {name!r}")
        ix = min(int(round(x_frac * (self.nx - 1))), self.nx - 1)
        iy = min(int(round(y_frac * (self.ny - 1))), self.ny - 1)
        self._sources.append(
            (name, ix, iy, voltage_v, output_resistance_ohm)
        )
        self._topology_dirty = True

    def clear_sources(self) -> None:
        """Remove all attached sources."""
        self._sources.clear()
        self._ring_bus_ohm = None
        self._topology_dirty = True

    def connect_sources_with_ring_bus(self, segment_resistance_ohm: float) -> None:
        """Join consecutive sources with a dedicated ring bus.

        Periphery VR rings share a contiguous low-impedance metal ring
        (the embedded passive/output ring of Fig. 5(a)), which
        equalizes their load sharing; under-die VRs have no such bus.
        Segments connect sources in attachment order (and close the
        loop), each with the given one-polarity resistance.
        """
        if segment_resistance_ohm <= 0:
            raise ConfigError("ring segment resistance must be positive")
        if len(self._sources) < 3:
            raise ConfigError("a ring bus needs at least three sources")
        self._ring_bus_ohm = segment_resistance_ohm
        self._topology_dirty = True

    @property
    def source_names(self) -> list[str]:
        """Names of attached sources in attachment order."""
        return [s[0] for s in self._sources]

    def set_edge_resistance_scale(
        self, x_scale=None, y_scale=None
    ) -> None:
        """Apply per-edge metal-variation multipliers to the mesh.

        ``x_scale`` (shape ``(ny, nx-1)``) and ``y_scale`` (shape
        ``(ny-1, nx)``) multiply the nominal per-edge resistances —
        line-width/thickness variation, partially depopulated straps,
        or localized metal cheese.  Factors must be positive; pass
        ``None`` (the default) for either axis to restore uniform
        metal.  Non-uniform meshes solve through fast-Poisson-
        preconditioned CG on the structured engine, or exactly through
        the factorized engine.
        """

        def as_scale(value, shape, label: str) -> np.ndarray | None:
            if value is None:
                return None
            arr = np.asarray(value, dtype=float)
            if arr.shape != shape:
                raise ConfigError(
                    f"{label} edge scale must be shaped {shape}"
                )
            if not np.all(arr > 0):
                raise ConfigError(
                    f"{label} edge scale factors must be positive"
                )
            return arr.copy()

        self._edge_scale_x = as_scale(
            x_scale, (self.ny, self.nx - 1), "x"
        )
        self._edge_scale_y = as_scale(
            y_scale, (self.ny - 1, self.nx), "y"
        )
        self._topology_dirty = True

    # -- edge resistances -------------------------------------------------------

    @property
    def edge_resistance_x_ohm(self) -> float:
        """Resistance of one x-direction edge (R_sq * dx / dy_strip)."""
        dx = self.width_m / (self.nx - 1)
        strip = self.height_m / self.ny
        return self.sheet_ohm_sq * dx / strip

    @property
    def edge_resistance_y_ohm(self) -> float:
        """Resistance of one y-direction edge."""
        dy = self.height_m / (self.ny - 1)
        strip = self.width_m / self.nx
        return self.sheet_ohm_sq * dy / strip

    # -- solving -----------------------------------------------------------------

    def build_netlist(self) -> Netlist:
        """Assemble the netlist for the current sinks and sources."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        netlist = Netlist()
        rx = self.edge_resistance_x_ohm
        ry = self.edge_resistance_y_ohm

        def node(ix: int, iy: int) -> tuple[str, int, int]:
            return ("g", ix, iy)

        sx = self._edge_scale_x
        sy = self._edge_scale_y
        for iy in range(self.ny):
            for ix in range(self.nx):
                if ix + 1 < self.nx:
                    netlist.add_resistor(
                        f"grid.x[{ix},{iy}]",
                        node(ix, iy),
                        node(ix + 1, iy),
                        rx if sx is None else rx * sx[iy, ix],
                    )
                if iy + 1 < self.ny:
                    netlist.add_resistor(
                        f"grid.y[{ix},{iy}]",
                        node(ix, iy),
                        node(ix, iy + 1),
                        ry if sy is None else ry * sy[iy, ix],
                    )

        # Sinks: cell (i,j) current attached to its node.
        for iy in range(self.ny):
            for ix in range(self.nx):
                current = float(self._sink_map[iy, ix])
                if current > 0.0:
                    netlist.add_load(
                        f"sink[{ix},{iy}]", node(ix, iy), current
                    )

        for name, ix, iy, voltage, r_out in self._sources:
            netlist.add_source_with_impedance(
                f"src.{name}", node(ix, iy), voltage, r_out
            )

        if self._ring_bus_ohm is not None:
            count = len(self._sources)
            for k in range(count):
                _, ix_a, iy_a, _, _ = self._sources[k]
                _, ix_b, iy_b, _, _ = self._sources[(k + 1) % count]
                if (ix_a, iy_a) == (ix_b, iy_b):
                    continue
                netlist.add_resistor(
                    f"ring[{k}]",
                    node(ix_a, iy_a),
                    node(ix_b, iy_b),
                    self._ring_bus_ohm,
                )
        return netlist

    # -- vectorized assembly / cached factorization ------------------------------

    def _mesh_edges(self) -> tuple[np.ndarray, ...]:
        """Mesh edge endpoints as row-index arrays (x edges, y edges).

        Grid node (ix, iy) occupies row ``iy * nx + ix``; the arrays
        depend only on (nx, ny) and are computed once per grid.
        """
        if self._mesh_edges_cache is None:
            self._mesh_edges_cache = mesh_edge_rows(self.nx, self.ny)
        return self._mesh_edges_cache

    def _ring_segments(self) -> list[tuple[int, int, int]]:
        """Ring-bus segments as (k, row_a, row_b), degenerates skipped."""
        if self._ring_bus_ohm is None:
            return []
        segments: list[tuple[int, int, int]] = []
        count = len(self._sources)
        for k in range(count):
            _, ix_a, iy_a, _, _ = self._sources[k]
            _, ix_b, iy_b, _, _ = self._sources[(k + 1) % count]
            if (ix_a, iy_a) == (ix_b, iy_b):
                continue
            segments.append((k, iy_a * self.nx + ix_a, iy_b * self.nx + ix_b))
        return segments

    def _structure_key(self) -> tuple:
        return (
            self.edge_resistance_x_ohm,
            self.edge_resistance_y_ohm,
            tuple((name, ix, iy, r_out) for name, ix, iy, _, r_out in self._sources),
            self._ring_bus_ohm,
            None if self._edge_scale_x is None else self._edge_scale_x.tobytes(),
            None if self._edge_scale_y is None else self._edge_scale_y.tobytes(),
        )

    def _build_structure(self, key: tuple) -> _GridStructure:
        nx, ny = self.nx, self.ny
        cells = nx * ny
        x_a, x_b, y_a, y_b = self._mesh_edges()
        rx = self.edge_resistance_x_ohm
        ry = self.edge_resistance_y_ohm
        sources = list(self._sources)
        segments = self._ring_segments()

        emf_rows = cells + np.arange(len(sources), dtype=np.int64)
        attach_rows = np.array(
            [iy * nx + ix for _, ix, iy, _, _ in sources], dtype=np.int64
        )
        ring_a = np.array([a for _, a, _ in segments], dtype=np.int64)
        ring_b = np.array([b for _, _, b in segments], dtype=np.int64)

        res_a = np.concatenate([x_a, y_a, ring_a, emf_rows])
        res_b = np.concatenate([x_b, y_b, ring_b, attach_rows])
        r_x = np.full(x_a.size, rx)
        r_y = np.full(y_a.size, ry)
        if self._edge_scale_x is not None:
            r_x *= self._edge_scale_x.ravel()
        if self._edge_scale_y is not None:
            r_y *= self._edge_scale_y.ravel()
        res_ohm = np.concatenate(
            [
                r_x,
                r_y,
                np.full(len(segments), self._ring_bus_ohm or 0.0),
                np.array([r_out for *_, r_out in sources]),
            ]
        )

        def resistor_names() -> list[str]:
            names = [
                f"grid.x[{ix},{iy}]"
                for iy in range(ny)
                for ix in range(nx - 1)
            ]
            names += [
                f"grid.y[{ix},{iy}]"
                for iy in range(ny - 1)
                for ix in range(nx)
            ]
            names += [f"ring[{k}]" for k, _, _ in segments]
            names += [f"src.{name}.rout" for name, *_ in sources]
            return names

        def sink_names() -> list[str]:
            return [
                f"sink[{ix},{iy}]" for iy in range(ny) for ix in range(nx)
            ]

        def node_ids() -> tuple:
            return tuple(
                ("g", ix, iy) for iy in range(ny) for ix in range(nx)
            ) + tuple((f"src.{name}", "emf") for name, *_ in sources)

        compiled = CompiledNetlist(
            nodes=node_ids,
            n_nodes=cells + len(sources),
            res_a=res_a,
            res_b=res_b,
            res_ohm=res_ohm,
            cs_from=np.arange(cells, dtype=np.int64),
            cs_to=np.full(cells, GROUND_INDEX, dtype=np.int64),
            cs_amp=np.zeros(cells),
            vs_plus=emf_rows,
            vs_minus=np.full(len(sources), GROUND_INDEX, dtype=np.int64),
            vs_volt=np.zeros(len(sources)),
            res_names=resistor_names,
            cs_names=sink_names,
            vs_names=tuple(f"src.{name}.v" for name, *_ in sources),
        )
        grid_edge_count = x_a.size + y_a.size
        fast_spec = dict(
            nx=nx,
            ny=ny,
            edge_conductance_x=1.0 / rx,
            edge_conductance_y=1.0 / ry,
            attach_rows=attach_rows,
            source_conductance=np.array(
                [1.0 / r_out for *_, r_out in sources]
            ),
            ring_a=ring_a,
            ring_b=ring_b,
            ring_conductance=np.full(
                len(segments), 1.0 / (self._ring_bus_ohm or 1.0)
            ),
            edge_scale_x=self._edge_scale_x,
            edge_scale_y=self._edge_scale_y,
        )
        return _GridStructure(
            key=key,
            compiled=compiled,
            grid_edge_count=grid_edge_count,
            lateral_count=grid_edge_count + len(segments),
            fast_spec=fast_spec,
        )

    def _ensure_structure(self) -> _GridStructure:
        # The key is only recomputed after a topology mutator ran:
        # steady-state sweep loops (N-1 scenarios, sink sweeps) skip
        # the per-solve key construction entirely.
        if self._structure is None or self._topology_dirty:
            key = self._structure_key()
            if self._structure is None or self._structure.key != key:
                self._structure = self._build_structure(key)
            self._topology_dirty = False
        return self._structure

    def compile(self) -> CompiledNetlist:
        """The grid as a compiled netlist with current sinks/voltages."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        return self._ensure_structure().compiled.with_sources(
            cs_amp=np.ascontiguousarray(self._sink_map, dtype=float).ravel(),
            vs_volt=np.array([s[3] for s in self._sources]),
        )

    def _resolve_engine(self) -> str:
        """The engine this solve will try first."""
        if self.engine != "auto":
            return self.engine
        return (
            "structured"
            if self.nx * self.ny >= STRUCTURED_AUTO_MIN_CELLS
            else "factorized"
        )

    def _structured_call(self, structure: _GridStructure, run, fallback):
        """Run ``run`` on the structured engine, falling back to
        ``fallback`` (the factorized path) under ``engine="auto"``
        when the structured solve cannot converge."""
        try:
            return run(structure.fast)
        except StructuredSolveError:
            if self.engine == "structured":
                raise
            return fallback()

    def solve(self, check: bool = True) -> GridSolution:
        """Solve the grid and return per-source currents and losses.

        The engine-selection layer (see the ``engine`` constructor
        argument) picks between the structured fast-Poisson path and
        the cached sparse LU.  Either way the first solve of a
        topology pays the setup (transform columns or factorization);
        later solves with the same topology (possibly new sink maps or
        source voltages) reuse it.
        """
        structure, sinks, volts = self._solve_inputs()
        if self._resolve_engine() == "structured":
            dc = self._structured_call(
                structure,
                lambda fast: fast.solve(sinks, volts, check=check),
                lambda: structure.solver.solve(
                    cs_amp=sinks, vs_volt=volts, check=check
                ),
            )
        else:
            dc = structure.solver.solve(
                cs_amp=sinks, vs_volt=volts, check=check
            )
        return self._package_solution(structure, dc, sinks)

    def solve_many(
        self, sink_maps, check: bool = True
    ) -> list[GridSolution]:
        """Solve a stack of sink scenarios against one topology.

        ``sink_maps`` is an iterable of ``(ny, nx)`` arrays (or an
        ``(k, ny, nx)`` stack); source voltages stay as attached.  On
        the structured engine the whole stack shares one batched
        transform pair; on the factorized engine it shares the cached
        LU.  Returns one :class:`GridSolution` per scenario.
        """
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        stack = np.asarray(sink_maps, dtype=float)
        if stack.ndim == 2 and stack.shape == (self.ny, self.nx):
            stack = stack[None]
        if stack.ndim != 3 or stack.shape[1:] != (self.ny, self.nx):
            raise ConfigError(
                "sink maps must be a stack of "
                f"({self.ny}, {self.nx}) arrays"
            )
        if np.any(stack < 0):
            raise ConfigError("sink currents must be non-negative")
        structure = self._ensure_structure()
        volts = np.array([s[3] for s in self._sources])
        flat = np.ascontiguousarray(stack).reshape(
            stack.shape[0], self.nx * self.ny
        )

        def factorized() -> list[DCSolution]:
            return [
                structure.solver.solve(
                    cs_amp=row, vs_volt=volts, check=check
                )
                for row in flat
            ]

        if self._resolve_engine() == "structured":
            solved = self._structured_call(
                structure,
                lambda fast: fast.solve_many(flat, volts, check=check),
                factorized,
            )
        else:
            solved = factorized()
        return [
            self._package_solution(structure, dc, row)
            for dc, row in zip(solved, flat)
        ]

    def solve_disabled(
        self,
        disabled_sources: "tuple[int, ...] | list[int] | np.ndarray",
        check: bool = True,
        method: str = "auto",
    ) -> GridSolution:
        """Solve with a subset of the attached sources disabled.

        A disabled source's branch current is forced to zero (an
        open-circuited regulator: its output resistor and ring tap
        stay in the metal but carry nothing), expressed as a rank-k
        Woodbury correction on the *shared* factorization — an N−1/N−k
        sweep pays one factorization for the whole bank and k+1
        back-substitutions per scenario.  Indices follow attachment
        order; disabled sources report exactly 0 A.  ``method`` is
        forwarded to :meth:`~repro.pdn.mna.FactorizedPDN.solve_modified`
        (``"auto"`` falls back to refactorization when the correction
        is ill-conditioned).
        """
        indices = self._normalize_disabled(disabled_sources)
        structure, sinks, volts = self._solve_inputs()

        def factorized() -> DCSolution:
            return structure.solver.solve_modified(
                disable_sources=indices,
                cs_amp=sinks,
                vs_volt=volts,
                check=check,
                method=method,
            )

        if self._resolve_engine() == "structured":
            dc = self._structured_call(
                structure,
                lambda fast: fast.solve(
                    sinks, volts, check=check, disable_sources=indices
                ),
                factorized,
            )
        else:
            dc = factorized()
        return self._package_disabled(structure, dc, sinks, indices)

    def solve_disabled_many(
        self,
        scenarios: "list | tuple",
        check: bool = True,
        method: str = "auto",
    ) -> list[GridSolution]:
        """Solve a whole failure sweep with batched back-substitutions.

        Each scenario is a tuple of source indices to disable
        (:meth:`solve_disabled` semantics).  All scenarios share one
        factorization, and the influence columns, modified right-hand
        sides, and refinement round are stacked through
        :meth:`~repro.pdn.mna.FactorizedPDN.solve_modified_many`, so
        an exhaustive N−k enumeration pays three batched solves for
        the entire sweep.
        """
        normalized = [
            self._normalize_disabled(scenario) for scenario in scenarios
        ]
        structure, sinks, volts = self._solve_inputs()

        def factorized() -> list[DCSolution]:
            return structure.solver.solve_modified_many(
                [(indices, ()) for indices in normalized],
                cs_amp=sinks,
                vs_volt=volts,
                check=check,
                method=method,
            )

        if self._resolve_engine() == "structured":
            solved = self._structured_call(
                structure,
                lambda fast: fast.solve_disabled_many(
                    normalized, sinks, volts, check=check
                ),
                factorized,
            )
        else:
            solved = factorized()
        return [
            self._package_disabled(structure, dc, sinks, indices)
            for indices, dc in zip(normalized, solved)
        ]

    def _normalize_disabled(self, disabled_sources) -> tuple[int, ...]:
        """Validate one disable scenario's source indices."""
        indices = tuple(int(i) for i in disabled_sources)
        if any(i < 0 or i >= len(self._sources) for i in indices):
            raise ConfigError("disabled source index out of range")
        if len(set(indices)) >= len(self._sources):
            raise ConfigError("cannot disable every source")
        return indices

    def _package_disabled(
        self,
        structure: _GridStructure,
        dc: DCSolution,
        sinks: np.ndarray,
        indices: tuple[int, ...],
    ) -> GridSolution:
        solution = self._package_solution(structure, dc, sinks)
        # The dead rout branches carry only O(eps) numerical residue.
        solution.source_currents_a[list(set(indices))] = 0.0
        return solution

    def preload_failure_sweep(
        self,
        indices: "tuple[int, ...] | list[int] | range | None" = None,
    ) -> None:
        """Warm everything an N−1/N−k sweep needs in batched calls.

        Factorizes the full attached topology (if not already cached)
        and back-substitutes the influence columns for the given
        source indices (default: all) in one call, so each subsequent
        :meth:`solve_disabled` scenario pays only two
        back-substitutions.
        """
        structure, _, _ = self._solve_inputs()
        structure.solver.preload_source_influence(indices)

    def _solve_inputs(self) -> tuple[_GridStructure, np.ndarray, np.ndarray]:
        """Validate attachments and gather the per-scenario RHS data."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        structure = self._ensure_structure()
        sinks = np.ascontiguousarray(self._sink_map, dtype=float).ravel()
        volts = np.array([s[3] for s in self._sources])
        return structure, sinks, volts

    def _package_solution(
        self,
        structure: _GridStructure,
        dc: DCSolution,
        sinks: np.ndarray,
    ) -> GridSolution:
        losses = dc.resistor_loss_array
        branch_currents = dc.resistor_current_array
        currents = branch_currents[structure.lateral_count :].copy()
        total_sink = float(sinks.sum())
        if abs(currents.sum() - total_sink) > 1e-6 * max(total_sink, 1.0):
            raise SolverError(
                "source currents do not sum to the load current: "
                f"{currents.sum():.6f} vs {total_sink:.6f}"
            )

        lateral = (
            losses[: structure.lateral_count].sum() * self.rail_pair_factor
        )
        source_loss = losses[structure.lateral_count :].sum()
        voltage_map = (
            dc.node_voltage_array[: self.nx * self.ny]
            .reshape(self.ny, self.nx)
            .copy()
        )
        return GridSolution(
            dc=dc,
            source_currents_a=currents,
            lateral_loss_w=float(lateral),
            source_loss_w=float(source_loss),
            voltage_map=voltage_map,
            grid_edge_currents_a=branch_currents[: structure.grid_edge_count],
        )


# -- grid-level AC ----------------------------------------------------------------


@dataclass(frozen=True)
class GridImpedanceMap:
    """Per-node die-seen impedance Z(f) over the mesh.

    Attributes:
        frequencies_hz: the sweep grid.
        z_ohm: complex self-impedance per node, shape
            ``(n_nodes, n_freqs)`` with node ``(ix, iy)`` in row
            ``iy * nx + ix``.
        nx, ny: mesh dimensions.
    """

    frequencies_hz: np.ndarray
    z_ohm: np.ndarray
    nx: int
    ny: int

    @property
    def impedance_ohm(self) -> np.ndarray:
        """|Z| per node, shape ``(n_nodes, n_freqs)``."""
        return np.abs(self.z_ohm)

    def node_profile(self, ix: int, iy: int) -> ImpedanceProfile:
        """The |Z(f)| profile seen at one mesh node."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise ConfigError("node index outside the mesh")
        return ImpedanceProfile(
            frequencies_hz=self.frequencies_hz,
            impedance_ohm=np.abs(self.z_ohm[iy * self.nx + ix]),
        )

    def peak_map(self) -> np.ndarray:
        """Per-node worst |Z| over the sweep as an (ny, nx) array."""
        return (
            np.abs(self.z_ohm).max(axis=1).reshape(self.ny, self.nx)
        )

    @property
    def peak_impedance_ohm(self) -> float:
        """The worst |Z| over all nodes and frequencies."""
        return float(np.abs(self.z_ohm).max())

    @property
    def peak_frequency_hz(self) -> float:
        """Frequency of the overall worst |Z|."""
        return float(
            self.frequencies_hz[
                int(np.argmax(np.abs(self.z_ohm).max(axis=0)))
            ]
        )

    def worst_node(self) -> tuple[int, int]:
        """``(ix, iy)`` of the node with the largest peak |Z|."""
        flat = int(np.argmax(np.abs(self.z_ohm).max(axis=1)))
        return flat % self.nx, flat // self.nx

    def worst_profile(self) -> ImpedanceProfile:
        """The |Z(f)| profile of the worst node."""
        return self.node_profile(*self.worst_node())

    def meets_target(self, target_ohm: float) -> bool:
        """True if every node stays at or below the target everywhere."""
        if target_ohm <= 0:
            raise ConfigError("target impedance must be positive")
        return bool(
            np.all(np.abs(self.z_ohm) <= target_ohm * (1 + 1e-12))
        )

    def violating_node_fraction(self, target_ohm: float) -> float:
        """Fraction of mesh nodes whose peak |Z| exceeds the target.

        Uses the same rounding tolerance as :meth:`meets_target`, so a
        map that "meets target" always reports zero violating nodes.
        """
        if target_ohm <= 0:
            raise ConfigError("target impedance must be positive")
        peaks = np.abs(self.z_ohm).max(axis=1)
        violating = peaks > target_ohm * (1 + 1e-12)
        return float(np.count_nonzero(violating) / peaks.size)


@dataclass(frozen=True)
class GridACSweepSolution:
    """Driven phasor sweep of the mesh (sources live, sinks as AC loads).

    Attributes:
        sweep: the underlying node-voltage sweep (mesh nodes first in
            row order, then internal branch nodes).
        nx, ny: mesh dimensions.
    """

    sweep: ACSweepSolution
    nx: int
    ny: int

    @property
    def frequencies_hz(self) -> np.ndarray:
        return self.sweep.frequencies_hz

    @property
    def voltage_maps(self) -> np.ndarray:
        """Complex mesh node voltages, shape ``(n_freqs, ny, nx)``."""
        cells = self.nx * self.ny
        return self.sweep.voltage_matrix[:, :cells].reshape(
            -1, self.ny, self.nx
        )

    def magnitude_map(self, index: int) -> np.ndarray:
        """|V| over the mesh at sweep point ``index``."""
        return np.abs(self.voltage_maps[index])


@dataclass
class _ReducedACStructure:
    """Compile-once pattern of the reduced (node-only) AC system.

    Decap chains and source output branches are folded analytically
    into per-node shunt admittances and series edges into complex edge
    admittances, so the matrix is ``n_cells`` square at any frequency.
    ``rev`` tags the topology revision this structure was built for.
    """

    rev: int
    edge_r: np.ndarray  # per-edge series resistance (mesh + ring)
    edge_l: np.ndarray  # per-edge series inductance
    entry_rows: np.ndarray
    entry_cols: np.ndarray
    entry_edge: np.ndarray  # edge index per off/diagonal edge entry
    entry_sign: np.ndarray
    order: np.ndarray
    starts: np.ndarray
    csc_rows: np.ndarray
    csc_cols: np.ndarray
    indptr: np.ndarray


@dataclass
class _SpectralACStructure:
    """Eigenbasis of ``G x = λ D_α x`` for the fast impedance map.

    Valid when the mesh metal is purely resistive and the decap model
    is a positive per-node *density* of one unit cell: the system is
    ``A(ω) = G + y_u(ω) D_α + U Y(ω) Uᵀ`` with ``G`` constant, so one
    generalized eigendecomposition turns every frequency into diagonal
    updates plus a rank-s (source-branch) Woodbury correction.
    """

    rev: int
    lam: np.ndarray  # generalized eigenvalues (n,)
    q: np.ndarray  # eigenvectors, Qᵀ D_α Q = I
    q_sq: np.ndarray  # Q ∘ Q, for diag(M⁻¹) gathers
    p: np.ndarray  # Qᵀ U, shape (n, s)
    attach: np.ndarray  # source attach rows (s,)
    rout: np.ndarray  # per-source output resistance (s,)
    l_src: np.ndarray  # per-source series inductance (s,)
    unit_c: float
    unit_esr: float
    unit_esl: float


@dataclass
class _StructuredACStructure:
    """DCT eigenstructure of the uniform-density reduced AC system.

    Valid when the mesh metal is purely resistive and every node
    carries the *same* positive decap density: the reduced system is
    ``A(ω) = G_mesh + α·y_u(ω)·I + U Y(ω) Uᵀ`` with ``G_mesh`` the
    uniform mesh Laplacian, diagonal in the 2-D DCT-II basis.  Then
    ``diag(M⁻¹)`` is two small GEMMs over squared basis tables per
    frequency chunk, and the source/ring branches are a rank-k
    Woodbury correction whose influence columns come back through one
    batched inverse transform — no eigendecomposition, no LU, ever.
    """

    rev: int
    lam: np.ndarray  # mesh Laplacian modal eigenvalues, (cells,)
    tau: float  # zero-mode deflation shift folded into lam[0]
    bx_sq: np.ndarray  # squared DCT basis, (nx_modes, nx_nodes)
    by_sq: np.ndarray
    u_hat: np.ndarray  # DCT of the branch columns, (cells, k)
    alpha: float  # uniform decap density
    unit_c: float
    unit_esr: float
    unit_esl: float
    rout: np.ndarray
    l_src: np.ndarray
    ring_g: np.ndarray  # ring segment conductances, appended to k


class GridACPDN:
    """Grid-level AC impedance analysis of the die/interposer mesh.

    The AC counterpart of :class:`GridPDN`: the same rectangular
    one-polarity mesh, extended with per-node decoupling capacitors
    (C + ESR + ESL), per-edge metal inductance, and VR output branches
    (Thevenin source + output resistance + bump/TSV inductance).  Two
    analysis surfaces:

    * :meth:`impedance_map` — the die-seen self-impedance Z(f) at
      *every* mesh node (sources zeroed, 1 A probe per node), the
      frequency-domain companion of the DC IR-drop map.
    * :meth:`solve` — the driven phasor sweep (sources live, sink map
      as AC load magnitudes), whose low-frequency limit converges to
      the :class:`GridPDN` DC solution.

    Everything is compiled once per topology and revalued per
    frequency: the driven path stamps straight into a
    :class:`~repro.pdn.ac.CompiledACNetlist` (array assembly, shared
    CSC pattern, batched solves), and the impedance map runs on a
    *reduced* node-only system — decap chains and source branches fold
    into per-node shunt admittances — solved either spectrally (one
    generalized eigendecomposition; per-frequency work is a few small
    GEMMs) or directly (batched dense / shared-pattern sparse solves).

    Unlike the DC grid, degenerate 1-D chains (``nx == 1`` or
    ``ny == 1``) are allowed: they are the lattice the analytic ladder
    model collapses onto, which the cross-validation tests exploit.
    """

    def __init__(
        self,
        width_m: float,
        height_m: float,
        sheet_ohm_sq: float,
        nx: int = 24,
        ny: int = 24,
        edge_inductance_x_h: float = 0.0,
        edge_inductance_y_h: float = 0.0,
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise ConfigError("grid extents must be positive")
        if sheet_ohm_sq <= 0:
            raise ConfigError("sheet resistance must be positive")
        if nx < 1 or ny < 1 or nx * ny < 2:
            raise ConfigError("grid needs at least two nodes")
        if edge_inductance_x_h < 0 or edge_inductance_y_h < 0:
            raise ConfigError("edge inductance must be non-negative")
        self.width_m = width_m
        self.height_m = height_m
        self.sheet_ohm_sq = sheet_ohm_sq
        self.nx = nx
        self.ny = ny
        self.edge_inductance_x_h = edge_inductance_x_h
        self.edge_inductance_y_h = edge_inductance_y_h
        # (name, ix, iy, voltage, r_out, l_src)
        self._sources: list[tuple[str, int, int, float, float, float]] = []
        self._sink_map: np.ndarray | None = None
        self._ring_bus_ohm: float | None = None
        self._decap: tuple | None = None
        self._rev = 0  # matrix-shaping topology revision
        self._sink_rev = 0
        self._reduced: _ReducedACStructure | None = None
        self._spectral: _SpectralACStructure | None = None
        self._structured: _StructuredACStructure | None = None
        self._compiled: tuple[int, int, CompiledACNetlist] | None = None

    @classmethod
    def from_grid(
        cls, grid: GridPDN, source_inductance_h: float = 0.0
    ) -> "GridACPDN":
        """Mirror a DC grid's mesh, sinks, sources, and ring bus.

        ``source_inductance_h`` adds the vertical bump/TSV loop
        inductance in series with every copied VR output (the DC model
        has no use for it).  Decap maps are attached separately.
        """
        pdn = cls(
            grid.width_m,
            grid.height_m,
            grid.sheet_ohm_sq,
            nx=grid.nx,
            ny=grid.ny,
        )
        if grid._sink_map is not None:
            pdn.set_sink_array(grid._sink_map)
        for name, ix, iy, voltage, r_out in grid._sources:
            pdn._add_source_at(
                name, ix, iy, voltage, r_out, source_inductance_h
            )
        if grid._ring_bus_ohm is not None:
            pdn._ring_bus_ohm = grid._ring_bus_ohm
            pdn._rev += 1
        return pdn

    # -- construction -----------------------------------------------------------

    def set_sinks(self, power_map: PowerMap, total_current_a: float) -> None:
        """Attach AC load magnitudes from a power map (phase 0)."""
        self._sink_map = power_map.cell_currents(
            self.nx, self.ny, total_current_a
        )
        self._sink_rev += 1

    def set_sink_array(self, cell_currents: np.ndarray) -> None:
        """Attach AC load magnitudes from an explicit (ny, nx) array."""
        arr = np.asarray(cell_currents, dtype=float)
        if arr.shape != (self.ny, self.nx):
            raise ConfigError(
                f"sink array must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(arr < 0):
            raise ConfigError("sink currents must be non-negative")
        self._sink_map = arr
        self._sink_rev += 1

    def _add_source_at(
        self,
        name: str,
        ix: int,
        iy: int,
        voltage_v: float,
        output_resistance_ohm: float,
        inductance_h: float,
    ) -> None:
        if output_resistance_ohm <= 0:
            raise ConfigError("source output resistance must be positive")
        if inductance_h < 0:
            raise ConfigError("source inductance must be non-negative")
        if any(existing == name for existing, *_ in self._sources):
            raise ConfigError(f"duplicate source name: {name!r}")
        self._sources.append(
            (name, ix, iy, voltage_v, output_resistance_ohm, inductance_h)
        )
        self._rev += 1

    def add_source(
        self,
        name: str,
        x_frac: float,
        y_frac: float,
        voltage_v: float,
        output_resistance_ohm: float,
        inductance_h: float = 0.0,
    ) -> None:
        """Attach a VR output at fractional die coordinates.

        As in :class:`GridPDN`, but with an optional series
        ``inductance_h`` modeling the vertical bump/TSV loop between
        the converter output and the mesh.
        """
        if not 0.0 <= x_frac <= 1.0 or not 0.0 <= y_frac <= 1.0:
            raise ConfigError("source position must be inside the die")
        ix = min(int(round(x_frac * (self.nx - 1))), self.nx - 1)
        iy = min(int(round(y_frac * (self.ny - 1))), self.ny - 1)
        self._add_source_at(
            name, ix, iy, voltage_v, output_resistance_ohm, inductance_h
        )

    def clear_sources(self) -> None:
        """Remove all attached sources (and any ring bus)."""
        self._sources.clear()
        self._ring_bus_ohm = None
        self._rev += 1

    def connect_sources_with_ring_bus(
        self, segment_resistance_ohm: float
    ) -> None:
        """Join consecutive sources with a dedicated ring bus
        (:meth:`GridPDN.connect_sources_with_ring_bus` semantics)."""
        if segment_resistance_ohm <= 0:
            raise ConfigError("ring segment resistance must be positive")
        if len(self._sources) < 3:
            raise ConfigError("a ring bus needs at least three sources")
        self._ring_bus_ohm = segment_resistance_ohm
        self._rev += 1

    @property
    def source_names(self) -> list[str]:
        """Names of attached sources in attachment order."""
        return [s[0] for s in self._sources]

    # -- decap maps -------------------------------------------------------------

    def set_decap_density(
        self,
        density,
        cap_per_unit_f: float,
        esr_per_unit_ohm: float = 0.0,
        esl_per_unit_h: float = 0.0,
    ) -> None:
        """Attach decaps as a per-node *density* of one unit cell.

        ``density`` (scalar or (ny, nx) array, >= 0) counts identical
        unit cells — C with series ESR and ESL — in parallel at each
        node, the way MIM/deep-trench decap budgets are allocated per
        tile.  A strictly positive density map (plus purely resistive
        mesh metal) unlocks the spectral impedance-map engine.
        """
        if cap_per_unit_f <= 0:
            raise ConfigError("unit decap capacitance must be positive")
        if esr_per_unit_ohm < 0 or esl_per_unit_h < 0:
            raise ConfigError("unit decap ESR/ESL must be non-negative")
        alpha = np.asarray(density, dtype=float)
        if alpha.ndim == 0:
            alpha = np.full((self.ny, self.nx), float(alpha))
        if alpha.shape != (self.ny, self.nx):
            raise ConfigError(
                f"density map must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(alpha < 0):
            raise ConfigError("decap density must be non-negative")
        if not np.any(alpha > 0):
            raise ConfigError("decap density map is all zero")
        self._decap = (
            "density",
            alpha.copy(),
            float(cap_per_unit_f),
            float(esr_per_unit_ohm),
            float(esl_per_unit_h),
        )
        self._rev += 1

    def set_decap_map(self, cap_f, esr_ohm=0.0, esl_h=0.0) -> None:
        """Attach arbitrary per-node decap maps.

        ``cap_f``/``esr_ohm``/``esl_h`` are scalars or (ny, nx)
        arrays; a node with zero capacitance carries no decap branch.
        All-scalar arguments are equivalent to a uniform unit density
        of one cell per node (and are stored that way, keeping the
        spectral engine available); array arguments go through the
        general direct engine.
        """
        if np.ndim(cap_f) == 0 and np.ndim(esr_ohm) == 0 and np.ndim(esl_h) == 0:
            self.set_decap_density(
                1.0, float(cap_f), float(esr_ohm), float(esl_h)
            )
            return

        def as_map(value, label: str) -> np.ndarray:
            arr = np.asarray(value, dtype=float)
            if arr.ndim == 0:
                arr = np.full((self.ny, self.nx), float(arr))
            if arr.shape != (self.ny, self.nx):
                raise ConfigError(
                    f"{label} map must be shaped ({self.ny}, {self.nx})"
                )
            if np.any(arr < 0):
                raise ConfigError(f"{label} map must be non-negative")
            return arr.copy()

        c = as_map(cap_f, "capacitance")
        if not np.any(c > 0):
            raise ConfigError("capacitance map is all zero")
        self._decap = ("map", c, as_map(esr_ohm, "ESR"), as_map(esl_h, "ESL"))
        self._rev += 1

    def scale_decap(self, factor: float) -> None:
        """Multiply the attached decap allocation by ``factor``.

        Semantically "add more unit cells in parallel": capacitance
        scales up while ESR and ESL scale down, for either decap
        representation.  The decap sizing search is built on this.
        """
        if factor <= 0:
            raise ConfigError("decap scale factor must be positive")
        if self._decap is None:
            raise ConfigError("no decaps attached; set a decap map first")
        if self._decap[0] == "density":
            _, alpha, c, esr, esl = self._decap
            self._decap = ("density", alpha * factor, c, esr, esl)
        else:
            _, c, esr, esl = self._decap
            self._decap = ("map", c * factor, esr / factor, esl / factor)
        self._rev += 1

    def decap_snapshot(self) -> tuple:
        """The exact decap state, for :meth:`restore_decap`.

        Captures the stored representation (kind, arrays, unit values)
        plus the topology revision, so a search that mutates the
        allocation — :func:`~repro.pdn.impedance.size_grid_decap_for_target`,
        the placement optimizer — can put the grid back bit-exactly
        instead of round-tripping values through lossy scale factors.
        """
        if self._decap is None:
            state: tuple | None = None
        else:
            state = tuple(
                part.copy() if isinstance(part, np.ndarray) else part
                for part in self._decap
            )
        return (state, self._rev)

    def restore_decap(self, snapshot: tuple) -> None:
        """Restore a :meth:`decap_snapshot` bit-exactly.

        The topology revision is restored too, so structures cached
        *before* the snapshot stay valid; any structure built at an
        intermediate revision (which could alias a future revision
        number once the counter is rewound) is dropped.
        """
        state, rev = snapshot
        if state is None:
            self._decap = None
        else:
            self._decap = tuple(
                part.copy() if isinstance(part, np.ndarray) else part
                for part in state
            )
        self._rev = rev
        if self._reduced is not None and self._reduced.rev != rev:
            self._reduced = None
        if self._spectral is not None and self._spectral.rev != rev:
            self._spectral = None
        if self._structured is not None and self._structured.rev != rev:
            self._structured = None
        if self._compiled is not None and self._compiled[0] != rev:
            self._compiled = None

    @property
    def total_decap_farad(self) -> float:
        """Total attached decoupling capacitance over the mesh."""
        if self._decap is None:
            return 0.0
        return float(self._decap_arrays()[0].sum())

    def _decap_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened per-node (C, ESR, ESL) arrays; zero C = no decap."""
        cells = self.nx * self.ny
        if self._decap is None:
            zero = np.zeros(cells)
            return zero, zero.copy(), zero.copy()
        if self._decap[0] == "density":
            _, alpha, c_u, esr_u, esl_u = self._decap
            alpha = alpha.ravel()
            live = alpha > 0
            c = np.where(live, alpha * c_u, 0.0)
            with np.errstate(divide="ignore"):
                esr = np.where(live, esr_u / np.where(live, alpha, 1.0), 0.0)
                esl = np.where(live, esl_u / np.where(live, alpha, 1.0), 0.0)
            return c, esr, esl
        _, c, esr, esl = self._decap
        return c.ravel().copy(), esr.ravel().copy(), esl.ravel().copy()

    # -- edge parameters --------------------------------------------------------

    @property
    def edge_resistance_x_ohm(self) -> float:
        """Resistance of one x-direction edge (R_sq * dx / dy_strip)."""
        if self.nx < 2:
            raise ConfigError("a 1-wide grid has no x edges")
        dx = self.width_m / (self.nx - 1)
        strip = self.height_m / self.ny
        return self.sheet_ohm_sq * dx / strip

    @property
    def edge_resistance_y_ohm(self) -> float:
        """Resistance of one y-direction edge."""
        if self.ny < 2:
            raise ConfigError("a 1-tall grid has no y edges")
        dy = self.height_m / (self.ny - 1)
        strip = self.width_m / self.nx
        return self.sheet_ohm_sq * dy / strip

    def _edge_arrays(self) -> tuple[np.ndarray, ...]:
        """All constant-topology edges: mesh x, mesh y, ring segments.

        Returns ``(a, b, r, l)`` — endpoint rows plus per-edge series
        resistance and inductance.
        """
        x_a, x_b, y_a, y_b = mesh_edge_rows(self.nx, self.ny)
        ring = self._ring_segments()
        ring_a = np.array([a for a, _ in ring], dtype=np.int64)
        ring_b = np.array([b for _, b in ring], dtype=np.int64)
        a = np.concatenate([x_a, y_a, ring_a])
        b = np.concatenate([x_b, y_b, ring_b])
        r = np.concatenate(
            [
                np.full(x_a.size, self.edge_resistance_x_ohm if x_a.size else 0.0),
                np.full(y_a.size, self.edge_resistance_y_ohm if y_a.size else 0.0),
                np.full(len(ring), self._ring_bus_ohm or 0.0),
            ]
        )
        l = np.concatenate(
            [
                np.full(x_a.size, self.edge_inductance_x_h),
                np.full(y_a.size, self.edge_inductance_y_h),
                np.zeros(len(ring)),
            ]
        )
        return a, b, r, l

    def _ring_segments(self) -> list[tuple[int, int]]:
        """Ring-bus segments as (row_a, row_b), degenerates skipped."""
        if self._ring_bus_ohm is None:
            return []
        segments: list[tuple[int, int]] = []
        count = len(self._sources)
        for k in range(count):
            _, ix_a, iy_a, *_ = self._sources[k]
            _, ix_b, iy_b, *_ = self._sources[(k + 1) % count]
            if (ix_a, iy_a) == (ix_b, iy_b):
                continue
            segments.append(
                (iy_a * self.nx + ix_a, iy_b * self.nx + ix_b)
            )
        return segments

    # -- shunt admittances ------------------------------------------------------

    def _decap_admittance(self, omega: np.ndarray) -> np.ndarray:
        """Per-node decap branch admittance, shape (n_freqs, cells).

        The series C + ESR + ESL chain folds exactly into
        ``y = 1 / (ESR + j(ω·ESL − 1/(ω·C)))``; nodes without decap
        contribute zero.
        """
        c, esr, esl = self._decap_arrays()
        live = c > 0
        y = np.zeros((omega.size, c.size), dtype=complex)
        if np.any(live):
            w = omega[:, None]
            reactance = w * esl[None, live] - 1.0 / (w * c[None, live])
            y[:, live] = 1.0 / (esr[None, live] + 1j * reactance)
        return y

    def _source_admittance(self, omega: np.ndarray) -> np.ndarray:
        """Per-source zeroed-EMF branch admittance, (n_freqs, s)."""
        rout = np.array([s[4] for s in self._sources])
        l_src = np.array([s[5] for s in self._sources])
        return 1.0 / (rout[None, :] + 1j * omega[:, None] * l_src[None, :])

    def _source_attach_rows(self) -> np.ndarray:
        return np.array(
            [iy * self.nx + ix for _, ix, iy, *_ in self._sources],
            dtype=np.int64,
        )

    # -- impedance map ----------------------------------------------------------

    def impedance_map(
        self, frequencies_hz: np.ndarray, method: str = "auto"
    ) -> GridImpedanceMap:
        """Die-seen self-impedance Z(f) at every mesh node.

        Sources are zeroed (their output branch stays in the metal)
        and each node is probed with 1 A, exactly the per-node version
        of :func:`repro.pdn.ac.impedance_at`.  ``method`` selects the
        engine: ``"structured"`` (uniform decap density, resistive
        mesh; DCT-diagonalized mesh Laplacian, O(n² log n) setup and a
        few GEMMs per frequency chunk), ``"spectral"`` (arbitrary
        positive density maps, resistive mesh; one dense
        eigendecomposition, then O(n·s) work per frequency),
        ``"direct"`` (fully general: batched dense solves up to the
        dense cell cutoff, shared-pattern sparse LU above), or
        ``"auto"`` to use the fastest engine the topology allows, in
        that order.

        Raises:
            ConfigError: no sources attached, bad frequencies, or an
                explicit method on an ineligible topology.
            SolverError: singular/resonant system at a sweep point.
        """
        freqs = check_frequencies(frequencies_hz)
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        engine = self.impedance_engine(method)
        omega = 2.0 * math.pi * freqs
        if engine == "structured":
            z = self._impedance_structured(omega)
        elif engine == "spectral":
            z = self._impedance_spectral(omega)
        else:
            z = self._impedance_direct(omega, freqs)
        if not np.all(np.isfinite(z)):
            bad = freqs[np.nonzero(~np.all(np.isfinite(z), axis=0))[0][0]]
            raise SolverError(
                f"grid impedance is singular or non-finite at {bad:.6g} Hz "
                "(resonant singularity or floating mesh)"
            )
        return GridImpedanceMap(
            frequencies_hz=freqs, z_ohm=z, nx=self.nx, ny=self.ny
        )

    def impedance_columns(
        self, frequency_hz: float, nodes
    ) -> np.ndarray:
        """Columns of the reduced inverse ``A(ω)⁻¹[:, nodes]``.

        The adjoint companion of :meth:`impedance_map`: at one
        frequency, solve the reduced (sources-zeroed) system for a
        batch of unit probes — one sparse factorization, one multi-RHS
        back-substitution.  Column ``j`` is the transfer impedance from
        every mesh node into ``nodes[j]`` (row order, ``iy·nx + ix``);
        its diagonal entry is exactly the self-impedance the map
        reports.  Because the reduced system is complex-symmetric,
        these columns are also the adjoint fields
        ``d Z_k / d y_shunt,i = −(A⁻¹ e_k)_i²`` that the placement
        optimizer turns into per-node decap sensitivities for *all*
        nodes at once.

        Returns a complex ``(cells, len(nodes))`` array.
        """
        freqs = check_frequencies(np.atleast_1d(np.asarray(
            frequency_hz, dtype=float
        )))
        if freqs.size != 1:
            raise ConfigError("impedance_columns takes a single frequency")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        cells = self.nx * self.ny
        rows = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if rows.ndim != 1 or rows.size == 0:
            raise ConfigError("nodes must be a non-empty 1-D index list")
        if np.any(rows < 0) or np.any(rows >= cells):
            raise ConfigError("probe node index outside the mesh")
        structure = self._ensure_reduced()
        omega = 2.0 * math.pi * freqs
        data = self._reduced_csc_data(structure, omega)
        matrix = sp.csc_matrix(
            (data[0], structure.csc_rows, structure.indptr),
            shape=(cells, cells),
        )
        rhs = np.zeros((cells, rows.size), dtype=complex)
        rhs[rows, np.arange(rows.size)] = 1.0
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                columns = spla.splu(matrix).solve(rhs)
            except RuntimeError as exc:
                raise SolverError(
                    "grid impedance solve failed at "
                    f"{freqs[0]:.6g} Hz: {exc}"
                ) from exc
        if not np.all(np.isfinite(columns)):
            raise SolverError(
                f"grid impedance is singular at {freqs[0]:.6g} Hz "
                "(resonant singularity or floating mesh)"
            )
        return columns

    def impedance_engine(self, method: str = "auto") -> str:
        """The impedance-map engine ``method`` resolves to.

        Returns ``"structured"``, ``"spectral"``, ``"direct-dense"``,
        or ``"direct-sparse"`` — the regression surface the engine-
        selection tests assert against.  Raises
        :class:`~repro.errors.ConfigError` for an explicit method the
        current topology cannot run.
        """
        if method not in ("auto", "structured", "spectral", "direct"):
            raise ConfigError(f"unknown impedance-map method: {method!r}")
        if method == "structured" and not self._structured_eligible():
            raise ConfigError(
                "structured impedance map needs a uniform positive decap "
                "density and a purely resistive mesh"
            )
        if method == "spectral" and not self._spectral_eligible():
            raise ConfigError(
                "spectral impedance map needs a strictly positive decap "
                "density map and a purely resistive mesh"
            )
        if method == "structured" or (
            method == "auto" and self._structured_eligible()
        ):
            return "structured"
        if method == "spectral" or (
            method == "auto" and self._spectral_eligible()
        ):
            return "spectral"
        return f"direct-{grid_direct_mode(self.nx * self.ny)}"

    def _spectral_eligible(self) -> bool:
        return (
            self._decap is not None
            and self._decap[0] == "density"
            and bool(np.all(self._decap[1] > 0))
            and self.edge_inductance_x_h == 0.0
            and self.edge_inductance_y_h == 0.0
        )

    def _structured_eligible(self) -> bool:
        """Structured = spectral requirements plus a *uniform* density
        (one shunt admittance per node keeps M diagonal in the DCT
        basis)."""
        if not self._spectral_eligible():
            return False
        alpha = self._decap[1]
        return bool(np.all(alpha == alpha.flat[0]))

    def _ensure_spectral(self) -> _SpectralACStructure:
        if self._spectral is not None and self._spectral.rev == self._rev:
            return self._spectral
        cells = self.nx * self.ny
        a, b, r, _ = self._edge_arrays()
        rows, cols, vals = admittance_stamp_entries(a, b, 1.0 / r)
        g = np.zeros((cells, cells))
        np.add.at(g, (rows, cols), vals)
        _, alpha, c_u, esr_u, esl_u = self._decap
        alpha = alpha.ravel()
        # Symmetrized generalized eigenproblem G q = λ D_α q: scale by
        # D_α^(-1/2), take the ordinary symmetric eigendecomposition,
        # and unscale — Qᵀ D_α Q = I, Qᵀ G Q = Λ by construction.
        dinv = 1.0 / np.sqrt(alpha)
        lam, v = np.linalg.eigh(g * dinv[:, None] * dinv[None, :])
        q = dinv[:, None] * v
        attach = self._source_attach_rows()
        self._spectral = _SpectralACStructure(
            rev=self._rev,
            lam=lam,
            q=q,
            q_sq=q * q,
            p=q[attach, :].T.copy(),
            attach=attach,
            rout=np.array([s[4] for s in self._sources]),
            l_src=np.array([s[5] for s in self._sources]),
            unit_c=c_u,
            unit_esr=esr_u,
            unit_esl=esl_u,
        )
        return self._spectral

    def _impedance_spectral(self, omega: np.ndarray) -> np.ndarray:
        """diag(A⁻¹) via the cached eigenbasis, shape (cells, n_freqs).

        ``A(ω) = M(ω) + U Y(ω) Uᵀ`` with ``M = G + y_u(ω) D_α``
        diagonal in the eigenbasis, so ``diag(M⁻¹)`` is one GEMM over
        the whole sweep and the source branches enter as a rank-s
        Sherman–Morrison–Woodbury correction whose capacitance matrix
        inverts per frequency at s×s cost.
        """
        structure = self._ensure_spectral()
        reactance = omega * structure.unit_esl - 1.0 / (
            omega * structure.unit_c
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            y_u = 1.0 / (structure.unit_esr + 1j * reactance)
            w = 1.0 / (structure.lam[None, :] + y_u[:, None])  # (F, n)
        diag = w @ structure.q_sq.T  # (F, cells)
        s_count = len(structure.rout)
        if s_count:
            tmp = w[:, :, None] * structure.p[None, :, :]  # (F, n, s)
            influence = structure.q[None, :, :] @ tmp  # M⁻¹U, (F, cells, s)
            t = structure.p.T[None, :, :] @ tmp  # UᵀM⁻¹U, (F, s, s)
            y_branch_inv = (
                structure.rout[None, :]
                + 1j * omega[:, None] * structure.l_src[None, :]
            )
            capacitance = t + (
                y_branch_inv[:, :, None] * np.eye(s_count)[None, :, :]
            )
            try:
                with np.errstate(all="ignore"):
                    k = np.linalg.inv(capacitance)
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    f"grid impedance source correction is singular: {exc}"
                ) from exc
            diag = diag - np.einsum(
                "fks,fst,fkt->fk", influence, k, influence, optimize=True
            )
        return diag.T

    def _ensure_structured(self) -> _StructuredACStructure:
        if (
            self._structured is not None
            and self._structured.rev == self._rev
        ):
            return self._structured
        import scipy.fft as sfft

        nx, ny = self.nx, self.ny
        cells = nx * ny
        gx = 1.0 / self.edge_resistance_x_ohm if nx > 1 else 0.0
        gy = 1.0 / self.edge_resistance_y_ohm if ny > 1 else 0.0
        lam = (
            gy * poisson_mode_eigenvalues(ny)[:, None]
            + gx * poisson_mode_eigenvalues(nx)[None, :]
        ).ravel()
        attach = self._source_attach_rows()
        ring = self._ring_segments()
        # Deflate the mesh zero mode: at low frequency 1/(α·y_u) dwarfs
        # every other modal weight and its near-exact cancellation by
        # the source correction destroys ~5 digits.  Shift lam[0] by
        # τ = gx + gy and reinstate the mode as a −τ rank-one branch in
        # the Woodbury block, where the cancellation resolves inside a
        # full-precision dense solve (same trick as the DC fast path).
        tau = gx + gy
        defl = 1 if tau > 0 else 0
        if defl:
            lam = lam.copy()
            lam[0] += tau
        k = defl + attach.size + len(ring)
        u = np.zeros((cells, k))
        if defl:
            u[:, 0] = 1.0 / math.sqrt(cells)
        for t, row in enumerate(attach, start=defl):
            u[row, t] += 1.0
        for t, (a, b) in enumerate(ring, start=defl + attach.size):
            u[a, t] += 1.0
            u[b, t] -= 1.0
        u_hat = (
            sfft.dctn(
                u.T.reshape(k, ny, nx), type=2, axes=(1, 2), norm="ortho"
            ).reshape(k, cells).T.copy()
            if k
            else u
        )
        _, alpha_map, c_u, esr_u, esl_u = self._decap
        self._structured = _StructuredACStructure(
            rev=self._rev,
            lam=lam,
            tau=tau if defl else 0.0,
            bx_sq=dct2_basis(nx) ** 2,
            by_sq=dct2_basis(ny) ** 2,
            u_hat=u_hat,
            alpha=float(alpha_map.flat[0]),
            unit_c=c_u,
            unit_esr=esr_u,
            unit_esl=esl_u,
            rout=np.array([s[4] for s in self._sources]),
            l_src=np.array([s[5] for s in self._sources]),
            ring_g=np.full(len(ring), 1.0 / (self._ring_bus_ohm or 1.0)),
        )
        return self._structured

    def _impedance_structured(self, omega: np.ndarray) -> np.ndarray:
        """diag(A⁻¹) via the DCT eigenstructure, shape (cells, F).

        ``M(ω) = G_mesh + α·y_u(ω)·I`` shares the mesh Laplacian's DCT
        eigenvectors at every frequency, so ``diag(M⁻¹)`` reduces to
        two GEMMs against squared basis tables, and the source/ring
        branches are a rank-k Woodbury correction whose per-frequency
        influence columns come back through one batched inverse DCT.
        Frequency-chunked to bound scratch memory, like the direct
        engine.
        """
        import scipy.fft as sfft

        structure = self._ensure_structured()
        nx, ny = self.nx, self.ny
        cells = nx * ny
        k = structure.u_hat.shape[1]
        reactance = omega * structure.unit_esl - 1.0 / (
            omega * structure.unit_c
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            y_u = 1.0 / (structure.unit_esr + 1j * reactance)
        y_src = 1.0 / (
            structure.rout[None, :]
            + 1j * omega[:, None] * structure.l_src[None, :]
        )
        z = np.empty((cells, omega.size), dtype=complex)
        chunk = max(1, _DENSE_BATCH_ENTRIES // (max(k, 1) * cells))
        for lo in range(0, omega.size, chunk):
            hi = min(lo + chunk, omega.size)
            with np.errstate(divide="ignore", invalid="ignore"):
                w = 1.0 / (
                    structure.lam[None, :]
                    + structure.alpha * y_u[lo:hi, None]
                )  # (F, cells) modal weights
            diag = (
                structure.by_sq.T
                @ w.reshape(-1, ny, nx)
                @ structure.bx_sq
            ).reshape(-1, cells)
            if k:
                fields = (
                    w[:, None, :] * structure.u_hat.T[None, :, :]
                )  # (F, k, cells) modal influence, transform-ready layout
                influence = sfft.idctn(
                    fields.reshape(-1, ny, nx),
                    type=2,
                    axes=(1, 2),
                    norm="ortho",
                    workers=-1,
                ).reshape(hi - lo, k, cells)
                t = fields @ structure.u_hat  # UᵀM⁻¹U, (F, k, k)
                columns = [y_src[lo:hi]]
                if structure.tau > 0:
                    columns.insert(
                        0, np.full((hi - lo, 1), -structure.tau, complex)
                    )
                columns.append(
                    np.broadcast_to(
                        structure.ring_g, (hi - lo, len(structure.ring_g))
                    )
                )
                y_branch = np.concatenate(columns, axis=1)
                with np.errstate(divide="ignore", invalid="ignore"):
                    capacitance = t + (
                        (1.0 / y_branch)[:, :, None] * np.eye(k)[None]
                    )
                try:
                    with np.errstate(all="ignore"):
                        correction = np.linalg.inv(capacitance)
                except np.linalg.LinAlgError as exc:
                    raise SolverError(
                        "grid impedance source correction is singular: "
                        f"{exc}"
                    ) from exc
                diag = diag - np.einsum(
                    "faj,fab,fbj->fj",
                    influence,
                    correction,
                    influence,
                    optimize=True,
                )
            z[:, lo:hi] = diag.T
        return z

    def _ensure_reduced(self) -> _ReducedACStructure:
        if self._reduced is not None and self._reduced.rev == self._rev:
            return self._reduced
        cells = self.nx * self.ny
        a, b, r, l = self._edge_arrays()
        rows, cols, edge, sign = _admittance_entry_map(a, b)
        diag = np.arange(cells, dtype=np.int64)
        all_rows = np.concatenate([rows, diag])
        all_cols = np.concatenate([cols, diag])
        order, starts, csc_rows, csc_cols, indptr = shared_csc_pattern(
            all_rows, all_cols, cells
        )
        self._reduced = _ReducedACStructure(
            rev=self._rev,
            edge_r=r,
            edge_l=l,
            entry_rows=all_rows,
            entry_cols=all_cols,
            entry_edge=edge,
            entry_sign=sign,
            order=order,
            starts=starts,
            csc_rows=csc_rows,
            csc_cols=csc_cols,
            indptr=indptr,
        )
        return self._reduced

    def _reduced_csc_data(
        self, structure: _ReducedACStructure, omega: np.ndarray
    ) -> np.ndarray:
        """Reduced-system CSC values for a frequency chunk."""
        cells = self.nx * self.ny
        edge_y = 1.0 / (
            structure.edge_r[None, :]
            + 1j * omega[:, None] * structure.edge_l[None, :]
        )
        shunt = self._decap_admittance(omega)
        y_src = self._source_admittance(omega)
        attach = self._source_attach_rows()
        np.add.at(shunt, (slice(None), attach), y_src)
        vals = np.concatenate(
            [
                structure.entry_sign[None, :]
                * edge_y[:, structure.entry_edge],
                shunt,
            ],
            axis=1,
        )
        return np.add.reduceat(
            vals[:, structure.order], structure.starts, axis=1
        )

    def _impedance_direct(
        self, omega: np.ndarray, freqs: np.ndarray
    ) -> np.ndarray:
        """diag(A⁻¹) by explicit per-frequency inversion of the
        reduced system: batched dense LAPACK up to the dense cutoff,
        shared-pattern sparse LU above it.  General (arbitrary decap
        maps, inductive mesh metal) but O(n³) per frequency."""
        structure = self._ensure_reduced()
        cells = self.nx * self.ny
        count = omega.size
        z = np.empty((cells, count), dtype=complex)
        identity = np.eye(cells, dtype=complex)
        # Known-solution probe (see repro.pdn.mna.singularity_probe):
        # the computed inverse must recover w from A @ w, so an
        # exactly singular sweep point that LU slid through on a
        # rounded pivot fails loudly.
        probe = singularity_probe(cells)
        probe_error = np.empty(count)
        # Full-inverse workload: the dense/sparse crossover sits far
        # below the single-RHS DENSE_SWEEP_CUTOFF (see ac.py).
        use_dense = grid_direct_mode(cells) == "dense"
        chunk = max(1, _DENSE_BATCH_ENTRIES // (cells * cells))
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            data = self._reduced_csc_data(structure, omega[lo:hi])
            if use_dense:
                flat = structure.csc_rows * cells + structure.csc_cols
                dense = np.zeros(
                    (hi - lo, cells * cells), dtype=complex
                )
                dense[:, flat] = data
                dense = dense.reshape(hi - lo, cells, cells)
                try:
                    with np.errstate(all="ignore"):
                        inverse = np.linalg.solve(dense, identity)
                except np.linalg.LinAlgError as exc:
                    raise SolverError(
                        f"grid impedance solve failed: {exc}"
                    ) from exc
                z[:, lo:hi] = np.diagonal(
                    inverse, axis1=1, axis2=2
                ).T
                with np.errstate(all="ignore"):
                    recovered = inverse @ (dense @ probe)[:, :, None]
                    probe_error[lo:hi] = np.abs(
                        recovered[:, :, 0] - probe
                    ).max(axis=1, initial=0.0)
            else:
                for k in range(lo, hi):
                    matrix = sp.csc_matrix(
                        (data[k - lo], structure.csc_rows, structure.indptr),
                        shape=(cells, cells),
                    )
                    with np.errstate(all="ignore"), warnings.catch_warnings():
                        warnings.simplefilter(
                            "ignore", spla.MatrixRankWarning
                        )
                        try:
                            solved = spla.splu(matrix).solve(identity)
                        except RuntimeError as exc:
                            raise SolverError(
                                "grid impedance solve failed at "
                                f"{freqs[k]:.6g} Hz: {exc}"
                            ) from exc
                    z[:, k] = np.diagonal(solved)
                    with np.errstate(all="ignore"):
                        probe_error[k] = float(
                            np.abs(
                                solved @ (matrix @ probe) - probe
                            ).max(initial=0.0)
                        )
        bad = ~(np.isfinite(probe_error) & (probe_error <= SINGULARITY_PROBE_TOL))
        if bad.any():
            raise SolverError(
                "grid impedance is singular at "
                f"{freqs[np.nonzero(bad)[0][0]]:.6g} Hz "
                "(resonant singularity or floating mesh)"
            )
        return z

    # -- driven sweep -----------------------------------------------------------

    def compile_ac(self) -> CompiledACNetlist:
        """The full driven mesh as a compiled AC netlist.

        Stamps the mesh edges (with internal nodes where the metal is
        inductive), every decap chain, the ring bus, the sink map as
        AC load magnitudes, and each source as an ideal EMF behind its
        output resistance and bump/TSV inductance — array assembly
        straight into :meth:`CompiledACNetlist.from_arrays`, no
        per-element Python objects.
        """
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        if (
            self._compiled is not None
            and self._compiled[0] == self._rev
            and self._compiled[1] == self._sink_rev
        ):
            return self._compiled[2]

        nx, ny = self.nx, self.ny
        cells = nx * ny
        x_a, x_b, y_a, y_b = mesh_edge_rows(nx, ny)
        ring = self._ring_segments()
        c_map, esr_map, esl_map = self._decap_arrays()
        has_c = c_map > 0
        has_r = has_c & (esr_map > 0)
        has_l = has_c & (esl_map > 0)
        first = has_c & (has_r | has_l)
        second = has_r & has_l

        nodes: list = [("g", ix, iy) for iy in range(ny) for ix in range(nx)]
        res_a: list[np.ndarray] = []
        res_b: list[np.ndarray] = []
        res_v: list[np.ndarray] = []
        ind_a: list[np.ndarray] = []
        ind_b: list[np.ndarray] = []
        ind_v: list[np.ndarray] = []

        def mesh_edges(
            a: np.ndarray, b: np.ndarray, r: float, l: float, axis: str
        ) -> None:
            """One mesh axis: plain resistors, or R + L via internal
            nodes when the metal is inductive."""
            if not a.size:
                return
            if l > 0:
                mid = len(nodes) + np.arange(a.size, dtype=np.int64)
                nodes.extend(
                    (f"edge.{axis}", int(k)) for k in range(a.size)
                )
                res_a.append(a)
                res_b.append(mid)
                res_v.append(np.full(a.size, r))
                ind_a.append(mid)
                ind_b.append(b)
                ind_v.append(np.full(a.size, l))
            else:
                res_a.append(a)
                res_b.append(b)
                res_v.append(np.full(a.size, r))

        mesh_edges(
            x_a,
            x_b,
            self.edge_resistance_x_ohm if x_a.size else 0.0,
            self.edge_inductance_x_h,
            "x",
        )
        mesh_edges(
            y_a,
            y_b,
            self.edge_resistance_y_ohm if y_a.size else 0.0,
            self.edge_inductance_y_h,
            "y",
        )
        if ring:
            res_a.append(np.array([a for a, _ in ring], dtype=np.int64))
            res_b.append(np.array([b for _, b in ring], dtype=np.int64))
            res_v.append(np.full(len(ring), self._ring_bus_ohm))

        # Decap chains: node —C→ [first] —ESR→ [second] —ESL→ ground,
        # with stages collapsing away wherever ESR/ESL are zero.
        mesh_rows = np.arange(cells, dtype=np.int64)
        first_row = np.full(cells, GROUND_INDEX, dtype=np.int64)
        first_row[first] = len(nodes) + np.arange(int(first.sum()))
        nodes.extend(("decap", int(k), "a") for k in np.nonzero(first)[0])
        second_row = np.full(cells, GROUND_INDEX, dtype=np.int64)
        second_row[second] = len(nodes) + np.arange(int(second.sum()))
        nodes.extend(("decap", int(k), "b") for k in np.nonzero(second)[0])

        cap_a = mesh_rows[has_c]
        cap_b = first_row[has_c]  # GROUND_INDEX where the chain is bare C
        cap_v = c_map[has_c]
        if np.any(has_r):
            res_a.append(first_row[has_r])
            res_b.append(np.where(has_l, second_row, GROUND_INDEX)[has_r])
            res_v.append(esr_map[has_r])
        if np.any(has_l):
            esl_start = np.where(has_r, second_row, first_row)
            ind_a.append(esl_start[has_l])
            ind_b.append(np.full(int(has_l.sum()), GROUND_INDEX, np.int64))
            ind_v.append(esl_map[has_l])

        # Source branches: emf —rout→ [mid —L→] attach node.
        vs_plus = []
        vs_volt = []
        for name, ix, iy, voltage, r_out, l_src in self._sources:
            attach = iy * nx + ix
            emf = len(nodes)
            nodes.append(("src", name, "emf"))
            if l_src > 0:
                mid = len(nodes)
                nodes.append(("src", name, "mid"))
                res_a.append(np.array([emf], dtype=np.int64))
                res_b.append(np.array([mid], dtype=np.int64))
                res_v.append(np.array([r_out]))
                ind_a.append(np.array([mid], dtype=np.int64))
                ind_b.append(np.array([attach], dtype=np.int64))
                ind_v.append(np.array([l_src]))
            else:
                res_a.append(np.array([emf], dtype=np.int64))
                res_b.append(np.array([attach], dtype=np.int64))
                res_v.append(np.array([r_out]))
            vs_plus.append(emf)
            vs_volt.append(voltage)

        def cat(parts: list[np.ndarray], dtype) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        compiled = CompiledACNetlist.from_arrays(
            nodes=tuple(nodes),
            res_a=cat(res_a, np.int64),
            res_b=cat(res_b, np.int64),
            res_ohm=cat(res_v, float),
            ind_a=cat(ind_a, np.int64),
            ind_b=cat(ind_b, np.int64),
            ind_h=cat(ind_v, float),
            cap_a=cap_a,
            cap_b=cap_b,
            cap_f=cap_v,
            vs_plus=np.array(vs_plus, dtype=np.int64),
            vs_minus=np.full(len(vs_plus), GROUND_INDEX, dtype=np.int64),
            vs_volt=np.array(vs_volt),
            cs_from=mesh_rows,
            cs_to=np.full(cells, GROUND_INDEX, dtype=np.int64),
            cs_amp=np.ascontiguousarray(self._sink_map, dtype=float).ravel(),
        )
        self._compiled = (self._rev, self._sink_rev, compiled)
        return compiled

    def solve(self, frequencies_hz: np.ndarray) -> GridACSweepSolution:
        """Driven phasor sweep: sources at their EMFs, sinks as AC
        load magnitudes (phase 0).

        As the frequency approaches zero the decaps open and the
        series inductances short, so the voltage maps converge to the
        :class:`GridPDN` DC IR-drop solution of the same mesh — the
        regression the grid tests pin down.
        """
        freqs = check_frequencies(frequencies_hz)
        return GridACSweepSolution(
            sweep=self.compile_ac().solve(freqs), nx=self.nx, ny=self.ny
        )


def _admittance_entry_map(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """COO positions of two-terminal admittance stamps, value-free.

    The per-entry layout of
    :func:`repro.pdn.network.admittance_stamp_entries` with the values
    replaced by ``(element index, sign)`` pairs, so frequency-varying
    element admittances can be scattered onto a fixed pattern with one
    fancy-index per sweep chunk.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    index = np.arange(len(a))
    in_a = a != GROUND_INDEX
    in_b = b != GROUND_INDEX
    in_ab = in_a & in_b
    rows = np.concatenate([a[in_a], b[in_b], a[in_ab], b[in_ab]])
    cols = np.concatenate([a[in_a], b[in_b], b[in_ab], a[in_ab]])
    edge = np.concatenate([index[in_a], index[in_b], index[in_ab], index[in_ab]])
    sign = np.concatenate(
        [
            np.ones(int(in_a.sum())),
            np.ones(int(in_b.sum())),
            -np.ones(int(in_ab.sum())),
            -np.ones(int(in_ab.sum())),
        ]
    )
    return rows, cols, edge, sign
