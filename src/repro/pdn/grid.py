"""2-D lateral grid PDN model.

Discretizes one polarity of a metal layer (interposer RDL or the die
BEOL grid) over the die area into an ``nx x ny`` node mesh.  Adjacent
nodes are connected by resistors derived from the layer's sheet
resistance; POL sinks come from a :class:`~repro.pdn.powermap.PowerMap`
and regulator outputs attach as voltage sources with a series output
resistance at arbitrary grid positions.

Loss accounting convention: the grid models ONE polarity.  For a
symmetric power + ground pair the reported lateral loss is doubled via
``rail_pair_factor`` (default 2.0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, SolverError
from .mna import DCSolution, solve_dc
from .network import Netlist
from .powermap import PowerMap


@dataclass(frozen=True)
class GridSolution:
    """Solved grid operating point.

    Attributes:
        dc: raw MNA solution.
        source_currents_a: output current of each attached source, in
            attachment order.
        lateral_loss_w: I²R loss in the grid metal for the rail pair.
        source_loss_w: I²R loss inside the sources' output resistances
            (not part of interconnect loss; useful for diagnostics).
        voltage_map: node voltages as an (ny, nx) array.
    """

    dc: DCSolution
    source_currents_a: np.ndarray
    lateral_loss_w: float
    source_loss_w: float
    voltage_map: np.ndarray

    @property
    def worst_droop_v(self) -> float:
        """Difference between the best and worst node voltages."""
        return float(self.voltage_map.max() - self.voltage_map.min())

    def edge_current_stats(self) -> dict[str, float]:
        """Grid-edge current statistics (lateral EM screening).

        Returns max/mean absolute edge current in amperes.  Combined
        with the metal cross-section per strip, this is the lateral
        electromigration check that complements the per-element
        ratings on the vertical arrays.
        """
        currents = [
            abs(current)
            for name, current in self.dc.resistor_currents.items()
            if name.startswith("grid.")
        ]
        if not currents:
            return {"max_a": 0.0, "mean_a": 0.0}
        arr = np.asarray(currents)
        return {"max_a": float(arr.max()), "mean_a": float(arr.mean())}


class GridPDN:
    """A rectangular one-polarity PDN grid over the die area.

    Args:
        width_m: die width (x extent).
        height_m: die height (y extent).
        sheet_ohm_sq: sheet resistance of the modeled metal stack.
        nx, ny: node counts in x and y (>= 2 each).
        rail_pair_factor: multiply lateral loss by this factor to
            account for the return (ground) network; 2.0 assumes a
            symmetric ground grid.
    """

    def __init__(
        self,
        width_m: float,
        height_m: float,
        sheet_ohm_sq: float,
        nx: int = 24,
        ny: int = 24,
        rail_pair_factor: float = 2.0,
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise ConfigError("grid extents must be positive")
        if sheet_ohm_sq <= 0:
            raise ConfigError("sheet resistance must be positive")
        if nx < 2 or ny < 2:
            raise ConfigError("grid needs at least 2x2 nodes")
        if rail_pair_factor < 1.0:
            raise ConfigError("rail pair factor must be >= 1")
        self.width_m = width_m
        self.height_m = height_m
        self.sheet_ohm_sq = sheet_ohm_sq
        self.nx = nx
        self.ny = ny
        self.rail_pair_factor = rail_pair_factor
        self._sources: list[tuple[str, int, int, float, float]] = []
        self._sink_map: np.ndarray | None = None
        self._ring_bus_ohm: float | None = None

    # -- construction ---------------------------------------------------------

    def set_sinks(self, power_map: PowerMap, total_current_a: float) -> None:
        """Attach POL sinks from a power map (replaces existing sinks)."""
        self._sink_map = power_map.cell_currents(
            self.nx, self.ny, total_current_a
        )

    def set_sink_array(self, cell_currents: np.ndarray) -> None:
        """Attach POL sinks from an explicit (ny, nx) current array."""
        arr = np.asarray(cell_currents, dtype=float)
        if arr.shape != (self.ny, self.nx):
            raise ConfigError(
                f"sink array must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(arr < 0):
            raise ConfigError("sink currents must be non-negative")
        self._sink_map = arr

    def add_source(
        self,
        name: str,
        x_frac: float,
        y_frac: float,
        voltage_v: float,
        output_resistance_ohm: float,
    ) -> None:
        """Attach a regulator output at fractional die coordinates.

        Sources snap to the nearest grid node.  ``output_resistance_ohm``
        must be positive — it regularizes the solve and models the
        converter's finite output impedance.
        """
        if not 0.0 <= x_frac <= 1.0 or not 0.0 <= y_frac <= 1.0:
            raise ConfigError("source position must be inside the die")
        if output_resistance_ohm <= 0:
            raise ConfigError("source output resistance must be positive")
        ix = min(int(round(x_frac * (self.nx - 1))), self.nx - 1)
        iy = min(int(round(y_frac * (self.ny - 1))), self.ny - 1)
        self._sources.append(
            (name, ix, iy, voltage_v, output_resistance_ohm)
        )

    def clear_sources(self) -> None:
        """Remove all attached sources."""
        self._sources.clear()
        self._ring_bus_ohm = None

    def connect_sources_with_ring_bus(self, segment_resistance_ohm: float) -> None:
        """Join consecutive sources with a dedicated ring bus.

        Periphery VR rings share a contiguous low-impedance metal ring
        (the embedded passive/output ring of Fig. 5(a)), which
        equalizes their load sharing; under-die VRs have no such bus.
        Segments connect sources in attachment order (and close the
        loop), each with the given one-polarity resistance.
        """
        if segment_resistance_ohm <= 0:
            raise ConfigError("ring segment resistance must be positive")
        if len(self._sources) < 3:
            raise ConfigError("a ring bus needs at least three sources")
        self._ring_bus_ohm = segment_resistance_ohm

    @property
    def source_names(self) -> list[str]:
        """Names of attached sources in attachment order."""
        return [s[0] for s in self._sources]

    # -- edge resistances -------------------------------------------------------

    @property
    def edge_resistance_x_ohm(self) -> float:
        """Resistance of one x-direction edge (R_sq * dx / dy_strip)."""
        dx = self.width_m / (self.nx - 1)
        strip = self.height_m / self.ny
        return self.sheet_ohm_sq * dx / strip

    @property
    def edge_resistance_y_ohm(self) -> float:
        """Resistance of one y-direction edge."""
        dy = self.height_m / (self.ny - 1)
        strip = self.width_m / self.nx
        return self.sheet_ohm_sq * dy / strip

    # -- solving -----------------------------------------------------------------

    def build_netlist(self) -> Netlist:
        """Assemble the netlist for the current sinks and sources."""
        if self._sink_map is None:
            raise ConfigError("no sinks attached; call set_sinks first")
        if not self._sources:
            raise ConfigError("no sources attached; call add_source first")
        netlist = Netlist()
        rx = self.edge_resistance_x_ohm
        ry = self.edge_resistance_y_ohm

        def node(ix: int, iy: int) -> tuple[str, int, int]:
            return ("g", ix, iy)

        for iy in range(self.ny):
            for ix in range(self.nx):
                if ix + 1 < self.nx:
                    netlist.add_resistor(
                        f"grid.x[{ix},{iy}]", node(ix, iy), node(ix + 1, iy), rx
                    )
                if iy + 1 < self.ny:
                    netlist.add_resistor(
                        f"grid.y[{ix},{iy}]", node(ix, iy), node(ix, iy + 1), ry
                    )

        # Sinks: cell (i,j) current attached to its node.
        for iy in range(self.ny):
            for ix in range(self.nx):
                current = float(self._sink_map[iy, ix])
                if current > 0.0:
                    netlist.add_load(
                        f"sink[{ix},{iy}]", node(ix, iy), current
                    )

        for name, ix, iy, voltage, r_out in self._sources:
            netlist.add_source_with_impedance(
                f"src.{name}", node(ix, iy), voltage, r_out
            )

        if self._ring_bus_ohm is not None:
            count = len(self._sources)
            for k in range(count):
                _, ix_a, iy_a, _, _ = self._sources[k]
                _, ix_b, iy_b, _, _ = self._sources[(k + 1) % count]
                if (ix_a, iy_a) == (ix_b, iy_b):
                    continue
                netlist.add_resistor(
                    f"ring[{k}]",
                    node(ix_a, iy_a),
                    node(ix_b, iy_b),
                    self._ring_bus_ohm,
                )
        return netlist

    def solve(self, check: bool = True) -> GridSolution:
        """Solve the grid and return per-source currents and losses."""
        netlist = self.build_netlist()
        dc = solve_dc(netlist, check=check)

        currents = np.array(
            [
                dc.resistor_currents[f"src.{name}.rout"]
                for name in self.source_names
            ]
        )
        total_sink = float(self._sink_map.sum())
        if abs(currents.sum() - total_sink) > 1e-6 * max(total_sink, 1.0):
            raise SolverError(
                "source currents do not sum to the load current: "
                f"{currents.sum():.6f} vs {total_sink:.6f}"
            )

        lateral = (
            dc.loss_by_prefix("grid.") + dc.loss_by_prefix("ring[")
        ) * self.rail_pair_factor
        source_loss = sum(
            dc.resistor_losses[f"src.{name}.rout"] for name in self.source_names
        )
        voltage_map = np.empty((self.ny, self.nx))
        for iy in range(self.ny):
            for ix in range(self.nx):
                voltage_map[iy, ix] = dc.node_voltages[("g", ix, iy)]
        return GridSolution(
            dc=dc,
            source_currents_a=currents,
            lateral_loss_w=float(lateral),
            source_loss_w=float(source_loss),
            voltage_map=voltage_map,
        )
