"""Spatially-resolved decap allocation and VR-site placement.

:meth:`~repro.pdn.grid.GridACPDN.impedance_map` exposes per-node
Z(f) and ``violating_node_fraction``, but the sizing search
(:func:`~repro.pdn.impedance.size_grid_decap_for_target`) is spatially
uniform — every ``scale_decap`` doubling spends capacitance on nodes
that already meet target.  This module closes ROADMAP item 1: keep the
*total* capacitance fixed and move it toward the violating nodes.

Three cooperating mechanisms under one entry point,
:func:`optimize_decap_placement`:

* **Greedy worst-node allocation** — each iteration moves a fraction
  of the donatable density (nodes under target, above the floor) onto
  the violating nodes, weighted by how far each node is over target,
  with backtracking halving of the move size.  A step is accepted only
  if it lowers the violating-node fraction — or ties it while strictly
  lowering the global peak — so the recorded
  ``violating_fraction_history`` is monotonically non-increasing by
  construction.
* **Adjoint/gradient refinement** — the reduced system
  ``A(ω) = G + Σ αᵢ·y_u(ω)·eᵢeᵢᵀ + (sources)`` is complex-symmetric,
  so with ``x = A⁻¹e_k`` the exact sensitivity of node *k*'s impedance
  to *every* node's density is one batched solve:
  ``dZ_k/dαᵢ = −y_u(ω)·xᵢ²`` and ``d|Z_k|/dαᵢ = Re(Z̄_k/|Z_k| ·
  dZ_k/dαᵢ)``.  :meth:`~repro.pdn.grid.GridACPDN.impedance_columns`
  returns those columns; a projected-gradient step (Euclidean
  projection onto ``{α ≥ floor, Σα = budget}`` by bisection) then
  polishes the greedy allocation below the resolution of discrete
  density moves.
* **Multi-resolution placement** — the coarse-to-fine grid-mapping
  idiom from SNIPPETS.md §2: optimize on a coarse density grid (a
  block-owner restriction of the mesh, sources snapped to their
  nearest coarse node), prolong the coarse allocation back
  total-capacitance-preservingly, and polish on the fine mesh.  The
  coarse pass costs a fraction of a fine evaluation and lands the
  fine pass near the answer.

The optimizer never leaves the grid mutated: it snapshots the decap
state (:meth:`~repro.pdn.grid.GridACPDN.decap_snapshot`) and restores
it in a ``finally``; apply the result explicitly with
:meth:`PlacementResult.apply_to`.

:func:`select_vr_sites` is the companion placement axis: greedy
forward selection of VR sites from an attached candidate bank, each
round scoring every remaining candidate by open-circuiting the
others — batched Woodbury scenarios through
:meth:`~repro.pdn.grid.GridPDN.solve_disabled_many`, sharded across
workers by :mod:`repro.parallel`.

See ``docs/placement-optimizer.md`` for the full algorithm notes and
CLI usage (``repro place``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..errors import ConfigError
from ..parallel.executor import run_sweep_collect
from ..parallel.scenario import Scenario, SweepPlan
from .grid import GridACPDN, GridPDN

__all__ = [
    "PlacementResult",
    "VRSiteSelection",
    "optimize_decap_placement",
    "prolong_density",
    "restrict_density",
    "select_vr_sites",
    "size_decap_placement_for_target",
]

#: Default evaluation band: 10 kHz .. 1 GHz, 12 points/decade — wide
#: enough to span the board-like plateau and the mesh anti-resonance.
DEFAULT_PLACEMENT_POINTS = 61

#: Per-node density floor as a fraction of the *mean* budget density.
#: Strictly positive so the spectral impedance engine stays eligible
#: (every node keeps a sliver of decap) while leaving ~98% of the
#: budget free to move.
DEFAULT_FLOOR_FRACTION = 0.02

DEFAULT_MAX_ITERATIONS = 16
DEFAULT_GRADIENT_STEPS = 8

#: Initial greedy move size, as a fraction of the total donatable
#: headroom; halved on rejection.
INITIAL_MOVE_FRACTION = 0.5

#: Backtracking halvings per greedy/gradient iteration before giving up.
MAX_BACKTRACKS = 4

#: "auto" multi-resolution kicks in at meshes this large: below it the
#: fine evaluations are cheap enough that the coarse pass isn't worth
#: its own iterations.
MULTIRES_MIN_CELLS = 144

#: Violating-node peaks within this relative tolerance of the target
#: count as met — the same rounding slack GridImpedanceMap uses.
TARGET_RTOL = 1e-12


def _default_frequencies() -> np.ndarray:
    return np.logspace(4, 9, DEFAULT_PLACEMENT_POINTS)


def _unit_admittance(
    omega: float, c_u: float, esr_u: float, esl_u: float
) -> complex:
    """Admittance of one unit decap cell, y_u(ω).

    The density representation's per-node branch is exactly
    ``α·y_u(ω)`` (α cells in parallel), which is what makes the
    reduced system *linear* in α and the adjoint gradient exact.
    """
    return 1.0 / (esr_u + 1j * (omega * esl_u - 1.0 / (omega * c_u)))


# -- coarse-to-fine grid mapping (SNIPPETS.md §2 idiom) ------------------------


def _owner_map(
    fine_shape: tuple[int, int], coarse_shape: tuple[int, int]
) -> np.ndarray:
    """Flat coarse-cell owner of every fine node, shape ``(ny, nx)``.

    Each fine index is scaled into the coarse grid and truncated — the
    rad_gen mapped-grid idiom — so owners tile the mesh in contiguous
    blocks and every coarse cell owns at least one fine node whenever
    ``coarse <= fine`` per axis.
    """
    ny, nx = fine_shape
    cny, cnx = coarse_shape
    iy = np.minimum((np.arange(ny) * cny) // ny, cny - 1)
    ix = np.minimum((np.arange(nx) * cnx) // nx, cnx - 1)
    return iy[:, None] * cnx + ix[None, :]


def restrict_density(
    density: np.ndarray, coarse_shape: tuple[int, int]
) -> np.ndarray:
    """Sum a fine ``(ny, nx)`` density into coarse owner cells.

    Total-preserving: ``restrict(...)`` sums to the same unit count,
    so a capacitance budget survives the round trip exactly (up to
    float addition order).
    """
    density = np.asarray(density, dtype=float)
    owners = _owner_map(density.shape, coarse_shape)
    out = np.zeros(int(coarse_shape[0]) * int(coarse_shape[1]))
    np.add.at(out, owners.ravel(), density.ravel())
    return out.reshape(coarse_shape)


def prolong_density(
    density: np.ndarray, fine_shape: tuple[int, int]
) -> np.ndarray:
    """Spread a coarse density evenly over each cell's fine nodes.

    The adjoint of :func:`restrict_density` normalized by owner-block
    size: each fine node gets ``α_owner / |block|``, so
    ``restrict(prolong(a)) == a`` and totals are preserved.
    """
    density = np.asarray(density, dtype=float)
    owners = _owner_map(fine_shape, density.shape)
    counts = np.bincount(owners.ravel(), minlength=density.size)
    if np.any(counts == 0):
        raise ConfigError(
            "coarse shape must not exceed the fine mesh on either axis"
        )
    return (density.ravel() / counts)[owners]


def _default_coarse_shape(ny: int, nx: int) -> tuple[int, int]:
    """Half resolution per axis, floored at 2 (GridACPDN's minimum)."""
    return (max(2, (ny + 1) // 2), max(2, (nx + 1) // 2))


def _coarse_clone(
    pdn: GridACPDN, coarse_shape: tuple[int, int]
) -> GridACPDN:
    """The same die at coarse mesh resolution, sources snapped.

    Sheet resistance is resolution-independent (the mesh converges to
    the same continuum), and per-edge inductance is rescaled by the
    edge-length ratio so the total metal loop stays comparable.
    Sources keep their voltage/rout/L and snap to the nearest coarse
    node; the ring bus is copied as-is.
    """
    cny, cnx = coarse_shape
    scale_x = (
        (pdn.nx - 1) / (cnx - 1) if cnx > 1 and pdn.nx > 1 else 1.0
    )
    scale_y = (
        (pdn.ny - 1) / (cny - 1) if cny > 1 and pdn.ny > 1 else 1.0
    )
    clone = GridACPDN(
        pdn.width_m,
        pdn.height_m,
        pdn.sheet_ohm_sq,
        nx=cnx,
        ny=cny,
        edge_inductance_x_h=pdn.edge_inductance_x_h * scale_x,
        edge_inductance_y_h=pdn.edge_inductance_y_h * scale_y,
    )
    for name, ix, iy, voltage, rout, l_src in pdn._sources:
        cix = min(
            int(round(ix * (cnx - 1) / max(pdn.nx - 1, 1))), cnx - 1
        )
        ciy = min(
            int(round(iy * (cny - 1) / max(pdn.ny - 1, 1))), cny - 1
        )
        clone._add_source_at(name, cix, ciy, voltage, rout, l_src)
    if pdn._ring_bus_ohm is not None and len(clone._sources) >= 3:
        clone._ring_bus_ohm = pdn._ring_bus_ohm
        clone._rev += 1
    return clone


# -- budget projection ---------------------------------------------------------


def _project_budget(
    alpha: np.ndarray, floor: float, total: float
) -> np.ndarray:
    """Euclidean projection onto ``{α ≥ floor, Σα = total}``.

    Bisection on the shift λ of ``Σ max(α − λ, floor) = total`` (the
    shifted-simplex projection), then an exact budget touch-up spread
    over the unclamped entries.
    """
    alpha = np.asarray(alpha, dtype=float).ravel()
    n = alpha.size
    if floor * n > total * (1 + 1e-9):
        raise ConfigError(
            "density floor exceeds the capacitance budget; lower "
            "floor_fraction or raise the budget"
        )
    lo = float(alpha.min()) - total
    hi = float(alpha.max()) - floor
    if hi <= lo:
        return np.full(n, total / n)
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if np.maximum(alpha - mid, floor).sum() > total:
            lo = mid
        else:
            hi = mid
    out = np.maximum(alpha - hi, floor)
    free = out > floor
    slack = total - out.sum()
    if np.any(free):
        out[free] += slack / np.count_nonzero(free)
    else:
        out += slack / n
    return out


# -- evaluation ----------------------------------------------------------------


class _Evaluation(NamedTuple):
    peaks: np.ndarray  # worst |Z| per node, (cells,)
    peak_freq_index: np.ndarray  # argmax sweep index per node, (cells,)
    violating_fraction: float
    peak_ohm: float


def _evaluate(
    pdn: GridACPDN,
    alpha: np.ndarray,
    unit: tuple[float, float, float],
    freqs: np.ndarray,
    target_ohm: float,
    method: str,
) -> _Evaluation:
    c_u, esr_u, esl_u = unit
    pdn.set_decap_density(
        alpha.reshape(pdn.ny, pdn.nx), c_u, esr_u, esl_u
    )
    imap = pdn.impedance_map(freqs, method=method)
    mags = np.abs(imap.z_ohm)
    peaks = mags.max(axis=1)
    tol = target_ohm * (1 + TARGET_RTOL)
    return _Evaluation(
        peaks=peaks,
        peak_freq_index=np.argmax(mags, axis=1),
        violating_fraction=float(
            np.count_nonzero(peaks > tol) / peaks.size
        ),
        peak_ohm=float(peaks.max()),
    )


def _better(candidate: _Evaluation, incumbent: _Evaluation) -> bool:
    """Lexicographic acceptance: fewer violating nodes, else same
    violating count with a strictly lower global peak."""
    if candidate.violating_fraction < incumbent.violating_fraction:
        return True
    return (
        candidate.violating_fraction == incumbent.violating_fraction
        and candidate.peak_ohm < incumbent.peak_ohm * (1 - 1e-12)
    )


# -- greedy + gradient steps ---------------------------------------------------


def _greedy_proposal(
    alpha: np.ndarray,
    peaks: np.ndarray,
    target_ohm: float,
    floor: float,
    fraction: float,
) -> np.ndarray | None:
    """Move ``fraction`` of the donatable density onto violators.

    Donors are nodes under target with density above the floor,
    weighted by margin × headroom (deep-margin, decap-rich nodes give
    first); recipients are the violating nodes, weighted by how far
    over target they are.  Returns ``None`` when there is nothing to
    move (no violators, or no donor headroom).
    """
    tol = target_ohm * (1 + TARGET_RTOL)
    excess = np.maximum(peaks - tol, 0.0)
    if not excess.any():
        return None
    headroom = np.maximum(alpha - floor, 0.0)
    margin = np.maximum(tol - peaks, 0.0)
    donate = margin * headroom
    if donate.sum() <= 0.0:
        donate = np.where(excess > 0.0, 0.0, headroom)
        if donate.sum() <= 0.0:
            return None
    take = (fraction * headroom[donate > 0].sum()) * (
        donate / donate.sum()
    )
    np.minimum(take, headroom, out=take)
    moved = take.sum()
    if moved <= 0.0:
        return None
    give = moved * (excess / excess.sum())
    return alpha - take + give


def _peak_gradient(
    pdn: GridACPDN,
    alpha: np.ndarray,
    unit: tuple[float, float, float],
    evaluation: _Evaluation,
    freqs: np.ndarray,
    target_ohm: float,
    top_nodes: int = 8,
) -> np.ndarray:
    """d(weighted worst-node |Z|)/dα for every node at once.

    Adjoint trick: the reduced system is complex-symmetric, so the
    probe columns ``x = A(ω)⁻¹ e_k`` from
    :meth:`~repro.pdn.grid.GridACPDN.impedance_columns` give the exact
    all-node sensitivity ``d|Z_k|/dαᵢ = Re(Z̄_k/|Z_k| · (−y_u(ω)) ·
    xᵢ²)`` — one batched sparse solve per distinct peak frequency,
    independent of mesh size.  Violating nodes are weighted by their
    excess over target; with no violators the single worst node drives
    a pure peak-flattening direction.
    """
    c_u, esr_u, esl_u = unit
    tol = target_ohm * (1 + TARGET_RTOL)
    order = np.argsort(evaluation.peaks)[::-1]
    violating = order[evaluation.peaks[order] > tol]
    chosen = violating[:top_nodes] if violating.size else order[:1]
    if violating.size:
        weights = evaluation.peaks[chosen] - tol
        weights = weights / weights.sum()
    else:
        weights = np.ones(chosen.size)
    # The current attached density must match `alpha`: a rejected
    # backtracking candidate may have left the grid on another map.
    pdn.set_decap_density(
        alpha.reshape(pdn.ny, pdn.nx), c_u, esr_u, esl_u
    )
    gradient = np.zeros(alpha.size)
    freq_of = evaluation.peak_freq_index[chosen]
    for freq_index in np.unique(freq_of):
        group = chosen[freq_of == freq_index]
        w_group = weights[freq_of == freq_index]
        frequency = float(freqs[freq_index])
        y_u = _unit_admittance(
            2.0 * math.pi * frequency, c_u, esr_u, esl_u
        )
        columns = pdn.impedance_columns(frequency, group)
        for j, node in enumerate(group):
            x = columns[:, j]
            z = x[node]
            dz = -y_u * x * x
            gradient += w_group[j] * np.real(
                np.conj(z) / abs(z) * dz
            )
    return gradient


# -- results -------------------------------------------------------------------


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of one :func:`optimize_decap_placement` run.

    ``density_before``/``peak_map_before`` describe the allocation that
    was attached when the optimizer was called (at *its own* total
    capacitance); the ``after`` fields describe the optimized
    allocation at exactly ``capacitance_budget_f``.  The grid itself is
    left untouched — call :meth:`apply_to` to install the optimized
    map.
    """

    target_ohm: float
    frequencies_hz: np.ndarray
    capacitance_budget_f: float
    cap_per_unit_f: float
    esr_per_unit_ohm: float
    esl_per_unit_h: float
    density_before: np.ndarray
    density_after: np.ndarray
    peak_map_before: np.ndarray
    peak_map_after: np.ndarray
    violating_fraction_history: tuple[float, ...]
    iterations: int
    gradient_steps_taken: int
    coarse_shape: tuple[int, int] | None

    @property
    def peak_impedance_before_ohm(self) -> float:
        return float(self.peak_map_before.max())

    @property
    def peak_impedance_after_ohm(self) -> float:
        return float(self.peak_map_after.max())

    def _fraction(self, peak_map: np.ndarray) -> float:
        tol = self.target_ohm * (1 + TARGET_RTOL)
        return float(
            np.count_nonzero(peak_map > tol) / peak_map.size
        )

    @property
    def violating_fraction_before(self) -> float:
        """Violating-node fraction of the attached allocation."""
        return self._fraction(self.peak_map_before)

    @property
    def violating_fraction_after(self) -> float:
        """Violating-node fraction of the optimized allocation."""
        return self._fraction(self.peak_map_after)

    @property
    def total_capacitance_before_f(self) -> float:
        return float(self.density_before.sum() * self.cap_per_unit_f)

    @property
    def total_capacitance_after_f(self) -> float:
        """Capacitance budget actually used (= the budget, by
        construction of the projection)."""
        return float(self.density_after.sum() * self.cap_per_unit_f)

    @property
    def meets_target(self) -> bool:
        return self.peak_impedance_after_ohm <= self.target_ohm * (
            1 + TARGET_RTOL
        )

    def apply_to(self, pdn: GridACPDN) -> None:
        """Install the optimized density map on a grid."""
        pdn.set_decap_density(
            self.density_after,
            self.cap_per_unit_f,
            self.esr_per_unit_ohm,
            self.esl_per_unit_h,
        )


# -- the optimizer -------------------------------------------------------------


def optimize_decap_placement(
    pdn: GridACPDN,
    target_ohm: float,
    frequencies_hz: np.ndarray | None = None,
    budget_f: float | None = None,
    floor_fraction: float = DEFAULT_FLOOR_FRACTION,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    gradient_steps: int = DEFAULT_GRADIENT_STEPS,
    multi_resolution: "bool | str" = "auto",
    coarse_shape: tuple[int, int] | None = None,
    method: str = "auto",
) -> PlacementResult:
    """Redistribute the decap budget toward target-violating nodes.

    Keeps total capacitance fixed at ``budget_f`` (default: the
    attached total) and searches density space with greedy worst-node
    moves, adjoint projected-gradient refinement, and an optional
    coarse-to-fine warm start — see the module docstring for the
    algorithm.  The violating-node fraction recorded in
    ``violating_fraction_history`` is monotonically non-increasing,
    and the returned allocation is never worse (violating fraction,
    then peak |Z|) than the uniform allocation at the same budget:
    uniform is always evaluated as a candidate starting point and
    steps are accept-only-on-improvement.

    Per-iteration cost is O(one batched solve): a greedy iteration is
    one :meth:`~repro.pdn.grid.GridACPDN.impedance_map` sweep per
    backtracking trial, and a gradient iteration adds one multi-RHS
    :meth:`~repro.pdn.grid.GridACPDN.impedance_columns` solve per
    distinct peak frequency.

    Args:
        pdn: grid with sources and a *density* decap attachment
            (:meth:`~repro.pdn.grid.GridACPDN.set_decap_density`); the
            "map" representation has no per-node unit-cell count to
            redistribute and is rejected.
        target_ohm: per-node target impedance.
        frequencies_hz: evaluation band (default 10 kHz–1 GHz, 61 pts).
        budget_f: total capacitance to allocate (default: keep the
            attached total).
        floor_fraction: per-node density floor as a fraction of the
            mean budget density — strictly positive keeps the spectral
            engine eligible.
        max_iterations: greedy move budget.
        gradient_steps: projected-gradient refinement budget.
        multi_resolution: ``"auto"`` (coarse warm start on meshes of
            ≥ :data:`MULTIRES_MIN_CELLS` cells), ``True``, or
            ``False``.
        coarse_shape: explicit ``(ny, nx)`` coarse grid (default: half
            resolution per axis).
        method: impedance-map engine forwarded to evaluation.

    Returns:
        A :class:`PlacementResult`; the grid's decap state is restored
        before returning (including on error).
    """
    if target_ohm <= 0:
        raise ConfigError("target impedance must be positive")
    if pdn._decap is None or pdn._decap[0] != "density":
        raise ConfigError(
            "placement optimization needs a decap density attachment; "
            "call set_decap_density first"
        )
    if not pdn._sources:
        raise ConfigError("no sources attached; call add_source first")
    if max_iterations < 0 or gradient_steps < 0:
        raise ConfigError("iteration budgets must be non-negative")
    if not 0.0 < floor_fraction < 1.0:
        raise ConfigError("floor_fraction must be in (0, 1)")
    if multi_resolution not in (True, False, "auto"):
        raise ConfigError(
            "multi_resolution must be True, False, or 'auto'"
        )
    freqs = (
        _default_frequencies()
        if frequencies_hz is None
        else np.asarray(frequencies_hz, dtype=float)
    )
    _, density_before, c_u, esr_u, esl_u = pdn._decap
    density_before = density_before.copy()
    unit = (c_u, esr_u, esl_u)
    cells = pdn.nx * pdn.ny
    if budget_f is None:
        budget_f = float(density_before.sum() * c_u)
    if budget_f <= 0:
        raise ConfigError("capacitance budget must be positive")
    total_units = budget_f / c_u
    floor = floor_fraction * total_units / cells

    snapshot = pdn.decap_snapshot()
    try:
        peak_map_before = (
            pdn.impedance_map(freqs, method=method).peak_map()
        )

        # Candidate warm starts, best-of (violating fraction, peak):
        # the attached allocation rescaled to the budget, the uniform
        # allocation (which pins the never-worse-than-uniform
        # guarantee), and — on large meshes — a coarse-grid optimum
        # prolonged onto the fine mesh.
        starts = [
            _project_budget(
                density_before.ravel()
                * (total_units / density_before.sum()),
                floor,
                total_units,
            ),
            np.full(cells, total_units / cells),
        ]
        used_coarse: tuple[int, int] | None = None
        use_multires = multi_resolution is True or (
            multi_resolution == "auto" and cells >= MULTIRES_MIN_CELLS
        )
        if use_multires:
            cshape = (
                _default_coarse_shape(pdn.ny, pdn.nx)
                if coarse_shape is None
                else (int(coarse_shape[0]), int(coarse_shape[1]))
            )
            if not (
                2 <= cshape[0] <= pdn.ny and 2 <= cshape[1] <= pdn.nx
            ):
                raise ConfigError(
                    "coarse_shape must be at least (2, 2) and no "
                    "larger than the mesh"
                )
            if cshape[0] * cshape[1] < cells:
                coarse = _coarse_clone(pdn, cshape)
                coarse.set_decap_density(
                    restrict_density(density_before, cshape),
                    c_u,
                    esr_u,
                    esl_u,
                )
                coarse_result = optimize_decap_placement(
                    coarse,
                    target_ohm,
                    frequencies_hz=freqs,
                    budget_f=budget_f,
                    floor_fraction=floor_fraction,
                    max_iterations=max_iterations,
                    gradient_steps=gradient_steps,
                    multi_resolution=False,
                    method=method,
                )
                starts.append(
                    _project_budget(
                        prolong_density(
                            coarse_result.density_after,
                            (pdn.ny, pdn.nx),
                        ).ravel(),
                        floor,
                        total_units,
                    )
                )
                used_coarse = cshape

        alpha: np.ndarray | None = None
        best: _Evaluation | None = None
        for start in starts:
            trial = _evaluate(pdn, start, unit, freqs, target_ohm, method)
            if best is None or _better(trial, best):
                alpha, best = start, trial
        assert alpha is not None and best is not None
        history = [best.violating_fraction]

        iterations = 0
        for _ in range(max_iterations):
            if best.violating_fraction == 0.0:
                break
            fraction = INITIAL_MOVE_FRACTION
            accepted = False
            for _ in range(MAX_BACKTRACKS):
                proposal = _greedy_proposal(
                    alpha, best.peaks, target_ohm, floor, fraction
                )
                if proposal is None:
                    break
                trial = _evaluate(
                    pdn, proposal, unit, freqs, target_ohm, method
                )
                if _better(trial, best):
                    alpha, best = proposal, trial
                    history.append(best.violating_fraction)
                    iterations += 1
                    accepted = True
                    break
                fraction *= 0.5
            if not accepted:
                break

        gradient_taken = 0
        for _ in range(gradient_steps):
            if best.peak_ohm <= target_ohm * (1 + TARGET_RTOL):
                break
            gradient = _peak_gradient(
                pdn, alpha, unit, best, freqs, target_ohm
            )
            largest = float(np.abs(gradient).max())
            if largest <= 0.0:
                break
            # Step sized so the steepest node moves ~¼ of the mean
            # density, then backtracking-halved.
            eta = 0.25 * (total_units / cells) / largest
            accepted = False
            for _ in range(MAX_BACKTRACKS):
                proposal = _project_budget(
                    alpha - eta * gradient, floor, total_units
                )
                trial = _evaluate(
                    pdn, proposal, unit, freqs, target_ohm, method
                )
                if _better(trial, best):
                    alpha, best = proposal, trial
                    history.append(best.violating_fraction)
                    gradient_taken += 1
                    accepted = True
                    break
                eta *= 0.5
            if not accepted:
                break

        return PlacementResult(
            target_ohm=float(target_ohm),
            frequencies_hz=freqs,
            capacitance_budget_f=float(budget_f),
            cap_per_unit_f=c_u,
            esr_per_unit_ohm=esr_u,
            esl_per_unit_h=esl_u,
            density_before=density_before,
            density_after=alpha.reshape(pdn.ny, pdn.nx).copy(),
            peak_map_before=peak_map_before,
            peak_map_after=best.peaks.reshape(pdn.ny, pdn.nx).copy(),
            violating_fraction_history=tuple(history),
            iterations=iterations,
            gradient_steps_taken=gradient_taken,
            coarse_shape=used_coarse,
        )
    finally:
        pdn.restore_decap(snapshot)


def size_decap_placement_for_target(
    pdn: GridACPDN,
    target_ohm: float,
    frequencies_hz: np.ndarray | None = None,
    max_budget_factor: float = 1024.0,
    growth: float = 2.0,
    refine_steps: int = 3,
    **optimizer_kwargs,
) -> PlacementResult:
    """Smallest optimized-placement budget that meets the target.

    The spatial counterpart of
    :func:`~repro.pdn.impedance.size_grid_decap_for_target`: instead of
    uniformly doubling the attached allocation, each trial budget is
    *placed* by :func:`optimize_decap_placement` before the verdict.
    Grows the budget geometrically from the attached total until the
    optimized placement passes, then trims with a few geometric
    bisection steps between the last failing and first passing budget.

    Returns the passing :class:`PlacementResult` with the smallest
    budget found (or the last failing one, ``meets_target`` False, if
    ``max_budget_factor`` is exhausted).
    """
    if max_budget_factor < 1.0:
        raise ConfigError("max budget factor must be >= 1")
    if growth <= 1.0:
        raise ConfigError("budget growth factor must be > 1")
    if refine_steps < 0:
        raise ConfigError("refine_steps must be non-negative")
    base = pdn.total_decap_farad
    if base <= 0:
        raise ConfigError(
            "grid has no decaps attached; set a decap map first"
        )
    factor = 1.0
    fail_factor = 0.0
    while True:
        result = optimize_decap_placement(
            pdn,
            target_ohm,
            frequencies_hz=frequencies_hz,
            budget_f=base * factor,
            **optimizer_kwargs,
        )
        if result.meets_target:
            break
        if factor * growth > max_budget_factor * (1 + 1e-9):
            return result
        fail_factor = factor
        factor *= growth
    best = result
    hi = factor
    lo = fail_factor
    for _ in range(refine_steps):
        if lo <= 0.0:
            break
        mid = math.sqrt(lo * hi)
        trial = optimize_decap_placement(
            pdn,
            target_ohm,
            frequencies_hz=frequencies_hz,
            budget_f=base * mid,
            **optimizer_kwargs,
        )
        if trial.meets_target:
            best, hi = trial, mid
        else:
            lo = mid
    return best


# -- VR-site selection ---------------------------------------------------------


@dataclass(frozen=True)
class VRSiteSelection:
    """Outcome of :func:`select_vr_sites`.

    Attributes:
        chosen_indices: selected source indices (attachment order),
            in pick order.
        chosen_names: the matching source names.
        candidate_names: every candidate, in attachment order.
        objective: the scored objective (``"min-voltage"``).
        score_history: the best worst-node voltage after each pick —
            non-decreasing, since adding a live VR only helps.
        min_voltage_v: worst-node voltage of the final selection.
    """

    chosen_indices: tuple[int, ...]
    chosen_names: tuple[str, ...]
    candidate_names: tuple[str, ...]
    objective: str
    score_history: tuple[float, ...]

    @property
    def min_voltage_v(self) -> float:
        return self.score_history[-1]


def _vr_payload(grid: GridPDN) -> tuple:
    """Everything a worker needs to rebuild the candidate-bank grid."""
    if grid._sink_map is None:
        raise ConfigError(
            "VR-site selection needs a sink map; call set_sinks first"
        )
    if not grid._sources:
        raise ConfigError(
            "no candidate sources attached; call add_source first"
        )
    return (
        grid.width_m,
        grid.height_m,
        grid.sheet_ohm_sq,
        grid.nx,
        grid.ny,
        np.asarray(grid._sink_map, dtype=float),
        tuple(grid._sources),
        grid._ring_bus_ohm,
        None if grid._edge_scale_x is None else grid._edge_scale_x.copy(),
        None if grid._edge_scale_y is None else grid._edge_scale_y.copy(),
    )


def _vr_grid_from_payload(payload: tuple) -> GridPDN:
    (
        width,
        height,
        sheet,
        nx,
        ny,
        sinks,
        sources,
        ring_ohm,
        scale_x,
        scale_y,
    ) = payload
    grid = GridPDN(width, height, sheet, nx=nx, ny=ny)
    grid.set_sink_array(sinks)
    if scale_x is not None or scale_y is not None:
        grid.set_edge_resistance_scale(scale_x, scale_y)
    for name, ix, iy, voltage, rout in sources:
        grid.add_source(
            name,
            ix / max(nx - 1, 1),
            iy / max(ny - 1, 1),
            voltage,
            rout,
        )
    if ring_ohm is not None:
        grid.connect_sources_with_ring_bus(ring_ohm)
    return grid


def _vr_site_chunk(payload: tuple, scenarios: tuple) -> list[float]:
    """Chunk runner: worst-node voltage with each scenario's sources
    open-circuited, batched through ``solve_disabled_many``."""
    grid = _vr_grid_from_payload(payload)
    solutions = grid.solve_disabled_many(
        [scenario.params for scenario in scenarios]
    )
    return [
        float(solution.voltage_map.min()) for solution in solutions
    ]


def select_vr_sites(
    grid: GridPDN,
    count: int,
    jobs: "int | str | None" = 1,
    chunk_size: int | None = None,
) -> VRSiteSelection:
    """Greedy forward selection of ``count`` VR sites from a bank.

    Attach every *candidate* site as a source (plus ring bus / edge
    scales as usual); each round scores every remaining candidate by
    open-circuiting all non-selected sources except it — a batch of
    Woodbury scenarios against one shared factorization
    (:meth:`~repro.pdn.grid.GridPDN.solve_disabled_many`) — and keeps
    the candidate that maximizes the worst-node voltage.  Candidate
    batches are sharded through :mod:`repro.parallel`, so ``jobs``
    parallelizes each round across workers; ties break toward the
    earlier-attached candidate, keeping the selection deterministic
    and jobs-count independent.

    The grid itself is never mutated: workers rebuild it from a
    picklable payload.
    """
    n = len(grid._sources)
    if count < 1 or count > n:
        raise ConfigError(
            f"site count must be in [1, {n}] for {n} candidates"
        )
    payload = _vr_payload(grid)
    chosen: list[int] = []
    history: list[float] = []
    for _ in range(count):
        remaining = [c for c in range(n) if c not in chosen]
        scenarios = tuple(
            Scenario(
                key=c,
                params=tuple(
                    i
                    for i in range(n)
                    if i != c and i not in chosen
                ),
            )
            for c in remaining
        )
        plan = SweepPlan(
            scenarios=scenarios,
            runner=_vr_site_chunk,
            payload=payload,
            chunk_size=chunk_size,
            label="vr-site selection",
        )
        scores = run_sweep_collect(plan, jobs=jobs, chunk_size=chunk_size)
        best_index, best_score = max(
            zip(remaining, scores), key=lambda pair: (pair[1], -pair[0])
        )
        chosen.append(best_index)
        history.append(float(best_score))
    return VRSiteSelection(
        chosen_indices=tuple(chosen),
        chosen_names=tuple(grid._sources[i][0] for i in chosen),
        candidate_names=tuple(s[0] for s in grid._sources),
        objective="min-voltage",
        score_history=tuple(history),
    )
