"""Preconditioned conjugate gradients for the reduced PDN systems.

The reduced (node-only) mesh operator — lateral conductances plus the
diagonal source-branch conductances — is symmetric positive definite,
so CG applies directly.  The intended preconditioner is the *exact*
fast-Poisson solve of the uniform-mean version of the same system
(:mod:`repro.pdn.fast_poisson`), which leaves only the per-edge metal
variation for CG to iterate away: spectra that uniform-mesh DCT
diagonalization cannot capture converge in a few tens of iterations
regardless of mesh size.

Kernels route their vector algebra through an array namespace (``xp``)
so GPU backends (:mod:`repro.pdn.backend`) drop in unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

#: Default relative residual tolerance; tight enough that structured
#: solves hold 1e-8 parity against the sparse-LU oracle with margin.
DEFAULT_TOL = 1e-12

#: Default iteration cap.  The fast-Poisson preconditioner keeps real
#: workloads far below this; hitting it signals a mesh the structured
#: path should hand back to the factorized engine.
DEFAULT_MAX_ITER = 400


@dataclass(frozen=True)
class PCGResult:
    """Outcome of one (possibly multi-column) PCG solve.

    Attributes:
        x: solution columns, same shape as the right-hand side.
        converged: True when every column met the tolerance.
        iterations: iterations used by the worst column.
        residual_norm: worst final relative residual.
    """

    x: Any
    converged: bool
    iterations: int
    residual_norm: float


def pcg_solve(
    matvec: Callable[[Any], Any],
    rhs: Any,
    preconditioner: Callable[[Any], Any] | None = None,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
    xp: Any = np,
) -> PCGResult:
    """Solve ``A x = b`` (SPD ``A``) by preconditioned CG.

    Args:
        matvec: ``v -> A @ v``; must accept a 1-D column.
        rhs: right-hand side, shape ``(n,)`` or ``(n, k)`` — columns
            are solved independently.
        preconditioner: ``r -> M⁻¹ r`` (approximate solve); identity
            when omitted.
        tol: relative residual target per column (``|r| <= tol |b|``).
        max_iter: iteration cap per column.
        xp: array namespace the vectors live in.

    Returns:
        :class:`PCGResult`; ``converged`` is False (never an
        exception) when a column stalls, so callers choose their own
        fallback.
    """
    b = xp.asarray(rhs)
    single = b.ndim == 1
    columns = b.reshape(-1, 1) if single else b
    x = xp.zeros_like(columns)
    worst_iterations = 0
    worst_residual = 0.0
    all_converged = True

    for j in range(columns.shape[1]):
        bj = columns[:, j]
        b_norm = float(xp.linalg.norm(bj))
        if b_norm == 0.0:
            continue
        xj = xp.zeros_like(bj)
        r = bj - matvec(xj)
        z = preconditioner(r) if preconditioner is not None else r
        p = z.copy()
        rz = float(xp.real(xp.vdot(r, z)))
        iterations = 0
        residual = float(xp.linalg.norm(r)) / b_norm
        while residual > tol and iterations < max_iter:
            ap = matvec(p)
            pap = float(xp.real(xp.vdot(p, ap)))
            if pap <= 0.0 or not np.isfinite(pap):
                # Not SPD along this direction — bail out; the caller
                # falls back to the factorized engine.
                break
            alpha = rz / pap
            xj = xj + alpha * p
            r = r - alpha * ap
            residual = float(xp.linalg.norm(r)) / b_norm
            iterations += 1
            if residual <= tol:
                break
            z = preconditioner(r) if preconditioner is not None else r
            rz_next = float(xp.real(xp.vdot(r, z)))
            beta = rz_next / rz
            rz = rz_next
            p = z + beta * p
        x[:, j] = xj
        worst_iterations = max(worst_iterations, iterations)
        worst_residual = max(worst_residual, residual)
        if residual > tol or not np.isfinite(residual):
            all_converged = False

    return PCGResult(
        x=x[:, 0] if single else x,
        converged=all_converged,
        iterations=worst_iterations,
        residual_norm=worst_residual,
    )
