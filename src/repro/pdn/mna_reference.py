"""Reference (scalar) MNA assembly — the parity oracle.

This is the original per-element, dict-accumulating implementation of
the DC solver, retained verbatim in spirit so the vectorized fast path
in :mod:`repro.pdn.mna` can be property-tested against an independent
assembly on randomized netlists.  It is intentionally simple and slow;
production code must use :func:`repro.pdn.mna.solve_dc` or
:class:`repro.pdn.mna.FactorizedPDN`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from .network import Netlist, NodeId


@dataclass(frozen=True)
class ReferenceSolution:
    """Dict-keyed result of the reference solve."""

    node_voltages: dict[NodeId, float]
    resistor_currents: dict[str, float]
    resistor_losses: dict[str, float]
    source_currents: dict[str, float]

    @property
    def total_resistive_loss_w(self) -> float:
        """Total I²R dissipation across all resistors."""
        return float(sum(self.resistor_losses.values()))


def solve_dc_reference(netlist: Netlist) -> ReferenceSolution:
    """Solve the DC operating point with per-element Python stamping.

    Raises:
        SolverError: singular/disconnected system or non-finite result.
    """
    netlist.validate()
    nodes = netlist.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    m = len(netlist.voltage_sources)
    size = n + m

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(size)

    def stamp(i: int, j: int, value: float) -> None:
        rows.append(i)
        cols.append(j)
        vals.append(value)

    for r in netlist.resistors:
        g = 1.0 / r.resistance_ohm
        a = index.get(r.node_a)
        b = index.get(r.node_b)
        if r.node_a != netlist.GROUND:
            stamp(a, a, g)
        if r.node_b != netlist.GROUND:
            stamp(b, b, g)
        if r.node_a != netlist.GROUND and r.node_b != netlist.GROUND:
            stamp(a, b, -g)
            stamp(b, a, -g)

    for s in netlist.current_sources:
        # Current flows out of node_from, into node_to.
        if s.node_from != netlist.GROUND:
            rhs[index[s.node_from]] -= s.current_a
        if s.node_to != netlist.GROUND:
            rhs[index[s.node_to]] += s.current_a

    for k, v in enumerate(netlist.voltage_sources):
        row = n + k
        if v.node_plus != netlist.GROUND:
            stamp(index[v.node_plus], row, 1.0)
            stamp(row, index[v.node_plus], 1.0)
        if v.node_minus != netlist.GROUND:
            stamp(index[v.node_minus], row, -1.0)
            stamp(row, index[v.node_minus], -1.0)
        rhs[row] = v.voltage_v

    matrix = sp.coo_matrix(
        (vals, (rows, cols)), shape=(size, size)
    ).tocsc()

    with np.errstate(all="ignore"), warnings.catch_warnings():
        # Singular systems surface as a warning plus NaNs; convert
        # them to SolverError below, so silence the warning itself.
        warnings.simplefilter("ignore", spla.MatrixRankWarning)
        try:
            solution = spla.spsolve(matrix, rhs)
        except RuntimeError as exc:  # SuperLU signals singularity
            raise SolverError(f"reference MNA solve failed: {exc}") from exc
    if not np.all(np.isfinite(solution)):
        raise SolverError(
            "reference MNA solution contains non-finite values; the "
            "network is likely singular"
        )

    voltages = {node: float(solution[index[node]]) for node in nodes}
    branch_currents = {
        v.name: float(-solution[n + k])
        for k, v in enumerate(netlist.voltage_sources)
    }

    def node_voltage(node: NodeId) -> float:
        return 0.0 if node == netlist.GROUND else voltages[node]

    resistor_currents: dict[str, float] = {}
    resistor_losses: dict[str, float] = {}
    for r in netlist.resistors:
        current = (
            node_voltage(r.node_a) - node_voltage(r.node_b)
        ) / r.resistance_ohm
        resistor_currents[r.name] = current
        resistor_losses[r.name] = current**2 * r.resistance_ohm

    return ReferenceSolution(
        node_voltages=voltages,
        resistor_currents=resistor_currents,
        resistor_losses=resistor_losses,
        source_currents=branch_currents,
    )
