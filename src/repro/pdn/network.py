"""Resistive netlist construction.

A :class:`Netlist` is a flat list of two-terminal elements between
named nodes.  It deliberately supports only what DC PDN analysis
needs — resistors, ideal current sources (loads), and ideal voltage
sources (regulator outputs, optionally with series resistance) — and
is consumed by :mod:`repro.pdn.mna`.

Node names are arbitrary hashables; ``Netlist.GROUND`` ("0") is the
reference node.

:meth:`Netlist.compile` produces a :class:`CompiledNetlist`: the same
circuit with nodes mapped to integer rows once and element data held
as numpy arrays, so the solver stamps and post-processes without any
per-element Python loop.  Builders with regular structure (the grid
PDN mesh) can also construct a :class:`CompiledNetlist` directly from
arrays and skip the element-object representation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from ..errors import ConfigError

NodeId = Hashable

#: Row index used for the ground/reference node in compiled arrays.
GROUND_INDEX = -1


def admittance_stamp_entries(
    node_a: np.ndarray, node_b: np.ndarray, values: np.ndarray, xp=np
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO entries for two-terminal admittance stamps (vectorized).

    Each element with endpoints ``(a, b)`` and admittance ``y``
    contributes ``+y`` on the two diagonal positions and ``-y`` on the
    two off-diagonal positions; entries touching ground
    (:data:`GROUND_INDEX`) are dropped.  Returns ``(rows, cols, vals)``
    with duplicates *not* summed — COO-to-CSC conversion (or
    ``np.add.reduceat`` over a sorted pattern) handles accumulation.

    Shared by the DC MNA stamp (:meth:`CompiledNetlist.mna_coo`) and
    the AC stamp structure (:class:`repro.pdn.ac.CompiledACNetlist`),
    so both solvers agree on the stamp convention by construction.
    ``xp`` selects the array namespace the stamps are built in (see
    :mod:`repro.pdn.backend`); the default is host numpy.
    """
    a = xp.asarray(node_a)
    b = xp.asarray(node_b)
    vals = xp.asarray(values)
    in_a = a != GROUND_INDEX
    in_b = b != GROUND_INDEX
    in_ab = in_a & in_b
    rows = xp.concatenate([a[in_a], b[in_b], a[in_ab], b[in_ab]])
    cols = xp.concatenate([a[in_a], b[in_b], b[in_ab], a[in_ab]])
    entry_vals = xp.concatenate(
        [vals[in_a], vals[in_b], -vals[in_ab], -vals[in_ab]]
    )
    return rows, cols, entry_vals


@dataclass(frozen=True)
class Resistor:
    """A resistor between two nodes.

    ``name`` identifies the element in solutions (per-element currents
    and losses are reported by name).
    """

    name: str
    node_a: NodeId
    node_b: NodeId
    resistance_ohm: float

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ConfigError(
                f"resistor {self.name}: resistance must be positive "
                f"(got {self.resistance_ohm})"
            )
        if self.node_a == self.node_b:
            raise ConfigError(f"resistor {self.name}: shorted terminals")


@dataclass(frozen=True)
class CurrentSource:
    """An ideal DC current source driving ``current_a`` from
    ``node_from`` into ``node_to`` (a POL load sinks from the power
    node into ground: ``node_from=power_node, node_to=GROUND``)."""

    name: str
    node_from: NodeId
    node_to: NodeId
    current_a: float

    def __post_init__(self) -> None:
        if self.current_a < 0:
            raise ConfigError(
                f"current source {self.name}: negative current; swap nodes"
            )
        if self.node_from == self.node_to:
            raise ConfigError(f"current source {self.name}: shorted terminals")


@dataclass(frozen=True)
class VoltageSource:
    """An ideal DC voltage source holding ``node_plus`` at
    ``voltage_v`` above ``node_minus``."""

    name: str
    node_plus: NodeId
    node_minus: NodeId
    voltage_v: float

    def __post_init__(self) -> None:
        if self.node_plus == self.node_minus:
            raise ConfigError(f"voltage source {self.name}: shorted terminals")


@dataclass
class Netlist:
    """A mutable collection of circuit elements.

    Builder-style ``add_*`` methods return the created element so call
    sites can keep references for later lookups.
    """

    GROUND: NodeId = field(default="0", repr=False)

    def __init__(self) -> None:
        self.resistors: list[Resistor] = []
        self.current_sources: list[CurrentSource] = []
        self.voltage_sources: list[VoltageSource] = []
        self._names: set[str] = set()

    # -- element builders ----------------------------------------------------

    def _register(self, name: str) -> None:
        if name in self._names:
            raise ConfigError(f"duplicate element name: {name!r}")
        self._names.add(name)

    def add_resistor(
        self, name: str, node_a: NodeId, node_b: NodeId, resistance_ohm: float
    ) -> Resistor:
        """Add a resistor and return it."""
        self._register(name)
        element = Resistor(name, node_a, node_b, resistance_ohm)
        self.resistors.append(element)
        return element

    def add_current_source(
        self, name: str, node_from: NodeId, node_to: NodeId, current_a: float
    ) -> CurrentSource:
        """Add an ideal current source and return it."""
        self._register(name)
        element = CurrentSource(name, node_from, node_to, current_a)
        self.current_sources.append(element)
        return element

    def add_voltage_source(
        self, name: str, node_plus: NodeId, voltage_v: float, node_minus: NodeId | None = None
    ) -> VoltageSource:
        """Add an ideal voltage source (to ground unless given)."""
        self._register(name)
        element = VoltageSource(
            name, node_plus, node_minus if node_minus is not None else self.GROUND, voltage_v
        )
        self.voltage_sources.append(element)
        return element

    def add_load(self, name: str, node: NodeId, current_a: float) -> CurrentSource:
        """Add a POL load: a current sink from ``node`` to ground."""
        return self.add_current_source(name, node, self.GROUND, current_a)

    def add_source_with_impedance(
        self,
        name: str,
        node: NodeId,
        voltage_v: float,
        series_resistance_ohm: float,
    ) -> tuple[VoltageSource, Resistor]:
        """Add a practical source: ideal V source + series resistor.

        Creates an internal node ``(name, "emf")``.  Returns both
        elements; the resistor's current is the source's output current.
        """
        internal: NodeId = (name, "emf")
        source = self.add_voltage_source(f"{name}.v", internal, voltage_v)
        resistor = self.add_resistor(
            f"{name}.rout", internal, node, series_resistance_ohm
        )
        return source, resistor

    # -- introspection ---------------------------------------------------------

    def nodes(self) -> list[NodeId]:
        """All distinct nodes, ground excluded, in first-seen order."""
        seen: dict[NodeId, None] = {}
        for r in self.resistors:
            seen.setdefault(r.node_a)
            seen.setdefault(r.node_b)
        for s in self.current_sources:
            seen.setdefault(s.node_from)
            seen.setdefault(s.node_to)
        for v in self.voltage_sources:
            seen.setdefault(v.node_plus)
            seen.setdefault(v.node_minus)
        seen.pop(self.GROUND, None)
        return list(seen.keys())

    @property
    def element_count(self) -> int:
        """Total number of elements of all kinds."""
        return (
            len(self.resistors)
            + len(self.current_sources)
            + len(self.voltage_sources)
        )

    def total_load_current_a(self) -> float:
        """Sum of all current-source magnitudes (loads)."""
        return sum(s.current_a for s in self.current_sources)

    def validate(self) -> None:
        """Cheap structural validation (raises ConfigError).

        Full electrical validation (connectivity to sources) happens in
        the solver; this catches empty/obviously broken netlists early.
        """
        if not self.resistors and not self.voltage_sources:
            raise ConfigError("netlist has no resistors or sources")
        if not self.voltage_sources and self.current_sources:
            raise ConfigError(
                "current sources present but no voltage source/ground "
                "reference to absorb them"
            )

    def extend(self, other: "Netlist") -> None:
        """Merge another netlist into this one (names must not clash)."""
        for r in other.resistors:
            self.add_resistor(r.name, r.node_a, r.node_b, r.resistance_ohm)
        for s in other.current_sources:
            self.add_current_source(s.name, s.node_from, s.node_to, s.current_a)
        for v in other.voltage_sources:
            self.add_voltage_source(v.name, v.node_plus, v.voltage_v, v.node_minus)

    # -- compilation -----------------------------------------------------------

    def compile(self) -> "CompiledNetlist":
        """Snapshot this netlist into an array-backed form.

        Maps nodes to integer rows once (ground becomes
        :data:`GROUND_INDEX`) and gathers element values into numpy
        arrays.  The result is an immutable view of the current
        elements; later ``add_*`` calls do not affect it.
        """
        self.validate()
        nodes = self.nodes()
        index = {node: i for i, node in enumerate(nodes)}
        index[self.GROUND] = GROUND_INDEX

        def rows(node_pairs: list[tuple[NodeId, NodeId]]) -> np.ndarray:
            flat = np.fromiter(
                (index[node] for pair in node_pairs for node in pair),
                dtype=np.int64,
                count=2 * len(node_pairs),
            )
            return flat.reshape(-1, 2)

        res = rows([(r.node_a, r.node_b) for r in self.resistors])
        cur = rows([(s.node_from, s.node_to) for s in self.current_sources])
        vol = rows([(v.node_plus, v.node_minus) for v in self.voltage_sources])
        return CompiledNetlist(
            nodes=tuple(nodes),
            res_a=res[:, 0],
            res_b=res[:, 1],
            res_ohm=np.array([r.resistance_ohm for r in self.resistors]),
            cs_from=cur[:, 0],
            cs_to=cur[:, 1],
            cs_amp=np.array([s.current_a for s in self.current_sources]),
            vs_plus=vol[:, 0],
            vs_minus=vol[:, 1],
            vs_volt=np.array([v.voltage_v for v in self.voltage_sources]),
            res_names=tuple(r.name for r in self.resistors),
            cs_names=tuple(s.name for s in self.current_sources),
            vs_names=tuple(v.name for v in self.voltage_sources),
            ground=self.GROUND,
        )


NameSource = Sequence[str] | Callable[[], Sequence[str]] | None


class CompiledNetlist:
    """An immutable, array-backed circuit ready for vectorized MNA.

    Nodes are integer rows ``0..n_nodes-1`` (ground encoded as
    :data:`GROUND_INDEX`); element endpoints, resistances, source
    currents and voltages live in flat numpy arrays, so matrix
    stamping, branch-current extraction, and KCL verification are all
    pure array operations.

    Element names are optional and may be supplied lazily (a callable
    returning the name sequence): regular builders like the grid mesh
    generate thousands of structured names that are only needed when a
    caller asks for the name-keyed dict views of a solution.

    The structural arrays (endpoints, resistances) determine the MNA
    matrix; ``cs_amp`` and ``vs_volt`` only enter the right-hand side,
    which is what makes factorization reuse across load/source
    scenarios possible (see :class:`repro.pdn.mna.FactorizedPDN`).
    """

    def __init__(
        self,
        *,
        nodes: tuple[NodeId, ...] | Callable[[], Sequence[NodeId]],
        res_a: np.ndarray,
        res_b: np.ndarray,
        res_ohm: np.ndarray,
        cs_from: np.ndarray | None = None,
        cs_to: np.ndarray | None = None,
        cs_amp: np.ndarray | None = None,
        vs_plus: np.ndarray | None = None,
        vs_minus: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
        res_names: NameSource = None,
        cs_names: NameSource = None,
        vs_names: NameSource = None,
        ground: NodeId = "0",
        n_nodes: int | None = None,
    ) -> None:
        def ints(values: np.ndarray | None) -> np.ndarray:
            if values is None:
                return np.empty(0, dtype=np.int64)
            return np.ascontiguousarray(values, dtype=np.int64)

        def floats(values: np.ndarray | None) -> np.ndarray:
            if values is None:
                return np.empty(0)
            return np.ascontiguousarray(values, dtype=float)

        # Node ids follow the lazy-names idiom: a callable defers
        # materializing (possibly huge) id tuples until a name-keyed
        # view needs them, at the price of an explicit row count.
        if callable(nodes):
            if n_nodes is None:
                raise ConfigError(
                    "lazy nodes require an explicit n_nodes count"
                )
            self._nodes: tuple[NodeId, ...] | Callable[
                [], Sequence[NodeId]
            ] = nodes
            self._n_nodes = int(n_nodes)
        else:
            self._nodes = tuple(nodes)
            self._n_nodes = len(self._nodes)
        self.ground = ground
        self.res_a = ints(res_a)
        self.res_b = ints(res_b)
        self.res_ohm = floats(res_ohm)
        self.cs_from = ints(cs_from)
        self.cs_to = ints(cs_to)
        self.cs_amp = floats(cs_amp)
        self.vs_plus = ints(vs_plus)
        self.vs_minus = ints(vs_minus)
        self.vs_volt = floats(vs_volt)
        # Materialized name sequences are validated eagerly; callables
        # stay lazy and are length-checked on resolution.
        def normalize(source: NameSource, count: int, prefix: str) -> NameSource:
            if source is None or callable(source):
                return source
            return self._resolve_names(source, count, prefix)

        self._res_names = normalize(res_names, len(self.res_ohm), "R")
        self._cs_names = normalize(cs_names, len(self.cs_amp), "I")
        self._vs_names = normalize(vs_names, len(self.vs_volt), "V")
        self._node_index: dict[NodeId, int] | None = None

        n = self._n_nodes
        for label, a, b, values in (
            ("resistor", self.res_a, self.res_b, self.res_ohm),
            ("current source", self.cs_from, self.cs_to, self.cs_amp),
            ("voltage source", self.vs_plus, self.vs_minus, self.vs_volt),
        ):
            if not (len(a) == len(b) == len(values)):
                raise ConfigError(f"{label} arrays have mismatched lengths")
            for endpoint in (a, b):
                if endpoint.size and (
                    endpoint.min() < GROUND_INDEX or endpoint.max() >= n
                ):
                    raise ConfigError(f"{label} endpoint index out of range")
        if self.res_ohm.size and np.any(self.res_ohm <= 0):
            raise ConfigError("compiled resistances must all be positive")
        if self.cs_amp.size and np.any(self.cs_amp < 0):
            raise ConfigError("compiled source currents must be non-negative")

    # -- shape -------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """Node ids in row order (resolved on first access when lazy)."""
        if not isinstance(self._nodes, tuple):
            resolved = tuple(self._nodes())
            if len(resolved) != self._n_nodes:
                raise ConfigError(
                    f"expected {self._n_nodes} node ids, "
                    f"got {len(resolved)}"
                )
            self._nodes = resolved
        return self._nodes

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes (rows of the G block)."""
        return self._n_nodes

    @property
    def n_vsources(self) -> int:
        """Number of voltage sources (extra MNA rows)."""
        return len(self.vs_volt)

    @property
    def size(self) -> int:
        """Dimension of the MNA system."""
        return self.n_nodes + self.n_vsources

    @property
    def element_count(self) -> int:
        """Total number of elements of all kinds."""
        return len(self.res_ohm) + len(self.cs_amp) + len(self.vs_volt)

    # -- names (lazy) --------------------------------------------------------------

    @staticmethod
    def _resolve_names(
        source: NameSource, count: int, prefix: str
    ) -> tuple[str, ...]:
        if source is None:
            return tuple(f"{prefix}[{i}]" for i in range(count))
        if callable(source):
            source = source()
        names = tuple(source)
        if len(names) != count:
            raise ConfigError(
                f"expected {count} {prefix} names, got {len(names)}"
            )
        return names

    @property
    def res_names(self) -> tuple[str, ...]:
        """Resistor names (generated or resolved on first access)."""
        if not isinstance(self._res_names, tuple):
            self._res_names = self._resolve_names(
                self._res_names, len(self.res_ohm), "R"
            )
        return self._res_names

    @property
    def cs_names(self) -> tuple[str, ...]:
        """Current-source names."""
        if not isinstance(self._cs_names, tuple):
            self._cs_names = self._resolve_names(
                self._cs_names, len(self.cs_amp), "I"
            )
        return self._cs_names

    @property
    def vs_names(self) -> tuple[str, ...]:
        """Voltage-source names."""
        if not isinstance(self._vs_names, tuple):
            self._vs_names = self._resolve_names(
                self._vs_names, len(self.vs_volt), "V"
            )
        return self._vs_names

    # -- lookups ---------------------------------------------------------------------

    @property
    def node_index(self) -> dict[NodeId, int]:
        """Node-id -> row mapping (ground maps to GROUND_INDEX)."""
        if self._node_index is None:
            mapping = {node: i for i, node in enumerate(self.nodes)}
            mapping[self.ground] = GROUND_INDEX
            self._node_index = mapping
        return self._node_index

    def total_load_current_a(self) -> float:
        """Sum of all current-source magnitudes (loads)."""
        return float(self.cs_amp.sum())

    def validate(self) -> None:
        """Cheap structural validation, mirroring :meth:`Netlist.validate`."""
        if not len(self.res_ohm) and not len(self.vs_volt):
            raise ConfigError("netlist has no resistors or sources")
        if not len(self.vs_volt) and len(self.cs_amp):
            raise ConfigError(
                "current sources present but no voltage source/ground "
                "reference to absorb them"
            )

    # -- MNA stamps -------------------------------------------------------------------

    def mna_coo(self, xp=np) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO stamps ``(rows, cols, vals)`` of the DC MNA matrix.

        The ``[G B; B^T 0]`` system over ``size`` rows: conductance
        stamps from the resistors plus the voltage-source incidence
        entries.  Duplicates are not summed (sparse constructors and
        :class:`repro.pdn.mna.FactorizedPDN` handle accumulation).
        ``xp`` selects the array namespace (:mod:`repro.pdn.backend`).
        """
        n = self.n_nodes
        g_rows, g_cols, g_vals = admittance_stamp_entries(
            self.res_a, self.res_b, 1.0 / self.res_ohm, xp=xp
        )
        kp = xp.nonzero(xp.asarray(self.vs_plus) != GROUND_INDEX)[0]
        km = xp.nonzero(xp.asarray(self.vs_minus) != GROUND_INDEX)[0]
        plus = xp.asarray(self.vs_plus)[kp]
        minus = xp.asarray(self.vs_minus)[km]
        ones_p = xp.ones(len(kp))
        ones_m = xp.ones(len(km))
        rows = xp.concatenate([g_rows, plus, n + kp, minus, n + km])
        cols = xp.concatenate([g_cols, n + kp, plus, n + km, minus])
        vals = xp.concatenate([g_vals, ones_p, ones_p, -ones_m, -ones_m])
        return rows, cols, vals

    # -- scenario values --------------------------------------------------------------

    def with_sources(
        self,
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
    ) -> "CompiledNetlist":
        """A copy with new load currents and/or source voltages.

        Structure (endpoints, resistances, names) is shared, so the
        copy is valid for the same cached factorization.
        """
        clone = object.__new__(CompiledNetlist)
        clone.__dict__.update(self.__dict__)
        if cs_amp is not None:
            amp = np.ascontiguousarray(cs_amp, dtype=float)
            if amp.shape != self.cs_amp.shape:
                raise ConfigError(
                    f"expected {self.cs_amp.shape[0]} source currents"
                )
            if amp.size and np.any(amp < 0):
                raise ConfigError("source currents must be non-negative")
            clone.cs_amp = amp
        if vs_volt is not None:
            volt = np.ascontiguousarray(vs_volt, dtype=float)
            if volt.shape != self.vs_volt.shape:
                raise ConfigError(
                    f"expected {self.vs_volt.shape[0]} source voltages"
                )
            clone.vs_volt = volt
        return clone

    # -- pickling ---------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Picklable state for process-pool payloads.

        Lazy node/name sources are often closures over the builder
        (e.g. :meth:`repro.pdn.grid.GridPDN._build_structure`), which
        cannot cross a process boundary — materialize them first.  The
        node-index dict is derived data; drop it and rebuild on demand.
        """
        self.nodes
        self.res_names
        self.cs_names
        self.vs_names
        state = dict(self.__dict__)
        state["_node_index"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def series_chain(
    netlist: Netlist,
    prefix: str,
    nodes: Iterable[NodeId],
    resistances_ohm: Iterable[float],
) -> list[Resistor]:
    """Wire consecutive ``nodes`` with the given series resistances.

    ``nodes`` must have exactly one more entry than ``resistances_ohm``.
    Returns the created resistors in order.
    """
    node_list = list(nodes)
    res_list = list(resistances_ohm)
    if len(node_list) != len(res_list) + 1:
        raise ConfigError(
            "series_chain needs len(nodes) == len(resistances) + 1"
        )
    created: list[Resistor] = []
    for i, resistance in enumerate(res_list):
        created.append(
            netlist.add_resistor(
                f"{prefix}[{i}]", node_list[i], node_list[i + 1], resistance
            )
        )
    return created
