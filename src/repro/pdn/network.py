"""Resistive netlist construction.

A :class:`Netlist` is a flat list of two-terminal elements between
named nodes.  It deliberately supports only what DC PDN analysis
needs — resistors, ideal current sources (loads), and ideal voltage
sources (regulator outputs, optionally with series resistance) — and
is consumed by :mod:`repro.pdn.mna`.

Node names are arbitrary hashables; ``Netlist.GROUND`` ("0") is the
reference node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..errors import ConfigError

NodeId = Hashable


@dataclass(frozen=True)
class Resistor:
    """A resistor between two nodes.

    ``name`` identifies the element in solutions (per-element currents
    and losses are reported by name).
    """

    name: str
    node_a: NodeId
    node_b: NodeId
    resistance_ohm: float

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ConfigError(
                f"resistor {self.name}: resistance must be positive "
                f"(got {self.resistance_ohm})"
            )
        if self.node_a == self.node_b:
            raise ConfigError(f"resistor {self.name}: shorted terminals")


@dataclass(frozen=True)
class CurrentSource:
    """An ideal DC current source driving ``current_a`` from
    ``node_from`` into ``node_to`` (a POL load sinks from the power
    node into ground: ``node_from=power_node, node_to=GROUND``)."""

    name: str
    node_from: NodeId
    node_to: NodeId
    current_a: float

    def __post_init__(self) -> None:
        if self.current_a < 0:
            raise ConfigError(
                f"current source {self.name}: negative current; swap nodes"
            )
        if self.node_from == self.node_to:
            raise ConfigError(f"current source {self.name}: shorted terminals")


@dataclass(frozen=True)
class VoltageSource:
    """An ideal DC voltage source holding ``node_plus`` at
    ``voltage_v`` above ``node_minus``."""

    name: str
    node_plus: NodeId
    node_minus: NodeId
    voltage_v: float

    def __post_init__(self) -> None:
        if self.node_plus == self.node_minus:
            raise ConfigError(f"voltage source {self.name}: shorted terminals")


@dataclass
class Netlist:
    """A mutable collection of circuit elements.

    Builder-style ``add_*`` methods return the created element so call
    sites can keep references for later lookups.
    """

    GROUND: NodeId = field(default="0", repr=False)

    def __init__(self) -> None:
        self.resistors: list[Resistor] = []
        self.current_sources: list[CurrentSource] = []
        self.voltage_sources: list[VoltageSource] = []
        self._names: set[str] = set()

    # -- element builders ----------------------------------------------------

    def _register(self, name: str) -> None:
        if name in self._names:
            raise ConfigError(f"duplicate element name: {name!r}")
        self._names.add(name)

    def add_resistor(
        self, name: str, node_a: NodeId, node_b: NodeId, resistance_ohm: float
    ) -> Resistor:
        """Add a resistor and return it."""
        self._register(name)
        element = Resistor(name, node_a, node_b, resistance_ohm)
        self.resistors.append(element)
        return element

    def add_current_source(
        self, name: str, node_from: NodeId, node_to: NodeId, current_a: float
    ) -> CurrentSource:
        """Add an ideal current source and return it."""
        self._register(name)
        element = CurrentSource(name, node_from, node_to, current_a)
        self.current_sources.append(element)
        return element

    def add_voltage_source(
        self, name: str, node_plus: NodeId, voltage_v: float, node_minus: NodeId | None = None
    ) -> VoltageSource:
        """Add an ideal voltage source (to ground unless given)."""
        self._register(name)
        element = VoltageSource(
            name, node_plus, node_minus if node_minus is not None else self.GROUND, voltage_v
        )
        self.voltage_sources.append(element)
        return element

    def add_load(self, name: str, node: NodeId, current_a: float) -> CurrentSource:
        """Add a POL load: a current sink from ``node`` to ground."""
        return self.add_current_source(name, node, self.GROUND, current_a)

    def add_source_with_impedance(
        self,
        name: str,
        node: NodeId,
        voltage_v: float,
        series_resistance_ohm: float,
    ) -> tuple[VoltageSource, Resistor]:
        """Add a practical source: ideal V source + series resistor.

        Creates an internal node ``(name, "emf")``.  Returns both
        elements; the resistor's current is the source's output current.
        """
        internal: NodeId = (name, "emf")
        source = self.add_voltage_source(f"{name}.v", internal, voltage_v)
        resistor = self.add_resistor(
            f"{name}.rout", internal, node, series_resistance_ohm
        )
        return source, resistor

    # -- introspection ---------------------------------------------------------

    def nodes(self) -> list[NodeId]:
        """All distinct nodes, ground excluded, in first-seen order."""
        seen: dict[NodeId, None] = {}
        for r in self.resistors:
            seen.setdefault(r.node_a)
            seen.setdefault(r.node_b)
        for s in self.current_sources:
            seen.setdefault(s.node_from)
            seen.setdefault(s.node_to)
        for v in self.voltage_sources:
            seen.setdefault(v.node_plus)
            seen.setdefault(v.node_minus)
        seen.pop(self.GROUND, None)
        return list(seen.keys())

    @property
    def element_count(self) -> int:
        """Total number of elements of all kinds."""
        return (
            len(self.resistors)
            + len(self.current_sources)
            + len(self.voltage_sources)
        )

    def total_load_current_a(self) -> float:
        """Sum of all current-source magnitudes (loads)."""
        return sum(s.current_a for s in self.current_sources)

    def validate(self) -> None:
        """Cheap structural validation (raises ConfigError).

        Full electrical validation (connectivity to sources) happens in
        the solver; this catches empty/obviously broken netlists early.
        """
        if not self.resistors and not self.voltage_sources:
            raise ConfigError("netlist has no resistors or sources")
        if not self.voltage_sources and self.current_sources:
            raise ConfigError(
                "current sources present but no voltage source/ground "
                "reference to absorb them"
            )

    def extend(self, other: "Netlist") -> None:
        """Merge another netlist into this one (names must not clash)."""
        for r in other.resistors:
            self.add_resistor(r.name, r.node_a, r.node_b, r.resistance_ohm)
        for s in other.current_sources:
            self.add_current_source(s.name, s.node_from, s.node_to, s.current_a)
        for v in other.voltage_sources:
            self.add_voltage_source(v.name, v.node_plus, v.voltage_v, v.node_minus)


def series_chain(
    netlist: Netlist,
    prefix: str,
    nodes: Iterable[NodeId],
    resistances_ohm: Iterable[float],
) -> list[Resistor]:
    """Wire consecutive ``nodes`` with the given series resistances.

    ``nodes`` must have exactly one more entry than ``resistances_ohm``.
    Returns the created resistors in order.
    """
    node_list = list(nodes)
    res_list = list(resistances_ohm)
    if len(node_list) != len(res_list) + 1:
        raise ConfigError(
            "series_chain needs len(nodes) == len(resistances) + 1"
        )
    created: list[Resistor] = []
    for i, resistance in enumerate(res_list):
        created.append(
            netlist.add_resistor(
                f"{prefix}[{i}]", node_list[i], node_list[i + 1], resistance
            )
        )
    return created
