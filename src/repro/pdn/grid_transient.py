"""Factor-once grid transient engine (mesh load-step droop).

The lumped :class:`~repro.pdn.transient.PDNTransient` ladder shows the
droop *waveform*; this module shows where on the die it lands.  The
mesh of :class:`~repro.pdn.grid.GridPDN` — per-node decap maps and VR
output branches as in :class:`~repro.pdn.grid.GridACPDN` — is
discretized in time with the trapezoidal (Tustin) rule: every reactive
branch collapses into its companion model (a conductance plus a
history current), so each time step is one linear solve

    ``A v₁ = b(t₁, history)``  with  ``A = G + (2/Δt)·C_eff``

where ``A`` depends only on the topology and the time step.  That
matrix is factored **once** per ``(topology, Δt)`` through the
process-wide content-hashed :class:`~repro.parallel.cache.FactorizationCache`
(salted with the ``(Δt, C_eff)`` stamp so a cached LU is never reused
across different time steps) and every subsequent step is a single
back-substitution.  A batch of T workload traces advances through one
multi-RHS back-substitution per step (`solve_many` shape), which is
where ensemble sweeps get their throughput.

Companion models (series branch, node → ground through ESR + L + C;
``h = Δt``, ``w = 2L/h``, ``hc = h/(2C)``, ``Z = ESR + w + hc``):

* trapezoidal step: ``i₁ = (v₁ + (w − hc)·i₀ + v_L₀ − v_c₀)/Z`` with
  state updates ``v_c₁ = v_c₀ + hc·(i₁ + i₀)`` and
  ``v_L₁ = w·(i₁ − i₀) − v_L₀``;
* the first interval runs **two backward-Euler half-steps** instead:
  at ``δ = h/2`` the BE companion impedance is ``ESR + 2L/h + h/(2C)``
  — the *same* ``Z`` — so the startup shares the factorization while
  suppressing the O(h) trapezoidal glitch a load discontinuity at
  t = 0⁺ would otherwise inject (the algebraic branch states jump at
  the step; BE re-derives them implicitly).  BE variants:
  ``i₁ = (v₁ + w·i₀ − v_c₀)/Z``, ``v_c₁ = v_c₀ + hc·i₁``,
  ``v_L₁ = w·(i₁ − i₀)``.

VR branches (EMF ``V`` behind ``r_out + L_src``) and inductive mesh
edges follow the same pattern with the capacitor terms dropped.  Both
schemes are exactly DC-consistent: a constant load holds the mesh at
its DC operating point to solver precision.

Two engines, mirroring :class:`~repro.pdn.grid.GridPDN`:

* ``factorized`` — the companion matrix as a reduced node-only
  :class:`~repro.pdn.network.CompiledNetlist` through the shared
  sparse-LU cache;
* ``structured`` — the DCT-II diagonalization of
  :mod:`~repro.pdn.fast_poisson` with the uniform part of the decap
  diagonal as the operator shift and everything irregular (decap
  non-uniformity, VR branches, ring segments, deflation) as a rank-s
  Woodbury correction plus one refinement round, so large meshes step
  in O(n² log n) without ever forming the LU.  ``engine="auto"``
  selects by mesh size and falls back on
  :class:`~repro.pdn.fast_poisson.StructuredSolveError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..errors import ConfigError
from .fast_poisson import FastPoissonOperator, StructuredGridPDN, StructuredSolveError
from .grid import GridPDN, STRUCTURED_AUTO_MIN_CELLS, mesh_edge_rows
from .network import GROUND_INDEX, CompiledNetlist
from .powermap import PowerMap
from .transient import droop_and_settle

#: The structured engine carries decap-map non-uniformity as Woodbury
#: columns; past this many deviating nodes the correction stops being
#: "low-rank" and the sparse LU wins.
MAX_STRUCTURED_DECAP_DEVIATIONS = 64


@dataclass(frozen=True)
class GridTransientResult:
    """One trace's spatio-temporal droop summary.

    Full per-node waveforms are never materialized (a 48×48 mesh ×
    1000 steps × 16 traces would be hundreds of MB); the stepping loop
    streams running per-node minima and the per-sample worst-node
    trace, plus full waveforms at explicitly requested probe nodes.

    Attributes:
        time_s: sample times, ``steps + 1`` entries (t = 0 is the
            pre-step DC operating point).
        v_pre_map: (ny, nx) initial DC node-voltage map.
        v_min_map: (ny, nx) per-node minimum voltage over the trace.
        v_final_map: (ny, nx) settle reference map — the post-step DC
            solution for :meth:`GridTransientPDN.simulate_step`, the
            last sample otherwise.
        min_voltage_trace_v: worst-node voltage at every sample.
        probe_rows: flattened mesh rows of the requested probes.
        probe_voltages_v: (samples, probes) probe waveforms.
        droop_v: worst per-node droop, ``droop_map.max()``.
        settle_time_s: first time after which the worst-node trace
            stays inside the settle band around the final value.
        engine: which engine produced the trace.
    """

    time_s: np.ndarray
    v_pre_map: np.ndarray
    v_min_map: np.ndarray
    v_final_map: np.ndarray
    min_voltage_trace_v: np.ndarray
    probe_rows: tuple[int, ...]
    probe_voltages_v: np.ndarray
    droop_v: float
    settle_time_s: float
    engine: str

    @property
    def droop_map(self) -> np.ndarray:
        """(ny, nx) worst instantaneous droop below the pre-step DC."""
        return np.clip(self.v_pre_map - self.v_min_map, 0.0, None)

    @property
    def worst_droop_v(self) -> float:
        return float(self.droop_map.max())

    @property
    def worst_node(self) -> tuple[int, int]:
        """(ix, iy) of the worst-droop mesh node."""
        iy, ix = np.unravel_index(
            int(np.argmax(self.droop_map)), self.v_pre_map.shape
        )
        return int(ix), int(iy)


class _FastTransient:
    """DCT-II + Woodbury solver for the trapezoidal companion matrix.

    ``A = L(gx, gy) + diag(g_node) + Σ g_src·e·eᵀ + ring`` is split as
    ``M + U C Uᵀ`` with ``M`` the uniform Poisson operator shifted by
    the *most common* per-node shunt conductance (a uniform decap
    density makes the deviation set empty); per-node deviations, VR
    branches, ring segments, and — when the base shift is zero — the
    deflation column ride in the correction.  Decap-free (zero-shift)
    systems get one refinement round on the exact stencil matvec;
    shifted systems are diagonally dominant enough that the plain
    Woodbury apply already lands at ~1e-13 relative.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        gx: float,
        gy: float,
        g_node: np.ndarray,
        attach: np.ndarray,
        g_src: np.ndarray,
        ring_a: np.ndarray,
        ring_b: np.ndarray,
        g_ring: np.ndarray,
    ) -> None:
        cells = nx * ny
        self.nx, self.ny, self.cells = nx, ny, cells
        self.gx, self.gy = gx, gy
        self.g_node = np.asarray(g_node, dtype=float)
        self.attach = np.asarray(attach, dtype=np.int64)
        self.g_src = np.asarray(g_src, dtype=float)
        self.ring_a = np.asarray(ring_a, dtype=np.int64)
        self.ring_b = np.asarray(ring_b, dtype=np.int64)
        self.g_ring = np.asarray(g_ring, dtype=float)

        values, counts = np.unique(self.g_node, return_counts=True)
        base = float(values[int(np.argmax(counts))])
        dev_rows = np.nonzero(self.g_node != base)[0]
        limit = min(MAX_STRUCTURED_DECAP_DEVIATIONS, max(1, cells // 4))
        if dev_rows.size > limit:
            raise StructuredSolveError(
                f"{dev_rows.size} decap-map deviations exceed the "
                f"rank-{limit} correction budget"
            )
        self.op = FastPoissonOperator(
            nx, ny, gx if nx > 1 else 0.0, gy if ny > 1 else 0.0, shift=base
        )
        deflate = self.op.deflation_tau is not None
        m = int(deflate) + dev_rows.size + self.attach.size + self.ring_a.size
        u = np.zeros((cells, m))
        c = np.empty(m)
        col = 0
        if deflate:
            u[:, 0] = 1.0 / np.sqrt(cells)
            c[0] = -self.op.deflation_tau
            col = 1
        for row in dev_rows:
            u[row, col] = 1.0
            c[col] = self.g_node[row] - base
            col += 1
        for row, g in zip(self.attach, self.g_src):
            u[row, col] += 1.0
            c[col] = g
            col += 1
        for a, b, g in zip(self.ring_a, self.ring_b, self.g_ring):
            u[a, col] += 1.0
            u[b, col] -= 1.0
            c[col] = g
            col += 1
        self._u = u
        self._c = c
        self._z = self.op.solve(u) if m else np.zeros((cells, 0))
        s = self._u.T @ self._z + np.diag(1.0 / c) if m else np.zeros((0, 0))
        if not np.all(np.isfinite(s)):
            raise StructuredSolveError(
                "structured transient correction is non-finite"
            )
        try:
            self._s_lu = lu_factor(s) if m else None
        except ValueError as exc:  # pragma: no cover - singular S
            raise StructuredSolveError(
                f"structured transient correction failed: {exc}"
            ) from exc

    def _matvec_rows(self, v: np.ndarray) -> np.ndarray:
        """Exact ``(A @ vᵀ)ᵀ`` for (k, cells) rows — stencil, no matrix."""
        field = np.ascontiguousarray(v).reshape(-1, self.ny, self.nx)
        sten = np.zeros_like(field)
        if self.nx > 1:
            dx = (field[:, :, :-1] - field[:, :, 1:]) * self.gx
            sten[:, :, :-1] += dx
            sten[:, :, 1:] -= dx
        if self.ny > 1:
            dy = (field[:, :-1, :] - field[:, 1:, :]) * self.gy
            sten[:, :-1, :] += dy
            sten[:, 1:, :] -= dy
        out = sten.reshape(-1, self.cells) + self.g_node * v
        np.add.at(
            out, (slice(None), self.attach), self.g_src * v[:, self.attach]
        )
        if self.ring_a.size:
            drop = self.g_ring * (v[:, self.ring_a] - v[:, self.ring_b])
            np.add.at(out, (slice(None), self.ring_a), drop)
            np.add.at(out, (slice(None), self.ring_b), -drop)
        return out

    def _apply_rows(self, b: np.ndarray) -> np.ndarray:
        y = self.op.solve_rows(b)
        if self._s_lu is None:
            return y
        w = lu_solve(self._s_lu, (y @ self._u).T)
        return y - w.T @ self._z.T

    def solve_rows(self, b: np.ndarray) -> np.ndarray:
        """``(A⁻¹ bᵀ)ᵀ`` for a C-contiguous row stack (k, cells).

        The trapezoidal stamp carries every decap branch's companion
        conductance on the diagonal, so the operator is strongly
        diagonally dominant and a single Woodbury-corrected apply is
        already accurate to ~1e-13 relative — the refinement round is
        reserved for zero-shift (decap-free) systems where the deflated
        Poisson solve loses digits.
        """
        x = self._apply_rows(b)
        if self.op.deflation_tau is not None:
            x = x + self._apply_rows(b - self._matvec_rows(x))
        if not np.all(np.isfinite(x)):
            raise StructuredSolveError(
                "structured transient solve produced non-finite values"
            )
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """``A⁻¹ b`` for (cells, k) columns (row-layout core)."""
        return np.asarray(self.solve_rows(np.ascontiguousarray(b.T)).T)


class _TransientStructure:
    """Everything assembled once per (topology, Δt).

    Holds the trapezoidal companion constants, the compiled reduced
    netlists (transient stamp and DC-init stamp), and — lazily — the
    two engines for each.  The transient LU is keyed in the shared
    factorization cache with a ``(Δt, C_eff)`` salt.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        dt_s: float,
        r_x: float | None,
        r_y: float | None,
        l_x: float,
        l_y: float,
        ring_a: np.ndarray,
        ring_b: np.ndarray,
        ring_ohm: float | None,
        dec_c: np.ndarray,
        dec_esr: np.ndarray,
        dec_esl: np.ndarray,
        attach: np.ndarray,
        volt: np.ndarray,
        rout: np.ndarray,
        l_src: np.ndarray,
    ) -> None:
        cells = nx * ny
        h = dt_s
        self.nx, self.ny, self.cells, self.dt_s = nx, ny, cells, h
        x_a, x_b, y_a, y_b = mesh_edge_rows(nx, ny)
        self.x_a, self.x_b, self.y_a, self.y_b = x_a, x_b, y_a, y_b
        self.ring_a, self.ring_b = ring_a, ring_b
        self.ring_ohm = ring_ohm

        # Edge companions (series R + L): g = 1/(r + 2L/h).
        self.w_x = 2.0 * l_x / h
        self.w_y = 2.0 * l_y / h
        self.g_x = 1.0 / (r_x + self.w_x) if r_x is not None else 0.0
        self.g_y = 1.0 / (r_y + self.w_y) if r_y is not None else 0.0
        self.g_x_dc = 1.0 / r_x if r_x is not None else 0.0
        self.g_y_dc = 1.0 / r_y if r_y is not None else 0.0
        self.g_ring = (
            np.full(ring_a.size, 1.0 / ring_ohm)
            if ring_ohm is not None
            else np.empty(0)
        )

        # Decap companions, restricted to live (C > 0) nodes.
        live = dec_c > 0
        self.dec_rows = np.nonzero(live)[0].astype(np.int64)
        c, esr, esl = dec_c[live], dec_esr[live], dec_esl[live]
        self.w_b = 2.0 * esl / h
        self.hc_b = h / (2.0 * c)
        z_b = esr + self.w_b + self.hc_b
        self.g_b = 1.0 / z_b
        self.g_node = np.zeros(cells)
        self.g_node[self.dec_rows] = self.g_b

        # VR output companions.
        self.attach = attach
        self.volt = volt
        self.w_s = 2.0 * l_src / h
        self.g_s = 1.0 / (rout + self.w_s)
        self.g_dc = 1.0 / rout

        # Startup scheme selection.  The t = 0+ load discontinuity
        # excites every branch mode; two damped backward-Euler
        # half-steps (sharing the trapezoidal matrix) suppress the
        # ringing that trapezoidal integration sustains on stiff
        # modes, but carry O(h^2) local error.  When every branch
        # decay rate is well resolved (h * rate <= 1/2) no damping is
        # needed, and the exact-jump startup below (trapezoidal from
        # the t = 0+ right limits) tracks the state-space oracle to
        # ~1e-8.  Undamped decaps (ESR = 0) hide their true rate
        # behind the mesh Thevenin resistance, so they always take
        # the damped kick.
        rate = 0.0
        if l_x > 0 and r_x is not None:
            rate = max(rate, r_x / l_x)
        if l_y > 0 and r_y is not None:
            rate = max(rate, r_y / l_y)
        live_l = l_src > 0
        if np.any(live_l):
            rate = max(rate, float((rout[live_l] / l_src[live_l]).max()))
        if c.size:
            if np.any(esr <= 0):
                rate = np.inf
            else:
                rate = max(rate, float((1.0 / (esr * c)).max()))
                damped = esl > 0
                if np.any(damped):
                    rate = max(
                        rate, float((esr[damped] / esl[damped]).max())
                    )
        self.smooth_startup = bool(h * rate <= 0.5)

        def shunt(rows: np.ndarray) -> np.ndarray:
            return np.full(rows.size, GROUND_INDEX, dtype=np.int64)

        def compile_reduced(
            extra_rows: np.ndarray, extra_ohm: np.ndarray, gx: float, gy: float
        ) -> CompiledNetlist:
            res_a = np.concatenate([x_a, y_a, ring_a, extra_rows])
            res_b = np.concatenate(
                [x_b, y_b, ring_b, shunt(extra_rows)]
            )
            res_ohm = np.concatenate(
                [
                    np.full(x_a.size, 1.0 / gx if x_a.size else 1.0),
                    np.full(y_a.size, 1.0 / gy if y_a.size else 1.0),
                    np.full(ring_a.size, ring_ohm or 1.0),
                    extra_ohm,
                ]
            )
            return CompiledNetlist(
                nodes=lambda: tuple(f"n{i}" for i in range(cells)),
                n_nodes=cells,
                res_a=res_a,
                res_b=res_b,
                res_ohm=res_ohm,
                res_names=lambda: tuple(
                    f"gt.r{i}" for i in range(res_ohm.size)
                ),
            )

        # Transient stamp: mesh + ring + decap shunts + VR shunts.
        self.compiled = compile_reduced(
            np.concatenate([self.dec_rows, attach]),
            np.concatenate([z_b, 1.0 / self.g_s]),
            self.g_x,
            self.g_y,
        )
        # DC-init stamp: mesh + ring + VR shunts only (capacitors open).
        self.dc_compiled = compile_reduced(
            attach, rout, self.g_x_dc, self.g_y_dc
        )

        # t = 0+ jump stamp.  Inductor currents and capacitor voltages
        # are continuous across the load discontinuity, but the node
        # voltages are algebraic and jump with it; their right limits
        # solve the frozen-inductor resistive network (L branches =
        # current sources, decap branches = ESR in series with the
        # held capacitor voltage).  Starting trapezoidal integration
        # from these right-limit values makes the startup O(h^3),
        # where the damped backward-Euler kick is only O(h^2).  Built
        # only when provably nonsingular: a resistive shunt at every
        # node (full decap coverage, ESL = 0, ESR > 0) on a smooth
        # (non-stiff) structure.
        self.rout = rout
        self.exact_jump = (
            self.smooth_startup
            and self.dec_rows.size == cells
            and not np.any(esl > 0.0)
        )
        self.jump_compiled: CompiledNetlist | None = None
        if self.exact_jump:
            self.jump_g_dec = np.zeros(cells)
            self.jump_g_dec[self.dec_rows] = 1.0 / esr
            j_a = [self.dec_rows]
            j_b = [shunt(self.dec_rows)]
            j_ohm = [esr]
            self.jump_x_frozen = l_x > 0
            if not self.jump_x_frozen and r_x is not None and x_a.size:
                j_a.append(x_a)
                j_b.append(x_b)
                j_ohm.append(np.full(x_a.size, r_x))
            self.jump_y_frozen = l_y > 0
            if not self.jump_y_frozen and r_y is not None and y_a.size:
                j_a.append(y_a)
                j_b.append(y_b)
                j_ohm.append(np.full(y_a.size, r_y))
            if ring_ohm is not None and ring_a.size:
                j_a.append(ring_a)
                j_b.append(ring_b)
                j_ohm.append(np.full(ring_a.size, ring_ohm))
            self.jump_src_frozen = l_src > 0
            live = ~self.jump_src_frozen
            if np.any(live):
                j_a.append(attach[live])
                j_b.append(shunt(attach[live]))
                j_ohm.append(rout[live])
            j_res_a = np.concatenate(j_a)
            j_res_b = np.concatenate(j_b)
            j_res_ohm = np.concatenate(j_ohm)
            self.jump_compiled = CompiledNetlist(
                nodes=lambda: tuple(f"n{i}" for i in range(cells)),
                n_nodes=cells,
                res_a=j_res_a,
                res_b=j_res_b,
                res_ohm=j_res_ohm,
                res_names=lambda: tuple(
                    f"gt.j{i}" for i in range(j_res_ohm.size)
                ),
            )
        # The (Δt, C_eff) salt: the companion resistances already
        # encode Δt, but the salt guarantees distinct time steps never
        # share a cache key even on value coincidences.
        self.salt = struct.pack("<d", h) + self.g_node.tobytes()

        self._solver = None
        self._dc_solver = None
        self._jump_solver = None
        self._fast: _FastTransient | None = None
        self._dc_fast: StructuredGridPDN | None = None

    # -- factorized engine -------------------------------------------------------

    def solver(self):
        if self._solver is None:
            # Lazy import: the parallel layer sits above pdn.
            from ..parallel.cache import get_factorized

            self._solver = get_factorized(self.compiled, extra=self.salt)
        return self._solver

    def dc_solver(self):
        if self._dc_solver is None:
            from ..parallel.cache import get_factorized

            self._dc_solver = get_factorized(self.dc_compiled)
        return self._dc_solver

    def jump_solver(self):
        """Cached factorization of the t = 0+ frozen-inductor stamp.

        Shared by both engines — one small solve per simulate call, so
        a structured variant would buy nothing.
        """
        if self._jump_solver is None:
            from ..parallel.cache import get_factorized

            self._jump_solver = get_factorized(self.jump_compiled)
        return self._jump_solver

    # -- structured engine -------------------------------------------------------

    def fast(self) -> _FastTransient:
        if self._fast is None:
            self._fast = _FastTransient(
                self.nx,
                self.ny,
                self.g_x,
                self.g_y,
                self.g_node,
                self.attach,
                self.g_s,
                self.ring_a,
                self.ring_b,
                self.g_ring,
            )
        return self._fast

    def dc_fast(self) -> StructuredGridPDN:
        if self._dc_fast is None:
            self._dc_fast = StructuredGridPDN(
                compiled=self.dc_compiled,
                nx=self.nx,
                ny=self.ny,
                edge_conductance_x=self.g_x_dc,
                edge_conductance_y=self.g_y_dc,
                attach_rows=self.attach,
                source_conductance=self.g_dc,
                ring_a=self.ring_a,
                ring_b=self.ring_b,
                ring_conductance=self.g_ring,
            )
        return self._dc_fast


class GridTransientPDN:
    """Time-domain load-step analysis on the die/interposer mesh.

    The transient counterpart of :class:`~repro.pdn.grid.GridACPDN`:
    the same rectangular one-polarity mesh with per-node decap maps
    (C + ESR + ESL), optional per-edge metal inductance, and VR output
    branches (EMF + r_out + bump/TSV inductance), driven by arbitrary
    per-node sink-current waveforms.  Degenerate 1-D chains
    (``nx == 1`` or ``ny == 1``) are allowed — they are the lattice on
    which the lumped :class:`~repro.pdn.transient.PDNTransient`
    matrix-exponential oracle pins this engine.

    Three analysis surfaces:

    * :meth:`simulate` — one per-node waveform, one back-substitution
      per step after the single factorization;
    * :meth:`simulate_many` — T traces advanced together through
      multi-RHS back-substitutions;
    * :meth:`simulate_step` — the classic load step, scaled over the
      attached sink map, with a DC-exact settle reference.
    """

    def __init__(
        self,
        width_m: float,
        height_m: float,
        sheet_ohm_sq: float,
        nx: int = 24,
        ny: int = 24,
        edge_inductance_x_h: float = 0.0,
        edge_inductance_y_h: float = 0.0,
        engine: str = "auto",
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise ConfigError("grid extents must be positive")
        if sheet_ohm_sq <= 0:
            raise ConfigError("sheet resistance must be positive")
        if nx < 1 or ny < 1 or nx * ny < 2:
            raise ConfigError("grid needs at least two nodes")
        if edge_inductance_x_h < 0 or edge_inductance_y_h < 0:
            raise ConfigError("edge inductance must be non-negative")
        if engine not in ("auto", "structured", "factorized"):
            raise ConfigError(
                "engine must be 'auto', 'structured', or 'factorized'"
            )
        self.width_m = width_m
        self.height_m = height_m
        self.sheet_ohm_sq = sheet_ohm_sq
        self.nx = nx
        self.ny = ny
        self.edge_inductance_x_h = edge_inductance_x_h
        self.edge_inductance_y_h = edge_inductance_y_h
        self.engine = engine
        # (name, ix, iy, voltage, r_out, l_src)
        self._sources: list[tuple[str, int, int, float, float, float]] = []
        self._sink_map: np.ndarray | None = None
        self._ring_bus_ohm: float | None = None
        self._decap: tuple | None = None
        self._structures: dict[tuple, _TransientStructure] = {}

    @classmethod
    def from_grid(
        cls,
        grid: GridPDN,
        source_inductance_h: float = 0.0,
        engine: str = "auto",
    ) -> "GridTransientPDN":
        """Mirror a DC grid's mesh, sinks, sources, and ring bus.

        ``source_inductance_h`` adds the vertical bump/TSV loop
        inductance in series with every copied VR output.  Decap maps
        are attached separately.  Per-edge variation has no transient
        companion path, so scaled grids are rejected.
        """
        if grid._edge_scale_x is not None or grid._edge_scale_y is not None:
            raise ConfigError(
                "the transient engine does not support per-edge "
                "variation; build from an unscaled grid"
            )
        pdn = cls(
            grid.width_m,
            grid.height_m,
            grid.sheet_ohm_sq,
            nx=grid.nx,
            ny=grid.ny,
            engine=engine,
        )
        if grid._sink_map is not None:
            pdn.set_sink_array(grid._sink_map)
        for name, ix, iy, voltage, r_out in grid._sources:
            pdn._add_source_at(
                name, ix, iy, voltage, r_out, source_inductance_h
            )
        if grid._ring_bus_ohm is not None:
            pdn._ring_bus_ohm = grid._ring_bus_ohm
        return pdn

    # -- construction -----------------------------------------------------------

    def set_sinks(self, power_map: PowerMap, total_current_a: float) -> None:
        """Attach the load's spatial profile from a power map."""
        self._sink_map = power_map.cell_currents(
            self.nx, self.ny, total_current_a
        )

    def set_sink_array(self, cell_currents: np.ndarray) -> None:
        """Attach the load's spatial profile as an explicit (ny, nx) array."""
        arr = np.asarray(cell_currents, dtype=float)
        if arr.shape != (self.ny, self.nx):
            raise ConfigError(
                f"sink array must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(arr < 0):
            raise ConfigError("sink currents must be non-negative")
        self._sink_map = arr

    def _add_source_at(
        self,
        name: str,
        ix: int,
        iy: int,
        voltage_v: float,
        output_resistance_ohm: float,
        inductance_h: float,
    ) -> None:
        if output_resistance_ohm <= 0:
            raise ConfigError("source output resistance must be positive")
        if inductance_h < 0:
            raise ConfigError("source inductance must be non-negative")
        if any(existing == name for existing, *_ in self._sources):
            raise ConfigError(f"duplicate source name: {name!r}")
        self._sources.append(
            (name, ix, iy, voltage_v, output_resistance_ohm, inductance_h)
        )
        self._structures.clear()

    def add_source(
        self,
        name: str,
        x_frac: float,
        y_frac: float,
        voltage_v: float,
        output_resistance_ohm: float,
        inductance_h: float = 0.0,
    ) -> None:
        """Attach a VR output at fractional die coordinates
        (:meth:`GridACPDN.add_source` semantics)."""
        if not 0.0 <= x_frac <= 1.0 or not 0.0 <= y_frac <= 1.0:
            raise ConfigError("source position must be inside the die")
        ix = min(int(round(x_frac * (self.nx - 1))), self.nx - 1)
        iy = min(int(round(y_frac * (self.ny - 1))), self.ny - 1)
        self._add_source_at(
            name, ix, iy, voltage_v, output_resistance_ohm, inductance_h
        )

    def clear_sources(self) -> None:
        """Remove all attached sources (and any ring bus)."""
        self._sources.clear()
        self._ring_bus_ohm = None
        self._structures.clear()

    def connect_sources_with_ring_bus(
        self, segment_resistance_ohm: float
    ) -> None:
        """Join consecutive sources with a dedicated ring bus."""
        if segment_resistance_ohm <= 0:
            raise ConfigError("ring segment resistance must be positive")
        if len(self._sources) < 3:
            raise ConfigError("a ring bus needs at least three sources")
        self._ring_bus_ohm = segment_resistance_ohm
        self._structures.clear()

    @property
    def source_names(self) -> list[str]:
        """Names of attached sources in attachment order."""
        return [s[0] for s in self._sources]

    # -- decap maps (GridACPDN semantics) ----------------------------------------

    def set_decap_density(
        self,
        density,
        cap_per_unit_f: float,
        esr_per_unit_ohm: float = 0.0,
        esl_per_unit_h: float = 0.0,
    ) -> None:
        """Attach decaps as a per-node *density* of one unit cell.

        A uniform density keeps the per-node shunt conductance uniform,
        which is what makes the structured engine's correction rank
        stay small.
        """
        if cap_per_unit_f <= 0:
            raise ConfigError("unit decap capacitance must be positive")
        if esr_per_unit_ohm < 0 or esl_per_unit_h < 0:
            raise ConfigError("unit decap ESR/ESL must be non-negative")
        alpha = np.asarray(density, dtype=float)
        if alpha.ndim == 0:
            alpha = np.full((self.ny, self.nx), float(alpha))
        if alpha.shape != (self.ny, self.nx):
            raise ConfigError(
                f"density map must be shaped ({self.ny}, {self.nx})"
            )
        if np.any(alpha < 0):
            raise ConfigError("decap density must be non-negative")
        if not np.any(alpha > 0):
            raise ConfigError("decap density map is all zero")
        self._decap = (
            "density",
            alpha.copy(),
            float(cap_per_unit_f),
            float(esr_per_unit_ohm),
            float(esl_per_unit_h),
        )
        self._structures.clear()

    def set_decap_map(self, cap_f, esr_ohm=0.0, esl_h=0.0) -> None:
        """Attach arbitrary per-node decap maps (scalars broadcast; a
        node with zero capacitance carries no decap branch)."""
        if np.ndim(cap_f) == 0 and np.ndim(esr_ohm) == 0 and np.ndim(esl_h) == 0:
            self.set_decap_density(
                1.0, float(cap_f), float(esr_ohm), float(esl_h)
            )
            return

        def as_map(value, label: str) -> np.ndarray:
            arr = np.asarray(value, dtype=float)
            if arr.ndim == 0:
                arr = np.full((self.ny, self.nx), float(arr))
            if arr.shape != (self.ny, self.nx):
                raise ConfigError(
                    f"{label} map must be shaped ({self.ny}, {self.nx})"
                )
            if np.any(arr < 0):
                raise ConfigError(f"{label} map must be non-negative")
            return arr.copy()

        c = as_map(cap_f, "capacitance")
        if not np.any(c > 0):
            raise ConfigError("capacitance map is all zero")
        self._decap = ("map", c, as_map(esr_ohm, "ESR"), as_map(esl_h, "ESL"))
        self._structures.clear()

    @property
    def total_decap_farad(self) -> float:
        """Total attached decoupling capacitance over the mesh."""
        if self._decap is None:
            return 0.0
        return float(self._decap_arrays()[0].sum())

    def _decap_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened per-node (C, ESR, ESL) arrays; zero C = no decap."""
        cells = self.nx * self.ny
        if self._decap is None:
            zero = np.zeros(cells)
            return zero, zero.copy(), zero.copy()
        if self._decap[0] == "density":
            _, alpha, c_u, esr_u, esl_u = self._decap
            alpha = alpha.ravel()
            live = alpha > 0
            c = np.where(live, alpha * c_u, 0.0)
            with np.errstate(divide="ignore"):
                esr = np.where(live, esr_u / np.where(live, alpha, 1.0), 0.0)
                esl = np.where(live, esl_u / np.where(live, alpha, 1.0), 0.0)
            return c, esr, esl
        _, c, esr, esl = self._decap
        return c.ravel().copy(), esr.ravel().copy(), esl.ravel().copy()

    # -- edge parameters --------------------------------------------------------

    @property
    def edge_resistance_x_ohm(self) -> float:
        """Resistance of one x-direction edge (R_sq * dx / dy_strip)."""
        if self.nx < 2:
            raise ConfigError("a 1-wide grid has no x edges")
        dx = self.width_m / (self.nx - 1)
        strip = self.height_m / self.ny
        return self.sheet_ohm_sq * dx / strip

    @property
    def edge_resistance_y_ohm(self) -> float:
        """Resistance of one y-direction edge."""
        if self.ny < 2:
            raise ConfigError("a 1-tall grid has no y edges")
        dy = self.height_m / (self.ny - 1)
        strip = self.width_m / self.nx
        return self.sheet_ohm_sq * dy / strip

    def _ring_segments(self) -> tuple[np.ndarray, np.ndarray]:
        """Ring-bus segment endpoint rows, degenerates skipped."""
        if self._ring_bus_ohm is None:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        rows_a: list[int] = []
        rows_b: list[int] = []
        count = len(self._sources)
        for k in range(count):
            _, ix_a, iy_a, *_ = self._sources[k]
            _, ix_b, iy_b, *_ = self._sources[(k + 1) % count]
            if (ix_a, iy_a) == (ix_b, iy_b):
                continue
            rows_a.append(iy_a * self.nx + ix_a)
            rows_b.append(iy_b * self.nx + ix_b)
        return (
            np.asarray(rows_a, dtype=np.int64),
            np.asarray(rows_b, dtype=np.int64),
        )

    # -- structure cache --------------------------------------------------------

    def _structure_key(self, dt_s: float) -> tuple:
        if self._decap is None:
            decap_key: tuple = ("none",)
        elif self._decap[0] == "density":
            _, alpha, c_u, esr_u, esl_u = self._decap
            decap_key = ("density", alpha.tobytes(), c_u, esr_u, esl_u)
        else:
            _, c, esr, esl = self._decap
            decap_key = ("map", c.tobytes(), esr.tobytes(), esl.tobytes())
        return (
            self.nx,
            self.ny,
            self.width_m,
            self.height_m,
            self.sheet_ohm_sq,
            self.edge_inductance_x_h,
            self.edge_inductance_y_h,
            tuple((ix, iy, v, r, l) for _, ix, iy, v, r, l in self._sources),
            self._ring_bus_ohm,
            decap_key,
            float(dt_s),
        )

    def _structure(self, dt_s: float) -> _TransientStructure:
        key = self._structure_key(dt_s)
        structure = self._structures.get(key)
        if structure is None:
            ring_a, ring_b = self._ring_segments()
            dec_c, dec_esr, dec_esl = self._decap_arrays()
            attach = np.asarray(
                [iy * self.nx + ix for _, ix, iy, *_ in self._sources],
                dtype=np.int64,
            )
            structure = _TransientStructure(
                self.nx,
                self.ny,
                dt_s,
                self.edge_resistance_x_ohm if self.nx > 1 else None,
                self.edge_resistance_y_ohm if self.ny > 1 else None,
                self.edge_inductance_x_h,
                self.edge_inductance_y_h,
                ring_a,
                ring_b,
                self._ring_bus_ohm,
                dec_c,
                dec_esr,
                dec_esl,
                attach,
                np.asarray([s[3] for s in self._sources], dtype=float),
                np.asarray([s[4] for s in self._sources], dtype=float),
                np.asarray([s[5] for s in self._sources], dtype=float),
            )
            self._structures[key] = structure
        return structure

    # -- simulation -------------------------------------------------------------

    def _resolve_engine(self) -> str:
        if self.engine != "auto":
            return self.engine
        return (
            "structured"
            if self.nx * self.ny >= STRUCTURED_AUTO_MIN_CELLS
            else "factorized"
        )

    def _probe_rows(self, probe_nodes) -> tuple[int, ...]:
        rows: list[int] = []
        for probe in probe_nodes:
            if np.ndim(probe) == 0:
                row = int(probe)
            else:
                ix, iy = probe
                row = int(iy) * self.nx + int(ix)
            if not 0 <= row < self.nx * self.ny:
                raise ConfigError(f"probe node {probe!r} outside the mesh")
            rows.append(row)
        return tuple(rows)

    def _normalize_waveforms(self, waveforms_a) -> np.ndarray:
        """Coerce to (T, S, cells); accepts (S, cells), (S, ny, nx),
        (T, S, cells), (T, S, ny, nx), or a sequence of traces."""
        cells = self.nx * self.ny
        arr = np.asarray(waveforms_a, dtype=float)
        if arr.ndim == 2 and arr.shape[1] == cells:
            arr = arr[None]
        elif arr.ndim == 3 and arr.shape[1:] == (self.ny, self.nx):
            arr = arr.reshape(1, arr.shape[0], cells)
        elif arr.ndim == 3 and arr.shape[2] == cells:
            pass
        elif arr.ndim == 4 and arr.shape[2:] == (self.ny, self.nx):
            arr = arr.reshape(arr.shape[0], arr.shape[1], cells)
        else:
            raise ConfigError(
                "waveforms must be (steps, cells)/(steps, ny, nx) per "
                f"trace with cells={cells}; got shape {arr.shape}"
            )
        if arr.shape[1] < 2:
            raise ConfigError("waveforms need at least two samples")
        if np.any(arr < 0):
            raise ConfigError("sink-current waveforms must be non-negative")
        return np.ascontiguousarray(arr)

    def simulate(
        self,
        waveform_a: np.ndarray,
        dt_s: float,
        probe_nodes=(),
        settle_band_v: float | None = None,
    ) -> GridTransientResult:
        """Step one per-node sink-current waveform.

        ``waveform_a`` is (steps + 1, cells) or (steps + 1, ny, nx):
        sample 0 sets the pre-trace DC operating point and sample k is
        the load held over ``(t_{k-1}, t_k]`` (a left-open staircase,
        so a step at t = 0⁺ is simply a change from sample 0 to
        sample 1).
        """
        return self.simulate_many(
            self._normalize_waveforms(waveform_a),
            dt_s,
            probe_nodes=probe_nodes,
            settle_band_v=settle_band_v,
        )[0]

    def simulate_many(
        self,
        waveforms_a,
        dt_s: float,
        probe_nodes=(),
        settle_band_v: float | None = None,
    ) -> list[GridTransientResult]:
        """Advance T traces together: per step, one multi-RHS
        back-substitution (or batched transform pair) covers the whole
        ensemble."""
        waves = self._normalize_waveforms(waveforms_a)
        return self._simulate_batch(
            waves, dt_s, self._probe_rows(probe_nodes), settle_band_v, None
        )

    def simulate_step(
        self,
        i_before_a: float,
        i_after_a: float,
        duration_s: float = 20e-6,
        dt_s: float = 2e-9,
        probe_nodes=(),
        settle_band_v: float | None = None,
    ) -> GridTransientResult:
        """Load-current step over the attached sink map at t = 0.

        The spatial profile comes from :meth:`set_sinks` /
        :meth:`set_sink_array`; the settle reference is the *exact*
        post-step DC solution (one extra solve), matching
        :meth:`PDNTransient.simulate_step` semantics.
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ConfigError("duration and dt must be positive")
        if duration_s < 10 * dt_s:
            raise ConfigError("duration must cover at least 10 steps")
        if i_before_a < 0 or i_after_a < 0:
            raise ConfigError("load currents must be non-negative")
        if self._sink_map is None:
            raise ConfigError(
                "attach a sink map first (set_sinks/set_sink_array)"
            )
        profile = self._sink_map.ravel()
        total = profile.sum()
        if total <= 0:
            raise ConfigError("sink map carries no current")
        profile = profile / total
        steps = int(round(duration_s / dt_s))
        waves = np.empty((1, steps + 1, profile.size))
        waves[0, 0] = i_before_a * profile
        waves[0, 1:] = i_after_a * profile
        return self._simulate_batch(
            waves,
            dt_s,
            self._probe_rows(probe_nodes),
            settle_band_v,
            (i_after_a * profile)[:, None],
        )[0]

    # -- the stepping core ------------------------------------------------------

    def _simulate_batch(
        self,
        waves: np.ndarray,
        dt_s: float,
        probe_rows: tuple[int, ...],
        settle_band_v: float | None,
        final_load: np.ndarray | None,
    ) -> list[GridTransientResult]:
        if dt_s <= 0:
            raise ConfigError("dt must be positive")
        if not self._sources:
            raise ConfigError("attach at least one source first")
        structure = self._structure(dt_s)
        mode = self._resolve_engine()
        if mode == "structured":
            try:
                return self._run(
                    structure, waves, probe_rows, settle_band_v,
                    final_load, "structured",
                )
            except StructuredSolveError:
                if self.engine == "structured":
                    raise
        return self._run(
            structure, waves, probe_rows, settle_band_v,
            final_load, "factorized",
        )

    def _run(
        self,
        st: _TransientStructure,
        waves: np.ndarray,
        probe_rows: tuple[int, ...],
        settle_band_v: float | None,
        final_load: np.ndarray | None,
        mode: str,
    ) -> list[GridTransientResult]:
        # The step loop works in ROW layout — (traces, cells),
        # C-contiguous — so each trace's field is a contiguous
        # (ny, nx) block: the structured solve views it with zero
        # transpose copies, and edge scatters are stencil slices.
        n_traces, samples, cells = waves.shape
        if mode == "structured":
            fast = st.fast()
            dc_fast = st.dc_fast()
            solve = fast.solve_rows

            def dc_solve_rows(b: np.ndarray) -> np.ndarray:
                return np.ascontiguousarray(
                    np.asarray(dc_fast.solve_reduced(b.T)).T
                )

        else:
            solver = st.solver()
            dc_solver = st.dc_solver()

            def solve(b: np.ndarray) -> np.ndarray:  # type: ignore[misc]
                return np.ascontiguousarray(
                    solver.solve_many(np.ascontiguousarray(b.T)).T
                )

            def dc_solve_rows(b: np.ndarray) -> np.ndarray:
                return np.ascontiguousarray(
                    dc_solver.solve_many(np.ascontiguousarray(b.T)).T
                )

        volt = st.volt
        attach = st.attach
        src_inject = st.g_dc * volt  # DC source Norton injection

        def dc_voltages(load: np.ndarray) -> np.ndarray:
            b = -load
            np.add.at(b, (slice(None), attach), src_inject)
            return dc_solve_rows(b)

        # One upfront (samples, traces, cells) transpose keeps every
        # load frame a contiguous row block inside the step loop.
        waves_t = np.ascontiguousarray(waves.swapaxes(0, 1))

        # t = 0: DC operating point per trace.
        v = dc_voltages(waves_t[0])
        v_pre = v.copy()
        v_min = v.copy()
        min_trace = np.empty((samples, n_traces))
        min_trace[0] = v.min(axis=1)
        probes = np.asarray(probe_rows, dtype=np.int64)
        probe_wave = np.empty((samples, probes.size, n_traces))
        if probes.size:
            probe_wave[0] = v[:, probes].T

        # Branch states at t = 0 (exact DC algebraic values).  KVL
        # eliminates every inductor-voltage state: a series R-L(-C)
        # branch satisfies v_L = (branch drop) - R·i - v_C identically,
        # so the trapezoidal history needs only the branch current and
        # the previous node voltages,
        #
        #   H = (2·g·w - 1)·i + g·(v_prev - 2·v_C)   (decap shunt)
        #   H = (2·g·w - 1)·i + g·Δv_prev            (mesh edge)
        #
        # (the closed form follows from g = 1/(R + w + hc)); the
        # backward-Euler form drops the voltage terms to g·w·i (- g·v_C).
        # Halving the live state arrays halves the memory traffic of a
        # batched step, which is what bounds wide-batch throughput.
        dec = st.dec_rows
        i_b = np.zeros((n_traces, dec.size))
        v_c = v[:, dec].copy()
        i_s = st.g_dc * (volt - v[:, attach])
        v_ls = np.zeros((n_traces, attach.size))
        track_x = st.w_x > 0 and st.x_a.size > 0
        track_y = st.w_y > 0 and st.y_a.size > 0

        g_b, w_b, hc_b = st.g_b, st.w_b, st.hc_b
        g_s, w_s = st.g_s, st.w_s
        # Fused companion coefficients, hoisted out of the step loop.
        gw_be_b = g_b * w_b
        gwr_b = 2.0 * gw_be_b - 1.0
        gw_be_x, gw_be_y = st.g_x * st.w_x, st.g_y * st.w_y
        gwr_x, gwr_y = 2.0 * gw_be_x - 1.0, 2.0 * gw_be_y - 1.0
        emf = g_s * volt
        # Scatter strategy: each (traces, cells) row block views as
        # (traces, ny, nx) fields, and mesh_edge_rows orders edges
        # row-major, so edge scatters and Δv gathers are stencil
        # slices — no index arrays at all.  Decap rows are unique by
        # construction (full-coverage maps degenerate to whole-array
        # arithmetic); only the handful of source attach rows may
        # repeat.
        dec_all = dec.size == cells
        attach_unique = np.unique(attach).size == attach.size
        nx3, ny3 = st.nx, st.ny
        v3 = v.reshape(n_traces, ny3, nx3)

        # Step-loop buffers, allocated once: every per-step elementwise
        # op below writes into preallocated storage.
        buf_b = np.empty((n_traces, cells))
        b3 = buf_b.reshape(n_traces, ny3, nx3)
        hist_b = np.empty((n_traces, dec.size))
        i_new_b = np.empty((n_traces, dec.size))
        dec_t = np.empty((n_traces, dec.size))
        if track_x:
            dv0 = v3[:, :, :-1] - v3[:, :, 1:]
            i_x = st.g_x_dc * dv0
            gdvx = st.g_x * dv0  # carries g_x·Δv_prev between steps
            h_x = np.empty_like(i_x)
        if track_y:
            dv0 = v3[:, :-1, :] - v3[:, 1:, :]
            i_y = st.g_y_dc * dv0
            gdvy = st.g_y * dv0
            h_y = np.empty_like(i_y)

        kick = not (st.exact_jump and samples > 1)
        if not kick:
            # Exact t = 0+ algebraic jump (see _TransientStructure):
            # inductor currents and capacitor voltages hold, the node
            # voltages re-solve on the frozen-inductor network with
            # the post-step load, and every branch history is rebuilt
            # from the right limits so trapezoidal integration starts
            # consistently.  Sample 0 keeps the pre-step DC values —
            # same convention as the lumped oracle.
            jump = st.jump_solver()
            b = buf_b
            np.negative(waves_t[1], out=b)
            b += st.jump_g_dec * v
            if track_x and st.jump_x_frozen:
                b3[:, :, :-1] -= i_x
                b3[:, :, 1:] += i_x
            if track_y and st.jump_y_frozen:
                b3[:, :-1, :] -= i_y
                b3[:, 1:, :] += i_y
            frozen = st.jump_src_frozen
            if np.any(frozen):
                np.add.at(
                    b, (slice(None), attach[frozen]), i_s[:, frozen]
                )
            if np.any(~frozen):
                np.add.at(
                    b,
                    (slice(None), attach[~frozen]),
                    (st.g_dc * volt)[~frozen],
                )
            v = np.ascontiguousarray(jump.solve_many(b.T).T)
            v3 = v.reshape(n_traces, ny3, nx3)
            # Right-limit branch states: decap currents jump through
            # the ESR (ESL = 0 on this path), resistive VR branches
            # re-bias, inductive ones keep their current and absorb
            # the residual drop on v_L.
            np.subtract(v, v_c, out=i_b)
            i_b *= st.jump_g_dec
            i_s = np.where(
                st.w_s > 0, i_s, st.g_dc * (volt - v[:, attach])
            )
            v_ls = volt - v[:, attach] - st.rout * i_s
            if track_x:
                np.subtract(v3[:, :, :-1], v3[:, :, 1:], out=gdvx)
                gdvx *= st.g_x
            if track_y:
                np.subtract(v3[:, :-1, :], v3[:, 1:, :], out=gdvy)
                gdvy *= st.g_y

        def advance(load: np.ndarray, backward_euler: bool) -> None:
            """One companion-model step (shared matrix, TR or BE form)."""
            nonlocal v, v3, i_b, i_new_b, i_s, v_ls, hist_b, dec_t, v_c
            nonlocal h_x, gdvx, h_y, gdvy
            b = buf_b
            np.negative(load, out=b)
            if dec.size:
                if backward_euler:
                    np.multiply(gw_be_b, i_b, out=hist_b)
                    np.multiply(g_b, v_c, out=dec_t)
                    hist_b -= dec_t
                else:
                    np.multiply(gwr_b, i_b, out=hist_b)
                    np.subtract(v if dec_all else v[:, dec], v_c, out=dec_t)
                    dec_t -= v_c
                    dec_t *= g_b
                    hist_b += dec_t
                if dec_all:
                    b -= hist_b
                else:
                    b[:, dec] -= hist_b
            if backward_euler:
                src_hist = emf + g_s * (w_s * i_s)
            else:
                src_hist = emf + g_s * (w_s * i_s + v_ls)
            if attach_unique:
                b[:, attach] += src_hist
            else:
                np.add.at(b, (slice(None), attach), src_hist)
            if track_x:
                np.multiply(
                    gw_be_x if backward_euler else gwr_x, i_x, out=h_x
                )
                if not backward_euler:
                    h_x += gdvx
                b3[:, :, :-1] -= h_x
                b3[:, :, 1:] += h_x
            if track_y:
                np.multiply(
                    gw_be_y if backward_euler else gwr_y, i_y, out=h_y
                )
                if not backward_euler:
                    h_y += gdvy
                b3[:, :-1, :] -= h_y
                b3[:, 1:, :] += h_y

            v = solve(b)
            v3 = v.reshape(n_traces, ny3, nx3)

            if dec.size:
                np.multiply(g_b, v if dec_all else v[:, dec], out=i_new_b)
                i_new_b += hist_b
                if backward_euler:
                    np.multiply(hc_b, i_new_b, out=dec_t)
                else:
                    np.add(i_new_b, i_b, out=dec_t)
                    dec_t *= hc_b
                v_c += dec_t
                i_b, i_new_b = i_new_b, i_b
            i_new_s = src_hist - g_s * v[:, attach]
            if backward_euler:
                v_ls = w_s * (i_new_s - i_s)
            else:
                v_ls = w_s * (i_new_s - i_s) - v_ls
            i_s = i_new_s
            if track_x:
                np.subtract(v3[:, :, :-1], v3[:, :, 1:], out=gdvx)
                gdvx *= st.g_x
                np.add(gdvx, h_x, out=i_x)
            if track_y:
                np.subtract(v3[:, :-1, :], v3[:, 1:, :], out=gdvy)
                gdvy *= st.g_y
                np.add(gdvy, h_y, out=i_y)

        for k in range(1, samples):
            load = waves_t[k]
            if k == 1 and kick:
                # Two backward-Euler half-steps share the trapezoidal
                # matrix and damp the t = 0⁺ load discontinuity on
                # stiff structures (see smooth_startup).
                advance(load, backward_euler=True)
                advance(load, backward_euler=True)
            else:
                advance(load, backward_euler=False)
            np.minimum(v_min, v, out=v_min)
            min_trace[k] = v.min(axis=1)
            if probes.size:
                probe_wave[k] = v[:, probes].T

        # Settle reference: exact post-step DC (simulate_step) or the
        # last sample.
        if final_load is not None:
            if final_load.shape[1] == 1 and n_traces > 1:
                final_load = np.repeat(final_load, n_traces, axis=1)
            v_final = dc_voltages(np.ascontiguousarray(final_load.T))
        else:
            v_final = v

        band = (
            settle_band_v
            if settle_band_v is not None
            else 0.02 * float(np.abs(volt).max())
        )
        time = np.arange(samples) * st.dt_s
        shape = (self.ny, self.nx)
        results: list[GridTransientResult] = []
        for t in range(n_traces):
            droop_map = np.clip(v_pre[t] - v_min[t], 0.0, None)
            _, settle = droop_and_settle(
                time,
                min_trace[:, t],
                float(min_trace[0, t]),
                float(v_final[t].min()),
                band,
            )
            results.append(
                GridTransientResult(
                    time_s=time,
                    v_pre_map=v_pre[t].reshape(shape).copy(),
                    v_min_map=v_min[t].reshape(shape).copy(),
                    v_final_map=v_final[t].reshape(shape).copy(),
                    min_voltage_trace_v=min_trace[:, t].copy(),
                    probe_rows=probe_rows,
                    probe_voltages_v=probe_wave[:, :, t].copy(),
                    droop_v=float(droop_map.max()),
                    settle_time_s=settle,
                    engine=mode,
                )
            )
        return results
