"""Minimal pluggable array backend for the numerical kernels.

The compiled stamps and the structured (fast-Poisson / PCG) solver
kernels do their array work through an :class:`ArrayBackend` instead
of importing numpy directly, so the same code can run on a GPU array
library later.  Selection is by name:

* ``"numpy"`` — the default; ``xp`` is numpy and the DCT/DST
  transforms come from ``scipy.fft``.
* ``"cupy"`` — GPU arrays via CuPy (transforms from
  ``cupyx.scipy.fft`` when present, else a host round-trip).
* ``"torch"`` — PyTorch tensors for the dense algebra; transforms
  round-trip through scipy on the host.

The active backend is chosen by the ``REPRO_BACKEND`` environment
variable (checked per call, cached per name).  A requested library
that is not importable degrades to numpy with a *single* warning per
process — an absent GPU stack must never break a CPU run.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np
import scipy.fft as sfft

from ..errors import ConfigError

#: Environment variable naming the requested backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Recognized backend names.
KNOWN_BACKENDS = ("numpy", "cupy", "torch")


@dataclass(frozen=True)
class ArrayBackend:
    """One array library behind a numpy-flavoured namespace.

    Attributes:
        name: resolved backend name ("numpy" after a fallback).
        requested: the name that was asked for (differs from ``name``
            only when the requested library was missing).
        xp: the array namespace (numpy, cupy, or a torch adapter).
        is_gpu: True when arrays live off-host.
    """

    name: str
    requested: str
    xp: Any
    is_gpu: bool = False
    _to_numpy: Callable[[Any], np.ndarray] = field(
        default=np.asarray, repr=False
    )
    _from_numpy: Callable[[np.ndarray], Any] = field(
        default=np.asarray, repr=False
    )
    _dctn: Callable[..., Any] | None = field(default=None, repr=False)
    _idctn: Callable[..., Any] | None = field(default=None, repr=False)

    def asarray(self, values, dtype=None):
        """``xp.asarray`` with an optional dtype."""
        if dtype is None:
            return self.xp.asarray(values)
        return self.xp.asarray(values, dtype=dtype)

    def to_numpy(self, values) -> np.ndarray:
        """Bring an array back to host numpy (identity on numpy)."""
        return self._to_numpy(values)

    def from_numpy(self, values: np.ndarray):
        """Move a host array onto the backend."""
        return self._from_numpy(values)

    def dctn(self, values, axes, type: int = 2, norm: str = "ortho"):
        """N-D DCT on the backend (host round-trip when unsupported)."""
        if self._dctn is not None:
            return self._dctn(values, type=type, axes=axes, norm=norm)
        host = sfft.dctn(self.to_numpy(values), type=type, axes=axes, norm=norm)
        return self.from_numpy(host)

    def idctn(self, values, axes, type: int = 2, norm: str = "ortho"):
        """Inverse of :meth:`dctn` with matching type and norm."""
        if self._idctn is not None:
            return self._idctn(values, type=type, axes=axes, norm=norm)
        host = sfft.idctn(
            self.to_numpy(values), type=type, axes=axes, norm=norm
        )
        return self.from_numpy(host)


def _numpy_backend(requested: str = "numpy") -> ArrayBackend:
    return ArrayBackend(
        name="numpy",
        requested=requested,
        xp=np,
        is_gpu=False,
        _to_numpy=np.asarray,
        _from_numpy=np.asarray,
        _dctn=sfft.dctn,
        _idctn=sfft.idctn,
    )


def _cupy_backend() -> ArrayBackend:
    import cupy  # noqa: F401 — availability probe

    try:
        from cupyx.scipy.fft import dctn as cp_dctn
        from cupyx.scipy.fft import idctn as cp_idctn
    except ImportError:  # pragma: no cover - depends on cupy build
        cp_dctn = cp_idctn = None
    return ArrayBackend(
        name="cupy",
        requested="cupy",
        xp=cupy,
        is_gpu=True,
        _to_numpy=cupy.asnumpy,
        _from_numpy=cupy.asarray,
        _dctn=cp_dctn,
        _idctn=cp_idctn,
    )


class _TorchNamespace:
    """The thin numpy-flavoured face of torch the kernels rely on."""

    def __init__(self, torch) -> None:  # pragma: no cover - needs torch
        self._torch = torch

    def __getattr__(self, item):  # pragma: no cover - needs torch
        return getattr(self._torch, item)

    def asarray(self, values, dtype=None):  # pragma: no cover
        tensor = self._torch.as_tensor(values)
        if dtype is not None:
            tensor = tensor.to(getattr(self._torch, np.dtype(dtype).name))
        return tensor


def _torch_backend() -> ArrayBackend:  # pragma: no cover - needs torch
    import torch

    return ArrayBackend(
        name="torch",
        requested="torch",
        xp=_TorchNamespace(torch),
        is_gpu=torch.cuda.is_available(),
        _to_numpy=lambda t: t.detach().cpu().numpy(),
        _from_numpy=torch.as_tensor,
    )


_LOADERS: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _numpy_backend,
    "cupy": _cupy_backend,
    "torch": _torch_backend,
}

_CACHE: dict[str, ArrayBackend] = {}


def resolve_backend(name: str | None = None) -> ArrayBackend:
    """The backend for ``name`` (default: ``REPRO_BACKEND`` or numpy).

    Unknown names raise :class:`~repro.errors.ConfigError`; a known
    but unimportable library warns once and falls back to numpy.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "numpy"
    name = name.lower()
    if name not in _LOADERS:
        raise ConfigError(
            f"unknown array backend {name!r}; expected one of "
            f"{', '.join(KNOWN_BACKENDS)}"
        )
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    try:
        backend = _LOADERS[name]()
    except ImportError:
        warnings.warn(
            f"{BACKEND_ENV_VAR}={name} requested but {name!r} is not "
            "importable; falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = ArrayBackend(
            name="numpy",
            requested=name,
            xp=np,
            _to_numpy=np.asarray,
            _from_numpy=np.asarray,
            _dctn=sfft.dctn,
            _idctn=sfft.idctn,
        )
    _CACHE[name] = backend
    return backend


def active_backend() -> ArrayBackend:
    """The backend selected by the environment (numpy by default)."""
    return resolve_backend(None)


def _reset_backend_cache() -> None:
    """Drop cached backends (tests re-trigger the fallback warning)."""
    _CACHE.clear()
