"""Die power (current-demand) maps.

The paper's per-VR current-sharing observations (16–27 A across the
A1 periphery VRs, 10–93 A across the A2 under-die VRs) imply a
non-uniform die demand profile.  The paper does not publish its map;
we model demand as a mixture of a uniform floor and a central Gaussian
hotspot — the standard first-order shape for a compute die whose core
cluster sits mid-die (DESIGN.md substitution #5).

A :class:`PowerMap` is a density over the unit square, scaled to a
total current.  ``cell_currents`` integrates it over a grid for the
PDN solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigError

DensityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PowerMap:
    """A normalized current-demand density over the unit square.

    Attributes:
        name: label for reports.
        density: vectorized callable ``f(x, y)`` over [0,1]² returning
            non-negative relative density (need not integrate to 1;
            the map is renormalized when sampled).
    """

    name: str
    density: DensityFn

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def uniform() -> "PowerMap":
        """Uniform demand across the die."""
        return PowerMap("uniform", lambda x, y: np.ones_like(x))

    @staticmethod
    def gaussian(
        center: tuple[float, float] = (0.5, 0.5),
        sigma: float = 0.15,
        floor: float = 0.0,
    ) -> "PowerMap":
        """A Gaussian hotspot plus a uniform floor.

        Args:
            center: hotspot center in unit-square coordinates.
            sigma: hotspot radius (standard deviation, unit-square).
            floor: relative uniform floor added under the Gaussian
                (0 = pure hotspot; 1 = floor integrates to the same
                total as the Gaussian).
        """
        if sigma <= 0:
            raise ConfigError("sigma must be positive")
        if floor < 0:
            raise ConfigError("floor must be non-negative")
        cx, cy = center
        norm = 1.0 / (2.0 * math.pi * sigma**2)

        def density(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            r2 = (x - cx) ** 2 + (y - cy) ** 2
            return floor + norm * np.exp(-r2 / (2.0 * sigma**2))

        return PowerMap(f"gaussian(s={sigma},floor={floor})", density)

    @staticmethod
    def hotspot_mixture(
        uniform_fraction: float = 0.30, sigma: float = 0.10
    ) -> "PowerMap":
        """The default "compute die" map: ``uniform_fraction`` of the
        current drawn uniformly, the rest in a central Gaussian.

        The default parameters are calibrated so that the A1/A2 per-VR
        current spreads land near the paper's reported ranges.
        """
        if not 0.0 <= uniform_fraction <= 1.0:
            raise ConfigError("uniform fraction must be in [0, 1]")
        if sigma <= 0:
            raise ConfigError("sigma must be positive")
        norm = 1.0 / (2.0 * math.pi * sigma**2)

        def density(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
            hotspot = norm * np.exp(-r2 / (2.0 * sigma**2))
            return uniform_fraction + (1.0 - uniform_fraction) * hotspot

        return PowerMap(
            f"hotspot_mixture(u={uniform_fraction},s={sigma})", density
        )

    @staticmethod
    def multi_hotspot(
        centers: list[tuple[float, float]],
        sigma: float = 0.08,
        uniform_fraction: float = 0.4,
    ) -> "PowerMap":
        """Several equal hotspots over a uniform floor (chiplet-style)."""
        if not centers:
            raise ConfigError("at least one hotspot center required")
        if sigma <= 0:
            raise ConfigError("sigma must be positive")
        if not 0.0 <= uniform_fraction <= 1.0:
            raise ConfigError("uniform fraction must be in [0, 1]")
        norm = 1.0 / (2.0 * math.pi * sigma**2 * len(centers))

        def density(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            total = np.full_like(x, float(uniform_fraction))
            for cx, cy in centers:
                r2 = (x - cx) ** 2 + (y - cy) ** 2
                total = total + (1.0 - uniform_fraction) * norm * np.exp(
                    -r2 / (2.0 * sigma**2)
                )
            return total

        return PowerMap(f"multi_hotspot(n={len(centers)})", density)

    @staticmethod
    def from_array(values: np.ndarray) -> "PowerMap":
        """Build a map from a 2-D array of relative cell densities
        (nearest-cell sampling; array indexed [row=y][col=x])."""
        grid = np.asarray(values, dtype=float)
        if grid.ndim != 2 or grid.size == 0:
            raise ConfigError("expected a non-empty 2-D array")
        if np.any(grid < 0):
            raise ConfigError("densities must be non-negative")
        if not np.any(grid > 0):
            raise ConfigError("at least one density must be positive")
        ny, nx = grid.shape

        def density(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            ix = np.clip((x * nx).astype(int), 0, nx - 1)
            iy = np.clip((y * ny).astype(int), 0, ny - 1)
            return grid[iy, ix]

        return PowerMap(f"from_array({ny}x{nx})", density)

    # -- sampling --------------------------------------------------------------

    def cell_currents(
        self, nx: int, ny: int, total_current_a: float
    ) -> np.ndarray:
        """Integrate the map onto an ``ny x nx`` grid of cells.

        Returns an array of per-cell sink currents summing exactly to
        ``total_current_a`` (midpoint rule + renormalization).
        """
        if nx < 1 or ny < 1:
            raise ConfigError("grid must be at least 1x1")
        if total_current_a <= 0:
            raise ConfigError("total current must be positive")
        xs = (np.arange(nx) + 0.5) / nx
        ys = (np.arange(ny) + 0.5) / ny
        grid_x, grid_y = np.meshgrid(xs, ys)
        raw = np.asarray(self.density(grid_x, grid_y), dtype=float)
        if raw.shape != (ny, nx):
            raise ConfigError("density function returned the wrong shape")
        if np.any(raw < 0):
            raise ConfigError("density produced negative values")
        total = raw.sum()
        if total <= 0:
            raise ConfigError("density integrates to zero")
        return raw * (total_current_a / total)

    def peak_to_mean(self, samples: int = 128) -> float:
        """Ratio of peak to mean density (hotspot severity metric)."""
        cells = self.cell_currents(samples, samples, 1.0)
        return float(cells.max() / cells.mean())


def hotspot_trajectory(
    waypoints: list[tuple[float, float]],
    steps: int,
    nx: int,
    ny: int,
    total_current_a: float,
    sigma: float = 0.10,
    floor: float = 0.30,
) -> np.ndarray:
    """A moving hotspot as a time-varying sink array, (steps, ny, nx).

    The hotspot center glides along the piecewise-linear path through
    ``waypoints`` (unit-square coordinates), one Gaussian-plus-floor
    map per sample, each integrating to ``total_current_a`` — the
    migrating-workload drive signal for
    :meth:`~repro.pdn.grid_transient.GridTransientPDN.simulate`
    (every row is a valid ``set_sink_array`` input).
    """
    if steps < 2:
        raise ConfigError("a trajectory needs at least two samples")
    if len(waypoints) < 2:
        raise ConfigError("a trajectory needs at least two waypoints")
    points = np.asarray(waypoints, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ConfigError("waypoints must be (x, y) pairs")
    if np.any(points < 0.0) or np.any(points > 1.0):
        raise ConfigError("waypoints must lie inside the unit square")
    # Arc-length parameterization so the hotspot moves at constant
    # speed regardless of waypoint spacing.
    seg = np.linalg.norm(np.diff(points, axis=0), axis=1)
    arc = np.concatenate([[0.0], np.cumsum(seg)])
    if arc[-1] == 0.0:
        centers = np.repeat(points[:1], steps, axis=0)
    else:
        at = np.linspace(0.0, arc[-1], steps)
        centers = np.column_stack(
            [np.interp(at, arc, points[:, 0]), np.interp(at, arc, points[:, 1])]
        )
    frames = np.empty((steps, ny, nx))
    for k, (cx, cy) in enumerate(centers):
        frames[k] = PowerMap.gaussian(
            (float(cx), float(cy)), sigma=sigma, floor=floor
        ).cell_currents(nx, ny, total_current_a)
    return frames
