"""Horizontal (lateral) interconnect resistance models.

Horizontal interconnect is the dominant loss component identified by
the paper: with PCB-level conversion, the full POL current crosses
tens of millimeters of copper planes.  Three analytic primitives cover
the geometries that appear in the packaging stack:

* ``plane_resistance`` — a rectangular run of a plane, R = R_sq * L/W.
* ``annular_spreading_resistance`` — radial flow between two radii of
  a plane (package ring from the BGA field into the die shadow).
* ``disk_edge_feed_resistance`` — the *effective* loss resistance of a
  uniformly loaded disk fed from its rim, R_eff = R_sq / (8*pi).
  This classic result follows from integrating I(r)^2 dR with current
  proportional to the enclosed load area, and is the right model for
  "VRs on the periphery feed a uniformly drawing die".

All functions return one-polarity resistance; callers double for a
power + ground rail pair (helpers provided).
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..materials import COPPER, Conductor


def sheet_resistance(
    thickness_m: float,
    material: Conductor = COPPER,
    layers_in_parallel: int = 1,
    temperature_c: float = 25.0,
) -> float:
    """Sheet resistance (ohm/square) of one or more parallel layers."""
    if layers_in_parallel < 1:
        raise ConfigError("need at least one layer")
    return material.sheet_resistance(thickness_m, temperature_c) / layers_in_parallel


def plane_resistance(
    sheet_ohm_sq: float, length_m: float, width_m: float
) -> float:
    """Resistance of a rectangular plane run: R = R_sq * (L / W)."""
    if sheet_ohm_sq <= 0:
        raise ConfigError("sheet resistance must be positive")
    if length_m < 0:
        raise ConfigError("length must be non-negative")
    if width_m <= 0:
        raise ConfigError("width must be positive")
    return sheet_ohm_sq * length_m / width_m


def annular_spreading_resistance(
    sheet_ohm_sq: float, inner_radius_m: float, outer_radius_m: float
) -> float:
    """Radial resistance of an annulus: R = R_sq * ln(r2/r1) / (2*pi).

    Models current converging from a large footprint (e.g. the BGA
    field) into a smaller one (the die shadow) through a plane.
    """
    if sheet_ohm_sq <= 0:
        raise ConfigError("sheet resistance must be positive")
    if inner_radius_m <= 0 or outer_radius_m <= 0:
        raise ConfigError("radii must be positive")
    if outer_radius_m < inner_radius_m:
        raise ConfigError("outer radius must be >= inner radius")
    return sheet_ohm_sq * math.log(outer_radius_m / inner_radius_m) / (2.0 * math.pi)


def disk_edge_feed_resistance(sheet_ohm_sq: float) -> float:
    """Effective loss resistance of a rim-fed, uniformly loaded disk.

    For a disk of radius ``a`` with uniform areal current sink fed
    from its rim, the enclosed current at radius r is
    I(r) = I_tot * r^2 / a^2 and the dissipated power is::

        P = Int_0^a I(r)^2 * R_sq / (2*pi*r) dr = I_tot^2 * R_sq / (8*pi)

    independent of the radius.  The returned value is that effective
    resistance ``R_sq / (8*pi)``; multiply by I_tot^2 for the loss.
    """
    if sheet_ohm_sq <= 0:
        raise ConfigError("sheet resistance must be positive")
    return sheet_ohm_sq / (8.0 * math.pi)


def distributed_cell_feed_resistance(
    sheet_ohm_sq: float, cell_count: int
) -> float:
    """Effective resistance when N distributed sources each feed their
    own uniformly loaded cell.

    Splitting a rim-fed disk into N independent, equally loaded cells
    divides the per-cell current by N and shrinks the geometry, so the
    total effective resistance falls as 1/N:

        R_eff = R_sq / (8 * pi * N)

    This models under-die (A2/A3 stage-2) output distribution.
    """
    if cell_count < 1:
        raise ConfigError("cell count must be >= 1")
    return disk_edge_feed_resistance(sheet_ohm_sq) / cell_count


def rail_pair(resistance_one_polarity_ohm: float) -> float:
    """Round-trip resistance for a symmetric power + ground pair."""
    if resistance_one_polarity_ohm < 0:
        raise ConfigError("resistance must be non-negative")
    return 2.0 * resistance_one_polarity_ohm


def equivalent_square_side(area_m2: float) -> float:
    """Side of the square with the given area (layout helper)."""
    if area_m2 <= 0:
        raise ConfigError("area must be positive")
    return math.sqrt(area_m2)


def equivalent_radius(area_m2: float) -> float:
    """Radius of the circle with the given area (for radial models)."""
    if area_m2 <= 0:
        raise ConfigError("area must be positive")
    return math.sqrt(area_m2 / math.pi)
