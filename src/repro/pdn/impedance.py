"""AC impedance analysis of the hierarchical PDN.

The classic companion to DC IR-drop analysis: the impedance the die
sees looking back into the PDN, Z(f), must stay below the *target
impedance* ``Z_target = V · ripple_budget / I_transient`` across the
frequency band of load activity.  Moving regulation onto the
interposer (A1/A2) removes the board/package inductance from the loop
and pushes the PDN's inductive rise out in frequency — the AC
counterpart of the paper's DC savings.

The ladder of :class:`~repro.pdn.transient.PDNStage` elements is
evaluated analytically with complex phasors: walking from the source
to the die, each stage contributes a series R + jωL followed by a
shunt decoupling capacitor (C with ESR).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from .transient import PDNStage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ac import ACNetlist
    from .grid import GridACPDN


@dataclass(frozen=True)
class ImpedanceProfile:
    """Z(f) of a PDN seen from the die.

    Attributes:
        frequencies_hz: evaluation frequencies.
        impedance_ohm: |Z| at each frequency.
        peak_impedance_ohm: the worst (anti-resonant) |Z|.
        peak_frequency_hz: frequency of the worst |Z|.
    """

    frequencies_hz: np.ndarray
    impedance_ohm: np.ndarray

    @property
    def peak_impedance_ohm(self) -> float:
        """Largest impedance magnitude over the profile."""
        return float(self.impedance_ohm.max())

    @property
    def peak_frequency_hz(self) -> float:
        """Frequency at which the impedance peaks."""
        index = int(np.argmax(self.impedance_ohm))
        return float(self.frequencies_hz[index])

    def meets_target(self, target_ohm: float) -> bool:
        """True if |Z| stays at or below the target everywhere."""
        if target_ohm <= 0:
            raise ConfigError("target impedance must be positive")
        return bool(np.all(self.impedance_ohm <= target_ohm * (1 + 1e-12)))

    def violation_band_hz(self, target_ohm: float) -> tuple[float, float] | None:
        """(first, last) frequency violating the target, or None."""
        if target_ohm <= 0:
            raise ConfigError("target impedance must be positive")
        mask = self.impedance_ohm > target_ohm
        if not mask.any():
            return None
        indices = np.nonzero(mask)[0]
        return (
            float(self.frequencies_hz[indices[0]]),
            float(self.frequencies_hz[indices[-1]]),
        )


def target_impedance_ohm(
    supply_voltage_v: float,
    ripple_fraction: float,
    transient_current_a: float,
) -> float:
    """The standard target-impedance rule:
    ``Z_t = V · ripple / ΔI`` (e.g. 1 V, 5%, 500 A -> 0.1 mΩ)."""
    if supply_voltage_v <= 0:
        raise ConfigError("supply voltage must be positive")
    if not 0.0 < ripple_fraction < 1.0:
        raise ConfigError("ripple fraction must be in (0, 1)")
    if transient_current_a <= 0:
        raise ConfigError("transient current must be positive")
    return supply_voltage_v * ripple_fraction / transient_current_a


def pdn_impedance(
    stages: list[PDNStage],
    frequencies_hz: np.ndarray | None = None,
    source_impedance_ohm: float = 1e-6,
) -> ImpedanceProfile:
    """Impedance looking back from the die into the ladder.

    Args:
        stages: ladder from the regulator (first) to the die (last).
        frequencies_hz: evaluation grid (default: 1 kHz .. 1 GHz,
            60 points/decade-ish logarithmic).
        source_impedance_ohm: the regulator's output impedance at DC
            (an ideal source would be 0; a small positive value keeps
            the low-frequency plateau realistic).
    """
    if not stages:
        raise ConfigError("at least one PDN stage required")
    if source_impedance_ohm < 0:
        raise ConfigError("source impedance must be non-negative")
    if frequencies_hz is None:
        frequencies_hz = np.logspace(3, 9, 361)
    freqs = np.asarray(frequencies_hz, dtype=float)
    if freqs.ndim != 1 or len(freqs) == 0:
        raise ConfigError("frequencies must be a non-empty 1-D array")
    if np.any(freqs <= 0):
        raise ConfigError("frequencies must be positive")

    omega = 2.0 * math.pi * freqs
    z = np.full_like(freqs, source_impedance_ohm, dtype=complex)
    for stage in stages:
        series = stage.series_resistance_ohm + 1j * omega * (
            stage.series_inductance_h
        )
        z = z + series
        z_cap = stage.decap_esr_ohm + 1.0 / (1j * omega * stage.decap_farad)
        z = z * z_cap / (z + z_cap)
    return ImpedanceProfile(
        frequencies_hz=freqs, impedance_ohm=np.abs(z)
    )


def ladder_ac_netlist(
    stages: list[PDNStage],
    source_impedance_ohm: float = 1e-6,
) -> tuple["ACNetlist", str]:
    """The analytic ladder as an explicit AC netlist.

    Returns ``(netlist, die_node)`` — the exact circuit
    :func:`pdn_impedance` evaluates in closed form: the source
    impedance to ground, then per stage a series R + L into a shunt
    C + ESR branch.  A zero source impedance becomes an ideal (zeroed)
    voltage-source short.  Used by :func:`pdn_impedance_mna` and the
    cross-validation tests.
    """
    from .ac import ACNetlist  # local import keeps module load light

    if not stages:
        raise ConfigError("at least one PDN stage required")
    if source_impedance_ohm < 0:
        raise ConfigError("source impedance must be non-negative")
    net = ACNetlist()
    if source_impedance_ohm > 0:
        net.add_resistor("z_source", "ladder[0]", net.GROUND, source_impedance_ohm)
    else:
        net.add_voltage_source("z_source", "ladder[0]", 0.0)
    for k, stage in enumerate(stages):
        node_in = f"ladder[{k}]"
        node_out = f"ladder[{k + 1}]"
        net.add_resistor(
            f"{stage.name}.r[{k}]",
            node_in,
            (node_in, "rl"),
            stage.series_resistance_ohm,
        )
        net.add_inductor(
            f"{stage.name}.l[{k}]",
            (node_in, "rl"),
            node_out,
            stage.series_inductance_h,
        )
        net.add_capacitor(
            f"{stage.name}.c[{k}]",
            node_out,
            (node_out, "esr"),
            stage.decap_farad,
        )
        if stage.decap_esr_ohm > 0:
            net.add_resistor(
                f"{stage.name}.esr[{k}]",
                (node_out, "esr"),
                net.GROUND,
                stage.decap_esr_ohm,
            )
        else:
            net.add_voltage_source(
                f"{stage.name}.esr[{k}]", (node_out, "esr"), 0.0
            )
    return net, f"ladder[{len(stages)}]"


def pdn_impedance_mna(
    stages: list[PDNStage],
    frequencies_hz: np.ndarray | None = None,
    source_impedance_ohm: float = 1e-6,
) -> ImpedanceProfile:
    """:func:`pdn_impedance` evaluated by the compiled AC sweep engine.

    Builds the ladder as an explicit netlist and probes the die node
    with :func:`repro.pdn.ac.impedance_at` — the general MNA path that
    handles arbitrary decap networks.  On pure ladders it must agree
    with the closed form to numerical precision, which is exactly what
    the cross-validation tests assert; keeping both paths exercised
    guards the sweep engine against silent stamp regressions.
    """
    from .ac import impedance_at

    if frequencies_hz is None:
        frequencies_hz = np.logspace(3, 9, 361)
    net, die_node = ladder_ac_netlist(stages, source_impedance_ohm)
    freqs = np.asarray(frequencies_hz, dtype=float)
    return ImpedanceProfile(
        frequencies_hz=freqs,
        impedance_ohm=impedance_at(net, die_node, freqs),
    )


@dataclass(frozen=True)
class DecapRecommendation:
    """Result of the decap sizing helper."""

    stage_name: str
    original_farad: float
    recommended_farad: float
    meets_target: bool


def size_die_decap_for_target(
    stages: list[PDNStage],
    target_ohm: float,
    max_farad: float = 1e-3,
    frequencies_hz: np.ndarray | None = None,
) -> DecapRecommendation:
    """Grow the last (die) stage's decap until Z(f) meets the target.

    A simple geometric search: doubles the die decap until the profile
    passes or ``max_farad`` is reached.  Returns the recommendation
    either way (``meets_target`` reports the outcome).
    """
    if target_ohm <= 0:
        raise ConfigError("target impedance must be positive")
    if not stages:
        raise ConfigError("at least one PDN stage required")
    if max_farad <= 0:
        raise ConfigError("max capacitance must be positive")

    original = stages[-1].decap_farad
    candidate = original
    while candidate <= max_farad:
        trial = list(stages[:-1])
        last = stages[-1]
        trial.append(
            PDNStage(
                name=last.name,
                series_resistance_ohm=last.series_resistance_ohm,
                series_inductance_h=last.series_inductance_h,
                decap_farad=candidate,
                decap_esr_ohm=last.decap_esr_ohm,
            )
        )
        profile = pdn_impedance(trial, frequencies_hz)
        if profile.meets_target(target_ohm):
            return DecapRecommendation(
                stage_name=last.name,
                original_farad=original,
                recommended_farad=candidate,
                meets_target=True,
            )
        candidate *= 2.0
    return DecapRecommendation(
        stage_name=stages[-1].name,
        original_farad=original,
        recommended_farad=min(candidate, max_farad),
        meets_target=False,
    )


def size_grid_decap_for_target(
    pdn: "GridACPDN",
    target_ohm: float,
    max_scale: float = 1024.0,
    frequencies_hz: np.ndarray | None = None,
) -> DecapRecommendation:
    """Grow the mesh decap allocation until every node meets the target.

    The grid-level replacement for the closed-form ladder search in
    :func:`size_die_decap_for_target`: each trial doubles the per-node
    decap allocation ("more unit cells in parallel", via
    :meth:`~repro.pdn.grid.GridACPDN.scale_decap`) and re-sweeps the
    *real* per-node impedance map, so the verdict reflects the worst
    mesh node under the actual VR placement instead of a lumped die
    stage.  The grid's decap state is restored bit-exactly before
    returning — including when a trial evaluation raises mid-search —
    and the recommendation reports total mesh capacitance.  On failure
    the recommendation is capped at ``original * max_scale``, mirroring
    the lumped sizer's ``min(candidate, max_farad)``.
    """
    if target_ohm <= 0:
        raise ConfigError("target impedance must be positive")
    if max_scale < 1.0:
        raise ConfigError("max decap scale must be >= 1")
    original = pdn.total_decap_farad
    if original <= 0:
        raise ConfigError("grid has no decaps attached; set a decap map first")
    if frequencies_hz is None:
        frequencies_hz = np.logspace(3, 9, 121)
    # Snapshot the exact decap state: scale_decap(s) then
    # scale_decap(1/s) round-trips C/ESR/ESL through a float
    # multiply-then-divide, which is lossy for non-power-of-two
    # factors, and a trial that raises mid-search would otherwise
    # leave the grid mutated.
    snapshot = pdn.decap_snapshot()
    scale = 1.0
    try:
        while True:
            impedance = pdn.impedance_map(frequencies_hz)
            if impedance.meets_target(target_ohm):
                return DecapRecommendation(
                    stage_name="grid-decap",
                    original_farad=original,
                    recommended_farad=original * scale,
                    meets_target=True,
                )
            if scale * 2.0 > max_scale:
                return DecapRecommendation(
                    stage_name="grid-decap",
                    original_farad=original,
                    recommended_farad=original
                    * min(scale * 2.0, max_scale),
                    meets_target=False,
                )
            pdn.scale_decap(2.0)
            scale *= 2.0
    finally:
        pdn.restore_decap(snapshot)
