"""Sparse modified nodal analysis (MNA) DC solver.

Solves ``[G B; B^T 0] [v; j] = [i; e]`` where ``G`` is the conductance
matrix over non-ground nodes, ``B`` maps voltage sources to nodes,
``i`` collects current-source injections and ``e`` the source voltages.
The system is assembled in COO form and solved with SuperLU via
``scipy.sparse.linalg.spsolve``.

The solver also verifies the physics of the returned solution:
Kirchhoff's current law at every node and global power balance
(source power = load power + I²R dissipation) to tight tolerances,
raising :class:`~repro.errors.SolverError` on violation rather than
returning silently wrong answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from .network import Netlist, NodeId


@dataclass(frozen=True)
class DCSolution:
    """Result of a DC operating-point solve.

    Attributes:
        node_voltages: voltage of every non-ground node (ground = 0 V).
        resistor_currents: current through each resistor, measured
            from ``node_a`` to ``node_b``.
        resistor_losses: I²R dissipation per resistor.
        source_currents: current *delivered* by each voltage source
            (positive = sourcing power into the network).
    """

    node_voltages: dict[NodeId, float]
    resistor_currents: dict[str, float]
    resistor_losses: dict[str, float]
    source_currents: dict[str, float]

    def voltage(self, node: NodeId) -> float:
        """Voltage at a node (ground returns 0.0)."""
        if node == "0":
            return 0.0
        return self.node_voltages[node]

    @property
    def total_resistive_loss_w(self) -> float:
        """Total I²R dissipation across all resistors."""
        return float(sum(self.resistor_losses.values()))

    def loss_by_prefix(self, prefix: str) -> float:
        """Sum of losses over resistors whose name starts with ``prefix``.

        Power-path builders use structured names ("pcb.", "bga.", ...)
        so per-segment breakdowns are a prefix query.
        """
        return float(
            sum(
                loss
                for name, loss in self.resistor_losses.items()
                if name.startswith(prefix)
            )
        )

    def min_voltage(self) -> float:
        """Smallest node voltage (worst-case droop detection)."""
        if not self.node_voltages:
            return 0.0
        return float(min(self.node_voltages.values()))


def solve_dc(netlist: Netlist, check: bool = True) -> DCSolution:
    """Solve the DC operating point of a netlist.

    Args:
        netlist: the circuit to solve.
        check: verify KCL and power balance on the solution
            (cheap relative to the factorization; disable only in
            tight inner loops that have been validated already).

    Raises:
        SolverError: singular/disconnected system or non-finite result.
    """
    netlist.validate()
    nodes = netlist.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    m = len(netlist.voltage_sources)
    size = n + m

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = np.zeros(size)

    def stamp(i: int, j: int, value: float) -> None:
        rows.append(i)
        cols.append(j)
        vals.append(value)

    for r in netlist.resistors:
        g = 1.0 / r.resistance_ohm
        a = index.get(r.node_a)
        b = index.get(r.node_b)
        if r.node_a != netlist.GROUND:
            stamp(a, a, g)
        if r.node_b != netlist.GROUND:
            stamp(b, b, g)
        if r.node_a != netlist.GROUND and r.node_b != netlist.GROUND:
            stamp(a, b, -g)
            stamp(b, a, -g)

    for s in netlist.current_sources:
        # Current flows out of node_from, into node_to.
        if s.node_from != netlist.GROUND:
            rhs[index[s.node_from]] -= s.current_a
        if s.node_to != netlist.GROUND:
            rhs[index[s.node_to]] += s.current_a

    for k, v in enumerate(netlist.voltage_sources):
        row = n + k
        if v.node_plus != netlist.GROUND:
            stamp(index[v.node_plus], row, 1.0)
            stamp(row, index[v.node_plus], 1.0)
        if v.node_minus != netlist.GROUND:
            stamp(index[v.node_minus], row, -1.0)
            stamp(row, index[v.node_minus], -1.0)
        rhs[row] = v.voltage_v

    matrix = sp.coo_matrix(
        (vals, (rows, cols)), shape=(size, size)
    ).tocsc()

    import warnings

    with np.errstate(all="ignore"), warnings.catch_warnings():
        # Singular systems surface as a warning plus NaNs; we convert
        # them to SolverError below, so silence the warning itself.
        warnings.simplefilter("ignore", spla.MatrixRankWarning)
        try:
            solution = spla.spsolve(matrix, rhs)
        except RuntimeError as exc:  # SuperLU signals singularity this way
            raise SolverError(f"MNA solve failed: {exc}") from exc
    if not np.all(np.isfinite(solution)):
        raise SolverError(
            "MNA solution contains non-finite values; the network is "
            "likely singular (floating subcircuit with a current source?)"
        )

    voltages = {node: float(solution[index[node]]) for node in nodes}
    branch_currents = {
        v.name: float(-solution[n + k])
        for k, v in enumerate(netlist.voltage_sources)
    }

    def node_voltage(node: NodeId) -> float:
        return 0.0 if node == netlist.GROUND else voltages[node]

    resistor_currents: dict[str, float] = {}
    resistor_losses: dict[str, float] = {}
    for r in netlist.resistors:
        current = (node_voltage(r.node_a) - node_voltage(r.node_b)) / r.resistance_ohm
        resistor_currents[r.name] = current
        resistor_losses[r.name] = current**2 * r.resistance_ohm

    result = DCSolution(
        node_voltages=voltages,
        resistor_currents=resistor_currents,
        resistor_losses=resistor_losses,
        source_currents=branch_currents,
    )
    if check:
        _verify(netlist, result)
    return result


def _verify(netlist: Netlist, result: DCSolution) -> None:
    """Check KCL at every node and overall power balance."""
    residual: dict[NodeId, float] = {}

    def accumulate(node: NodeId, current: float) -> None:
        if node == netlist.GROUND:
            return
        residual[node] = residual.get(node, 0.0) + current

    for r in netlist.resistors:
        current = result.resistor_currents[r.name]
        accumulate(r.node_a, -current)
        accumulate(r.node_b, current)
    for s in netlist.current_sources:
        accumulate(s.node_from, -s.current_a)
        accumulate(s.node_to, s.current_a)
    for v in netlist.voltage_sources:
        current = result.source_currents[v.name]
        accumulate(v.node_plus, current)
        accumulate(v.node_minus, -current)

    scale = max(
        1.0,
        max((abs(s.current_a) for s in netlist.current_sources), default=1.0),
        max((abs(c) for c in result.source_currents.values()), default=1.0),
    )
    worst = max((abs(x) for x in residual.values()), default=0.0)
    if worst > 1e-6 * scale:
        raise SolverError(
            f"KCL violated: worst node residual {worst:.3e} A "
            f"(scale {scale:.3e} A)"
        )

    source_power = sum(
        v.voltage_v * result.source_currents[v.name]
        for v in netlist.voltage_sources
    )
    load_power = 0.0
    for s in netlist.current_sources:

        def nv(node: NodeId) -> float:
            return 0.0 if node == netlist.GROUND else result.node_voltages[node]

        load_power += s.current_a * (nv(s.node_from) - nv(s.node_to))
    dissipated = result.total_resistive_loss_w
    imbalance = abs(source_power - load_power - dissipated)
    power_scale = max(1.0, abs(source_power), abs(load_power), dissipated)
    if imbalance > 1e-6 * power_scale:
        raise SolverError(
            f"power balance violated: sources {source_power:.6e} W, "
            f"loads {load_power:.6e} W, dissipation {dissipated:.6e} W"
        )
