"""Sparse modified nodal analysis (MNA) DC solver.

Solves ``[G B; B^T 0] [v; j] = [i; e]`` where ``G`` is the conductance
matrix over non-ground nodes, ``B`` maps voltage sources to nodes,
``i`` collects current-source injections and ``e`` the source voltages.

The solver operates on a :class:`~repro.pdn.network.CompiledNetlist`
(array-backed, integer-indexed) and stamps the COO matrix with pure
numpy concatenation — no per-element Python loop.  Factorization is
SuperLU (``scipy.sparse.linalg.splu``) wrapped in
:class:`FactorizedPDN`, which callers with fixed topology keep around
to solve new load/source vectors at back-substitution cost
(``solve_rhs`` / ``solve_many``).

The solver also verifies the physics of the returned solution:
Kirchhoff's current law at every node (via ``np.bincount``) and global
power balance (source power = load power + I²R dissipation) to tight
tolerances, raising :class:`~repro.errors.SolverError` on violation
rather than returning silently wrong answers.
"""

from __future__ import annotations

import warnings
from functools import cached_property

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from .network import GROUND_INDEX, CompiledNetlist, Netlist, NodeId


class DCSolution:
    """Result of a DC operating-point solve.

    Array-backed: per-node voltages and per-element currents/losses
    are numpy arrays aligned with the compiled netlist's element
    order.  The historical name-keyed dict views (``node_voltages``,
    ``resistor_currents``, ``resistor_losses``, ``source_currents``)
    are built lazily on first access, so hot paths that consume the
    arrays never pay for dict construction.

    Attributes:
        compiled: the compiled netlist this solution belongs to.
        node_voltage_array: voltage per non-ground node (row order).
        resistor_current_array: current through each resistor,
            measured from ``node_a`` to ``node_b``.
        resistor_loss_array: I²R dissipation per resistor.
        source_current_array: current *delivered* by each voltage
            source (positive = sourcing power into the network).
    """

    def __init__(
        self,
        compiled: CompiledNetlist,
        node_voltage_array: np.ndarray,
        resistor_current_array: np.ndarray,
        resistor_loss_array: np.ndarray,
        source_current_array: np.ndarray,
    ) -> None:
        self.compiled = compiled
        self.node_voltage_array = node_voltage_array
        self.resistor_current_array = resistor_current_array
        self.resistor_loss_array = resistor_loss_array
        self.source_current_array = source_current_array

    # -- name-keyed views (lazy) ------------------------------------------------

    @cached_property
    def node_voltages(self) -> dict[NodeId, float]:
        """Voltage of every non-ground node (ground = 0 V)."""
        return dict(zip(self.compiled.nodes, self.node_voltage_array.tolist()))

    @cached_property
    def resistor_currents(self) -> dict[str, float]:
        """Current through each resistor, ``node_a`` to ``node_b``."""
        return dict(
            zip(self.compiled.res_names, self.resistor_current_array.tolist())
        )

    @cached_property
    def resistor_losses(self) -> dict[str, float]:
        """I²R dissipation per resistor."""
        return dict(
            zip(self.compiled.res_names, self.resistor_loss_array.tolist())
        )

    @cached_property
    def source_currents(self) -> dict[str, float]:
        """Current delivered by each voltage source."""
        return dict(
            zip(self.compiled.vs_names, self.source_current_array.tolist())
        )

    # -- queries -----------------------------------------------------------------

    def voltage(self, node: NodeId) -> float:
        """Voltage at a node (ground returns 0.0)."""
        index = self.compiled.node_index[node]
        if index == GROUND_INDEX:
            return 0.0
        return float(self.node_voltage_array[index])

    @property
    def total_resistive_loss_w(self) -> float:
        """Total I²R dissipation across all resistors."""
        return float(self.resistor_loss_array.sum())

    def loss_by_prefix(self, prefix: str) -> float:
        """Sum of losses over resistors whose name starts with ``prefix``.

        Power-path builders use structured names ("pcb.", "bga.", ...)
        so per-segment breakdowns are a prefix query.
        """
        names = self.compiled.res_names
        mask = np.fromiter(
            (name.startswith(prefix) for name in names), bool, len(names)
        )
        return float(self.resistor_loss_array[mask].sum())

    def min_voltage(self) -> float:
        """Smallest node voltage (worst-case droop detection)."""
        if not self.node_voltage_array.size:
            return 0.0
        return float(self.node_voltage_array.min())


class FactorizedPDN:
    """A reusable sparse LU factorization of one netlist topology.

    The MNA matrix depends only on the netlist *structure* (element
    endpoints and resistances); load currents and source voltages only
    enter the right-hand side.  Factorize once, then solve any number
    of load/source scenarios at back-substitution cost:

    * :meth:`solve` — full scenario solve returning a
      :class:`DCSolution` (optionally overriding load currents and
      source voltages),
    * :meth:`solve_rhs` / :meth:`solve_many` — raw solves of explicit
      RHS vectors / stacked RHS matrices.

    Raises :class:`~repro.errors.SolverError` at construction when the
    system is singular (floating subcircuits, missing ground
    reference), which surfaces broken topologies at factorization time
    instead of as NaNs downstream.
    """

    def __init__(self, netlist: Netlist | CompiledNetlist) -> None:
        compiled = (
            netlist.compile() if isinstance(netlist, Netlist) else netlist
        )
        compiled.validate()
        self.compiled = compiled
        n = compiled.n_nodes
        size = compiled.size

        ra, rb = compiled.res_a, compiled.res_b
        conductance = 1.0 / compiled.res_ohm
        in_a = ra != GROUND_INDEX
        in_b = rb != GROUND_INDEX
        in_ab = in_a & in_b

        kp = np.nonzero(compiled.vs_plus != GROUND_INDEX)[0]
        km = np.nonzero(compiled.vs_minus != GROUND_INDEX)[0]
        plus = compiled.vs_plus[kp]
        minus = compiled.vs_minus[km]
        ones_p = np.ones(len(kp))
        ones_m = np.ones(len(km))

        rows = np.concatenate(
            [ra[in_a], rb[in_b], ra[in_ab], rb[in_ab],
             plus, n + kp, minus, n + km]
        )
        cols = np.concatenate(
            [ra[in_a], rb[in_b], rb[in_ab], ra[in_ab],
             n + kp, plus, n + km, minus]
        )
        vals = np.concatenate(
            [conductance[in_a], conductance[in_b],
             -conductance[in_ab], -conductance[in_ab],
             ones_p, ones_p, -ones_m, -ones_m]
        )
        matrix = sp.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsc()

        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                self._lu = spla.splu(matrix)
            except RuntimeError as exc:  # SuperLU signals singularity
                raise SolverError(
                    "MNA factorization failed: the network is singular "
                    f"(floating subcircuit or missing ground?): {exc}"
                ) from exc
        self._n = n
        self._size = size
        self._conductance = conductance

        # SuperLU can slide through an exactly singular system when
        # rounding leaves a tiny (instead of zero) pivot; the resulting
        # solutions carry an arbitrary offset along the null space that
        # no KCL/power check can see (the offset is current-consistent).
        # Probe with a known solution: recovering w from A @ w amplifies
        # any near-null direction by ~1/pivot, so a large probe error
        # means the factorization is unusable.  One matvec plus one
        # back-substitution, paid once per topology.
        probe = np.cos(np.arange(size))
        with np.errstate(all="ignore"):
            recovered = self._lu.solve(matrix @ probe)
            error = float(np.abs(recovered - probe).max(initial=0.0))
        if not np.isfinite(error) or error > 1e-3:
            raise SolverError(
                "MNA factorization is numerically singular (probe error "
                f"{error:.3e}); the network likely has a floating "
                "subcircuit with a current source"
            )

    # -- RHS assembly -------------------------------------------------------------

    def _scenario_values(
        self,
        cs_amp: np.ndarray | None,
        vs_volt: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve (and shape-check) load/source overrides."""
        compiled = self.compiled
        amp = compiled.cs_amp if cs_amp is None else np.asarray(cs_amp, float)
        volt = (
            compiled.vs_volt if vs_volt is None else np.asarray(vs_volt, float)
        )
        if amp.shape != compiled.cs_amp.shape:
            raise SolverError(
                f"expected {compiled.cs_amp.shape[0]} load currents, "
                f"got shape {amp.shape}"
            )
        if volt.shape != compiled.vs_volt.shape:
            raise SolverError(
                f"expected {compiled.vs_volt.shape[0]} source voltages, "
                f"got shape {volt.shape}"
            )
        if amp.size and np.any(amp < 0):
            raise SolverError("load currents must be non-negative")
        return amp, volt

    def rhs(
        self,
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
    ) -> np.ndarray:
        """Assemble the MNA right-hand side for a load/source scenario.

        Defaults to the compiled netlist's own currents and voltages.
        """
        compiled = self.compiled
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        rhs = np.zeros(self._size)
        n = self._n
        if amp.size:
            out_of = compiled.cs_from != GROUND_INDEX
            into = compiled.cs_to != GROUND_INDEX
            rhs[:n] = np.bincount(
                compiled.cs_to[into], weights=amp[into], minlength=n
            )
            rhs[:n] -= np.bincount(
                compiled.cs_from[out_of], weights=amp[out_of], minlength=n
            )
        rhs[n:] = volt
        return rhs

    # -- raw solves ----------------------------------------------------------------

    def solve_rhs(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute one explicit RHS vector (length ``size``)."""
        solution = self._lu.solve(np.asarray(rhs, dtype=float))
        if not np.all(np.isfinite(solution)):
            raise SolverError("MNA solution contains non-finite values")
        return solution

    def solve_many(self, rhs_matrix: np.ndarray) -> np.ndarray:
        """Back-substitute a stack of RHS columns, shape (size, k).

        One factorization amortized over k scenarios — the batched
        path for Monte-Carlo sweeps and load sweeps over a fixed
        topology.
        """
        stacked = np.asarray(rhs_matrix, dtype=float)
        if stacked.ndim != 2 or stacked.shape[0] != self._size:
            raise SolverError(
                f"rhs matrix must be shaped ({self._size}, k), "
                f"got {stacked.shape}"
            )
        solution = self._lu.solve(stacked)
        if not np.all(np.isfinite(solution)):
            raise SolverError("MNA solution contains non-finite values")
        return solution

    # -- scenario solve -------------------------------------------------------------

    def solve(
        self,
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
        check: bool = True,
    ) -> DCSolution:
        """Solve one operating point, optionally overriding the loads
        (``cs_amp``, aligned with the compiled current sources) and
        source voltages (``vs_volt``).

        Raises:
            SolverError: non-finite result, KCL or power-balance
                violation (with ``check=True``).
        """
        compiled = self.compiled
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        x = self.solve_rhs(self.rhs(amp, volt))
        n = self._n
        voltages = x[:n]
        # Ground trick: append one 0.0 so GROUND_INDEX (-1) gathers 0 V.
        v_full = np.concatenate([voltages, [0.0]])
        drop = v_full[compiled.res_a] - v_full[compiled.res_b]
        currents = drop * self._conductance
        losses = currents * drop
        source_currents = -x[n:]

        solution = DCSolution(
            compiled=compiled,
            node_voltage_array=voltages,
            resistor_current_array=currents,
            resistor_loss_array=losses,
            source_current_array=source_currents,
        )
        if check:
            _verify(solution, amp, volt, v_full)
        return solution


def solve_dc(netlist: Netlist | CompiledNetlist, check: bool = True) -> DCSolution:
    """Solve the DC operating point of a netlist.

    Args:
        netlist: the circuit to solve (a builder-style
            :class:`~repro.pdn.network.Netlist` or an already-compiled
            :class:`~repro.pdn.network.CompiledNetlist`).
        check: verify KCL and power balance on the solution
            (cheap relative to the factorization; disable only in
            tight inner loops that have been validated already).

    Raises:
        SolverError: singular/disconnected system or non-finite result.
    """
    return FactorizedPDN(netlist).solve(check=check)


def _verify(
    solution: DCSolution,
    cs_amp: np.ndarray,
    vs_volt: np.ndarray,
    v_full: np.ndarray,
) -> None:
    """Check KCL at every node and overall power balance (vectorized)."""
    compiled = solution.compiled
    n = compiled.n_nodes
    currents = solution.resistor_current_array
    source_currents = solution.source_current_array

    def contributions(nodes: np.ndarray, flow: np.ndarray) -> np.ndarray:
        keep = nodes != GROUND_INDEX
        return np.bincount(nodes[keep], weights=flow[keep], minlength=n)

    residual = (
        contributions(compiled.res_a, -currents)
        + contributions(compiled.res_b, currents)
        + contributions(compiled.cs_from, -cs_amp)
        + contributions(compiled.cs_to, cs_amp)
        + contributions(compiled.vs_plus, source_currents)
        + contributions(compiled.vs_minus, -source_currents)
    )
    scale = max(
        1.0,
        float(np.abs(cs_amp).max(initial=0.0)),
        float(np.abs(source_currents).max(initial=0.0)),
    )
    worst = float(np.abs(residual).max(initial=0.0))
    if worst > 1e-6 * scale:
        raise SolverError(
            f"KCL violated: worst node residual {worst:.3e} A "
            f"(scale {scale:.3e} A)"
        )

    source_power = float(vs_volt @ source_currents)
    load_power = float(
        cs_amp @ (v_full[compiled.cs_from] - v_full[compiled.cs_to])
    )
    dissipated = float(solution.resistor_loss_array.sum())
    imbalance = abs(source_power - load_power - dissipated)
    power_scale = max(1.0, abs(source_power), abs(load_power), dissipated)
    if imbalance > 1e-6 * power_scale:
        raise SolverError(
            f"power balance violated: sources {source_power:.6e} W, "
            f"loads {load_power:.6e} W, dissipation {dissipated:.6e} W"
        )
