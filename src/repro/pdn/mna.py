"""Sparse modified nodal analysis (MNA) DC solver.

Solves ``[G B; B^T 0] [v; j] = [i; e]`` where ``G`` is the conductance
matrix over non-ground nodes, ``B`` maps voltage sources to nodes,
``i`` collects current-source injections and ``e`` the source voltages.

The solver operates on a :class:`~repro.pdn.network.CompiledNetlist`
(array-backed, integer-indexed) and stamps the COO matrix with pure
numpy concatenation — no per-element Python loop.  Factorization is
SuperLU (``scipy.sparse.linalg.splu``) wrapped in
:class:`FactorizedPDN`, which callers with fixed topology keep around
to solve new load/source vectors at back-substitution cost
(``solve_rhs`` / ``solve_many``).

The solver also verifies the physics of the returned solution:
Kirchhoff's current law at every node (via ``np.bincount``) and global
power balance (source power = load power + I²R dissipation) to tight
tolerances, raising :class:`~repro.errors.SolverError` on violation
rather than returning silently wrong answers.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from functools import cached_property

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from .network import GROUND_INDEX, CompiledNetlist, Netlist, NodeId

#: Default cap on memoized influence columns per factorization.  Each
#: column is a dense float64 vector of length ``size``; at the default
#: cap a 10k-node mesh holds at most ~80 MB of influence columns, and
#: long-running sweep workers (see :mod:`repro.parallel`) stay bounded
#: no matter how many distinct elements their scenarios touch.
INFLUENCE_CACHE_COLUMNS = 1024

#: Acceptance threshold for the known-solution singularity probe.
#: Shared by the DC factorization, the modified-scenario fallback, and
#: the AC sweep engine so every solve path renders the same
#: singular/non-singular verdict for the same matrix.
SINGULARITY_PROBE_TOL = 1e-3


def singularity_probe(size: int) -> np.ndarray:
    """The known probe solution ``w`` used to detect rounded pivots.

    Recovering ``w`` from ``A @ w`` amplifies any near-null direction
    by ~1/pivot, so a large recovery error exposes an exactly singular
    system that LU happened to factor through a rounded tiny pivot —
    an error mode downstream KCL/power checks cannot see (the
    null-space offset is current-consistent).
    """
    return np.cos(np.arange(size))


def factorization_probe_error(lu: "spla.SuperLU", matrix: sp.csc_matrix) -> float:
    """Probe recovery error of a factorization (see
    :func:`singularity_probe`); compare against
    :data:`SINGULARITY_PROBE_TOL`."""
    probe = singularity_probe(matrix.shape[0])
    with np.errstate(all="ignore"):
        recovered = lu.solve(matrix @ probe)
        return float(np.abs(recovered - probe).max(initial=0.0))


class DCSolution:
    """Result of a DC operating-point solve.

    Array-backed: per-node voltages and per-element currents/losses
    are numpy arrays aligned with the compiled netlist's element
    order.  The historical name-keyed dict views (``node_voltages``,
    ``resistor_currents``, ``resistor_losses``, ``source_currents``)
    are built lazily on first access, so hot paths that consume the
    arrays never pay for dict construction.

    Attributes:
        compiled: the compiled netlist this solution belongs to.
        node_voltage_array: voltage per non-ground node (row order).
        resistor_current_array: current through each resistor,
            measured from ``node_a`` to ``node_b``.
        resistor_loss_array: I²R dissipation per resistor.
        source_current_array: current *delivered* by each voltage
            source (positive = sourcing power into the network).
    """

    def __init__(
        self,
        compiled: CompiledNetlist,
        node_voltage_array: np.ndarray,
        resistor_current_array: np.ndarray,
        resistor_loss_array: np.ndarray,
        source_current_array: np.ndarray,
    ) -> None:
        self.compiled = compiled
        self.node_voltage_array = node_voltage_array
        self.resistor_current_array = resistor_current_array
        self.resistor_loss_array = resistor_loss_array
        self.source_current_array = source_current_array

    # -- name-keyed views (lazy) ------------------------------------------------

    @cached_property
    def node_voltages(self) -> dict[NodeId, float]:
        """Voltage of every non-ground node (ground = 0 V)."""
        return dict(zip(self.compiled.nodes, self.node_voltage_array.tolist()))

    @cached_property
    def resistor_currents(self) -> dict[str, float]:
        """Current through each resistor, ``node_a`` to ``node_b``."""
        return dict(
            zip(self.compiled.res_names, self.resistor_current_array.tolist())
        )

    @cached_property
    def resistor_losses(self) -> dict[str, float]:
        """I²R dissipation per resistor."""
        return dict(
            zip(self.compiled.res_names, self.resistor_loss_array.tolist())
        )

    @cached_property
    def source_currents(self) -> dict[str, float]:
        """Current delivered by each voltage source."""
        return dict(
            zip(self.compiled.vs_names, self.source_current_array.tolist())
        )

    # -- queries -----------------------------------------------------------------

    def voltage(self, node: NodeId) -> float:
        """Voltage at a node (ground returns 0.0)."""
        index = self.compiled.node_index[node]
        if index == GROUND_INDEX:
            return 0.0
        return float(self.node_voltage_array[index])

    @property
    def total_resistive_loss_w(self) -> float:
        """Total I²R dissipation across all resistors."""
        return float(self.resistor_loss_array.sum())

    def loss_by_prefix(self, prefix: str) -> float:
        """Sum of losses over resistors whose name starts with ``prefix``.

        Power-path builders use structured names ("pcb.", "bga.", ...)
        so per-segment breakdowns are a prefix query.
        """
        names = self.compiled.res_names
        mask = np.fromiter(
            (name.startswith(prefix) for name in names), bool, len(names)
        )
        return float(self.resistor_loss_array[mask].sum())

    def min_voltage(self) -> float:
        """Smallest node voltage (worst-case droop detection)."""
        if not self.node_voltage_array.size:
            return 0.0
        return float(self.node_voltage_array.min())


class FactorizedPDN:
    """A reusable sparse LU factorization of one netlist topology.

    The MNA matrix depends only on the netlist *structure* (element
    endpoints and resistances); load currents and source voltages only
    enter the right-hand side.  Factorize once, then solve any number
    of load/source scenarios at back-substitution cost:

    * :meth:`solve` — full scenario solve returning a
      :class:`DCSolution` (optionally overriding load currents and
      source voltages),
    * :meth:`solve_rhs` / :meth:`solve_many` — raw solves of explicit
      RHS vectors / stacked RHS matrices.

    Raises :class:`~repro.errors.SolverError` at construction when the
    system is singular (floating subcircuits, missing ground
    reference), which surfaces broken topologies at factorization time
    instead of as NaNs downstream.
    """

    def __init__(
        self,
        netlist: Netlist | CompiledNetlist,
        influence_cache_columns: int | None = None,
    ) -> None:
        compiled = (
            netlist.compile() if isinstance(netlist, Netlist) else netlist
        )
        compiled.validate()
        self.compiled = compiled
        n = compiled.n_nodes
        size = compiled.size

        rows, cols, vals = compiled.mna_coo()
        matrix = sp.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsc()

        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                self._lu = spla.splu(matrix)
            except RuntimeError as exc:  # SuperLU signals singularity
                raise SolverError(
                    "MNA factorization failed: the network is singular "
                    f"(floating subcircuit or missing ground?): {exc}"
                ) from exc
        self._n = n
        self._size = size
        self._conductance = 1.0 / compiled.res_ohm
        self._matrix = matrix
        # Memoized A^-1 @ u columns for low-rank modifications: the
        # update vector of "disable source j" / "remove resistor i" is
        # canonical per element, so sweeps that revisit elements (N-k
        # enumerations, repeated studies) pay each back-substitution
        # once per factorization.  Bounded LRU: each column is a dense
        # ``size`` vector, and a long-lived sweep worker enumerating
        # resistor removals over a large mesh would otherwise grow this
        # without limit.
        self._influence: "OrderedDict[tuple[str, int], np.ndarray]" = (
            OrderedDict()
        )
        if influence_cache_columns is None:
            influence_cache_columns = INFLUENCE_CACHE_COLUMNS
        if influence_cache_columns < 1:
            raise SolverError("influence cache needs at least one column")
        self._influence_cap = int(influence_cache_columns)
        self.influence_evictions = 0

        # One matvec plus one back-substitution, paid once per topology.
        error = factorization_probe_error(self._lu, matrix)
        if not np.isfinite(error) or error > SINGULARITY_PROBE_TOL:
            raise SolverError(
                "MNA factorization is numerically singular (probe error "
                f"{error:.3e}); the network likely has a floating "
                "subcircuit with a current source"
            )

    # -- RHS assembly -------------------------------------------------------------

    def _scenario_values(
        self,
        cs_amp: np.ndarray | None,
        vs_volt: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve (and shape-check) load/source overrides."""
        compiled = self.compiled
        amp = compiled.cs_amp if cs_amp is None else np.asarray(cs_amp, float)
        volt = (
            compiled.vs_volt if vs_volt is None else np.asarray(vs_volt, float)
        )
        if amp.shape != compiled.cs_amp.shape:
            raise SolverError(
                f"expected {compiled.cs_amp.shape[0]} load currents, "
                f"got shape {amp.shape}"
            )
        if volt.shape != compiled.vs_volt.shape:
            raise SolverError(
                f"expected {compiled.vs_volt.shape[0]} source voltages, "
                f"got shape {volt.shape}"
            )
        if amp.size and np.any(amp < 0):
            raise SolverError("load currents must be non-negative")
        return amp, volt

    def rhs(
        self,
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
    ) -> np.ndarray:
        """Assemble the MNA right-hand side for a load/source scenario.

        Defaults to the compiled netlist's own currents and voltages.
        """
        compiled = self.compiled
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        rhs = np.zeros(self._size)
        n = self._n
        if amp.size:
            out_of = compiled.cs_from != GROUND_INDEX
            into = compiled.cs_to != GROUND_INDEX
            rhs[:n] = np.bincount(
                compiled.cs_to[into], weights=amp[into], minlength=n
            )
            rhs[:n] -= np.bincount(
                compiled.cs_from[out_of], weights=amp[out_of], minlength=n
            )
        rhs[n:] = volt
        return rhs

    # -- raw solves ----------------------------------------------------------------

    def solve_rhs(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute one explicit RHS vector (length ``size``)."""
        solution = self._lu.solve(np.asarray(rhs, dtype=float))
        if not np.all(np.isfinite(solution)):
            raise SolverError("MNA solution contains non-finite values")
        return solution

    def solve_many(self, rhs_matrix: np.ndarray) -> np.ndarray:
        """Back-substitute a stack of RHS columns, shape (size, k).

        One factorization amortized over k scenarios — the batched
        path for Monte-Carlo sweeps and load sweeps over a fixed
        topology.
        """
        stacked = np.asarray(rhs_matrix, dtype=float)
        if stacked.ndim != 2 or stacked.shape[0] != self._size:
            raise SolverError(
                f"rhs matrix must be shaped ({self._size}, k), "
                f"got {stacked.shape}"
            )
        solution = self._lu.solve(stacked)
        if not np.all(np.isfinite(solution)):
            raise SolverError("MNA solution contains non-finite values")
        return solution

    # -- scenario solve -------------------------------------------------------------

    def solve(
        self,
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
        check: bool = True,
    ) -> DCSolution:
        """Solve one operating point, optionally overriding the loads
        (``cs_amp``, aligned with the compiled current sources) and
        source voltages (``vs_volt``).

        Raises:
            SolverError: non-finite result, KCL or power-balance
                violation (with ``check=True``).
        """
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        x = self.solve_rhs(self.rhs(amp, volt))
        return self._package(x, amp, volt, self._conductance, check)

    def _package(
        self,
        x: np.ndarray,
        amp: np.ndarray,
        volt: np.ndarray,
        conductance: np.ndarray,
        check: bool,
        disabled_sources: np.ndarray | None = None,
    ) -> DCSolution:
        """Post-process a raw MNA solution vector into a DCSolution.

        ``conductance`` is the per-resistor conductance used for branch
        currents — :meth:`solve_modified` passes a copy with removed
        elements zeroed so their reported currents and losses vanish.
        """
        return package_dc_solution(
            self.compiled, x, amp, volt, conductance, check, disabled_sources
        )

    # -- low-rank modified solves ---------------------------------------------------

    def _modification_factors(
        self,
        disabled: np.ndarray,
        removed: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The rank-k update ``A_mod = A + U @ W.T`` for a scenario.

        Disabling voltage source ``j`` replaces its constraint row
        ``v+ - v- = V_j`` with ``i_j = 0`` — a rank-1 row replacement
        ``e_r (new_row - old_row)^T`` with ``r = n + j``.  Removing
        resistor ``i`` subtracts its conductance stamp
        ``g_i d d^T`` with ``d = e_a - e_b`` (ground entries dropped).
        """
        compiled = self.compiled
        n = self._n
        k = len(disabled) + len(removed)
        u = np.zeros((self._size, k))
        w = np.zeros((self._size, k))
        for t, j in enumerate(disabled):
            row = n + j
            u[row, t] = 1.0
            w[row, t] = 1.0
            plus = compiled.vs_plus[j]
            minus = compiled.vs_minus[j]
            if plus != GROUND_INDEX:
                w[plus, t] -= 1.0
            if minus != GROUND_INDEX:
                w[minus, t] += 1.0
        offset = len(disabled)
        for t, i in enumerate(removed):
            col = offset + t
            a = compiled.res_a[i]
            b = compiled.res_b[i]
            if a != GROUND_INDEX:
                u[a, col] = 1.0
            if b != GROUND_INDEX:
                u[b, col] = -1.0
            w[:, col] = -self._conductance[i] * u[:, col]
        return u, w

    @staticmethod
    def _modification_keys(
        disabled: np.ndarray, removed: np.ndarray
    ) -> list[tuple[str, int]]:
        """Memoization keys of one scenario's update columns."""
        return [("vs", int(j)) for j in disabled] + [
            ("res", int(i)) for i in removed
        ]

    def _influence_store(self, key: tuple[str, int], column: np.ndarray) -> None:
        """Insert one influence column, evicting LRU entries over the cap."""
        self._influence[key] = column
        self._influence.move_to_end(key)
        while len(self._influence) > self._influence_cap:
            self._influence.popitem(last=False)
            self.influence_evictions += 1

    def _influence_solve(
        self,
        u: np.ndarray,
        disabled: np.ndarray,
        removed: np.ndarray,
    ) -> np.ndarray:
        """``Z = A^-1 U`` with per-element memoization (bounded LRU).

        Missing columns are back-substituted in one batched call and
        cached, so a sweep touching m distinct elements performs m
        influence solves total, not m per scenario.  The result is
        assembled from local copies, so it stays correct even when a
        scenario touches more elements than the cache holds.
        """
        keys = self._modification_keys(disabled, removed)
        columns: list[np.ndarray | None] = []
        for key in keys:
            cached = self._influence.get(key)
            if cached is not None:
                self._influence.move_to_end(key)
            columns.append(cached)
        missing = [t for t, column in enumerate(columns) if column is None]
        if missing:
            solved = self._lu.solve(u[:, missing])
            for column, t in enumerate(missing):
                columns[t] = solved[:, column]
                self._influence_store(keys[t], solved[:, column])
        return np.column_stack(columns)

    def preload_source_influence(
        self, indices: "np.ndarray | tuple[int, ...] | list[int] | None" = None
    ) -> None:
        """Batch the influence columns of many source disables.

        An N−1 sweep touches every source once; one back-substitution
        call over all missing columns is several times cheaper than 48
        single-column solves scattered across scenarios.  Defaults to
        every voltage source.
        """
        m = self.compiled.n_vsources
        if indices is None:
            indices = range(m)
        wanted = sorted({int(j) for j in indices})
        if wanted and (wanted[0] < 0 or wanted[-1] >= m):
            raise SolverError("source index out of range")
        self._preload_modification_influence(
            [
                (
                    np.asarray(wanted, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
            ]
        )

    def _refactorize_modified(
        self, u: np.ndarray, w: np.ndarray
    ) -> spla.SuperLU:
        """Factorize ``A + U W^T`` explicitly (the Woodbury fallback)."""
        # U and W have at most a few nonzeros per column, so the
        # update is assembled sparsely (O(k * size), not size^2).
        delta = sp.csc_matrix(u) @ sp.csc_matrix(w).T
        matrix = (self._matrix + delta).tocsc()
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                lu = spla.splu(matrix)
            except RuntimeError as exc:
                raise SolverError(
                    "modified MNA factorization failed: the scenario "
                    f"disconnects the network: {exc}"
                ) from exc
        # Same known-solution probe as the base factorization: an
        # exactly singular modified system (a removal that islands a
        # loaded subgrid) must fail loudly, not via a rounded pivot.
        error = factorization_probe_error(lu, matrix)
        if not np.isfinite(error) or error > SINGULARITY_PROBE_TOL:
            raise SolverError(
                "modified MNA system is numerically singular (probe "
                f"error {error:.3e}); the scenario likely leaves a "
                "floating subcircuit with a current source"
            )
        return lu

    def solve_modified(
        self,
        disable_sources: "np.ndarray | tuple[int, ...] | list[int]" = (),
        remove_resistors: "np.ndarray | tuple[int, ...] | list[int]" = (),
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
        check: bool = True,
        method: str = "auto",
        cond_limit: float = 1e10,
    ) -> DCSolution:
        """Solve a structurally modified scenario on the base factorization.

        A failure/ablation sweep removes a handful of elements per
        scenario; refactorizing each time costs a full LU.  Instead the
        modification is expressed as a rank-k update ``A + U W^T`` and
        solved with the Sherman–Morrison–Woodbury identity

        ``x = y - Z (I_k + W^T Z)^{-1} W^T y``

        where ``y = A^{-1} b_mod`` and ``Z = A^{-1} U`` cost k+1
        back-substitutions on the *cached* factorization.

        Args:
            disable_sources: voltage-source indices whose constraint is
                replaced by ``i = 0`` (an open-circuited regulator: the
                source branch carries no current; its series elements
                stay in the matrix but go dead).
            remove_resistors: resistor indices whose conductance stamp
                is subtracted (an open lateral edge).  Removed
                resistors report zero current and loss.
            method: ``"auto"`` uses Woodbury and falls back to an
                explicit refactorization when the k-by-k capacitance
                matrix ``S = I + W^T Z`` is ill-conditioned (its
                smallest singular value below
                ``max(1, sigma_max) / cond_limit``); ``"woodbury"`` raises
                :class:`~repro.errors.SolverError` instead of falling
                back; ``"refactor"`` always rebuilds (the parity
                oracle for the correction).

        Raises:
            SolverError: invalid indices, disconnecting modification,
                or (with ``method="woodbury"``) an ill-conditioned
                correction.
        """
        if method not in ("auto", "woodbury", "refactor"):
            raise SolverError(f"unknown solve_modified method: {method!r}")
        compiled = self.compiled
        disabled = np.unique(np.asarray(disable_sources, dtype=np.int64))
        removed = np.unique(np.asarray(remove_resistors, dtype=np.int64))
        if disabled.size and (
            disabled.min() < 0 or disabled.max() >= compiled.n_vsources
        ):
            raise SolverError("disable_sources index out of range")
        if removed.size and (
            removed.min() < 0 or removed.max() >= len(compiled.res_ohm)
        ):
            raise SolverError("remove_resistors index out of range")
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        if not disabled.size and not removed.size:
            x = self.solve_rhs(self.rhs(amp, volt))
            return self._package(x, amp, volt, self._conductance, check)

        rhs = self.rhs(amp, volt)
        rhs[self._n + disabled] = 0.0
        u, w = self._modification_factors(disabled, removed)

        x: np.ndarray | None = None
        if method in ("auto", "woodbury"):
            z = self._influence_solve(u, disabled, removed)
            s = np.eye(u.shape[1]) + w.T @ z
            # Gate on the smallest singular value against an absolute
            # floor: cond(S) alone cannot flag a uniformly tiny S (for
            # k=1 it is identically 1), but sigma_min -> 0 is exactly
            # the near-singular modified system Woodbury cannot solve.
            with np.errstate(all="ignore"):
                singular_values = np.linalg.svd(s, compute_uv=False)
            sigma_max = float(singular_values[0])
            sigma_min = float(singular_values[-1])
            cond = sigma_max / sigma_min if sigma_min > 0 else np.inf
            if (
                np.all(np.isfinite(singular_values))
                and sigma_min > max(1.0, sigma_max) / cond_limit
            ):

                def correct(b: np.ndarray) -> np.ndarray:
                    yb = self._lu.solve(b)
                    return yb - z @ np.linalg.solve(s, w.T @ yb)

                x = correct(rhs)
                # One step of iterative refinement on the modified
                # system tightens the correction from ~1e-9 to ~1e-12
                # relative for one extra back-substitution.
                residual = rhs - (self._matrix @ x + u @ (w.T @ x))
                x = x + correct(residual)
                if not np.all(np.isfinite(x)):
                    x = None
            if x is None and method == "woodbury":
                raise SolverError(
                    "Woodbury correction is ill-conditioned "
                    f"(cond(S) = {cond:.3e}); the scenario likely "
                    "disconnects the network"
                )
        if x is None:  # method == "refactor" or ill-conditioned fallback
            lu = self._refactorize_modified(u, w)
            x = lu.solve(rhs)
            residual = rhs - (self._matrix @ x + u @ (w.T @ x))
            x = x + lu.solve(residual)
            if not np.all(np.isfinite(x)):
                raise SolverError(
                    "modified MNA solution contains non-finite values"
                )

        conductance = self._conductance
        if removed.size:
            conductance = conductance.copy()
            conductance[removed] = 0.0
        return self._package(x, amp, volt, conductance, check, disabled)

    def _preload_modification_influence(
        self, scenarios: list[tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Back-substitute every influence column a sweep needs, once.

        Collects the union of uncached update columns over all
        scenarios and solves them in a single stacked call, so a
        sweep touching m distinct elements pays one batched
        back-substitution instead of one per scenario.
        """
        compiled = self.compiled
        missing: list[tuple[str, int]] = []
        seen: set[tuple[str, int]] = set()
        for disabled, removed in scenarios:
            for key in self._modification_keys(disabled, removed):
                if key not in self._influence and key not in seen:
                    seen.add(key)
                    missing.append(key)
        if not missing:
            return
        u = np.zeros((self._size, len(missing)))
        for t, (kind, j) in enumerate(missing):
            if kind == "vs":
                u[self._n + j, t] = 1.0
            else:
                a = compiled.res_a[j]
                b = compiled.res_b[j]
                if a != GROUND_INDEX:
                    u[a, t] = 1.0
                if b != GROUND_INDEX:
                    u[b, t] = -1.0
        solved = self._lu.solve(u)
        for column, key in enumerate(missing):
            self._influence_store(key, solved[:, column])

    def solve_modified_many(
        self,
        scenarios: "list[tuple] | tuple[tuple, ...]",
        cs_amp: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
        check: bool = True,
        method: str = "auto",
        cond_limit: float = 1e10,
    ) -> list[DCSolution]:
        """Solve many modified scenarios with batched back-substitutions.

        The batched form of :meth:`solve_modified`: every scenario is
        a ``(disable_sources, remove_resistors)`` pair sharing the same
        load/source overrides.  Where a per-scenario loop performs
        ``O(k)`` separate back-substitutions per scenario, this path
        batches the whole sweep through three stacked
        :meth:`solve_many`-style calls on the cached factorization —
        the union of influence columns ``Z = A⁻¹U``, the modified
        right-hand sides, and one iterative-refinement round — leaving
        only k×k algebra per scenario.  Exhaustive N−k enumerations
        are the intended workload.

        ``method`` follows :meth:`solve_modified`: ``"auto"`` falls
        back to per-scenario refactorization for ill-conditioned
        corrections, ``"woodbury"`` raises instead, and ``"refactor"``
        solves every scenario explicitly (the parity oracle).

        Returns one :class:`DCSolution` per scenario, in order.
        """
        if method not in ("auto", "woodbury", "refactor"):
            raise SolverError(f"unknown solve_modified method: {method!r}")
        compiled = self.compiled
        normalized: list[tuple[np.ndarray, np.ndarray]] = []
        for scenario in scenarios:
            try:
                disable_sources, remove_resistors = scenario
            except (TypeError, ValueError):
                raise SolverError(
                    "each scenario must be a (disable_sources, "
                    "remove_resistors) pair"
                ) from None
            disabled = np.unique(np.asarray(disable_sources, dtype=np.int64))
            removed = np.unique(np.asarray(remove_resistors, dtype=np.int64))
            if disabled.size and (
                disabled.min() < 0 or disabled.max() >= compiled.n_vsources
            ):
                raise SolverError("disable_sources index out of range")
            if removed.size and (
                removed.min() < 0 or removed.max() >= len(compiled.res_ohm)
            ):
                raise SolverError("remove_resistors index out of range")
            normalized.append((disabled, removed))
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        if not normalized:
            return []
        if method == "refactor":
            return [
                self.solve_modified(
                    disable_sources=disabled,
                    remove_resistors=removed,
                    cs_amp=amp,
                    vs_volt=volt,
                    check=check,
                    method="refactor",
                )
                for disabled, removed in normalized
            ]

        self._preload_modification_influence(normalized)
        count = len(normalized)
        rhs_matrix = np.repeat(self.rhs(amp, volt)[:, None], count, axis=1)
        for i, (disabled, _) in enumerate(normalized):
            rhs_matrix[self._n + disabled, i] = 0.0
        y = self.solve_many(rhs_matrix)

        x = np.empty_like(y)
        factors: list[tuple | None] = []
        conds: list[float] = []
        fallback: set[int] = set()

        def ill_conditioned(index: int, cond: float) -> None:
            if method == "woodbury":
                raise SolverError(
                    "Woodbury correction is ill-conditioned "
                    f"(cond(S) = {cond:.3e}) in scenario {index}; the "
                    "scenario likely disconnects the network"
                )
            fallback.add(index)

        for i, (disabled, removed) in enumerate(normalized):
            if not disabled.size and not removed.size:
                x[:, i] = y[:, i]
                factors.append(None)
                conds.append(1.0)
                continue
            u, w = self._modification_factors(disabled, removed)
            z = self._influence_solve(u, disabled, removed)
            s = np.eye(u.shape[1]) + w.T @ z
            with np.errstate(all="ignore"):
                singular_values = np.linalg.svd(s, compute_uv=False)
            sigma_max = float(singular_values[0])
            sigma_min = float(singular_values[-1])
            cond = sigma_max / sigma_min if sigma_min > 0 else np.inf
            factors.append((u, w, z, s))
            conds.append(cond)
            if not (
                np.all(np.isfinite(singular_values))
                and sigma_min > max(1.0, sigma_max) / cond_limit
            ):
                ill_conditioned(i, cond)
                continue
            x[:, i] = y[:, i] - z @ np.linalg.solve(s, w.T @ y[:, i])
            if not np.all(np.isfinite(x[:, i])):
                ill_conditioned(i, cond)

        # One batched refinement round over the Woodbury-solved columns
        # (the same +1 step solve_modified applies per scenario).
        live = [
            i
            for i in range(count)
            if i not in fallback and factors[i] is not None
        ]
        if live:
            residual = rhs_matrix[:, live] - self._matrix @ x[:, live]
            for column, i in enumerate(live):
                u, w, _, _ = factors[i]
                residual[:, column] -= u @ (w.T @ x[:, i])
            refined = self.solve_many(residual)
            for column, i in enumerate(live):
                u, w, z, s = factors[i]
                x[:, i] += refined[:, column] - z @ np.linalg.solve(
                    s, w.T @ refined[:, column]
                )
                if not np.all(np.isfinite(x[:, i])):
                    ill_conditioned(i, conds[i])

        solutions: list[DCSolution] = []
        for i, (disabled, removed) in enumerate(normalized):
            if i in fallback:
                solutions.append(
                    self.solve_modified(
                        disable_sources=disabled,
                        remove_resistors=removed,
                        cs_amp=amp,
                        vs_volt=volt,
                        check=check,
                        method="refactor",
                    )
                )
                continue
            conductance = self._conductance
            if removed.size:
                conductance = conductance.copy()
                conductance[removed] = 0.0
            solutions.append(
                self._package(x[:, i], amp, volt, conductance, check, disabled)
            )
        return solutions


def package_dc_solution(
    compiled: CompiledNetlist,
    x: np.ndarray,
    amp: np.ndarray,
    volt: np.ndarray,
    conductance: np.ndarray,
    check: bool,
    disabled_sources: np.ndarray | None = None,
) -> DCSolution:
    """Turn a raw MNA solution vector into a verified :class:`DCSolution`.

    Shared by every DC solve path — the cached-LU engine above and the
    structured fast-Poisson engine
    (:mod:`repro.pdn.fast_poisson`) — so branch-current extraction,
    disabled-source snapping, and the KCL/power verification render
    identical results regardless of how ``x`` was computed.
    """
    n = compiled.n_nodes
    voltages = x[:n]
    # Ground trick: append one 0.0 so GROUND_INDEX (-1) gathers 0 V.
    v_full = np.concatenate([voltages, [0.0]])
    drop = v_full[compiled.res_a] - v_full[compiled.res_b]
    currents = drop * conductance
    losses = currents * drop
    source_currents = -x[n:]
    if disabled_sources is not None and np.asarray(disabled_sources).size:
        # The modified constraint row forces these branch currents
        # to zero; snap away the O(eps) correction residue.
        source_currents = source_currents.copy()
        source_currents[np.asarray(disabled_sources, dtype=np.int64)] = 0.0

    solution = DCSolution(
        compiled=compiled,
        node_voltage_array=voltages,
        resistor_current_array=currents,
        resistor_loss_array=losses,
        source_current_array=source_currents,
    )
    if check:
        _verify(solution, amp, volt, v_full)
    return solution


def solve_dc(netlist: Netlist | CompiledNetlist, check: bool = True) -> DCSolution:
    """Solve the DC operating point of a netlist.

    Args:
        netlist: the circuit to solve (a builder-style
            :class:`~repro.pdn.network.Netlist` or an already-compiled
            :class:`~repro.pdn.network.CompiledNetlist`).
        check: verify KCL and power balance on the solution
            (cheap relative to the factorization; disable only in
            tight inner loops that have been validated already).

    Raises:
        SolverError: singular/disconnected system or non-finite result.
    """
    return FactorizedPDN(netlist).solve(check=check)


def _verify(
    solution: DCSolution,
    cs_amp: np.ndarray,
    vs_volt: np.ndarray,
    v_full: np.ndarray,
) -> None:
    """Check KCL at every node and overall power balance (vectorized)."""
    compiled = solution.compiled
    n = compiled.n_nodes
    currents = solution.resistor_current_array
    source_currents = solution.source_current_array

    def contributions(nodes: np.ndarray, flow: np.ndarray) -> np.ndarray:
        keep = nodes != GROUND_INDEX
        return np.bincount(nodes[keep], weights=flow[keep], minlength=n)

    residual = (
        contributions(compiled.res_a, -currents)
        + contributions(compiled.res_b, currents)
        + contributions(compiled.cs_from, -cs_amp)
        + contributions(compiled.cs_to, cs_amp)
        + contributions(compiled.vs_plus, source_currents)
        + contributions(compiled.vs_minus, -source_currents)
    )
    scale = max(
        1.0,
        float(np.abs(cs_amp).max(initial=0.0)),
        float(np.abs(source_currents).max(initial=0.0)),
    )
    worst = float(np.abs(residual).max(initial=0.0))
    if worst > 1e-6 * scale:
        raise SolverError(
            f"KCL violated: worst node residual {worst:.3e} A "
            f"(scale {scale:.3e} A)"
        )

    source_power = float(vs_volt @ source_currents)
    load_power = float(
        cs_amp @ (v_full[compiled.cs_from] - v_full[compiled.cs_to])
    )
    dissipated = float(solution.resistor_loss_array.sum())
    imbalance = abs(source_power - load_power - dissipated)
    power_scale = max(1.0, abs(source_power), abs(load_power), dissipated)
    if imbalance > 1e-6 * power_scale:
        raise SolverError(
            f"power balance violated: sources {source_power:.6e} W, "
            f"loads {load_power:.6e} W, dissipation {dissipated:.6e} W"
        )
