"""Complex-valued (AC) modified nodal analysis.

Extends the DC netlist with inductors and capacitors and solves the
phasor-domain system at arbitrary frequencies.  The flagship use is
:func:`impedance_at`: drive 1 A of AC current into a node and read
the node voltage — the impedance the die sees — for *arbitrary*
decap networks, not just the ladder the analytic model in
:mod:`repro.pdn.impedance` covers.  The two are cross-validated in
``tests/test_ac.py``.

Two solve paths exist:

* :func:`solve_ac` — the scalar oracle: rebuilds and solves the full
  system at one frequency.  Retained for parity testing.
* :class:`CompiledACNetlist` / :class:`ACSweep` — the sweep engine:
  the COO stamp *structure* (entry rows/columns plus per-entry
  resistive, capacitive, and inductive coefficients) is built once;
  per frequency only the complex value vector is recomputed
  (vectorized over elements and over the whole frequency grid), and
  one shared CSC index pattern maps values into the matrix.  Small
  systems batch all frequencies through one LAPACK call.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConfigError, SolverError
from .mna import SINGULARITY_PROBE_TOL, singularity_probe
from .network import (
    GROUND_INDEX,
    Netlist,
    NodeId,
    admittance_stamp_entries,
)


@dataclass(frozen=True)
class InductorElement:
    """An ideal inductor between two nodes."""

    name: str
    node_a: NodeId
    node_b: NodeId
    inductance_h: float

    def __post_init__(self) -> None:
        if self.inductance_h <= 0:
            raise ConfigError(f"inductor {self.name}: L must be positive")
        if self.node_a == self.node_b:
            raise ConfigError(f"inductor {self.name}: shorted terminals")


@dataclass(frozen=True)
class CapacitorElement:
    """An ideal capacitor between two nodes."""

    name: str
    node_a: NodeId
    node_b: NodeId
    capacitance_f: float

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ConfigError(f"capacitor {self.name}: C must be positive")
        if self.node_a == self.node_b:
            raise ConfigError(f"capacitor {self.name}: shorted terminals")


class ACNetlist(Netlist):
    """A netlist with reactive elements for phasor analysis."""

    def __init__(self) -> None:
        super().__init__()
        self.inductors: list[InductorElement] = []
        self.capacitors: list[CapacitorElement] = []

    def add_inductor(
        self, name: str, node_a: NodeId, node_b: NodeId, inductance_h: float
    ) -> InductorElement:
        """Add an ideal inductor and return it."""
        self._register(name)
        element = InductorElement(name, node_a, node_b, inductance_h)
        self.inductors.append(element)
        return element

    def add_capacitor(
        self, name: str, node_a: NodeId, node_b: NodeId, capacitance_f: float
    ) -> CapacitorElement:
        """Add an ideal capacitor and return it."""
        self._register(name)
        element = CapacitorElement(name, node_a, node_b, capacitance_f)
        self.capacitors.append(element)
        return element

    def nodes(self) -> list[NodeId]:
        """All distinct nodes including reactive terminals."""
        seen = {node: None for node in super().nodes()}
        for l in self.inductors:
            seen.setdefault(l.node_a)
            seen.setdefault(l.node_b)
        for c in self.capacitors:
            seen.setdefault(c.node_a)
            seen.setdefault(c.node_b)
        seen.pop(self.GROUND, None)
        return list(seen.keys())

    def validate(self) -> None:
        """AC netlists may legitimately consist of R/L/C only."""
        if (
            not self.resistors
            and not self.voltage_sources
            and not self.inductors
            and not self.capacitors
        ):
            raise ConfigError("netlist has no elements")

    def extend_ac(self, other: "ACNetlist") -> None:
        """Copy every element of ``other`` into this netlist."""
        self.extend(other)
        for l in other.inductors:
            self.add_inductor(l.name, l.node_a, l.node_b, l.inductance_h)
        for c in other.capacitors:
            self.add_capacitor(c.name, c.node_a, c.node_b, c.capacitance_f)

    def compile_ac(self) -> "CompiledACNetlist":
        """Snapshot into the array-backed sweep form (built once,
        reused for any number of frequencies)."""
        return CompiledACNetlist(self)


@dataclass(frozen=True)
class ACSolution:
    """Phasor solution at one frequency."""

    frequency_hz: float
    node_voltages: dict[NodeId, complex]

    def voltage(self, node: NodeId) -> complex:
        """Complex node voltage (ground returns 0)."""
        if node == "0":
            return 0.0 + 0.0j
        return self.node_voltages[node]

    def magnitude(self, node: NodeId) -> float:
        """|V| at a node."""
        return abs(self.voltage(node))


def solve_ac(netlist: ACNetlist, frequency_hz: float) -> ACSolution:
    """Solve the phasor-domain operating point at one frequency.

    Current sources are interpreted as AC magnitudes (phase 0);
    voltage sources likewise.  Inductors/capacitors stamp their
    admittances 1/(jωL) and jωC.
    """
    if frequency_hz <= 0:
        raise ConfigError("frequency must be positive")
    netlist.validate()
    nodes = netlist.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    m = len(netlist.voltage_sources)
    size = n + m
    omega = 2.0 * math.pi * frequency_hz

    rows: list[int] = []
    cols: list[int] = []
    vals: list[complex] = []
    rhs = np.zeros(size, dtype=complex)

    def stamp_admittance(a: NodeId, b: NodeId, y: complex) -> None:
        if a != netlist.GROUND:
            rows.append(index[a]); cols.append(index[a]); vals.append(y)
        if b != netlist.GROUND:
            rows.append(index[b]); cols.append(index[b]); vals.append(y)
        if a != netlist.GROUND and b != netlist.GROUND:
            rows.append(index[a]); cols.append(index[b]); vals.append(-y)
            rows.append(index[b]); cols.append(index[a]); vals.append(-y)

    for r in netlist.resistors:
        stamp_admittance(r.node_a, r.node_b, 1.0 / r.resistance_ohm)
    for l in netlist.inductors:
        stamp_admittance(
            l.node_a, l.node_b, 1.0 / (1j * omega * l.inductance_h)
        )
    for c in netlist.capacitors:
        stamp_admittance(c.node_a, c.node_b, 1j * omega * c.capacitance_f)

    for s in netlist.current_sources:
        if s.node_from != netlist.GROUND:
            rhs[index[s.node_from]] -= s.current_a
        if s.node_to != netlist.GROUND:
            rhs[index[s.node_to]] += s.current_a

    for k, v in enumerate(netlist.voltage_sources):
        row = n + k
        if v.node_plus != netlist.GROUND:
            rows.append(index[v.node_plus]); cols.append(row); vals.append(1.0)
            rows.append(row); cols.append(index[v.node_plus]); vals.append(1.0)
        if v.node_minus != netlist.GROUND:
            rows.append(index[v.node_minus]); cols.append(row); vals.append(-1.0)
            rows.append(row); cols.append(index[v.node_minus]); vals.append(-1.0)
        rhs[row] = v.voltage_v

    matrix = sp.coo_matrix(
        (np.asarray(vals, dtype=complex), (rows, cols)),
        shape=(size, size),
    ).tocsc()
    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore", spla.MatrixRankWarning)
        try:
            solution = spla.spsolve(matrix, rhs)
        except RuntimeError as exc:
            raise SolverError(f"AC MNA solve failed: {exc}") from exc
    if not np.all(np.isfinite(solution)):
        raise SolverError(
            "AC solution contains non-finite values (resonant singularity "
            "or floating subcircuit)"
        )
    voltages = {node: complex(solution[index[node]]) for node in nodes}
    return ACSolution(frequency_hz=frequency_hz, node_voltages=voltages)


def check_frequencies(frequencies_hz: np.ndarray) -> np.ndarray:
    """Validate and normalize a frequency grid (1-D, positive)."""
    freqs = np.asarray(frequencies_hz, dtype=float)
    if freqs.ndim != 1 or len(freqs) == 0:
        raise ConfigError("frequencies must be a non-empty 1-D array")
    if np.any(freqs <= 0):
        raise ConfigError("frequencies must be positive")
    return freqs


@dataclass(frozen=True)
class ACSweepSolution:
    """Phasor solutions over a frequency grid.

    Attributes:
        frequencies_hz: the sweep grid.
        nodes: non-ground node ids in row order.
        voltage_matrix: complex node voltages, shape
            ``(len(frequencies_hz), len(nodes))``.
    """

    frequencies_hz: np.ndarray
    nodes: tuple[NodeId, ...]
    voltage_matrix: np.ndarray

    def _column(self, node: NodeId) -> int:
        try:
            return self.nodes.index(node)
        except ValueError:
            raise ConfigError(f"unknown node: {node!r}") from None

    def voltage(self, node: NodeId) -> np.ndarray:
        """Complex V(f) at a node (ground returns zeros)."""
        if node == "0":
            return np.zeros(len(self.frequencies_hz), dtype=complex)
        return self.voltage_matrix[:, self._column(node)]

    def magnitude(self, node: NodeId) -> np.ndarray:
        """|V(f)| at a node."""
        return np.abs(self.voltage(node))

    def at(self, index: int) -> ACSolution:
        """The scalar :class:`ACSolution` view of one sweep point."""
        row = self.voltage_matrix[index]
        return ACSolution(
            frequency_hz=float(self.frequencies_hz[index]),
            node_voltages={
                node: complex(row[i]) for i, node in enumerate(self.nodes)
            },
        )


#: Systems at or below this MNA dimension solve a frequency sweep as
#: one batched dense LAPACK call instead of per-frequency sparse LU.
DENSE_SWEEP_CUTOFF = 256

#: Reduced *grid* systems at or below this cell count invert densely
#: in :meth:`repro.pdn.grid.GridACPDN.impedance_map`; above it the
#: shared-pattern sparse path wins.  Measured crossover on the reduced
#: mesh operator (full-inverse workload, so it sits far below the
#: single-RHS :data:`DENSE_SWEEP_CUTOFF`): at 256 cells dense is
#: already ~3x slower than sparse.
GRID_DENSE_CELL_CUTOFF = 64

#: Upper bound on the scratch size (complex entries) of one dense
#: batch; sweeps above it are chunked over frequency.
_DENSE_BATCH_ENTRIES = 2_000_000


def grid_direct_mode(cells: int) -> str:
    """Which direct inversion the grid impedance map uses at this
    mesh size: ``"dense"`` (batched LAPACK) or ``"sparse"``
    (shared-pattern sparse LU)."""
    return "dense" if cells <= GRID_DENSE_CELL_CUTOFF else "sparse"


def shared_csc_pattern(
    rows: np.ndarray, cols: np.ndarray, size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One reusable CSC index pattern for a fixed COO entry layout.

    Sorts the entries column-major once and finds the duplicate
    groups, so that any value vector over the same (rows, cols) maps
    onto the CSC ``data`` array with one fancy-index plus one
    ``np.add.reduceat`` — no per-solve sparse re-assembly.  Returns
    ``(order, starts, csc_rows, csc_cols, indptr)``.  Shared by the
    lumped AC sweep engine and the grid-level reduced AC assembly.
    """
    nnz = len(rows)
    order = np.lexsort((rows, cols))
    r_sorted = rows[order]
    c_sorted = cols[order]
    boundary = np.ones(nnz, dtype=bool)
    boundary[1:] = (r_sorted[1:] != r_sorted[:-1]) | (
        c_sorted[1:] != c_sorted[:-1]
    )
    starts = np.nonzero(boundary)[0]
    csc_rows = r_sorted[starts]
    csc_cols = c_sorted[starts]
    counts = np.bincount(csc_cols, minlength=size)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return order, starts, csc_rows, csc_cols, indptr


class CompiledACNetlist:
    """An AC netlist compiled to a reusable frequency-sweep structure.

    Built once from an :class:`ACNetlist` (or directly from arrays via
    :meth:`from_arrays`): nodes are mapped to integer rows and every
    matrix entry is recorded as COO coordinates plus three per-entry
    coefficient arrays — resistive (frequency independent), capacitive
    (scaled by ``jω``), and inductive (scaled by ``1/(jω)``) — so the
    complex value vector at any frequency is

    ``vals(ω) = const + j(ω·cap − ind/ω)``

    with no per-element Python work.  The CSC index pattern (column
    pointers, row indices, and the duplicate-summing permutation) is
    computed once and shared by every frequency in a sweep; only the
    numeric values change.  The right-hand side (source phasors) is
    frequency independent and also precomputed.
    """

    def __init__(self, netlist: ACNetlist) -> None:
        netlist.validate()
        nodes = netlist.nodes()
        index = {node: i for i, node in enumerate(nodes)}
        index[netlist.GROUND] = GROUND_INDEX

        def endpoint_rows(pairs: list[tuple[NodeId, NodeId]]) -> np.ndarray:
            flat = np.fromiter(
                (index[node] for pair in pairs for node in pair),
                dtype=np.int64,
                count=2 * len(pairs),
            )
            return flat.reshape(-1, 2)

        res = endpoint_rows(
            [(r.node_a, r.node_b) for r in netlist.resistors]
        )
        ind = endpoint_rows(
            [(l.node_a, l.node_b) for l in netlist.inductors]
        )
        cap = endpoint_rows(
            [(c.node_a, c.node_b) for c in netlist.capacitors]
        )
        vs = endpoint_rows(
            [(v.node_plus, v.node_minus) for v in netlist.voltage_sources]
        )
        cs = endpoint_rows(
            [(s.node_from, s.node_to) for s in netlist.current_sources]
        )
        self._init_arrays(
            nodes=tuple(nodes),
            res_a=res[:, 0],
            res_b=res[:, 1],
            res_ohm=np.array([r.resistance_ohm for r in netlist.resistors]),
            ind_a=ind[:, 0],
            ind_b=ind[:, 1],
            ind_h=np.array([l.inductance_h for l in netlist.inductors]),
            cap_a=cap[:, 0],
            cap_b=cap[:, 1],
            cap_f=np.array([c.capacitance_f for c in netlist.capacitors]),
            vs_plus=vs[:, 0],
            vs_minus=vs[:, 1],
            vs_volt=np.array([v.voltage_v for v in netlist.voltage_sources]),
            cs_from=cs[:, 0],
            cs_to=cs[:, 1],
            cs_amp=np.array([s.current_a for s in netlist.current_sources]),
        )

    @classmethod
    def from_arrays(
        cls,
        *,
        nodes: tuple[NodeId, ...],
        res_a: np.ndarray | None = None,
        res_b: np.ndarray | None = None,
        res_ohm: np.ndarray | None = None,
        ind_a: np.ndarray | None = None,
        ind_b: np.ndarray | None = None,
        ind_h: np.ndarray | None = None,
        cap_a: np.ndarray | None = None,
        cap_b: np.ndarray | None = None,
        cap_f: np.ndarray | None = None,
        vs_plus: np.ndarray | None = None,
        vs_minus: np.ndarray | None = None,
        vs_volt: np.ndarray | None = None,
        cs_from: np.ndarray | None = None,
        cs_to: np.ndarray | None = None,
        cs_amp: np.ndarray | None = None,
    ) -> "CompiledACNetlist":
        """Compile directly from integer-indexed element arrays.

        The array-native construction path for regular builders (the
        grid mesh): endpoints are rows into ``nodes`` with ground
        encoded as :data:`~repro.pdn.network.GROUND_INDEX`, exactly as
        in :class:`~repro.pdn.network.CompiledNetlist`, and no
        per-element Python objects are ever created.
        """

        def ints(values: np.ndarray | None) -> np.ndarray:
            if values is None:
                return np.empty(0, dtype=np.int64)
            return np.ascontiguousarray(values, dtype=np.int64)

        def floats(values: np.ndarray | None) -> np.ndarray:
            if values is None:
                return np.empty(0)
            return np.ascontiguousarray(values, dtype=float)

        self = object.__new__(cls)
        self._init_arrays(
            nodes=tuple(nodes),
            res_a=ints(res_a),
            res_b=ints(res_b),
            res_ohm=floats(res_ohm),
            ind_a=ints(ind_a),
            ind_b=ints(ind_b),
            ind_h=floats(ind_h),
            cap_a=ints(cap_a),
            cap_b=ints(cap_b),
            cap_f=floats(cap_f),
            vs_plus=ints(vs_plus),
            vs_minus=ints(vs_minus),
            vs_volt=floats(vs_volt),
            cs_from=ints(cs_from),
            cs_to=ints(cs_to),
            cs_amp=floats(cs_amp),
        )
        return self

    def _init_arrays(
        self,
        *,
        nodes: tuple[NodeId, ...],
        res_a: np.ndarray,
        res_b: np.ndarray,
        res_ohm: np.ndarray,
        ind_a: np.ndarray,
        ind_b: np.ndarray,
        ind_h: np.ndarray,
        cap_a: np.ndarray,
        cap_b: np.ndarray,
        cap_f: np.ndarray,
        vs_plus: np.ndarray,
        vs_minus: np.ndarray,
        vs_volt: np.ndarray,
        cs_from: np.ndarray,
        cs_to: np.ndarray,
        cs_amp: np.ndarray,
    ) -> None:
        n = len(nodes)
        m = len(vs_volt)
        self.nodes: tuple[NodeId, ...] = nodes
        self.n_nodes = n
        self.size = n + m

        for label, a, b, values, positive in (
            ("resistor", res_a, res_b, res_ohm, True),
            ("inductor", ind_a, ind_b, ind_h, True),
            ("capacitor", cap_a, cap_b, cap_f, True),
            ("voltage source", vs_plus, vs_minus, vs_volt, False),
            ("current source", cs_from, cs_to, cs_amp, False),
        ):
            if not (len(a) == len(b) == len(values)):
                raise ConfigError(f"{label} arrays have mismatched lengths")
            for endpoint in (a, b):
                if endpoint.size and (
                    endpoint.min() < GROUND_INDEX or endpoint.max() >= n
                ):
                    raise ConfigError(f"{label} endpoint index out of range")
            if positive and values.size and np.any(values <= 0):
                raise ConfigError(f"compiled {label} values must be positive")
        if not len(res_ohm) and not len(vs_volt) and not len(ind_h) and not len(cap_f):
            raise ConfigError("netlist has no elements")

        g_rows, g_cols, g_vals = admittance_stamp_entries(
            res_a, res_b, 1.0 / res_ohm
        )
        l_rows, l_cols, l_vals = admittance_stamp_entries(
            ind_a, ind_b, 1.0 / ind_h
        )
        c_rows, c_cols, c_vals = admittance_stamp_entries(
            cap_a, cap_b, cap_f
        )

        kp = np.nonzero(vs_plus != GROUND_INDEX)[0]
        km = np.nonzero(vs_minus != GROUND_INDEX)[0]
        b_rows = np.concatenate([vs_plus[kp], n + kp, vs_minus[km], n + km])
        b_cols = np.concatenate([n + kp, vs_plus[kp], n + km, vs_minus[km]])
        b_vals = np.concatenate(
            [np.ones(len(kp)), np.ones(len(kp)),
             -np.ones(len(km)), -np.ones(len(km))]
        )

        rows = np.concatenate([g_rows, b_rows, c_rows, l_rows])
        cols = np.concatenate([g_cols, b_cols, c_cols, l_cols])
        nnz = len(rows)
        self._const = np.zeros(nnz)
        self._cap = np.zeros(nnz)
        self._ind = np.zeros(nnz)
        fixed = len(g_rows) + len(b_rows)
        self._const[: len(g_rows)] = g_vals
        self._const[len(g_rows) : fixed] = b_vals
        self._cap[fixed : fixed + len(c_rows)] = c_vals
        self._ind[fixed + len(c_rows) :] = l_vals
        self._rows = rows
        self._cols = cols

        (
            self._order,
            self._starts,
            self._csc_rows,
            self._csc_cols,
            self._indptr,
        ) = shared_csc_pattern(rows, cols, self.size)

        # Frequency-independent RHS: source magnitudes at phase 0.
        rhs = np.zeros(self.size, dtype=complex)
        if cs_amp.size:
            out_of = cs_from != GROUND_INDEX
            into = cs_to != GROUND_INDEX
            rhs[:n] += np.bincount(
                cs_to[into], weights=cs_amp[into], minlength=n
            )
            rhs[:n] -= np.bincount(
                cs_from[out_of], weights=cs_amp[out_of], minlength=n
            )
        rhs[n:] = vs_volt
        self.rhs = rhs

    # -- per-frequency values -------------------------------------------------

    def values_at(self, omega: float) -> np.ndarray:
        """Complex COO entry values at one angular frequency
        (element stamp order, duplicates not summed)."""
        return self._const + 1j * (omega * self._cap - self._ind / omega)

    def csc_data(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Matrix values for every frequency on the shared pattern.

        Shape ``(len(frequencies_hz), nnz_csc)`` — row ``k`` is the
        ``data`` array of the CSC matrix at frequency ``k``.
        """
        omega = 2.0 * math.pi * check_frequencies(frequencies_hz)
        vals = self._const[None, :] + 1j * (
            omega[:, None] * self._cap[None, :]
            - self._ind[None, :] / omega[:, None]
        )
        return np.add.reduceat(vals[:, self._order], self._starts, axis=1)

    def matrix_at(self, frequency_hz: float) -> sp.csc_matrix:
        """The assembled CSC system matrix at one frequency."""
        data = self.csc_data(np.array([float(frequency_hz)]))[0]
        return sp.csc_matrix(
            (data, self._csc_rows, self._indptr),
            shape=(self.size, self.size),
        )

    # -- sweep solve ----------------------------------------------------------

    def solve(self, frequencies_hz: np.ndarray) -> ACSweepSolution:
        """Solve the phasor operating point at every frequency.

        Small systems (``size <= DENSE_SWEEP_CUTOFF``) are solved as
        batched dense LAPACK calls, chunked to bound scratch memory;
        larger ones run one sparse LU per frequency on the shared
        pattern.  Either way the netlist is never re-assembled.

        Raises:
            SolverError: a non-finite solution (resonant singularity
                or floating subcircuit) at any sweep point.
        """
        freqs = check_frequencies(frequencies_hz)
        count = len(freqs)
        size = self.size
        solutions = np.empty((count, size), dtype=complex)
        # Known-solution probe, as in the DC factorization (see
        # repro.pdn.mna.singularity_probe): an exactly singular point
        # (a floating subcircuit that LU slid through on a rounded
        # pivot) fails loudly instead of returning an arbitrary
        # null-space offset.  It rides along as one extra RHS column,
        # so the sweep pays almost nothing.
        probe = singularity_probe(size)
        probe_error = np.empty(count)
        use_dense = size <= DENSE_SWEEP_CUTOFF
        # Both branches chunk over frequency so the per-chunk scratch
        # (dense matrix batch, or the (chunk, nnz) value matrix of a
        # large sparse system) stays bounded on long sweeps.
        per_point = size * size if use_dense else max(len(self._rows), size)
        chunk = max(1, _DENSE_BATCH_ENTRIES // per_point)

        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            data = self.csc_data(freqs[lo:hi])
            if use_dense:
                flat_index = self._csc_rows * size + self._csc_cols
                dense = np.zeros((hi - lo, size * size), dtype=complex)
                dense[:, flat_index] = data
                dense = dense.reshape(hi - lo, size, size)
                stacked = np.empty((hi - lo, size, 2), dtype=complex)
                stacked[:, :, 0] = self.rhs
                stacked[:, :, 1] = dense @ probe
                try:
                    with np.errstate(all="ignore"):
                        solved = np.linalg.solve(dense, stacked)
                except np.linalg.LinAlgError as exc:
                    raise SolverError(
                        f"AC sweep solve failed: {exc}"
                    ) from exc
                solutions[lo:hi] = solved[:, :, 0]
                with np.errstate(all="ignore"):
                    probe_error[lo:hi] = np.abs(
                        solved[:, :, 1] - probe
                    ).max(axis=1, initial=0.0)
            else:
                for k in range(lo, hi):
                    matrix = sp.csc_matrix(
                        (data[k - lo], self._csc_rows, self._indptr),
                        shape=(size, size),
                    )
                    stacked = np.column_stack([self.rhs, matrix @ probe])
                    with np.errstate(all="ignore"), warnings.catch_warnings():
                        warnings.simplefilter(
                            "ignore", spla.MatrixRankWarning
                        )
                        try:
                            solved = spla.splu(matrix).solve(stacked)
                        except RuntimeError as exc:
                            raise SolverError(
                                f"AC sweep solve failed at "
                                f"{freqs[k]:.6g} Hz: {exc}"
                            ) from exc
                    solutions[k] = solved[:, 0]
                    with np.errstate(all="ignore"):
                        probe_error[k] = float(
                            np.abs(solved[:, 1] - probe).max(initial=0.0)
                        )

        good = np.all(np.isfinite(solutions), axis=1)
        good &= np.isfinite(probe_error) & (
            probe_error <= SINGULARITY_PROBE_TOL
        )
        if not good.all():
            bad = freqs[np.nonzero(~good)[0][0]]
            raise SolverError(
                f"AC solution is singular or non-finite at {bad:.6g} Hz "
                "(resonant singularity or floating subcircuit)"
            )
        return ACSweepSolution(
            frequencies_hz=freqs,
            nodes=self.nodes,
            voltage_matrix=solutions[:, : self.n_nodes],
        )


class ACSweep:
    """Compile-once frequency-sweep engine over an :class:`ACNetlist`.

    The netlist is compiled on construction; :meth:`solve` then runs
    any number of sweeps without re-assembling the stamp structure.
    The input netlist is snapshotted — later mutations do not affect
    the sweep.
    """

    def __init__(self, netlist: ACNetlist) -> None:
        self.compiled = netlist.compile_ac()

    def solve(self, frequencies_hz: np.ndarray) -> ACSweepSolution:
        """Solve every frequency on the shared stamp pattern."""
        return self.compiled.solve(frequencies_hz)


def probe_netlist(netlist: ACNetlist, node: NodeId) -> ACNetlist:
    """The small-signal probe circuit for an impedance measurement.

    All independent sources are zeroed (voltage sources become shorts,
    current sources open circuits) and a 1 A probe is injected into
    ``node``.  The input netlist is not mutated.
    """
    probe = ACNetlist()
    for r in netlist.resistors:
        probe.add_resistor(r.name, r.node_a, r.node_b, r.resistance_ohm)
    for l in netlist.inductors:
        probe.add_inductor(l.name, l.node_a, l.node_b, l.inductance_h)
    for c in netlist.capacitors:
        probe.add_capacitor(c.name, c.node_a, c.node_b, c.capacitance_f)
    for v in netlist.voltage_sources:
        # Zeroed voltage source = ideal short between its terminals.
        probe.add_voltage_source(v.name, v.node_plus, 0.0, v.node_minus)
    # Current sources are zeroed by omission (open circuits).
    probe.add_current_source("__probe__", probe.GROUND, node, 1.0)
    return probe


def impedance_at(
    netlist: ACNetlist, node: NodeId, frequencies_hz: np.ndarray
) -> np.ndarray:
    """|Z(f)| looking into ``node``: inject 1 A AC, read |V|.

    Small-signal analysis via :func:`probe_netlist`; the whole sweep
    runs on one compiled stamp structure (:class:`ACSweep`), so dense
    frequency grids cost one compilation plus vectorized solves.
    :func:`solve_ac` on the same probe circuit is the scalar parity
    oracle (see ``tests/test_ac.py``).
    """
    freqs = check_frequencies(frequencies_hz)
    sweep = ACSweep(probe_netlist(netlist, node))
    return sweep.solve(freqs).magnitude(node)
