"""Complex-valued (AC) modified nodal analysis.

Extends the DC netlist with inductors and capacitors and solves the
phasor-domain system at arbitrary frequencies.  The flagship use is
:func:`impedance_at`: drive 1 A of AC current into a node and read
the node voltage — the impedance the die sees — for *arbitrary*
decap networks, not just the ladder the analytic model in
:mod:`repro.pdn.impedance` covers.  The two are cross-validated in
``tests/test_ac.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConfigError, SolverError
from .network import Netlist, NodeId


@dataclass(frozen=True)
class InductorElement:
    """An ideal inductor between two nodes."""

    name: str
    node_a: NodeId
    node_b: NodeId
    inductance_h: float

    def __post_init__(self) -> None:
        if self.inductance_h <= 0:
            raise ConfigError(f"inductor {self.name}: L must be positive")
        if self.node_a == self.node_b:
            raise ConfigError(f"inductor {self.name}: shorted terminals")


@dataclass(frozen=True)
class CapacitorElement:
    """An ideal capacitor between two nodes."""

    name: str
    node_a: NodeId
    node_b: NodeId
    capacitance_f: float

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ConfigError(f"capacitor {self.name}: C must be positive")
        if self.node_a == self.node_b:
            raise ConfigError(f"capacitor {self.name}: shorted terminals")


class ACNetlist(Netlist):
    """A netlist with reactive elements for phasor analysis."""

    def __init__(self) -> None:
        super().__init__()
        self.inductors: list[InductorElement] = []
        self.capacitors: list[CapacitorElement] = []

    def add_inductor(
        self, name: str, node_a: NodeId, node_b: NodeId, inductance_h: float
    ) -> InductorElement:
        """Add an ideal inductor and return it."""
        self._register(name)
        element = InductorElement(name, node_a, node_b, inductance_h)
        self.inductors.append(element)
        return element

    def add_capacitor(
        self, name: str, node_a: NodeId, node_b: NodeId, capacitance_f: float
    ) -> CapacitorElement:
        """Add an ideal capacitor and return it."""
        self._register(name)
        element = CapacitorElement(name, node_a, node_b, capacitance_f)
        self.capacitors.append(element)
        return element

    def nodes(self) -> list[NodeId]:
        """All distinct nodes including reactive terminals."""
        seen = {node: None for node in super().nodes()}
        for l in self.inductors:
            seen.setdefault(l.node_a)
            seen.setdefault(l.node_b)
        for c in self.capacitors:
            seen.setdefault(c.node_a)
            seen.setdefault(c.node_b)
        seen.pop(self.GROUND, None)
        return list(seen.keys())

    def validate(self) -> None:
        """AC netlists may legitimately consist of R/L/C only."""
        if (
            not self.resistors
            and not self.voltage_sources
            and not self.inductors
            and not self.capacitors
        ):
            raise ConfigError("netlist has no elements")

    def extend_ac(self, other: "ACNetlist") -> None:
        """Copy every element of ``other`` into this netlist."""
        self.extend(other)
        for l in other.inductors:
            self.add_inductor(l.name, l.node_a, l.node_b, l.inductance_h)
        for c in other.capacitors:
            self.add_capacitor(c.name, c.node_a, c.node_b, c.capacitance_f)


@dataclass(frozen=True)
class ACSolution:
    """Phasor solution at one frequency."""

    frequency_hz: float
    node_voltages: dict[NodeId, complex]

    def voltage(self, node: NodeId) -> complex:
        """Complex node voltage (ground returns 0)."""
        if node == "0":
            return 0.0 + 0.0j
        return self.node_voltages[node]

    def magnitude(self, node: NodeId) -> float:
        """|V| at a node."""
        return abs(self.voltage(node))


def solve_ac(netlist: ACNetlist, frequency_hz: float) -> ACSolution:
    """Solve the phasor-domain operating point at one frequency.

    Current sources are interpreted as AC magnitudes (phase 0);
    voltage sources likewise.  Inductors/capacitors stamp their
    admittances 1/(jωL) and jωC.
    """
    if frequency_hz <= 0:
        raise ConfigError("frequency must be positive")
    netlist.validate()
    nodes = netlist.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    m = len(netlist.voltage_sources)
    size = n + m
    omega = 2.0 * math.pi * frequency_hz

    rows: list[int] = []
    cols: list[int] = []
    vals: list[complex] = []
    rhs = np.zeros(size, dtype=complex)

    def stamp_admittance(a: NodeId, b: NodeId, y: complex) -> None:
        if a != netlist.GROUND:
            rows.append(index[a]); cols.append(index[a]); vals.append(y)
        if b != netlist.GROUND:
            rows.append(index[b]); cols.append(index[b]); vals.append(y)
        if a != netlist.GROUND and b != netlist.GROUND:
            rows.append(index[a]); cols.append(index[b]); vals.append(-y)
            rows.append(index[b]); cols.append(index[a]); vals.append(-y)

    for r in netlist.resistors:
        stamp_admittance(r.node_a, r.node_b, 1.0 / r.resistance_ohm)
    for l in netlist.inductors:
        stamp_admittance(
            l.node_a, l.node_b, 1.0 / (1j * omega * l.inductance_h)
        )
    for c in netlist.capacitors:
        stamp_admittance(c.node_a, c.node_b, 1j * omega * c.capacitance_f)

    for s in netlist.current_sources:
        if s.node_from != netlist.GROUND:
            rhs[index[s.node_from]] -= s.current_a
        if s.node_to != netlist.GROUND:
            rhs[index[s.node_to]] += s.current_a

    for k, v in enumerate(netlist.voltage_sources):
        row = n + k
        if v.node_plus != netlist.GROUND:
            rows.append(index[v.node_plus]); cols.append(row); vals.append(1.0)
            rows.append(row); cols.append(index[v.node_plus]); vals.append(1.0)
        if v.node_minus != netlist.GROUND:
            rows.append(index[v.node_minus]); cols.append(row); vals.append(-1.0)
            rows.append(row); cols.append(index[v.node_minus]); vals.append(-1.0)
        rhs[row] = v.voltage_v

    matrix = sp.coo_matrix(
        (np.asarray(vals, dtype=complex), (rows, cols)),
        shape=(size, size),
    ).tocsc()
    import warnings

    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore", spla.MatrixRankWarning)
        try:
            solution = spla.spsolve(matrix, rhs)
        except RuntimeError as exc:
            raise SolverError(f"AC MNA solve failed: {exc}") from exc
    if not np.all(np.isfinite(solution)):
        raise SolverError(
            "AC solution contains non-finite values (resonant singularity "
            "or floating subcircuit)"
        )
    voltages = {node: complex(solution[index[node]]) for node in nodes}
    return ACSolution(frequency_hz=frequency_hz, node_voltages=voltages)


def impedance_at(
    netlist: ACNetlist, node: NodeId, frequencies_hz: np.ndarray
) -> np.ndarray:
    """|Z(f)| looking into ``node``: inject 1 A AC, read |V|.

    Small-signal analysis: all independent sources in the netlist are
    zeroed first (voltage sources become shorts, current sources open
    circuits), then the probe current is injected.  The input netlist
    is not mutated.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    if freqs.ndim != 1 or len(freqs) == 0:
        raise ConfigError("frequencies must be a non-empty 1-D array")
    if np.any(freqs <= 0):
        raise ConfigError("frequencies must be positive")

    probe = ACNetlist()
    for r in netlist.resistors:
        probe.add_resistor(r.name, r.node_a, r.node_b, r.resistance_ohm)
    for l in netlist.inductors:
        probe.add_inductor(l.name, l.node_a, l.node_b, l.inductance_h)
    for c in netlist.capacitors:
        probe.add_capacitor(c.name, c.node_a, c.node_b, c.capacitance_f)
    for v in netlist.voltage_sources:
        # Zeroed voltage source = ideal short between its terminals.
        probe.add_voltage_source(v.name, v.node_plus, 0.0, v.node_minus)
    # Current sources are zeroed by omission (open circuits).
    probe.add_current_source("__probe__", probe.GROUND, node, 1.0)

    magnitudes = np.empty(len(freqs))
    for k, frequency in enumerate(freqs):
        magnitudes[k] = solve_ac(probe, float(frequency)).magnitude(node)
    return magnitudes
