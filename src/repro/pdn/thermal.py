"""Thermal network and electro-thermal coupling.

Power dissipated in the die, the embedded regulators, and the
interconnect heats the stack; copper and solder resistivity rise
~0.4%/°C and ~0.2%/°C, and converter conduction loss follows the
switches' R_on(T).  This module provides:

* a one-dimensional thermal resistance ladder of the 2.5D stack
  (die → interposer → package → board → ambient) with heat injected
  at each level,
* the temperature coefficients the electro-thermal coupling in
  :mod:`repro.core.electro_thermal` applies to interconnect and
  converter losses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Fractional resistance increase per °C for interconnect copper/solder
#: (blended packaging value).
INTERCONNECT_TEMPCO_PER_C = 3.5e-3

#: Fractional conduction-loss increase per °C for the power switches
#: (R_on tempco; GaN ~ Si at this first order).
CONVERTER_TEMPCO_PER_C = 4.0e-3

#: Reference temperature of all calibrated models.
REFERENCE_TEMPERATURE_C = 25.0


@dataclass(frozen=True)
class ThermalStack:
    """A 1-D thermal ladder from the die to ambient.

    Attributes:
        r_die_to_interposer_c_per_w: junction-to-interposer resistance.
        r_interposer_to_package_c_per_w: interposer-to-package.
        r_package_to_board_c_per_w: package-to-board (incl. BGA field).
        r_board_to_ambient_c_per_w: board + heatsink to ambient.
        ambient_c: ambient temperature.
    """

    r_die_to_interposer_c_per_w: float = 0.020
    r_interposer_to_package_c_per_w: float = 0.015
    r_package_to_board_c_per_w: float = 0.010
    r_board_to_ambient_c_per_w: float = 0.030
    ambient_c: float = 35.0

    def __post_init__(self) -> None:
        for name in (
            "r_die_to_interposer_c_per_w",
            "r_interposer_to_package_c_per_w",
            "r_package_to_board_c_per_w",
            "r_board_to_ambient_c_per_w",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def temperatures(
        self,
        die_power_w: float,
        interposer_power_w: float = 0.0,
        package_power_w: float = 0.0,
        board_power_w: float = 0.0,
    ) -> "StackTemperatures":
        """Solve the ladder for the given per-level heat injections.

        Heat flows strictly toward ambient; the temperature at each
        level is ambient plus the sum over downstream resistances of
        (all heat passing through them).
        """
        for power in (die_power_w, interposer_power_w, package_power_w, board_power_w):
            if power < 0:
                raise ConfigError("heat injections must be non-negative")
        q_board = die_power_w + interposer_power_w + package_power_w + board_power_w
        q_package = die_power_w + interposer_power_w + package_power_w
        q_interposer = die_power_w + interposer_power_w
        q_die = die_power_w

        t_board = self.ambient_c + q_board * self.r_board_to_ambient_c_per_w
        t_package = t_board + q_package * self.r_package_to_board_c_per_w
        t_interposer = (
            t_package + q_interposer * self.r_interposer_to_package_c_per_w
        )
        t_die = t_interposer + q_die * self.r_die_to_interposer_c_per_w
        return StackTemperatures(
            die_c=t_die,
            interposer_c=t_interposer,
            package_c=t_package,
            board_c=t_board,
        )


@dataclass(frozen=True)
class StackTemperatures:
    """Solved level temperatures (°C)."""

    die_c: float
    interposer_c: float
    package_c: float
    board_c: float

    @property
    def hottest_c(self) -> float:
        """The maximum level temperature (always the die here)."""
        return max(self.die_c, self.interposer_c, self.package_c, self.board_c)
