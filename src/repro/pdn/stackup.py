"""Packaging stackup: the hierarchy of levels between PCB and die.

A :class:`PackagingStack` names the levels, binds each inter-level
interface to a Table I vertical technology, and records the lateral
metal available at each level.  The loss engine walks this structure
to build per-architecture power paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemSpec
from ..errors import ConfigError
from ..materials import COPPER
from ..units import um
from .interconnect import (
    ADVANCED_CU_PAD,
    BGA,
    C4_BUMP,
    MICRO_BUMP,
    TSV,
    VerticalInterconnect,
)
from .planes import sheet_resistance


@dataclass(frozen=True)
class LateralMetal:
    """Lateral metal resources of one packaging level.

    Attributes:
        name: label, e.g. ``"PCB planes"`` or ``"interposer RDL"``.
        thickness_m: total copper thickness available to one polarity.
        layers: number of layers that thickness is split across (only
            informational; the sheet resistance uses the total).
    """

    name: str
    thickness_m: float
    layers: int = 1

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ConfigError(f"{self.name}: thickness must be positive")
        if self.layers < 1:
            raise ConfigError(f"{self.name}: at least one layer required")

    @property
    def sheet_ohm_sq(self) -> float:
        """Sheet resistance of the combined stack (one polarity)."""
        return sheet_resistance(self.thickness_m, COPPER)


@dataclass(frozen=True)
class PackagingLevel:
    """One level of the packaging hierarchy.

    Attributes:
        name: level name (``"PCB"``, ``"PKG"``, ``"Interposer"``,
            ``"Die"``).
        lateral: lateral metal model for this level.
        down_interface: vertical technology connecting this level to
            the one *below* it (None for the PCB).
    """

    name: str
    lateral: LateralMetal
    down_interface: VerticalInterconnect | None = None


@dataclass(frozen=True)
class PackagingStack:
    """Ordered packaging levels from PCB (index 0) up to the die."""

    levels: tuple[PackagingLevel, ...]
    spec: SystemSpec = field(default_factory=SystemSpec)

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ConfigError("a stack needs at least PCB and die levels")
        if self.levels[0].down_interface is not None:
            raise ConfigError("the bottom level has no downward interface")
        for level in self.levels[1:]:
            if level.down_interface is None:
                raise ConfigError(
                    f"level {level.name} must declare its downward interface"
                )

    def level(self, name: str) -> PackagingLevel:
        """Look up a level by name."""
        for lvl in self.levels:
            if lvl.name.lower() == name.lower():
                return lvl
        raise ConfigError(f"unknown packaging level: {name!r}")

    def index_of(self, name: str) -> int:
        """Index of a level by name."""
        for i, lvl in enumerate(self.levels):
            if lvl.name.lower() == name.lower():
                return i
        raise ConfigError(f"unknown packaging level: {name!r}")

    def interfaces_between(
        self, lower: str, upper: str
    ) -> list[VerticalInterconnect]:
        """Vertical technologies crossed going from ``lower`` up to
        ``upper`` (exclusive of lower, inclusive of upper)."""
        lo, hi = self.index_of(lower), self.index_of(upper)
        if lo > hi:
            raise ConfigError(f"{lower} is above {upper}")
        techs: list[VerticalInterconnect] = []
        for lvl in self.levels[lo + 1 : hi + 1]:
            assert lvl.down_interface is not None  # enforced in __post_init__
            techs.append(lvl.down_interface)
        return techs

    @property
    def die(self) -> PackagingLevel:
        """The top (die) level."""
        return self.levels[-1]


def default_stack(
    spec: SystemSpec | None = None,
    die_attach: VerticalInterconnect = ADVANCED_CU_PAD,
) -> PackagingStack:
    """The paper's 2.5D stack: PCB -> package -> interposer -> die.

    Args:
        spec: system specification (defaults to the paper's system).
        die_attach: interposer-to-die technology; the vertical
            architectures assume advanced Cu-Cu pads while the
            reference A0 system is also evaluated with solder
            micro-bumps (pass :data:`~repro.pdn.interconnect.MICRO_BUMP`).
    """
    spec = spec or SystemSpec()
    if die_attach not in (ADVANCED_CU_PAD, MICRO_BUMP):
        raise ConfigError("die attach must be micro-bumps or Cu-Cu pads")
    pcb = PackagingLevel(
        name="PCB",
        lateral=LateralMetal(
            name="PCB planes",
            # Two 2-oz (70 um) plane layers per polarity.
            thickness_m=2 * spec.pcb.plane_thickness_m,
            layers=2 * spec.pcb.plane_pairs,
        ),
    )
    pkg = PackagingLevel(
        name="PKG",
        lateral=LateralMetal(
            name="package planes", thickness_m=2 * um(30.0), layers=4
        ),
        down_interface=BGA,
    )
    interposer = PackagingLevel(
        name="Interposer",
        lateral=LateralMetal(
            name="interposer RDL", thickness_m=um(27.0), layers=2
        ),
        down_interface=C4_BUMP,
    )
    die = PackagingLevel(
        name="Die",
        lateral=LateralMetal(
            name="die BEOL grid", thickness_m=um(6.0), layers=4
        ),
        down_interface=die_attach,
    )
    return PackagingStack(levels=(pcb, pkg, interposer, die), spec=spec)


#: Convenience accessor used by modules that only need the TSV model.
THROUGH_INTERPOSER = TSV
