"""Vertical interconnect technologies (Table I of the paper).

Each technology connects two adjacent packaging levels.  From the
published geometry (diameter / cross-area / height / pitch / platform
area) we derive:

* per-element resistance ``rho * h / A``,
* the number of available sites on the platform (``area / pitch^2``),
* array (parallel) resistance for a given element count,
* a derated per-element current rating used by the utilization
  analysis (see DESIGN.md substitution #4 — the paper does not state
  its ratings; ours are electromigration-style derated values chosen
  so the paper's utilization percentages emerge).

Both power and ground rails are considered: delivering current I
requires I through the power elements *and* I back through the ground
elements, so a rail pair doubles the series resistance and halves the
usable site count per polarity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError, InfeasibleError
from ..materials import COPPER, SOLDER_SAC305, Conductor
from ..units import mm2, um, um2


@dataclass(frozen=True)
class VerticalInterconnect:
    """One vertical interconnect technology (a Table I row).

    Attributes:
        name: technology name (e.g. ``"C4 bump"``).
        level: packaging interface it spans (e.g. ``"PKG/Interposer"``).
        material: conductor material of the element.
        platform_area_m2: area of the platform on which the elements
            are placed (Table I "Platform area").
        diameter_m: element diameter (0 for pad-style elements where
            only the cross-area is specified).
        cross_area_m2: element cross-sectional area.
        height_m: element height (vertical span).
        pitch_m: minimum element pitch.
        rated_current_a: derated per-element DC current rating.
        power_site_fraction: fraction of platform sites that may be
            allocated to the power delivery network at all (signal and
            keep-out take the rest).  TSVs have a low fraction because
            through-silicon vias are restricted to dedicated islands.
    """

    name: str
    level: str
    material: Conductor
    platform_area_m2: float
    diameter_m: float
    cross_area_m2: float
    height_m: float
    pitch_m: float
    rated_current_a: float
    power_site_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.platform_area_m2 <= 0:
            raise ConfigError(f"{self.name}: platform area must be positive")
        if self.cross_area_m2 <= 0:
            raise ConfigError(f"{self.name}: cross area must be positive")
        if self.height_m <= 0:
            raise ConfigError(f"{self.name}: height must be positive")
        if self.pitch_m <= 0:
            raise ConfigError(f"{self.name}: pitch must be positive")
        if self.rated_current_a <= 0:
            raise ConfigError(f"{self.name}: current rating must be positive")
        if not 0.0 < self.power_site_fraction <= 1.0:
            raise ConfigError(
                f"{self.name}: power site fraction must be in (0, 1]"
            )

    # -- per-element properties ---------------------------------------------

    @property
    def element_resistance_ohm(self) -> float:
        """DC resistance of a single element: rho * h / A."""
        return self.material.wire_resistance(self.height_m, self.cross_area_m2)

    @property
    def sites_total(self) -> int:
        """Number of element sites the platform supports (area / pitch²)."""
        return int(self.platform_area_m2 / (self.pitch_m**2))

    @property
    def power_sites(self) -> int:
        """Sites allocatable to power delivery (both polarities)."""
        return int(self.sites_total * self.power_site_fraction)

    @property
    def power_sites_per_polarity(self) -> int:
        """Sites available for one polarity (power or ground)."""
        return self.power_sites // 2

    def sites_on_area(self, area_m2: float) -> int:
        """Sites available on an arbitrary area (e.g. the die shadow)."""
        if area_m2 <= 0:
            raise ConfigError("area must be positive")
        return int(area_m2 * self.power_site_fraction / (self.pitch_m**2))

    # -- array construction --------------------------------------------------

    def array(self, count_per_polarity: int) -> "InterconnectArray":
        """Build an array of ``count_per_polarity`` parallel elements
        per rail polarity (the same count is used for power and
        ground)."""
        return InterconnectArray(technology=self, count_per_polarity=count_per_polarity)

    def array_for_current(
        self, current_a: float, utilization_cap: float = 1.0
    ) -> "InterconnectArray":
        """Smallest array able to carry ``current_a`` within the rating.

        Args:
            current_a: rail current (same magnitude in power and ground).
            utilization_cap: fraction of available sites that may be
                used (the paper caps BGAs at 60% and C4 at 85%).

        Raises:
            InfeasibleError: if even the full (capped) platform cannot
                carry the current.
        """
        if current_a <= 0:
            raise ConfigError("current must be positive")
        if not 0.0 < utilization_cap <= 1.0:
            raise ConfigError("utilization cap must be in (0, 1]")
        needed = math.ceil(current_a / self.rated_current_a)
        available = int(self.power_sites_per_polarity * utilization_cap)
        if needed > available:
            raise InfeasibleError(
                f"{self.name}: need {needed} elements per polarity for "
                f"{current_a:.1f} A but only {available} available "
                f"(cap {utilization_cap:.0%})"
            )
        return self.array(needed)

    def max_current_a(self, utilization_cap: float = 1.0) -> float:
        """Maximum rail current the (capped) platform can carry."""
        if not 0.0 < utilization_cap <= 1.0:
            raise ConfigError("utilization cap must be in (0, 1]")
        return (
            int(self.power_sites_per_polarity * utilization_cap)
            * self.rated_current_a
        )


@dataclass(frozen=True)
class InterconnectArray:
    """A parallel array of identical vertical elements on both rails."""

    technology: VerticalInterconnect
    count_per_polarity: int

    def __post_init__(self) -> None:
        if self.count_per_polarity < 1:
            raise ConfigError("array needs at least one element per polarity")

    @property
    def resistance_one_polarity_ohm(self) -> float:
        """Parallel resistance of one polarity's elements."""
        return self.technology.element_resistance_ohm / self.count_per_polarity

    @property
    def resistance_rail_pair_ohm(self) -> float:
        """Round-trip (power + ground) resistance of the array."""
        return 2.0 * self.resistance_one_polarity_ohm

    @property
    def utilization(self) -> float:
        """Fraction of the platform's power-allocatable sites in use
        (covers both polarities, matching how the paper quotes it)."""
        return (
            2.0
            * self.count_per_polarity
            / max(self.technology.power_sites, 1)
        )

    def loss_w(self, current_a: float) -> float:
        """I²R loss of the rail pair at the given rail current."""
        if current_a < 0:
            raise ConfigError("current must be non-negative")
        return current_a**2 * self.resistance_rail_pair_ohm

    def current_per_element_a(self, current_a: float) -> float:
        """Per-element current when the rail carries ``current_a``."""
        return current_a / self.count_per_polarity

    def is_within_rating(self, current_a: float) -> bool:
        """True if per-element current respects the derated rating."""
        return (
            self.current_per_element_a(current_a)
            <= self.technology.rated_current_a * (1.0 + 1e-12)
        )


# ---------------------------------------------------------------------------
# Table I catalog
# ---------------------------------------------------------------------------

#: PCB-to-package solder ball grid array.
BGA = VerticalInterconnect(
    name="BGA",
    level="PCB/PKG",
    material=SOLDER_SAC305,
    platform_area_m2=mm2(1800.0),
    diameter_m=um(400.0),
    cross_area_m2=um2(125664.0),
    height_m=um(300.0),
    pitch_m=um(800.0),
    rated_current_a=1.5,
)

#: Package-to-interposer C4 solder bumps.
C4_BUMP = VerticalInterconnect(
    name="C4 bump",
    level="PKG/Interposer",
    material=SOLDER_SAC305,
    platform_area_m2=mm2(1200.0),
    diameter_m=um(100.0),
    cross_area_m2=um2(7854.0),
    height_m=um(70.0),
    pitch_m=um(200.0),
    rated_current_a=0.080,
)

#: Through-silicon (through-interposer) copper vias.  TSVs can only be
#: placed in dedicated keep-out islands, so only a small fraction of
#: the geometric sites is realizable for power (DESIGN.md subst. #4).
TSV = VerticalInterconnect(
    name="TSV",
    level="Through-Interposer",
    material=COPPER,
    platform_area_m2=mm2(1200.0),
    diameter_m=um(5.0),
    cross_area_m2=um2(20.0),
    height_m=um(50.0),
    pitch_m=um(10.0),
    rated_current_a=0.060,
    power_site_fraction=7.0e-4,
)

#: Interposer-to-die solder micro-bumps.
MICRO_BUMP = VerticalInterconnect(
    name="u-bump",
    level="Interposer/Die",
    material=SOLDER_SAC305,
    platform_area_m2=mm2(500.0),
    diameter_m=um(30.0),
    cross_area_m2=um2(707.0),
    height_m=um(25.0),
    pitch_m=um(60.0),
    rated_current_a=0.006,
)

#: Interposer-to-die advanced Cu-Cu direct-bond pads.
ADVANCED_CU_PAD = VerticalInterconnect(
    name="advanced Cu pad",
    level="Interposer/Die",
    material=COPPER,
    platform_area_m2=mm2(500.0),
    diameter_m=0.0,
    cross_area_m2=um2(100.0),
    height_m=um(10.0),
    pitch_m=um(20.0),
    rated_current_a=0.0085,
)

#: All Table I technologies in paper order.
TABLE_I: tuple[VerticalInterconnect, ...] = (
    BGA,
    C4_BUMP,
    TSV,
    MICRO_BUMP,
    ADVANCED_CU_PAD,
)


def table_i_rows() -> list[dict[str, object]]:
    """Table I as dict rows (direct data plus derived quantities)."""
    rows: list[dict[str, object]] = []
    for tech in TABLE_I:
        rows.append(
            {
                "level": tech.level,
                "platform_area_mm2": tech.platform_area_m2 / mm2(1.0),
                "type": tech.name,
                "material": tech.material.name,
                "diameter_um": tech.diameter_m / um(1.0),
                "cross_area_um2": tech.cross_area_m2 / um2(1.0),
                "height_um": tech.height_m / um(1.0),
                "pitch_um": tech.pitch_m / um(1.0),
                "element_resistance_ohm": tech.element_resistance_ohm,
                "sites_total": tech.sites_total,
                "rated_current_a": tech.rated_current_a,
            }
        )
    return rows


def find_technology(name: str) -> VerticalInterconnect:
    """Look up a Table I technology by (case-insensitive) name."""
    for tech in TABLE_I:
        if tech.name.lower() == name.lower():
            return tech
    raise ConfigError(f"unknown interconnect technology: {name!r}")
