"""Linear RLC transient analysis of the PDN (load-step droop).

The paper's DC study is silent on dynamics, but its call for
"accurate system-level models" motivates this extension: a classic
hierarchical PDN ladder (board / package / die decoupling stages
behind rail parasitics) excited by a POL load-current step.  The
response exhibits the familiar first/second/third droops, and lets the
examples show *why* moving regulation closer to the POL (shrinking the
upstream inductance seen by the die) shrinks the droop.

The ladder is integrated as a dense linear state-space system
``x' = A x + B u`` using matrix-exponential stepping (exact for
piecewise-constant input), which is stiff-safe and fast for the small
ladders used here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from ..errors import ConfigError


@dataclass(frozen=True)
class PDNStage:
    """One ladder stage: series R-L into a shunt decoupling C (with ESR).

    Attributes:
        name: stage label (e.g. ``"board"``, ``"package"``, ``"die"``).
        series_resistance_ohm: rail resistance of the stage.
        series_inductance_h: rail (loop) inductance of the stage.
        decap_farad: decoupling capacitance at the stage output.
        decap_esr_ohm: equivalent series resistance of that capacitor.
    """

    name: str
    series_resistance_ohm: float
    series_inductance_h: float
    decap_farad: float
    decap_esr_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.series_resistance_ohm <= 0:
            raise ConfigError(f"{self.name}: series R must be positive")
        if self.series_inductance_h <= 0:
            raise ConfigError(f"{self.name}: series L must be positive")
        if self.decap_farad <= 0:
            raise ConfigError(f"{self.name}: decap C must be positive")
        if self.decap_esr_ohm < 0:
            raise ConfigError(f"{self.name}: ESR must be non-negative")


def droop_and_settle(
    time_s: np.ndarray,
    trace_v: np.ndarray,
    v_pre: float,
    v_final: float,
    band_v: float,
) -> tuple[float, float]:
    """Droop / settle-time metrics shared by every transient result.

    ``trace_v`` is a voltage waveform sampled at ``time_s`` whose first
    sample is the pre-step operating point.  Droop is the worst
    instantaneous deviation below ``v_pre`` (clipped at zero); the
    settle time is the first sample whose *entire suffix* stays within
    ``band_v`` of ``v_final`` — computed with a reversed cumulative AND
    so every suffix verdict comes out of one O(n) pass (the naive scan
    was O(n²) as ``inside[k:].all()`` per k).  Used by both the lumped
    :class:`PDNTransient` ladder and the mesh
    :class:`~repro.pdn.grid_transient.GridTransientPDN` result layers.
    """
    time = np.asarray(time_s, dtype=float)
    trace = np.asarray(trace_v, dtype=float)
    if time.ndim != 1 or trace.shape != time.shape or time.size == 0:
        raise ConfigError("trace and time arrays must match and be 1-D")
    if band_v <= 0:
        raise ConfigError("settle band must be positive")
    droop = float(max(0.0, v_pre - trace.min()))
    inside = np.abs(trace - v_final) <= band_v
    suffix_inside = np.logical_and.accumulate(inside[::-1])[::-1]
    if suffix_inside.any():
        settle = float(time[int(np.argmax(suffix_inside))])
    else:
        settle = float(time[-1])
    return droop, settle


@dataclass(frozen=True)
class TransientResult:
    """Load-step simulation output.

    Attributes:
        time_s: sample times.
        pol_voltage_v: POL (last stage) voltage over time.
        stage_voltages_v: per-stage capacitor voltages, shape
            (stages, samples).
        droop_v: worst instantaneous deviation below the DC-settled
            pre-step POL voltage.
        settle_time_s: first time after the step where the POL voltage
            stays within ``settle_band_v`` of its final value.
    """

    time_s: np.ndarray
    pol_voltage_v: np.ndarray
    stage_voltages_v: np.ndarray
    droop_v: float
    settle_time_s: float


class PDNTransient:
    """Hierarchical PDN ladder driven by an ideal source.

    State vector: inductor currents (one per stage) followed by
    capacitor voltages (one per stage).  The load is a current sink at
    the final stage.
    """

    def __init__(self, supply_voltage_v: float, stages: list[PDNStage]) -> None:
        if supply_voltage_v <= 0:
            raise ConfigError("supply voltage must be positive")
        if not stages:
            raise ConfigError("at least one PDN stage is required")
        self.supply_voltage_v = supply_voltage_v
        self.stages = list(stages)
        self._n = len(stages)
        self._build_state_space()

    def _build_state_space(self) -> None:
        """Assemble x' = A x + B u with u = [V_supply, I_load].

        With ESR, the node voltage at stage k is
        ``v_node_k = v_c_k + esr_k * i_c_k`` where ``i_c_k`` is the
        capacitor current; substituting keeps the system linear.
        """
        n = self._n
        size = 2 * n
        a = np.zeros((size, size))
        b = np.zeros((size, 2))

        # Capacitor current of stage k: i_c[k] = i_l[k] - i_out[k],
        # where i_out[k] = i_l[k+1] for interior stages and the load
        # current for the last stage.  Node voltage includes ESR drop.
        for k, stage in enumerate(self.stages):
            il, vc = k, n + k
            l_h = stage.series_inductance_h
            c_f = stage.decap_farad
            esr = stage.decap_esr_ohm

            # dv_c[k]/dt = i_c[k]/C
            a[vc, il] += 1.0 / c_f
            if k + 1 < n:
                a[vc, k + 1] -= 1.0 / c_f
            else:
                b[vc, 1] -= 1.0 / c_f

            # di_l[k]/dt = (v_node[k-1] - v_node[k] - R*i_l[k]) / L
            # v_node[k] = v_c[k] + esr * i_c[k]
            a[il, vc] -= 1.0 / l_h
            a[il, il] -= (stage.series_resistance_ohm + esr) / l_h
            if k + 1 < n:
                a[il, k + 1] += esr / l_h
            else:
                b[il, 1] += esr / l_h
            if k == 0:
                b[il, 0] += 1.0 / l_h
            else:
                prev = self.stages[k - 1]
                esr_prev = prev.decap_esr_ohm
                vc_prev = n + (k - 1)
                a[il, vc_prev] += 1.0 / l_h
                # v_node[k-1] includes prev ESR * (i_l[k-1] - i_l[k])
                a[il, k - 1] += esr_prev / l_h
                a[il, il] -= esr_prev / l_h

        self._a = a
        self._b = b

    def _output_voltage(self, x: np.ndarray, i_load: float) -> np.ndarray:
        """POL node voltage from states (vectorized over columns)."""
        n = self._n
        last = self.stages[-1]
        vc = x[n + (n - 1)]
        il = x[n - 1]
        return vc + last.decap_esr_ohm * (il - i_load)

    def dc_state(self, i_load_a: float) -> np.ndarray:
        """Steady state for a constant load current."""
        u = np.array([self.supply_voltage_v, i_load_a])
        return np.linalg.solve(self._a, -self._b @ u)

    def simulate_step(
        self,
        i_before_a: float,
        i_after_a: float,
        duration_s: float = 20e-6,
        dt_s: float = 2e-9,
        settle_band_v: float | None = None,
    ) -> TransientResult:
        """Simulate a load-current step from ``i_before_a`` to
        ``i_after_a`` at t = 0, starting from the pre-step DC state."""
        if duration_s <= 0 or dt_s <= 0:
            raise ConfigError("duration and dt must be positive")
        if duration_s < 10 * dt_s:
            raise ConfigError("duration must cover at least 10 steps")
        if i_before_a < 0 or i_after_a < 0:
            raise ConfigError("load currents must be non-negative")

        steps = int(round(duration_s / dt_s))
        n = self._n
        u = np.array([self.supply_voltage_v, i_after_a])

        # Exact discretization for piecewise-constant input:
        #   x[k+1] = Phi x[k] + Gamma u
        size = 2 * n
        block = np.zeros((size + 2, size + 2))
        block[:size, :size] = self._a * dt_s
        block[:size, size:] = self._b * dt_s
        exp_block = expm(block)
        phi = exp_block[:size, :size]
        gamma = exp_block[:size, size:]

        x = self.dc_state(i_before_a)
        v_pre = float(self._output_voltage(x.reshape(-1, 1), i_before_a)[0])

        trajectory = np.empty((size, steps + 1))
        trajectory[:, 0] = x
        for k in range(steps):
            x = phi @ x + gamma @ u
            trajectory[:, k + 1] = x

        time = np.arange(steps + 1) * dt_s
        pol = self._output_voltage(trajectory, i_after_a)
        pol[0] = v_pre  # step applies just after t=0

        v_final = float(
            self._output_voltage(
                self.dc_state(i_after_a).reshape(-1, 1), i_after_a
            )[0]
        )
        band = settle_band_v if settle_band_v is not None else 0.02 * abs(
            self.supply_voltage_v
        )
        droop, settle = droop_and_settle(time, pol, v_pre, v_final, band)

        return TransientResult(
            time_s=time,
            pol_voltage_v=pol,
            stage_voltages_v=trajectory[n:, :],
            droop_v=droop,
            settle_time_s=settle,
        )


def default_board_regulated_pdn(supply_voltage_v: float = 1.0) -> PDNTransient:
    """A0-style PDN: regulation on the board, long inductive path."""
    stages = [
        PDNStage("board", 0.2e-3, 10e-9, 2e-3, 0.2e-3),
        PDNStage("package", 0.1e-3, 0.5e-9, 200e-6, 0.3e-3),
        PDNStage("die", 0.05e-3, 20e-12, 2e-6, 0.05e-3),
    ]
    return PDNTransient(supply_voltage_v, stages)


def default_interposer_regulated_pdn(
    supply_voltage_v: float = 1.0,
) -> PDNTransient:
    """A1/A2-style PDN: regulation on the interposer, short path.

    The board and package inductance is hidden behind the regulator,
    so the die only sees the interposer/die parasitics.
    """
    stages = [
        PDNStage("interposer", 0.05e-3, 100e-12, 100e-6, 0.1e-3),
        PDNStage("die", 0.02e-3, 10e-12, 2e-6, 0.05e-3),
    ]
    return PDNTransient(supply_voltage_v, stages)
