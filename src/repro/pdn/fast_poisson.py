"""Structure-exploiting fast-Poisson solver for uniform-mesh PDNs.

The compiled grid operator of :class:`~repro.pdn.grid.GridPDN` is a
near-Poisson Laplacian: a uniform ``nx × ny`` rectangular mesh whose
x/y edge conductances are constant, plus a handful of irregularities —
VR source branches, ring-bus segments, and (optionally) per-edge metal
variation.  This module solves that system in O(n² log n) instead of
sparse-LU time by diagonalizing the uniform interior with fast
trigonometric transforms and handling everything that breaks pure
structure as a small correction:

* The free (Neumann) mesh Laplacian ``G = gx·(I ⊗ Lx) + gy·(Ly ⊗ I)``
  is diagonalized exactly by the orthonormal **DCT-II** along each
  axis (the DST handles the grounded/Dirichlet boundary variant —
  see :func:`poisson_mode_eigenvalues`).  One 2-D transform pair per
  solve, trivially batched over right-hand-side columns.
* ``G`` alone is singular (the constant mode); the zero eigenvalue is
  deflated by a rank-1 shift ``τ·u₀u₀ᵀ`` that is subtracted back out
  through the same correction that carries the source branches.
* Source output conductances (rank-1 each), ring-bus segments (rank-1
  each), and the deflation column enter as a rank-k Woodbury
  correction ``A = M + U C Uᵀ`` on the fast operator ``M`` — the same
  identity :meth:`repro.pdn.mna.FactorizedPDN.solve_modified` uses on
  the cached LU, here with ``M⁻¹`` a transform pair instead of a
  back-substitution.
* Per-edge metal variation makes the interior genuinely non-uniform;
  those systems run preconditioned CG (:mod:`repro.pdn.pcg`) with the
  *exact* uniform-mean structured solve as the preconditioner.

Disabling a source (an open-circuited regulator) simply drops its
column from the correction, so N−1/N−k sweeps share every transform
and memoized influence column across scenarios.

Array kernels route through :mod:`repro.pdn.backend`, so the same
code paths run on CuPy/torch arrays when ``REPRO_BACKEND`` selects
them (with graceful numpy fallback when the library is absent).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, SolverError
from .backend import ArrayBackend, active_backend
from .mna import DCSolution, package_dc_solution
from .network import CompiledNetlist
from .pcg import DEFAULT_MAX_ITER, DEFAULT_TOL, pcg_solve


class StructuredSolveError(SolverError):
    """The structured engine cannot solve this system accurately.

    Raised on CG non-convergence or an ill-conditioned correction;
    callers running with ``engine="auto"`` catch it and fall back to
    the factorized (sparse LU) path.
    """


def poisson_mode_eigenvalues(n: int, boundary: str = "neumann") -> np.ndarray:
    """Eigenvalues of the 1-D unit-weight path-graph Laplacian.

    ``boundary="neumann"`` is the free-ended chain (the PDN mesh: no
    connection past the die edge), diagonalized by the DCT-II basis
    with eigenvalues ``2(1 − cos(πk/n))``, ``k = 0..n−1`` — including
    the zero mode.  ``boundary="dirichlet"`` is the grounded-ended
    chain, diagonalized by the DST-I basis with eigenvalues
    ``2(1 − cos(π(k+1)/(n+1)))``; it has no zero mode and needs no
    deflation.
    """
    if n < 1:
        raise ConfigError("mode count needs n >= 1")
    k = np.arange(n, dtype=float)
    if boundary == "neumann":
        return 2.0 * (1.0 - np.cos(np.pi * k / n))
    if boundary == "dirichlet":
        return 2.0 * (1.0 - np.cos(np.pi * (k + 1.0) / (n + 1.0)))
    raise ConfigError(f"unknown boundary condition: {boundary!r}")


def dct2_basis(n: int) -> np.ndarray:
    """The orthonormal DCT-II basis matrix ``B[k, j]``.

    Row ``k`` is the k-th eigenvector of the free path Laplacian;
    ``B @ B.T = I``.  Used where per-node squared eigenvector weights
    are needed (the structured AC impedance map); bulk transforms go
    through ``scipy.fft`` instead.
    """
    j = np.arange(n, dtype=float)
    basis = np.cos(
        np.pi * np.arange(n, dtype=float)[:, None] * (2.0 * j[None, :] + 1.0)
        / (2.0 * n)
    )
    basis *= np.sqrt(2.0 / n)
    basis[0] *= np.sqrt(0.5)
    return basis


class FastPoissonOperator:
    """``M = gx·(I ⊗ Lx) + gy·(Ly ⊗ I) [+ shift·I]`` with O(n² log n) solves.

    Grid node ``(ix, iy)`` occupies row ``iy·nx + ix`` (the mesh row
    convention of :func:`repro.pdn.grid.mesh_edge_rows`).  With
    ``shift == 0`` the zero (constant) mode is deflated: its
    eigenvalue is replaced by ``τ = gx + gy`` and
    :attr:`deflation_tau` reports the value so callers can subtract
    ``τ·u₀u₀ᵀ`` back out via their low-rank correction.  A nonzero
    (possibly complex) ``shift`` needs no deflation.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        gx: float,
        gy: float,
        shift: complex = 0.0,
        backend: ArrayBackend | None = None,
    ) -> None:
        if nx < 1 or ny < 1 or nx * ny < 2:
            raise ConfigError("operator needs at least two mesh nodes")
        if (nx > 1 and gx <= 0) or (ny > 1 and gy <= 0):
            raise ConfigError("edge conductances must be positive")
        self.nx = nx
        self.ny = ny
        self.gx = gx
        self.gy = gy
        self.backend = backend if backend is not None else active_backend()
        lam_x = gx * poisson_mode_eigenvalues(nx) if nx > 1 else np.zeros(1)
        lam_y = gy * poisson_mode_eigenvalues(ny) if ny > 1 else np.zeros(1)
        lam = lam_y[:, None] + lam_x[None, :] + shift
        self.deflation_tau: float | None = None
        if shift == 0.0:
            tau = float(gx + gy)
            lam = lam.astype(float)
            lam[0, 0] = tau
            self.deflation_tau = tau
        self._lam = lam

    @property
    def cells(self) -> int:
        return self.nx * self.ny

    def eigenvalues(self) -> np.ndarray:
        """The (ny, nx) modal eigenvalue array (deflated at [0, 0])."""
        return self._lam

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """``M⁻¹ @ rhs`` for one column ``(cells,)`` or a stack
        ``(cells, k)`` — one batched DCT-II pair regardless of k."""
        arr = np.asarray(rhs)
        single = arr.ndim == 1
        columns = arr[:, None] if single else arr
        if columns.shape[0] != self.cells:
            raise ConfigError(
                f"rhs must have {self.cells} rows, got {columns.shape[0]}"
            )
        field = np.ascontiguousarray(columns.T).reshape(
            -1, self.ny, self.nx
        )
        backend = self.backend
        if backend.name == "numpy":
            hat = backend.dctn(field, axes=(1, 2))
            hat = hat / self._lam[None, :, :]
            out = backend.idctn(hat, axes=(1, 2))
        else:  # pragma: no cover - exercised only with a GPU library
            device = backend.from_numpy(field)
            hat = backend.dctn(device, axes=(1, 2))
            hat = hat / backend.from_numpy(self._lam)[None, :, :]
            out = backend.to_numpy(backend.idctn(hat, axes=(1, 2)))
        solved = out.reshape(-1, self.cells).T
        return solved[:, 0] if single else solved

    def solve_rows(self, rhs: np.ndarray) -> np.ndarray:
        """``(M⁻¹ @ rhsᵀ)ᵀ`` for a C-contiguous row stack ``(k, cells)``.

        The zero-copy layout for hot loops: each row views directly as
        a ``(ny, nx)`` field, so — unlike :meth:`solve` — no transpose
        copies bracket the DCT pair.
        """
        arr = np.ascontiguousarray(rhs)
        if arr.ndim != 2 or arr.shape[1] != self.cells:
            raise ConfigError(
                f"row rhs must be (k, {self.cells}), got {arr.shape}"
            )
        field = arr.reshape(-1, self.ny, self.nx)
        backend = self.backend
        if backend.name == "numpy":
            hat = backend.dctn(field, axes=(1, 2))
            hat /= self._lam[None, :, :]
            out = backend.idctn(hat, axes=(1, 2))
        else:  # pragma: no cover - exercised only with a GPU library
            device = backend.from_numpy(field)
            hat = backend.dctn(device, axes=(1, 2))
            hat = hat / backend.from_numpy(self._lam)[None, :, :]
            out = backend.to_numpy(backend.idctn(hat, axes=(1, 2)))
        return out.reshape(-1, self.cells)


class StructuredGridPDN:
    """The fast-Poisson engine behind :class:`~repro.pdn.grid.GridPDN`.

    Solves the *reduced* (mesh-node-only) system — source branches
    eliminated into diagonal conductances and RHS injections — then
    reconstructs the full MNA vector (EMF node voltages, branch
    currents) so solutions are packaged and physics-verified through
    exactly the same :func:`repro.pdn.mna.package_dc_solution` path as
    the factorized engine.

    Two modes, chosen by the presence of per-edge variation:

    * **uniform** — exact: DCT-diagonalized interior + rank-k Woodbury
      correction + one iterative-refinement round.
    * **pcg** — per-edge conductance scale maps break the structure;
      CG iterates on the true sparse operator with the uniform-mean
      structured solve as preconditioner.
    """

    def __init__(
        self,
        compiled: CompiledNetlist,
        nx: int,
        ny: int,
        edge_conductance_x: float,
        edge_conductance_y: float,
        attach_rows: np.ndarray,
        source_conductance: np.ndarray,
        ring_a: np.ndarray | None = None,
        ring_b: np.ndarray | None = None,
        ring_conductance: np.ndarray | None = None,
        edge_scale_x: np.ndarray | None = None,
        edge_scale_y: np.ndarray | None = None,
        cg_tol: float = DEFAULT_TOL,
        cg_max_iter: int = DEFAULT_MAX_ITER,
    ) -> None:
        self.compiled = compiled
        self.nx = nx
        self.ny = ny
        self.cells = nx * ny
        self.attach = np.asarray(attach_rows, dtype=np.int64)
        self.g_src = np.asarray(source_conductance, dtype=float)
        if not self.attach.size:
            raise ConfigError("structured engine needs at least one source")
        if np.any(self.g_src <= 0):
            raise ConfigError("source conductances must be positive")
        self.ring_a = (
            np.asarray(ring_a, dtype=np.int64)
            if ring_a is not None
            else np.empty(0, dtype=np.int64)
        )
        self.ring_b = (
            np.asarray(ring_b, dtype=np.int64)
            if ring_b is not None
            else np.empty(0, dtype=np.int64)
        )
        self.g_ring = (
            np.asarray(ring_conductance, dtype=float)
            if ring_conductance is not None
            else np.empty(0)
        )
        self._scale_x = None if edge_scale_x is None else np.asarray(
            edge_scale_x, dtype=float
        ).ravel()
        self._scale_y = None if edge_scale_y is None else np.asarray(
            edge_scale_y, dtype=float
        ).ravel()
        self.mode = (
            "pcg" if self._scale_x is not None or self._scale_y is not None
            else "uniform"
        )
        self.cg_tol = cg_tol
        self.cg_max_iter = cg_max_iter
        self.backend = active_backend()

        # Conductance scale maps multiply *resistance*, so per-edge
        # conductance divides by them; the operator (and hence the CG
        # preconditioner) uses the mean per-axis conductance.
        gx = edge_conductance_x
        gy = edge_conductance_y
        gx_op = gx * float(np.mean(1.0 / self._scale_x)) if (
            self._scale_x is not None and self._scale_x.size
        ) else gx
        gy_op = gy * float(np.mean(1.0 / self._scale_y)) if (
            self._scale_y is not None and self._scale_y.size
        ) else gy
        self.gx = gx
        self.gy = gy
        self.op = FastPoissonOperator(
            nx, ny, gx_op, gy_op, backend=self.backend
        )

        # Woodbury columns of A = M + U C Uᵀ: the deflation column
        # (subtracting the τ·u₀u₀ᵀ shift back out), one per source
        # branch, one per ring segment.
        tau = self.op.deflation_tau
        k = 1 + self.attach.size + self.ring_a.size
        u = np.zeros((self.cells, k))
        c = np.empty(k)
        u[:, 0] = 1.0 / np.sqrt(self.cells)
        c[0] = -tau
        for t, (row, g) in enumerate(zip(self.attach, self.g_src), start=1):
            u[row, t] += 1.0
            c[t] = g
        offset = 1 + self.attach.size
        for t, (a, b, g) in enumerate(
            zip(self.ring_a, self.ring_b, self.g_ring), start=offset
        ):
            u[a, t] += 1.0
            u[b, t] -= 1.0
            c[t] = g
        self._u = u
        self._c = c
        # Z = M⁻¹U: one batched transform pair, paid at construction.
        self._z = self.op.solve(u)
        self._t0 = u.T @ self._z  # UᵀM⁻¹U, shape (k, k)
        # Per-edge conductance fields for the stencil matvec (scalars
        # in uniform mode; (ny, nx−1)/(ny−1, nx) maps under variation).
        self._gx_edges: "float | np.ndarray" = (
            gx if self._scale_x is None
            else gx / self._scale_x.reshape(ny, nx - 1)
        )
        self._gy_edges: "float | np.ndarray" = (
            gy if self._scale_y is None
            else gy / self._scale_y.reshape(ny - 1, nx)
        )

    # -- reduced operator ---------------------------------------------------------

    def _matvec(self, v: np.ndarray, disabled: np.ndarray) -> np.ndarray:
        """``A_live @ v`` for columns ``(cells,)`` or ``(cells, k)``.

        Applied as a stencil on the (ny, nx) field — no sparse matrix
        is ever assembled, so refinement and CG iterations stay O(n²)
        with small constants at any mesh size.
        """
        single = v.ndim == 1
        field = np.ascontiguousarray(
            (v[None] if single else v.T)
        ).reshape(-1, self.ny, self.nx)
        out = np.zeros_like(field)
        dx = (field[:, :, :-1] - field[:, :, 1:]) * self._gx_edges
        out[:, :, :-1] += dx
        out[:, :, 1:] -= dx
        dy = (field[:, :-1, :] - field[:, 1:, :]) * self._gy_edges
        out[:, :-1, :] += dy
        out[:, 1:, :] -= dy
        flat = out.reshape(-1, self.cells)
        vf = field.reshape(-1, self.cells)
        batch = np.arange(flat.shape[0])[:, None]
        if self.ring_a.size:
            drop = (vf[:, self.ring_a] - vf[:, self.ring_b]) * self.g_ring
            np.add.at(flat, (batch, self.ring_a[None, :]), drop)
            np.add.at(flat, (batch, self.ring_b[None, :]), -drop)
        live = np.ones(self.attach.size, dtype=bool)
        live[disabled] = False
        rows = self.attach[live]
        np.add.at(
            flat, (batch, rows[None, :]), self.g_src[live] * vf[:, rows]
        )
        return flat[0] if single else flat.T

    # -- Woodbury correction -------------------------------------------------------

    def _live_columns(self, disabled: np.ndarray) -> np.ndarray:
        live = np.ones(self._c.size, dtype=bool)
        live[1 + disabled] = False
        return np.nonzero(live)[0]

    def _u_transpose_dot(self, y: np.ndarray) -> np.ndarray:
        """``Uᵀ y`` from the column structure — the deflation row is a
        scaled sum, sources are gathers, ring segments differences —
        never a dense (cells × k) product."""
        head = y.sum(axis=0, keepdims=True) / np.sqrt(self.cells)
        return np.concatenate(
            [head, y[self.attach], y[self.ring_a] - y[self.ring_b]],
            axis=0,
        )

    def _correct(self, y: np.ndarray, columns: np.ndarray) -> np.ndarray:
        """Apply the Woodbury identity to ``y = M⁻¹ b``.

        ``x = y − Z_c (C_c⁻¹ + UᵀZ|_c)⁻¹ U_cᵀ y`` over the live column
        subset ``columns``.
        """
        z = self._z[:, columns]
        s = self._t0[np.ix_(columns, columns)] + np.diag(
            1.0 / self._c[columns]
        )
        rhs = self._u_transpose_dot(y)[columns]
        with np.errstate(all="ignore"):
            try:
                coeff = np.linalg.solve(s, rhs)
            except np.linalg.LinAlgError as exc:
                raise StructuredSolveError(
                    f"structured correction is singular: {exc}"
                ) from exc
        return y - z @ coeff

    def _uniform_solve(
        self, b: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        """Exact structured solve of the uniform-mean system."""
        return self._correct(self.op.solve(b), columns)

    # -- reduced solves --------------------------------------------------------------

    def solve_reduced(
        self, b: np.ndarray, disabled: np.ndarray | None = None
    ) -> np.ndarray:
        """Mesh node voltages for reduced RHS columns.

        ``b`` is ``(cells,)`` or ``(cells, k)``; ``disabled`` indexes
        open-circuited sources (their conductance column is dropped).

        Raises:
            StructuredSolveError: CG stall (pcg mode) or a singular
                correction — auto-mode callers fall back to sparse LU.
        """
        disabled = (
            np.empty(0, dtype=np.int64)
            if disabled is None
            else np.asarray(disabled, dtype=np.int64)
        )
        columns = self._live_columns(disabled)
        if self.mode == "uniform":
            x = self._uniform_solve(b, columns)
            # One refinement round on the true operator tightens the
            # correction to ~1e-13 relative for one extra transform.
            residual = b - self._matvec(x, disabled)
            x = x + self._uniform_solve(residual, columns)
        else:
            result = pcg_solve(
                lambda v: self._matvec(v, disabled),
                b,
                preconditioner=lambda r: self._uniform_solve(r, columns),
                tol=self.cg_tol,
                max_iter=self.cg_max_iter,
                xp=self.backend.xp,
            )
            if not result.converged:
                raise StructuredSolveError(
                    "preconditioned CG stalled at relative residual "
                    f"{result.residual_norm:.3e} after "
                    f"{result.iterations} iterations"
                )
            x = result.x
        if not np.all(np.isfinite(x)):
            raise StructuredSolveError(
                "structured solve produced non-finite values"
            )
        return x

    # -- full MNA solutions ----------------------------------------------------------

    def _scenario_values(
        self, cs_amp: np.ndarray, vs_volt: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        amp = np.asarray(cs_amp, dtype=float).ravel()
        volt = np.asarray(vs_volt, dtype=float).ravel()
        if amp.size != self.cells:
            raise SolverError(
                f"expected {self.cells} load currents, got {amp.size}"
            )
        if volt.size != self.attach.size:
            raise SolverError(
                f"expected {self.attach.size} source voltages, "
                f"got {volt.size}"
            )
        if np.any(amp < 0):
            raise SolverError("load currents must be non-negative")
        return amp, volt

    def _reduced_rhs(
        self, amp: np.ndarray, volt: np.ndarray, disabled: np.ndarray
    ) -> np.ndarray:
        b = -amp.astype(float, copy=True)
        live = np.ones(self.attach.size, dtype=bool)
        live[disabled] = False
        np.add.at(
            b, self.attach[live], self.g_src[live] * volt[live]
        )
        return b

    def _package(
        self,
        v: np.ndarray,
        amp: np.ndarray,
        volt: np.ndarray,
        disabled: np.ndarray,
        check: bool,
    ) -> DCSolution:
        """Rebuild the full MNA vector and package it.

        EMF node voltages are exact (``V_j`` when live; the attach
        node's potential when open-circuited — no drop across a dead
        output resistor), and branch currents follow Ohm's law through
        each output resistance.
        """
        v_attach = v[self.attach]
        i_src = self.g_src * (volt - v_attach)
        v_emf = volt.copy()
        if disabled.size:
            i_src[disabled] = 0.0
            v_emf[disabled] = v_attach[disabled]
        x = np.concatenate([v, v_emf, -i_src])
        return package_dc_solution(
            self.compiled,
            x,
            amp,
            volt,
            1.0 / self.compiled.res_ohm,
            check,
            disabled if disabled.size else None,
        )

    def _normalize_disabled(self, disable_sources) -> np.ndarray:
        disabled = np.unique(np.asarray(disable_sources, dtype=np.int64))
        if disabled.size and (
            disabled.min() < 0 or disabled.max() >= self.attach.size
        ):
            raise SolverError("disable_sources index out of range")
        if disabled.size >= self.attach.size:
            raise SolverError("cannot disable every source")
        return disabled

    def solve(
        self,
        cs_amp: np.ndarray,
        vs_volt: np.ndarray,
        check: bool = True,
        disable_sources: "np.ndarray | tuple[int, ...] | list[int]" = (),
    ) -> DCSolution:
        """Solve one operating point (optionally with open sources)."""
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        disabled = self._normalize_disabled(disable_sources)
        b = self._reduced_rhs(amp, volt, disabled)
        v = self.solve_reduced(b, disabled)
        return self._package(v, amp, volt, disabled, check)

    def solve_many(
        self,
        cs_amp_matrix: np.ndarray,
        vs_volt: np.ndarray,
        check: bool = True,
    ) -> list[DCSolution]:
        """Solve a stack of sink scenarios, shape ``(k, cells)`` or a
        list of flattened maps, through one batched transform pair."""
        stack = np.atleast_2d(np.asarray(cs_amp_matrix, dtype=float))
        volt = np.asarray(vs_volt, dtype=float).ravel()
        scenarios = [
            self._scenario_values(row, volt)[0] for row in stack
        ]
        none = np.empty(0, dtype=np.int64)
        b = np.column_stack(
            [self._reduced_rhs(amp, volt, none) for amp in scenarios]
        )
        v = self.solve_reduced(b, none)
        return [
            self._package(v[:, i], amp, volt, none, check)
            for i, amp in enumerate(scenarios)
        ]

    def solve_disabled_many(
        self,
        scenarios: "list | tuple",
        cs_amp: np.ndarray,
        vs_volt: np.ndarray,
        check: bool = True,
    ) -> list[DCSolution]:
        """A whole failure sweep on shared transforms.

        Every scenario reuses the memoized influence columns ``Z``;
        per scenario the extra cost is one k×k solve plus the
        refinement transform pair.
        """
        amp, volt = self._scenario_values(cs_amp, vs_volt)
        solutions: list[DCSolution] = []
        for scenario in scenarios:
            disabled = self._normalize_disabled(scenario)
            b = self._reduced_rhs(amp, volt, disabled)
            v = self.solve_reduced(b, disabled)
            solutions.append(self._package(v, amp, volt, disabled, check))
        return solutions
