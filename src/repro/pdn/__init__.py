"""Packaging power distribution network (PPDN) substrate.

This package models the physical path from PCB to point-of-load:

* :mod:`~repro.pdn.interconnect` — vertical interconnect technologies
  (BGA, C4, TSV, micro-bump, Cu-Cu pad) per Table I of the paper,
* :mod:`~repro.pdn.stackup` — the packaging hierarchy and rail pairs,
* :mod:`~repro.pdn.planes` — horizontal plane / RDL resistance models,
* :mod:`~repro.pdn.network` / :mod:`~repro.pdn.mna` — generic resistive
  netlists and the sparse modified-nodal-analysis DC solver,
* :mod:`~repro.pdn.grid` — 2-D lateral grids for die/interposer metal,
* :mod:`~repro.pdn.powermap` — die current-demand maps,
* :mod:`~repro.pdn.transient` — linear RLC load-step (droop) analysis.
"""

from .interconnect import (
    ADVANCED_CU_PAD,
    BGA,
    C4_BUMP,
    MICRO_BUMP,
    TABLE_I,
    TSV,
    InterconnectArray,
    VerticalInterconnect,
    table_i_rows,
)
from .network import (
    CompiledNetlist,
    CurrentSource,
    Netlist,
    Resistor,
    VoltageSource,
)
from .mna import DCSolution, FactorizedPDN, solve_dc
from .backend import ArrayBackend, active_backend, resolve_backend
from .fast_poisson import (
    FastPoissonOperator,
    StructuredGridPDN,
    StructuredSolveError,
    dct2_basis,
    poisson_mode_eigenvalues,
)
from .pcg import PCGResult, pcg_solve
from .planes import (
    annular_spreading_resistance,
    disk_edge_feed_resistance,
    plane_resistance,
    sheet_resistance,
)
from .powermap import PowerMap, hotspot_trajectory
from .grid import (
    GridACPDN,
    GridACSweepSolution,
    GridImpedanceMap,
    GridPDN,
    GridSolution,
)
from .decap_placement import (
    PlacementResult,
    VRSiteSelection,
    optimize_decap_placement,
    prolong_density,
    restrict_density,
    select_vr_sites,
    size_decap_placement_for_target,
)
from .stackup import PackagingLevel, PackagingStack, default_stack
from .impedance import (
    ImpedanceProfile,
    ladder_ac_netlist,
    pdn_impedance,
    pdn_impedance_mna,
    size_die_decap_for_target,
    size_grid_decap_for_target,
    target_impedance_ohm,
)
from .transient import PDNStage, PDNTransient, droop_and_settle
from .grid_transient import (
    GridTransientPDN,
    GridTransientResult,
)
from .thermal import StackTemperatures, ThermalStack
from .ac import (
    ACNetlist,
    ACSolution,
    ACSweep,
    ACSweepSolution,
    CompiledACNetlist,
    impedance_at,
    solve_ac,
)

__all__ = [
    "VerticalInterconnect",
    "InterconnectArray",
    "BGA",
    "C4_BUMP",
    "TSV",
    "MICRO_BUMP",
    "ADVANCED_CU_PAD",
    "TABLE_I",
    "table_i_rows",
    "Netlist",
    "CompiledNetlist",
    "Resistor",
    "CurrentSource",
    "VoltageSource",
    "solve_dc",
    "DCSolution",
    "FactorizedPDN",
    "ArrayBackend",
    "active_backend",
    "resolve_backend",
    "FastPoissonOperator",
    "StructuredGridPDN",
    "StructuredSolveError",
    "dct2_basis",
    "poisson_mode_eigenvalues",
    "PCGResult",
    "pcg_solve",
    "sheet_resistance",
    "plane_resistance",
    "annular_spreading_resistance",
    "disk_edge_feed_resistance",
    "PowerMap",
    "hotspot_trajectory",
    "GridPDN",
    "GridSolution",
    "GridACPDN",
    "GridACSweepSolution",
    "GridImpedanceMap",
    "PackagingLevel",
    "PackagingStack",
    "default_stack",
    "ImpedanceProfile",
    "pdn_impedance",
    "pdn_impedance_mna",
    "ladder_ac_netlist",
    "target_impedance_ohm",
    "size_die_decap_for_target",
    "size_grid_decap_for_target",
    "PlacementResult",
    "VRSiteSelection",
    "optimize_decap_placement",
    "prolong_density",
    "restrict_density",
    "select_vr_sites",
    "size_decap_placement_for_target",
    "PDNStage",
    "PDNTransient",
    "droop_and_settle",
    "GridTransientPDN",
    "GridTransientResult",
    "ThermalStack",
    "StackTemperatures",
    "ACNetlist",
    "ACSolution",
    "ACSweep",
    "ACSweepSolution",
    "CompiledACNetlist",
    "solve_ac",
    "impedance_at",
]
