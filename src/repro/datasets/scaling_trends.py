"""Current-demand vs packaging-feature scaling trends (Fig. 2).

Fig. 2 contrasts two historical curves:

* **die current demand**, estimated (per the paper) as Intel-reported
  power density times a typical 200 mm² die at the era's core voltage —
  it grows by orders of magnitude;
* **packaging feature size** (which sets PPDN resistance), taken from
  Iyer's 3-D integration survey [12] — it shrinks by only ~4x over the
  same decades (wirebond pitch → C4 pitch → micro-bump pitch).

The punchline: I²·R grows quadratically with the first curve while R
only improves linearly with the second, so packaging alone cannot
absorb the loss — the paper's motivation for vertical power delivery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DatasetError

#: Typical die area the paper uses to convert power density to current.
REFERENCE_DIE_AREA_MM2 = 200.0


@dataclass(frozen=True)
class PowerTrendPoint:
    """One era of processor power density (Intel-reported class data)."""

    year: int
    node_nm: float
    power_density_w_per_mm2: float
    core_voltage_v: float
    example: str

    def __post_init__(self) -> None:
        if self.power_density_w_per_mm2 <= 0:
            raise DatasetError("power density must be positive")
        if self.core_voltage_v <= 0:
            raise DatasetError("core voltage must be positive")

    @property
    def die_current_a(self) -> float:
        """Current for the reference 200 mm² die at this era."""
        return (
            self.power_density_w_per_mm2
            * REFERENCE_DIE_AREA_MM2
            / self.core_voltage_v
        )


@dataclass(frozen=True)
class PackagingFeaturePoint:
    """One era of packaging interconnect feature size (Iyer [12])."""

    year: int
    technology: str
    feature_um: float

    def __post_init__(self) -> None:
        if self.feature_um <= 0:
            raise DatasetError("feature size must be positive")


#: Processor power-density eras (public Intel-class data points).
POWER_TREND: tuple[PowerTrendPoint, ...] = (
    PowerTrendPoint(1974, 6000.0, 0.005, 5.0, "8080 class"),
    PowerTrendPoint(1985, 1500.0, 0.02, 5.0, "386 class"),
    PowerTrendPoint(1995, 350.0, 0.10, 3.3, "Pentium class"),
    PowerTrendPoint(2000, 180.0, 0.25, 1.7, "Pentium 4 class"),
    PowerTrendPoint(2006, 65.0, 0.45, 1.3, "Core 2 class"),
    PowerTrendPoint(2012, 22.0, 0.55, 1.0, "Ivy Bridge class"),
    PowerTrendPoint(2018, 14.0, 0.70, 1.0, "Skylake-SP class"),
    PowerTrendPoint(2023, 7.0, 1.00, 0.9, "AI accelerator class"),
)

#: Packaging feature eras (Iyer, MRS Bulletin 2015 — pitch-setting
#: interconnect feature over time; only ~4x total reduction).
PACKAGING_TREND: tuple[PackagingFeaturePoint, ...] = (
    PackagingFeaturePoint(1974, "wirebond", 400.0),
    PackagingFeaturePoint(1985, "wirebond (fine)", 300.0),
    PackagingFeaturePoint(1995, "C4 solder bump", 250.0),
    PackagingFeaturePoint(2006, "C4 (fine pitch)", 180.0),
    PackagingFeaturePoint(2012, "Cu pillar", 130.0),
    PackagingFeaturePoint(2023, "micro-bump", 100.0),
)


def current_demand_series() -> list[tuple[int, float]]:
    """(year, die current in A) series for the reference die."""
    return [(p.year, p.die_current_a) for p in POWER_TREND]


def feature_size_series() -> list[tuple[int, float]]:
    """(year, packaging feature in µm) series."""
    return [(p.year, p.feature_um) for p in PACKAGING_TREND]


def ppdn_resistance_series() -> list[tuple[int, float]]:
    """(year, relative PPDN resistance) series.

    PPDN resistance scales inversely with interconnect cross-section,
    i.e. with the feature size squared for a fixed array area — but
    pitch shrinks along with the feature, keeping the metal fraction
    roughly constant; the net effect tracks 1/feature (per Fig. 2's
    flat-ish resistance curve).  Normalized to the first era.
    """
    base = PACKAGING_TREND[0].feature_um
    return [
        (p.year, base / p.feature_um) for p in PACKAGING_TREND
    ]


def trend_summary() -> dict[str, float]:
    """The Fig. 2 punchline numbers."""
    currents = [p.die_current_a for p in POWER_TREND]
    features = [p.feature_um for p in PACKAGING_TREND]
    return {
        "current_growth_x": currents[-1] / currents[0],
        "feature_reduction_x": features[0] / features[-1],
        "first_year": float(POWER_TREND[0].year),
        "last_year": float(POWER_TREND[-1].year),
        "final_die_current_a": currents[-1],
    }
