"""HPC power / current-density demand dataset (Fig. 1 reconstruction).

The paper's Fig. 1 scatters state-of-the-art HPC chips and server
systems by power and current density, shading each point by power
delivery efficiency, to show chips approaching 1 kW and servers
approaching 20 kW.  The underlying data is not published; this module
reconstructs a representative dataset from public specification points
(TDPs from vendor datasheets, die sizes from teardowns/press
material, delivery efficiencies representative of the deployment
class).  Each entry records its provenance in ``source``.

The dataset is for reproducing the *envelope and trend* of Fig. 1,
not vendor benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class DemandPoint:
    """One chip or server system data point.

    Attributes:
        name: product name.
        year: introduction year.
        kind: ``"chip"`` or ``"server"``.
        power_w: rated (TDP-class) power.
        current_density_a_per_mm2: POL current density estimate
            (power / POL voltage / active area) — chips only carry a
            meaningful value; server entries use the hosted chip's.
        delivery_efficiency: end-to-end power delivery efficiency
            estimate for the deployment class.
        source: provenance note.
    """

    name: str
    year: int
    kind: str
    power_w: float
    current_density_a_per_mm2: float
    delivery_efficiency: float
    source: str

    def __post_init__(self) -> None:
        if self.kind not in ("chip", "server"):
            raise DatasetError(f"{self.name}: kind must be chip or server")
        if self.power_w <= 0:
            raise DatasetError(f"{self.name}: power must be positive")
        if self.current_density_a_per_mm2 < 0:
            raise DatasetError(f"{self.name}: density must be non-negative")
        if not 0.0 < self.delivery_efficiency < 1.0:
            raise DatasetError(f"{self.name}: efficiency out of range")


#: Individual accelerator / CPU chips (left side of Fig. 1).
CHIPS: tuple[DemandPoint, ...] = (
    DemandPoint(
        "Intel Xeon 8380", 2021, "chip", 270.0, 0.45, 0.84,
        "vendor TDP; ~600 mm2 die at ~1 V",
    ),
    DemandPoint(
        "AMD EPYC 7763", 2021, "chip", 280.0, 0.42, 0.84,
        "vendor TDP; chiplet aggregate area",
    ),
    DemandPoint(
        "NVIDIA V100", 2017, "chip", 300.0, 0.37, 0.85,
        "vendor TDP; 815 mm2 die",
    ),
    DemandPoint(
        "NVIDIA A100", 2020, "chip", 400.0, 0.49, 0.83,
        "vendor TDP; 826 mm2 die",
    ),
    DemandPoint(
        "NVIDIA H100 (SXM)", 2022, "chip", 700.0, 0.87, 0.80,
        "vendor TDP; 814 mm2 die",
    ),
    DemandPoint(
        "Google TPU v4", 2021, "chip", 192.0, 0.40, 0.85,
        "Jouppi et al. CACM 2020/ISCA 2023 system papers",
    ),
    DemandPoint(
        "Tesla Dojo D1", 2021, "chip", 400.0, 0.62, 0.78,
        "SemiAnalysis Dojo packaging analysis [1]",
    ),
    DemandPoint(
        "Graphcore GC200", 2020, "chip", 300.0, 0.37, 0.84,
        "vendor material; 823 mm2 die",
    ),
    DemandPoint(
        "AMD MI250X", 2021, "chip", 560.0, 0.76, 0.81,
        "vendor TDP; dual-GCD aggregate",
    ),
    DemandPoint(
        "Cerebras WSE-2", 2021, "chip", 15000.0, 0.36, 0.76,
        "wafer-scale engine, 46225 mm2; vendor material",
    ),
)

#: Server-level systems hosting the chips (right side of Fig. 1).
SERVERS: tuple[DemandPoint, ...] = (
    DemandPoint(
        "2S Xeon server", 2021, "server", 1200.0, 0.45, 0.82,
        "dual-socket platform budget",
    ),
    DemandPoint(
        "DGX-1 (8x V100)", 2017, "server", 3500.0, 0.37, 0.82,
        "vendor system spec",
    ),
    DemandPoint(
        "DGX A100", 2020, "server", 6500.0, 0.49, 0.80,
        "vendor system spec",
    ),
    DemandPoint(
        "DGX H100", 2022, "server", 10200.0, 0.87, 0.78,
        "vendor system spec",
    ),
    DemandPoint(
        "TPU v4 board (4x)", 2021, "server", 1300.0, 0.40, 0.83,
        "4-chip tray estimate from system papers",
    ),
    DemandPoint(
        "Tesla Dojo training tile", 2021, "server", 15000.0, 0.62, 0.76,
        "25-die tile, SemiAnalysis [1]",
    ),
    DemandPoint(
        "Cerebras CS-2", 2021, "server", 20000.0, 0.36, 0.75,
        "vendor system spec (aha: ~20 kW per system)",
    ),
)


def chips() -> list[DemandPoint]:
    """Chip-level points, year-ordered."""
    return sorted(CHIPS, key=lambda p: (p.year, p.name))


def servers() -> list[DemandPoint]:
    """Server-level points, year-ordered."""
    return sorted(SERVERS, key=lambda p: (p.year, p.name))


def load_step_trace(
    point: DemandPoint,
    pol_voltage_v: float = 1.0,
    idle_fraction: float = 0.3,
    samples: int = 512,
    step_index: int | None = None,
) -> np.ndarray:
    """A chip's idle→full-load current step as a sampled trace.

    The POL current of a chip-class entry is ``power / V_POL``; the
    trace sits at ``idle_fraction`` of it before ``step_index``
    (default: the second sample, so the step lands at t = 0⁺ the way
    the transient engines expect) and at full load after.  Returns the
    total-current waveform, (samples,), ready for
    :func:`node_current_waveform`.
    """
    if point.kind != "chip":
        raise DatasetError(
            f"{point.name}: load-step traces are chip-level (POL) drives"
        )
    if pol_voltage_v <= 0:
        raise DatasetError("POL voltage must be positive")
    if not 0.0 <= idle_fraction <= 1.0:
        raise DatasetError("idle fraction must be in [0, 1]")
    if samples < 2:
        raise DatasetError("a trace needs at least two samples")
    step = 1 if step_index is None else int(step_index)
    if not 1 <= step < samples:
        raise DatasetError("step index must fall inside the trace")
    full = point.power_w / pol_voltage_v
    trace = np.full(samples, idle_fraction * full)
    trace[step:] = full
    return trace


def node_current_waveform(
    trace_a: np.ndarray, profile: np.ndarray
) -> np.ndarray:
    """Spread a total-current trace over a spatial profile.

    ``trace_a`` is the (samples,) total sink current;  ``profile`` is
    a non-negative (ny, nx) or flat relative density (e.g. a
    :meth:`~repro.pdn.powermap.PowerMap.cell_currents` map), normalized
    so every sample's node currents sum to the trace value.  Returns
    the (samples, cells) per-node waveform array
    :meth:`~repro.pdn.grid_transient.GridTransientPDN.simulate`
    consumes.
    """
    trace = np.asarray(trace_a, dtype=float).ravel()
    if trace.size < 2:
        raise DatasetError("a trace needs at least two samples")
    if np.any(trace < 0):
        raise DatasetError("trace currents must be non-negative")
    shape = np.asarray(profile, dtype=float).ravel()
    if shape.size == 0 or np.any(shape < 0) or shape.sum() <= 0:
        raise DatasetError(
            "profile must be non-negative with positive total"
        )
    shape = shape / shape.sum()
    return trace[:, None] * shape[None, :]


def demand_envelope() -> dict[str, float]:
    """The Fig. 1 headline envelope: maximum chip and server power,
    maximum current density, and the efficiency range."""
    non_wafer_chips = [p for p in CHIPS if p.power_w < 5000]
    all_points = CHIPS + SERVERS
    return {
        "max_chip_power_w": max(p.power_w for p in non_wafer_chips),
        "max_server_power_w": max(p.power_w for p in SERVERS),
        "max_current_density_a_per_mm2": max(
            p.current_density_a_per_mm2 for p in all_points
        ),
        "min_delivery_efficiency": min(
            p.delivery_efficiency for p in all_points
        ),
        "max_delivery_efficiency": max(
            p.delivery_efficiency for p in all_points
        ),
    }
