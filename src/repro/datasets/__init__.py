"""Reconstructed datasets behind the paper's motivation figures."""

from .hpc_demand import (
    CHIPS,
    SERVERS,
    DemandPoint,
    chips,
    servers,
    demand_envelope,
    load_step_trace,
    node_current_waveform,
)
from .scaling_trends import (
    PACKAGING_TREND,
    POWER_TREND,
    PackagingFeaturePoint,
    PowerTrendPoint,
    current_demand_series,
    ppdn_resistance_series,
    trend_summary,
)

__all__ = [
    "DemandPoint",
    "CHIPS",
    "SERVERS",
    "chips",
    "servers",
    "demand_envelope",
    "load_step_trace",
    "node_current_waveform",
    "PowerTrendPoint",
    "PackagingFeaturePoint",
    "POWER_TREND",
    "PACKAGING_TREND",
    "current_demand_series",
    "ppdn_resistance_series",
    "trend_summary",
]
