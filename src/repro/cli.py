"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro fig7                # the headline loss study
    python -m repro tables              # Table I and Table II
    python -m repro experiments         # all claim-level checks
    python -m repro sharing             # per-VR current distribution
    python -m repro utilization         # interconnect utilization
    python -m repro optimize --power 750
    python -m repro montecarlo --samples 512 --jobs auto
    python -m repro redundancy --jobs 4
    python -m repro decap --jobs auto
    python -m repro place --budget-scales 0.5,1,2
    python -m repro transient --jobs 2
    python -m repro report              # everything above in one go

Sweep commands (``montecarlo``, ``redundancy``, ``decap``, ``place``,
``transient``) accept
``--jobs`` (an integer or ``auto`` for the available CPUs) and
``--chunk-size`` to shard their scenario lists across worker processes
via :mod:`repro.parallel`; results are identical for any worker count.

All output is plain text (the offline environment has no plotting
backend); exit status is non-zero if any claim check fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .config import SystemSpec
from .converters.catalog import DSCH
from .core.architectures import single_stage_a1, single_stage_a2
from .core.current_sharing import analyze_current_sharing
from .core.optimizer import DesignConstraints, optimize_design
from .core.utilization import a0_die_area_requirement, vertical_utilization
from .reporting.experiments import run_all
from .reporting.figures import render_fig1, render_fig2, render_fig3, render_fig7
from .reporting.tables import table_i_text, table_ii_text

CommandHandler = Callable[[SystemSpec, argparse.Namespace], int]


def _spec_from_args(args: argparse.Namespace) -> SystemSpec:
    return SystemSpec(
        pol_power_w=args.power,
        pol_voltage_v=args.pol_voltage,
        input_voltage_v=args.input_voltage,
        current_density_a_per_mm2=args.density,
    )


def cmd_fig1(_spec: SystemSpec, _args: argparse.Namespace) -> int:
    print(render_fig1())
    return 0


def cmd_fig2(_spec: SystemSpec, _args: argparse.Namespace) -> int:
    print(render_fig2())
    return 0


def cmd_fig3(spec: SystemSpec, _args: argparse.Namespace) -> int:
    print(render_fig3(spec))
    return 0


def cmd_fig7(spec: SystemSpec, _args: argparse.Namespace) -> int:
    print(render_fig7(spec))
    return 0


def cmd_tables(_spec: SystemSpec, _args: argparse.Namespace) -> int:
    print("Table I — vertical interconnect characteristics")
    print(table_i_text())
    print()
    print("Table II — converter characteristics")
    print(table_ii_text())
    return 0


def cmd_sharing(spec: SystemSpec, _args: argparse.Namespace) -> int:
    for arch in (single_stage_a1(), single_stage_a2()):
        result = analyze_current_sharing(arch, DSCH, spec=spec)
        print(
            f"{result.architecture}: {result.min_current_a:.1f} .. "
            f"{result.max_current_a:.1f} A per VR "
            f"(mean {result.mean_current_a:.1f}, "
            f"{result.overloaded_count} above rating)"
        )
    return 0


def cmd_utilization(spec: SystemSpec, _args: argparse.Namespace) -> int:
    report = vertical_utilization(single_stage_a2(), spec=spec)
    for row in report.rows:
        print(
            f"{row.technology:18s} {row.utilization:7.2%} "
            f"({row.elements_per_polarity} per polarity of "
            f"{row.sites_available})"
        )
    a0 = a0_die_area_requirement(spec)
    print(
        f"A0 requires {a0.required_die_area_mm2:.0f} mm2 "
        f"({a0.power_density_limit_a_per_mm2:.2f} A/mm2 limit)"
    )
    return 0


def cmd_experiments(spec: SystemSpec, _args: argparse.Namespace) -> int:
    failures = 0
    for result in run_all(spec):
        flag = "OK " if result.holds else "FAIL"
        if not result.holds:
            failures += 1
        print(
            f"[{flag}] {result.experiment:12s} {result.claim}\n"
            f"       paper: {result.paper_value} | measured: "
            f"{result.measured_value}"
        )
    print()
    print("all claims hold" if failures == 0 else f"{failures} claims FAILED")
    return 0 if failures == 0 else 1


def cmd_optimize(spec: SystemSpec, _args: argparse.Namespace) -> int:
    result = optimize_design(spec=spec, constraints=DesignConstraints())
    print(f"design space for {spec.pol_power_w:.0f} W at "
          f"{spec.pol_voltage_v:g} V:")
    for candidate in result.feasible:
        print(
            f"  {candidate.architecture:7s} {candidate.topology:10s} "
            f"efficiency {candidate.efficiency:.1%}"
        )
    for candidate in result.rejected:
        print(
            f"  {candidate.architecture:7s} {candidate.topology:10s} "
            f"rejected ({candidate.rejected_reason[:60]})"
        )
    best = result.best
    print(f"best: {best.architecture} with {best.topology} "
          f"({best.efficiency:.1%})")
    return 0


def cmd_export(spec: SystemSpec, _args: argparse.Namespace) -> int:
    from .reporting.export import export_all

    paths = export_all("repro_csv", spec)
    for path in paths:
        print(f"wrote {path}")
    return 0


def cmd_floorplan(spec: SystemSpec, _args: argparse.Namespace) -> int:
    from .converters.catalog import DSCH as dsch_spec
    from .placement.floorplan import build_floorplan
    from .placement.planner import plan_placement

    for arch in (single_stage_a1(), single_stage_a2()):
        plan = plan_placement(
            dsch_spec,
            arch.pol_stage_style,
            spec.pol_current_a,
            spec.die_area_mm2,
        )
        print(f"== {arch.name} ==")
        print(build_floorplan(plan, spec.die_area_mm2).render())
        print()
    return 0


def cmd_montecarlo(spec: SystemSpec, args: argparse.Namespace) -> int:
    from .core.variation import monte_carlo_loss

    result = monte_carlo_loss(
        single_stage_a1(),
        DSCH,
        spec=spec,
        samples=args.samples,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
    )
    print(
        f"Monte-Carlo loss (A1, {DSCH.name}, "
        f"{len(result.samples_w) + result.infeasible_count} samples, "
        f"jobs={args.jobs}):"
    )
    print(f"  nominal  {result.nominal_loss_w:8.2f} W")
    print(f"  mean     {result.mean_loss_w:8.2f} W")
    print(f"  std      {result.std_loss_w:8.2f} W")
    print(f"  p95      {result.percentile_w(95):8.2f} W")
    print(f"  infeasible samples: {result.infeasible_count}")
    return 0


def cmd_redundancy(spec: SystemSpec, args: argparse.Namespace) -> int:
    from .core.redundancy import failure_tolerance

    report = failure_tolerance(
        single_stage_a1(),
        DSCH,
        spec=spec,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
    )
    verdict = "yes" if report.tolerates_any_single_failure else "NO"
    print(
        f"N-1 failure tolerance ({report.architecture}, {report.topology}, "
        f"{report.vr_count} VRs, jobs={args.jobs}):"
    )
    print(f"  tolerates any single failure: {verdict}")
    print(
        f"  worst failure: VR {report.worst_single_failure_index} "
        f"({report.worst_single_overload_fraction:.1%} of rating)"
    )
    return 0 if report.tolerates_any_single_failure else 1


def cmd_decap(spec: SystemSpec, args: argparse.Namespace) -> int:
    from .core.exploration import decap_density_sweep

    points = decap_density_sweep(
        spec=spec, jobs=args.jobs, chunk_size=args.chunk_size
    )
    print(f"decap density sweep (A2, {DSCH.name}, jobs={args.jobs}):")
    for point in points:
        flag = "ok  " if point.meets_target else "FAIL"
        print(
            f"  [{flag}] {point.label:16s} peak "
            f"{point.peak_impedance_ohm * 1e3:7.3f} mOhm "
            f"at {point.peak_frequency_hz / 1e6:8.2f} MHz"
        )
    return 0


def cmd_place(spec: SystemSpec, args: argparse.Namespace) -> int:
    from .core.exploration import placement_budget_sweep

    scales = tuple(
        float(s) for s in args.budget_scales.split(",") if s.strip()
    )
    points = placement_budget_sweep(
        budget_scales=scales,
        spec=spec,
        grid_nodes=args.grid_nodes,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
    )
    print(
        f"optimized decap placement (A2, {DSCH.name}, "
        f"{args.grid_nodes}x{args.grid_nodes} mesh, jobs={args.jobs}):"
    )
    for point in points:
        flag = "ok  " if point.meets_target else "FAIL"
        print(
            f"  [{flag}] {point.label:12s} "
            f"({point.capacitance_budget_f * 1e6:8.3f} uF) peak "
            f"{point.peak_impedance_ohm * 1e3:7.3f} mOhm, "
            f"{point.violating_fraction:6.1%} nodes violating "
            f"after {point.iterations} moves"
        )
    return 0


def cmd_transient(spec: SystemSpec, args: argparse.Namespace) -> int:
    from .core.exploration import load_step_ensemble

    points = load_step_ensemble(
        spec=spec, jobs=args.jobs, chunk_size=args.chunk_size
    )
    print(f"load-step droop ensemble (A2, {DSCH.name}, jobs={args.jobs}):")
    for point in points:
        flag = "ok  " if point.within_budget else "FAIL"
        print(
            f"  [{flag}] {point.label:16s} droop "
            f"{point.droop_v * 1e3:7.2f} mV, settle "
            f"{point.settle_time_s * 1e9:8.2f} ns [{point.engine}]"
        )
    return 0


def cmd_report(spec: SystemSpec, args: argparse.Namespace) -> int:
    sections: list[tuple[str, CommandHandler]] = [
        ("Fig. 1", cmd_fig1),
        ("Fig. 2", cmd_fig2),
        ("Fig. 3", cmd_fig3),
        ("Fig. 7", cmd_fig7),
        ("Tables", cmd_tables),
        ("Current sharing", cmd_sharing),
        ("Utilization", cmd_utilization),
        ("Claim checks", cmd_experiments),
    ]
    status = 0
    for title, command in sections:
        print("=" * 72)
        print(title)
        print("=" * 72)
        status |= command(spec, args)
        print()
    return status


COMMANDS: dict[str, CommandHandler] = {
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
    "fig3": cmd_fig3,
    "fig7": cmd_fig7,
    "tables": cmd_tables,
    "sharing": cmd_sharing,
    "utilization": cmd_utilization,
    "experiments": cmd_experiments,
    "optimize": cmd_optimize,
    "floorplan": cmd_floorplan,
    "export": cmd_export,
    "montecarlo": cmd_montecarlo,
    "redundancy": cmd_redundancy,
    "decap": cmd_decap,
    "place": cmd_place,
    "transient": cmd_transient,
    "report": cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vertical power delivery (SOCC 2023) reproduction CLI",
    )
    parser.add_argument("command", choices=sorted(COMMANDS))
    parser.add_argument(
        "--power", type=float, default=1000.0, help="POL power in watts"
    )
    parser.add_argument(
        "--pol-voltage", type=float, default=1.0, help="POL voltage"
    )
    parser.add_argument(
        "--input-voltage", type=float, default=48.0, help="PCB input voltage"
    )
    parser.add_argument(
        "--density",
        type=float,
        default=2.0,
        help="current density target (A/mm2)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="for 'report': also write a markdown report to this path",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes for sweep commands (integer or 'auto')",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="scenarios per executor chunk for sweep commands",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=512,
        help="for 'montecarlo': number of Monte-Carlo draws",
    )
    parser.add_argument(
        "--budget-scales",
        default="0.5,1.0,2.0",
        help="for 'place': comma-separated budget multipliers",
    )
    parser.add_argument(
        "--grid-nodes",
        type=int,
        default=12,
        help="for 'place': mesh nodes per axis",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    spec = _spec_from_args(args)
    status = COMMANDS[args.command](spec, args)
    if args.command == "report" and args.output:
        from .reporting.markdown import write_markdown_report

        path = write_markdown_report(args.output, spec)
        print(f"markdown report written to {path}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
