"""Chunked process-pool sweep executor with streamed results.

:func:`run_sweep` turns a :class:`~repro.parallel.scenario.SweepPlan`
into a stream of :class:`~repro.parallel.scenario.ChunkResult`\\ s:

* ``jobs <= 1`` (the default everywhere) runs chunks serially
  in-process — no pool, no pickling, and therefore exactly the
  behavior tier-1 tests have always pinned;
* ``jobs > 1`` fans chunks across a ``ProcessPoolExecutor``.  The
  shared payload is installed once per worker via the pool initializer
  (under the ``fork`` start method it is inherited from the parent
  rather than pickled), so per-task traffic is just the scenario list
  and the returned results.

Chunk boundaries are fixed by the plan (never by ``jobs``), every
chunk is evaluated by the same module-level runner, and results are
keyed by chunk index — which is why ``jobs=N`` output is bit-identical
to ``jobs=1``: the per-chunk numerics do not know or care which
process executed them.

Streaming gives progress and cancellation for free: consume the
generator lazily, stop iterating to cancel (pending chunks are
revoked via ``shutdown(cancel_futures=True)``), or pass ``progress``
for a callback per landed chunk.  Worker exceptions surface as
:class:`SweepExecutionError` carrying the scenario keys of the failed
chunk and the remote traceback, so a bad scenario is nameable from the
parent process.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterator

from ..errors import ConfigError, ReproError
from .scenario import ChunkResult, Scenario, SweepPlan

ProgressCallback = Callable[[ChunkResult, int, int], None]


class SweepExecutionError(ReproError):
    """A chunk failed inside a sweep; names the scenarios it covered.

    Attributes:
        label: the sweep's label.
        chunk_index: which chunk failed.
        scenario_keys: keys of the scenarios in the failed chunk.
        worker_traceback: formatted traceback from the worker process
            (or the local traceback on the serial path).
    """

    def __init__(
        self,
        label: str,
        chunk_index: int,
        scenario_keys: tuple,
        cause: BaseException,
        worker_traceback: str | None = None,
    ) -> None:
        keys = ", ".join(repr(k) for k in scenario_keys[:4])
        if len(scenario_keys) > 4:
            keys += f", ... ({len(scenario_keys)} scenarios)"
        message = (
            f"{label}: chunk {chunk_index} failed on scenarios [{keys}]: "
            f"{cause!r}"
        )
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)
        self.label = label
        self.chunk_index = chunk_index
        self.scenario_keys = scenario_keys
        self.worker_traceback = worker_traceback


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value to a worker count.

    Accepts an int, a numeric string, ``"auto"`` (CPUs available to
    this process, via ``os.process_cpu_count`` where the interpreter
    has it, falling back to ``os.cpu_count``), or ``None`` (serial).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            counter = getattr(os, "process_cpu_count", None) or os.cpu_count
            return max(1, counter() or 1)
        try:
            jobs = int(text)
        except ValueError as exc:
            raise ConfigError(
                f"jobs must be an integer or 'auto', got {jobs!r}"
            ) from exc
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


# -- worker side -----------------------------------------------------------------

# Installed once per worker by the pool initializer; chunk tasks then
# reference the runner/payload through module globals instead of
# pickling them per task.
_WORKER_RUNNER: Any = None
_WORKER_PAYLOAD: Any = None


def _init_worker(runner: Any, payload: Any) -> None:
    global _WORKER_RUNNER, _WORKER_PAYLOAD
    _WORKER_RUNNER = runner
    _WORKER_PAYLOAD = payload


def _run_chunk(index: int, scenarios: tuple[Scenario, ...]) -> tuple:
    """Evaluate one chunk in a worker; errors return as data.

    Exceptions are flattened to ``(False, repr, traceback)`` rather
    than raised: custom exception types may not unpickle cleanly in
    the parent, and we want the remote traceback text regardless.
    """
    try:
        results = tuple(_WORKER_RUNNER(_WORKER_PAYLOAD, scenarios))
        return index, True, results, None
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        return index, False, repr(exc), traceback.format_exc()


def _evaluate_serial(
    plan: SweepPlan, index: int, scenarios: tuple[Scenario, ...]
) -> ChunkResult:
    try:
        results = tuple(plan.runner(plan.payload, scenarios))
    except Exception as exc:
        raise SweepExecutionError(
            plan.label,
            index,
            tuple(s.key for s in scenarios),
            exc,
            traceback.format_exc(),
        ) from exc
    _check_result_count(plan, index, scenarios, results)
    return ChunkResult(index=index, scenarios=scenarios, results=results)


def _check_result_count(
    plan: SweepPlan,
    index: int,
    scenarios: tuple[Scenario, ...],
    results: tuple,
) -> None:
    if len(results) != len(scenarios):
        raise SweepExecutionError(
            plan.label,
            index,
            tuple(s.key for s in scenarios),
            ConfigError(
                f"chunk runner returned {len(results)} results for "
                f"{len(scenarios)} scenarios"
            ),
        )


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` so the initializer payload is inherited, not
    pickled; fall back to the platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


# -- parent side -----------------------------------------------------------------


def run_sweep(
    plan: SweepPlan,
    jobs: int | str | None = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
) -> Iterator[ChunkResult]:
    """Execute a sweep plan, streaming chunk results as they land.

    Yields :class:`ChunkResult` objects — in plan order on the serial
    path, in completion order under a pool (reassemble with
    :func:`run_sweep_collect` when order matters).  Closing the
    generator early cancels pending chunks.

    Args:
        plan: the sweep to run.
        jobs: worker processes (int, ``"auto"``, or ``None``/1 for the
            in-process serial path).
        chunk_size: scenarios per chunk; overrides the plan's setting.
            Chunk boundaries never depend on ``jobs``.
        progress: optional ``callback(chunk, done, total)`` invoked
            after each chunk lands (before it is yielded).
    """
    workers = resolve_jobs(jobs)
    chunks = plan.chunks(chunk_size)
    total = len(chunks)
    effective = min(workers, total)
    if effective <= 1:
        done = 0
        for index, scenarios in enumerate(chunks):
            chunk = _evaluate_serial(plan, index, scenarios)
            done += 1
            if progress is not None:
                progress(chunk, done, total)
            yield chunk
        return

    executor = ProcessPoolExecutor(
        max_workers=effective,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(plan.runner, plan.payload),
    )
    try:
        futures = {
            executor.submit(_run_chunk, index, scenarios): index
            for index, scenarios in enumerate(chunks)
        }
        pending = set(futures)
        done = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                index = futures[future]
                scenarios = chunks[index]
                returned_index, ok, results, remote_tb = future.result()
                if not ok:
                    raise SweepExecutionError(
                        plan.label,
                        returned_index,
                        tuple(s.key for s in scenarios),
                        RuntimeError(results),
                        remote_tb,
                    )
                chunk = ChunkResult(
                    index=returned_index,
                    scenarios=scenarios,
                    results=results,
                )
                _check_result_count(plan, returned_index, scenarios, results)
                done += 1
                if progress is not None:
                    progress(chunk, done, total)
                yield chunk
    finally:
        # Reached on exhaustion, on error, and on early generator close
        # (cancellation): revoke chunks that have not started.
        executor.shutdown(wait=True, cancel_futures=True)


def run_sweep_collect(
    plan: SweepPlan,
    jobs: int | str | None = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
) -> list:
    """Run a sweep to completion; results flat, in scenario order.

    The convenience wrapper the rewired sweep loops use: chunk results
    are reassembled by chunk index, so the output list aligns with
    ``plan.scenarios`` regardless of worker completion order — this is
    what makes ``jobs=N`` output indistinguishable from ``jobs=1``.
    """
    by_index: dict[int, tuple] = {}
    for chunk in run_sweep(plan, jobs=jobs, chunk_size=chunk_size, progress=progress):
        by_index[chunk.index] = chunk.results
    flat: list = []
    for index in sorted(by_index):
        flat.extend(by_index[index])
    return flat
