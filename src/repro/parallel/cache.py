"""Topology-hashed factorization cache.

Sweeps cross-product parameters against a handful of distinct grid
topologies; the expensive part of each evaluation is the sparse LU
factorization of the mesh.  This module keys :class:`FactorizedPDN`
instances on a **content hash of the compiled arrays**, so any two
scenarios that compile to the same mesh share one factorization — no
matter which code path built the :class:`CompiledNetlist`, and across
the whole lifetime of a process-pool worker that evaluates many chunks.

The fingerprint covers everything :class:`FactorizedPDN` can read from
the netlist: the structural arrays (endpoints, resistances, source
incidence) that determine the MNA matrix, *and* the value arrays
(``cs_amp``, ``vs_volt``) that seed default right-hand sides.  Grid
structures carry all-zero value arrays and pass explicit values at
solve time, so they still collapse onto one cache entry per topology;
including the values just makes the cache safe for callers that rely on
netlist-default solves.

The cache is a bounded LRU (default :data:`DEFAULT_CACHE_ENTRIES`
factorizations) with hit/miss/eviction counters, and a process-global
instance behind :func:`get_factorized` that both the serial path and
pool workers use.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigError
from ..pdn.mna import FactorizedPDN
from ..pdn.network import CompiledNetlist

#: Default number of factorizations kept alive.  A factorization holds
#: the LU factors (O(nnz) memory); sweeps rarely touch more than a few
#: distinct topologies, so a small cap bounds worker memory without
#: hurting hit rates.
DEFAULT_CACHE_ENTRIES = 8


def compiled_fingerprint(
    compiled: CompiledNetlist, extra: bytes | None = None
) -> str:
    """Content hash of a compiled netlist's arrays.

    Two netlists with equal fingerprints produce byte-identical MNA
    systems and default right-hand sides, so a factorization computed
    for one is valid for the other.  Each array contributes its dtype
    and full shape alongside the raw bytes: two arrays with identical
    byte payloads but different numeric interpretations (e.g. an
    ``int64`` view of ``float64`` data) must never collapse onto one
    cache key, or a factorization built for the wrong interpretation
    could be handed out.  Node/element *names* are excluded: they
    never enter the numerics, and hashing lazy name tuples would force
    materializing them.

    ``extra`` salts the digest with caller-supplied discretization
    bytes.  The transient grid engine stamps its time step into the
    companion resistances, so two different ``(Δt, C_eff)`` stamps that
    happen to collapse onto byte-identical arrays would otherwise share
    one cache key; passing the ``(Δt, C_eff)`` stamp here keys them
    separately so a cached LU is never reused across time steps.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(compiled.n_nodes.to_bytes(8, "little", signed=False))
    for array in (
        compiled.res_a,
        compiled.res_b,
        compiled.res_ohm,
        compiled.cs_from,
        compiled.cs_to,
        compiled.cs_amp,
        compiled.vs_plus,
        compiled.vs_minus,
        compiled.vs_volt,
    ):
        dtype_tag = array.dtype.str.encode("ascii")
        digest.update(len(dtype_tag).to_bytes(8, "little", signed=False))
        digest.update(dtype_tag)
        digest.update(array.ndim.to_bytes(8, "little", signed=False))
        for dim in array.shape:
            digest.update(dim.to_bytes(8, "little", signed=False))
        digest.update(array.tobytes())
    if extra is not None:
        digest.update(len(extra).to_bytes(8, "little", signed=False))
        digest.update(extra)
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters exposed for tests, benchmarks, and progress reporting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def entries_built(self) -> int:
        return self.misses


class FactorizationCache:
    """Bounded LRU of content-hash → :class:`FactorizedPDN`.

    Thread-safe around the bookkeeping (the executor streams results on
    the main thread while ``concurrent.futures`` callbacks may run on a
    pool-management thread); the factorization itself is computed
    outside the lock per key, accepting a rare duplicate build over
    serializing every solve behind one mutex.  When two threads race,
    the first insert wins and the duplicate build is discarded, so
    every caller holds the *same* cached entry.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_ENTRIES) -> None:
        if maxsize < 1:
            raise ConfigError("factorization cache needs maxsize >= 1")
        self.maxsize = int(maxsize)
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, FactorizedPDN]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, compiled: CompiledNetlist, extra: bytes | None = None
    ) -> FactorizedPDN:
        """The cached factorization for this topology, building on miss.

        ``extra`` is the optional fingerprint salt (see
        :func:`compiled_fingerprint`) for callers whose factorization
        validity depends on more than the compiled arrays — e.g. the
        transient engine's ``(Δt, C_eff)`` stamp.
        """
        key = compiled_fingerprint(compiled, extra)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        entry = FactorizedPDN(compiled)
        with self._lock:
            # Two threads that missed concurrently both build; keep the
            # first insert and hand the duplicate builder the same
            # entry, so every caller shares one FactorizedPDN (and its
            # influence-column LRU) per key.
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Process-wide cache: the serial path and every pool worker share one
#: instance per process, so repeated chunks against the same topology
#: factor once per worker lifetime.
_PROCESS_CACHE = FactorizationCache()


def process_cache() -> FactorizationCache:
    """The process-global factorization cache."""
    return _PROCESS_CACHE


def get_factorized(
    compiled: CompiledNetlist, extra: bytes | None = None
) -> FactorizedPDN:
    """Shared-factorization entry point used by the grid layer.

    Returns a :class:`FactorizedPDN` from the process-global cache,
    factoring on first sight of the topology.  ``extra`` salts the
    cache key (see :func:`compiled_fingerprint`).
    """
    return _PROCESS_CACHE.get(compiled, extra)
