"""Sweep-execution engine: scenario model, factorization cache, executor.

See ``docs/parallel-execution.md`` for the design: every sweep loop in
the repo builds a :class:`SweepPlan` (scenarios + shared payload +
module-level chunk runner) and hands it to :func:`run_sweep` /
:func:`run_sweep_collect`, which shard it into fixed-size chunks and
run them in-process (``jobs=1``, the deterministic default) or across
a process pool.  Factorizations are shared per topology through the
content-hashed :class:`FactorizationCache`.
"""

from .cache import (
    DEFAULT_CACHE_ENTRIES,
    CacheStats,
    FactorizationCache,
    compiled_fingerprint,
    get_factorized,
    process_cache,
)
from .executor import (
    SweepExecutionError,
    resolve_jobs,
    run_sweep,
    run_sweep_collect,
)
from .scenario import (
    DEFAULT_CHUNK_SIZE,
    ChunkResult,
    Scenario,
    SweepPlan,
)

__all__ = [
    "CacheStats",
    "ChunkResult",
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_CHUNK_SIZE",
    "FactorizationCache",
    "Scenario",
    "SweepExecutionError",
    "SweepPlan",
    "compiled_fingerprint",
    "get_factorized",
    "process_cache",
    "resolve_jobs",
    "run_sweep",
    "run_sweep_collect",
]
