"""Scenario model for sweep execution.

Every sweep in the repo — Monte-Carlo variation draws, N−k failure
enumerations, decap-density ablations, conversion-location studies —
is "evaluate one analysis callable over a list of parameter deltas
against one shared topology".  This module gives that shape a single
vocabulary so heterogeneous sweeps share one execution path
(:mod:`repro.parallel.executor`):

* a :class:`Scenario` is one unit of work: a stable ``key`` (sample
  index, failure combination, density label, ...) plus the picklable
  parameter delta that distinguishes it from its siblings,
* a :class:`SweepPlan` is the whole sweep: the scenario list, the
  *chunk runner* (a module-level callable evaluating a whole chunk of
  scenarios against the shared payload, so batched solver entry points
  like ``solve_modified_many``/``solve_many`` stay batched), and the
  shared ``payload`` that is shipped to each worker once — not
  per-task — via the pool initializer.

Chunking is deliberately independent of the worker count: the default
chunk size depends only on the scenario list, so ``jobs=1`` and
``jobs=N`` runs evaluate bit-identical batches and the equivalence
suite can assert exact result equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Sequence

from ..errors import ConfigError

#: Default scenarios per chunk.  Sized for the batched solver entry
#: points (``solve_modified_many`` stacks one RHS column per scenario)
#: and chosen independently of ``jobs`` so chunk boundaries — and
#: therefore results — do not depend on the worker count.
DEFAULT_CHUNK_SIZE = 32

#: A chunk runner: ``(payload, scenarios) -> results`` with exactly one
#: result per scenario, in order.  Must be a module-level callable so
#: process pools can import it by reference.
ChunkRunner = Callable[[Any, "tuple[Scenario, ...]"], Sequence[Any]]


@dataclass(frozen=True)
class Scenario:
    """One unit of sweep work.

    Attributes:
        key: stable identifier within the sweep (sample index, failure
            combination, density value, location label...).  Results
            are reported against it, and executor errors carry it so a
            failing scenario is nameable across process boundaries.
        params: the picklable parameter delta the chunk runner needs
            to evaluate this scenario against the shared payload.
    """

    key: Hashable
    params: Any = None


@dataclass(frozen=True)
class ChunkResult:
    """One evaluated chunk, as streamed by the executor.

    Attributes:
        index: chunk position in the plan (0-based); chunks may land
            out of order under a process pool.
        scenarios: the scenarios this chunk evaluated.
        results: one result per scenario, aligned with ``scenarios``.
    """

    index: int
    scenarios: tuple[Scenario, ...]
    results: tuple[Any, ...]


@dataclass(frozen=True)
class SweepPlan:
    """A complete, executable description of one sweep.

    Attributes:
        scenarios: the units of work, in result order.
        runner: module-level chunk runner ``(payload, scenarios) ->
            results``.
        payload: the shared, scenario-independent inputs (compiled
            arrays, specs, placement plans...).  Shipped to each
            worker once via the pool initializer — under a ``fork``
            start method it is inherited, not pickled per task.
        chunk_size: scenarios per chunk (``None`` = adaptive default).
        label: short sweep name for progress and error messages.
    """

    scenarios: tuple[Scenario, ...]
    runner: ChunkRunner
    payload: Any = None
    chunk_size: int | None = None
    label: str = "sweep"

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigError(f"{self.label}: plan has no scenarios")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(f"{self.label}: chunk size must be >= 1")

    @classmethod
    def from_params(
        cls,
        runner: ChunkRunner,
        params: Iterable[Any],
        payload: Any = None,
        chunk_size: int | None = None,
        label: str = "sweep",
    ) -> "SweepPlan":
        """Build a plan from bare parameter values (keys = positions)."""
        scenarios = tuple(
            Scenario(key=i, params=p) for i, p in enumerate(params)
        )
        return cls(
            scenarios=scenarios,
            runner=runner,
            payload=payload,
            chunk_size=chunk_size,
            label=label,
        )

    def resolved_chunk_size(self, override: int | None = None) -> int:
        """The chunk size this plan will run with.

        ``override`` (the executor-level knob) wins over the plan's own
        setting; both fall back to :data:`DEFAULT_CHUNK_SIZE`.  The
        result never depends on the worker count — see the module
        docstring.
        """
        size = override if override is not None else self.chunk_size
        if size is None:
            size = DEFAULT_CHUNK_SIZE
        if size < 1:
            raise ConfigError(f"{self.label}: chunk size must be >= 1")
        return min(size, len(self.scenarios))

    def chunks(
        self, chunk_size: int | None = None
    ) -> list[tuple[Scenario, ...]]:
        """Shard the scenario list into runner-sized batches."""
        size = self.resolved_chunk_size(chunk_size)
        return [
            self.scenarios[start : start + size]
            for start in range(0, len(self.scenarios), size)
        ]
