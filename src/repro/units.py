"""Unit helpers and physical constants.

All internal computation uses SI base units (meters, ohms, amperes,
watts, volts, seconds).  The paper and packaging literature, however,
quote geometry in millimeters/micrometers and impedances in
milli/micro-ohms; these helpers keep call sites readable and make the
intended unit explicit at the point of use.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------

#: meters per millimeter
MM = 1e-3
#: meters per micrometer
UM = 1e-6
#: square meters per square millimeter
MM2 = 1e-6
#: square meters per square micrometer
UM2 = 1e-12


def mm(value: float) -> float:
    """Convert millimeters to meters."""
    return value * MM


def um(value: float) -> float:
    """Convert micrometers to meters."""
    return value * UM


def mm2(value: float) -> float:
    """Convert square millimeters to square meters."""
    return value * MM2


def um2(value: float) -> float:
    """Convert square micrometers to square meters."""
    return value * UM2


def to_mm(value_m: float) -> float:
    """Convert meters to millimeters."""
    return value_m / MM


def to_mm2(value_m2: float) -> float:
    """Convert square meters to square millimeters."""
    return value_m2 / MM2


# ---------------------------------------------------------------------------
# Impedance
# ---------------------------------------------------------------------------

#: ohms per milliohm
MILLIOHM = 1e-3
#: ohms per microohm
MICROOHM = 1e-6


def milliohm(value: float) -> float:
    """Convert milliohms to ohms."""
    return value * MILLIOHM


def microohm(value: float) -> float:
    """Convert microohms to ohms."""
    return value * MICROOHM


def to_milliohm(value_ohm: float) -> float:
    """Convert ohms to milliohms."""
    return value_ohm / MILLIOHM


def to_microohm(value_ohm: float) -> float:
    """Convert ohms to microohms."""
    return value_ohm / MICROOHM


# ---------------------------------------------------------------------------
# Reactive components / frequency
# ---------------------------------------------------------------------------

#: henries per microhenry
UH = 1e-6
#: henries per nanohenry
NH = 1e-9
#: farads per microfarad
UF = 1e-6
#: farads per nanofarad
NF = 1e-9
#: hertz per megahertz
MHZ = 1e6
#: hertz per kilohertz
KHZ = 1e3


def uh(value: float) -> float:
    """Convert microhenries to henries."""
    return value * UH


def nh(value: float) -> float:
    """Convert nanohenries to henries."""
    return value * NH


def uf(value: float) -> float:
    """Convert microfarads to farads."""
    return value * UF


def nf(value: float) -> float:
    """Convert nanofarads to farads."""
    return value * NF


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MHZ


# ---------------------------------------------------------------------------
# Formatting helpers (used by reporting)
# ---------------------------------------------------------------------------

_SI_PREFIXES = (
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
)


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(1.3e-3, 'Ohm')
    -> '1.30 mOhm'``.

    Zero and sub-pico magnitudes fall back to plain scientific notation.
    """
    if value == 0.0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}e} {unit}"


def percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string, e.g. 0.423 -> '42.3%'."""
    return f"{fraction * 100.0:.{digits}f}%"
