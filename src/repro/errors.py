"""Exception hierarchy for the vertical power delivery library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` and friends pass through).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-raised errors."""


class ConfigError(ReproError):
    """A system/architecture configuration is inconsistent or out of range."""


class InfeasibleError(ReproError):
    """A requested design point violates a hard constraint.

    Examples: a converter asked to supply more than its maximum load
    current (the paper excludes 3LHD from Fig. 7 for exactly this
    reason), or a placement that does not fit the available area.
    """


class SolverError(ReproError):
    """The network solver could not produce a solution (singular or
    disconnected system, non-finite values)."""


class CalibrationError(ReproError):
    """A loss-model fit could not satisfy the published data points."""


class DatasetError(ReproError):
    """A dataset lookup failed (unknown entry, malformed record)."""
