"""SystemSpec and PCBGeometry tests."""

from __future__ import annotations

import pytest

from repro import ConfigError, SystemSpec
from repro.config import PAPER_SYSTEM, PCBGeometry


class TestSystemSpecDefaults:
    def test_paper_power(self):
        assert PAPER_SYSTEM.pol_power_w == 1000.0

    def test_paper_pol_voltage(self):
        assert PAPER_SYSTEM.pol_voltage_v == 1.0

    def test_paper_input_voltage(self):
        assert PAPER_SYSTEM.input_voltage_v == 48.0

    def test_paper_pol_current_is_1ka(self):
        assert PAPER_SYSTEM.pol_current_a == pytest.approx(1000.0)

    def test_paper_die_area_500mm2(self):
        # 1 kA at 2 A/mm2 -> 500 mm2, the paper's die.
        assert PAPER_SYSTEM.die_area_mm2 == pytest.approx(500.0)

    def test_die_side(self):
        assert PAPER_SYSTEM.die_side_m == pytest.approx(0.02236, rel=1e-3)

    def test_die_perimeter(self):
        assert PAPER_SYSTEM.die_perimeter_m == pytest.approx(
            4 * PAPER_SYSTEM.die_side_m
        )

    def test_conversion_ratio_48(self):
        assert PAPER_SYSTEM.conversion_ratio == pytest.approx(48.0)

    def test_nominal_input_current(self):
        assert PAPER_SYSTEM.input_current_nominal_a == pytest.approx(
            1000.0 / 48.0
        )


class TestSystemSpecDerivations:
    def test_explicit_die_area_overrides_density(self):
        spec = SystemSpec(die_area_m2=1e-4)  # 100 mm2... in m2: 1e-4
        assert spec.die_area == pytest.approx(1e-4)

    def test_with_power_scales_current(self):
        spec = SystemSpec().with_power(500.0)
        assert spec.pol_current_a == pytest.approx(500.0)

    def test_with_power_scales_die(self):
        spec = SystemSpec().with_power(500.0)
        assert spec.die_area_mm2 == pytest.approx(250.0)

    def test_with_density(self):
        spec = SystemSpec().with_density(1.0)
        assert spec.die_area_mm2 == pytest.approx(1000.0)

    def test_with_input_voltage(self):
        spec = SystemSpec().with_input_voltage(12.0)
        assert spec.conversion_ratio == pytest.approx(12.0)

    def test_copies_are_frozen_and_independent(self):
        base = SystemSpec()
        derived = base.with_power(2000.0)
        assert base.pol_power_w == 1000.0
        assert derived.pol_power_w == 2000.0


class TestSystemSpecValidation:
    def test_rejects_zero_power(self):
        with pytest.raises(ConfigError):
            SystemSpec(pol_power_w=0.0)

    def test_rejects_negative_voltage(self):
        with pytest.raises(ConfigError):
            SystemSpec(pol_voltage_v=-1.0)

    def test_rejects_input_below_pol(self):
        with pytest.raises(ConfigError):
            SystemSpec(input_voltage_v=0.5)

    def test_rejects_zero_density(self):
        with pytest.raises(ConfigError):
            SystemSpec(current_density_a_per_mm2=0.0)

    def test_rejects_negative_die_area(self):
        with pytest.raises(ConfigError):
            SystemSpec(die_area_m2=-1.0)


class TestPCBGeometry:
    def test_defaults_positive(self):
        geometry = PCBGeometry()
        assert geometry.vrm_distance_m > 0
        assert geometry.plane_width_m > 0

    def test_rejects_zero_distance(self):
        with pytest.raises(ConfigError):
            PCBGeometry(vrm_distance_m=0.0)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            PCBGeometry(plane_width_m=0.0)

    def test_rejects_zero_plane_pairs(self):
        with pytest.raises(ConfigError):
            PCBGeometry(plane_pairs=0)

    def test_rejects_zero_thickness(self):
        with pytest.raises(ConfigError):
            PCBGeometry(plane_thickness_m=0.0)
