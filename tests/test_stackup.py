"""Packaging stackup tests."""

from __future__ import annotations

import pytest

from repro.config import SystemSpec
from repro.errors import ConfigError
from repro.pdn.interconnect import ADVANCED_CU_PAD, BGA, C4_BUMP, MICRO_BUMP
from repro.pdn.stackup import (
    LateralMetal,
    PackagingLevel,
    PackagingStack,
    default_stack,
)


class TestDefaultStack:
    def test_four_levels(self):
        stack = default_stack()
        assert [lvl.name for lvl in stack.levels] == [
            "PCB",
            "PKG",
            "Interposer",
            "Die",
        ]

    def test_interfaces(self):
        stack = default_stack()
        assert stack.level("PKG").down_interface is BGA
        assert stack.level("Interposer").down_interface is C4_BUMP
        assert stack.level("Die").down_interface is ADVANCED_CU_PAD

    def test_micro_bump_variant(self):
        stack = default_stack(die_attach=MICRO_BUMP)
        assert stack.level("Die").down_interface is MICRO_BUMP

    def test_rejects_arbitrary_die_attach(self):
        with pytest.raises(ConfigError):
            default_stack(die_attach=BGA)

    def test_die_property(self):
        assert default_stack().die.name == "Die"

    def test_rdl_sheet_resistance(self):
        # 27 um copper -> ~0.62 mOhm/sq.
        sheet = default_stack().level("Interposer").lateral.sheet_ohm_sq
        assert sheet == pytest.approx(0.622e-3, rel=0.01)

    def test_pcb_sheet_uses_spec_geometry(self):
        spec = SystemSpec()
        stack = default_stack(spec)
        sheet = stack.level("PCB").lateral.sheet_ohm_sq
        assert sheet == pytest.approx(1.68e-8 / 140e-6, rel=0.01)


class TestLookups:
    def test_level_case_insensitive(self):
        assert default_stack().level("pcb").name == "PCB"

    def test_unknown_level(self):
        with pytest.raises(ConfigError):
            default_stack().level("socket")

    def test_index_of(self):
        stack = default_stack()
        assert stack.index_of("PCB") == 0
        assert stack.index_of("Die") == 3

    def test_interfaces_between(self):
        stack = default_stack()
        techs = stack.interfaces_between("PCB", "Die")
        assert techs == [BGA, C4_BUMP, ADVANCED_CU_PAD]

    def test_interfaces_between_partial(self):
        stack = default_stack()
        assert stack.interfaces_between("PKG", "Interposer") == [C4_BUMP]

    def test_interfaces_between_same_level(self):
        assert default_stack().interfaces_between("PKG", "PKG") == []

    def test_interfaces_between_inverted(self):
        with pytest.raises(ConfigError):
            default_stack().interfaces_between("Die", "PCB")


class TestValidation:
    def test_lateral_metal_rejects_zero_thickness(self):
        with pytest.raises(ConfigError):
            LateralMetal("m", 0.0)

    def test_stack_requires_two_levels(self):
        pcb = PackagingLevel("PCB", LateralMetal("planes", 70e-6))
        with pytest.raises(ConfigError):
            PackagingStack(levels=(pcb,))

    def test_bottom_level_no_interface(self):
        bad = PackagingLevel(
            "PCB", LateralMetal("planes", 70e-6), down_interface=BGA
        )
        die = PackagingLevel(
            "Die", LateralMetal("beol", 6e-6), down_interface=MICRO_BUMP
        )
        with pytest.raises(ConfigError):
            PackagingStack(levels=(bad, die))

    def test_upper_levels_need_interfaces(self):
        pcb = PackagingLevel("PCB", LateralMetal("planes", 70e-6))
        die = PackagingLevel("Die", LateralMetal("beol", 6e-6))
        with pytest.raises(ConfigError):
            PackagingStack(levels=(pcb, die))
