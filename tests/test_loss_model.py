"""Quadratic converter loss-model tests.

The fits must *interpolate* the published data points exactly — that
is the calibration contract of the reproduction.
"""

from __future__ import annotations

import pytest

from repro.converters.loss_model import (
    QuadraticLossModel,
    published_efficiency_check,
)
from repro.errors import CalibrationError, ConfigError, InfeasibleError


def dpmih_like() -> QuadraticLossModel:
    return QuadraticLossModel.fit(
        v_out_v=1.0, i_peak_a=30.0, eta_peak=0.909, i_max_a=100.0, eta_max=0.865
    )


class TestFit:
    def test_peak_point_interpolated(self):
        model = dpmih_like()
        assert model.efficiency(30.0) == pytest.approx(0.909, abs=1e-12)

    def test_full_load_point_interpolated(self):
        model = dpmih_like()
        assert model.efficiency(100.0) == pytest.approx(0.865, abs=1e-12)

    def test_peak_current_matches(self):
        model = dpmih_like()
        assert model.i_peak_a == pytest.approx(30.0, rel=1e-9)

    def test_peak_is_maximum(self):
        model = dpmih_like()
        eta_peak = model.efficiency(30.0)
        for current in (5.0, 15.0, 45.0, 70.0, 100.0):
            assert model.efficiency(current) <= eta_peak + 1e-12

    def test_coefficients_positive(self):
        model = dpmih_like()
        assert model.a_w > 0
        assert model.b_v >= 0
        assert model.c_ohm > 0

    def test_a_equals_c_ipeak_squared(self):
        model = dpmih_like()
        assert model.a_w == pytest.approx(model.c_ohm * 30.0**2)

    def test_dsch_fit_values(self):
        model = QuadraticLossModel.fit(1.0, 10.0, 0.915, 30.0, 0.88)
        assert model.efficiency(10.0) == pytest.approx(0.915)
        assert model.efficiency(30.0) == pytest.approx(0.88)

    def test_3lhd_fit_values(self):
        model = QuadraticLossModel.fit(1.0, 3.0, 0.904, 12.0, 0.85)
        assert model.efficiency(3.0) == pytest.approx(0.904)
        assert model.efficiency(12.0) == pytest.approx(0.85)

    def test_published_efficiency_check_helper(self):
        assert published_efficiency_check(dpmih_like(), 30.0, 0.909)

    def test_rejects_eta_max_above_peak(self):
        with pytest.raises(CalibrationError):
            QuadraticLossModel.fit(1.0, 30.0, 0.90, 100.0, 0.95)

    def test_rejects_ipeak_above_imax(self):
        with pytest.raises(CalibrationError):
            QuadraticLossModel.fit(1.0, 120.0, 0.90, 100.0, 0.85)

    def test_rejects_inconsistent_pair(self):
        # A peak near full load plus a steep droop implies b < 0: no
        # physical quadratic curve passes through both points.
        with pytest.raises(CalibrationError):
            QuadraticLossModel.fit(1.0, 90.0, 0.95, 100.0, 0.85)


class TestEvaluation:
    def test_loss_at_zero(self):
        model = dpmih_like()
        assert model.loss_w(0.0) == pytest.approx(model.a_w)

    def test_efficiency_at_zero_is_zero(self):
        assert dpmih_like().efficiency(0.0) == 0.0

    def test_loss_monotonic(self):
        model = dpmih_like()
        losses = [model.loss_w(i) for i in (0.0, 10.0, 50.0, 100.0)]
        assert losses == sorted(losses)

    def test_over_max_raises(self):
        with pytest.raises(InfeasibleError):
            dpmih_like().loss_w(101.0)

    def test_over_max_with_extrapolation(self):
        model = dpmih_like()
        assert model.loss_w(150.0, allow_extrapolation=True) > model.loss_w(
            100.0
        )

    def test_loss_for_power(self):
        model = dpmih_like()
        assert model.loss_for_power_w(30.0) == pytest.approx(
            model.loss_w(30.0)
        )

    def test_is_feasible(self):
        model = dpmih_like()
        assert model.is_feasible(100.0)
        assert not model.is_feasible(101.0)

    def test_negative_current_rejected(self):
        with pytest.raises(ConfigError):
            dpmih_like().loss_w(-1.0)


class TestReusedAtOutputVoltage:
    """The paper's 'as-published' stage-model semantics."""

    def test_efficiency_vs_current_preserved(self):
        base = dpmih_like()
        stage = base.reused_at_output_voltage(12.0)
        for current in (5.0, 30.0, 80.0):
            assert stage.efficiency(current) == pytest.approx(
                base.efficiency(current), rel=1e-12
            )

    def test_loss_scales_with_voltage(self):
        base = dpmih_like()
        stage = base.reused_at_output_voltage(12.0)
        assert stage.loss_w(30.0) == pytest.approx(12 * base.loss_w(30.0))

    def test_output_voltage_updated(self):
        assert dpmih_like().reused_at_output_voltage(6.0).v_out_v == 6.0

    def test_i_max_preserved(self):
        assert dpmih_like().reused_at_output_voltage(6.0).i_max_a == 100.0

    def test_rejects_zero_voltage(self):
        with pytest.raises(ConfigError):
            dpmih_like().reused_at_output_voltage(0.0)


class TestScaledToRatio:
    """The physics-based 'ratio-scaled' ablation mode."""

    def test_lower_vin_cuts_fixed_loss(self):
        base = dpmih_like()
        scaled = base.scaled_to_ratio(48.0, 12.0, v_out_new_v=12.0)
        assert scaled.a_w == pytest.approx(base.a_w * (12 / 48) ** 1.5)

    def test_conduction_unchanged(self):
        base = dpmih_like()
        scaled = base.scaled_to_ratio(48.0, 12.0)
        assert scaled.c_ohm == base.c_ohm

    def test_linear_term_sqrt(self):
        base = dpmih_like()
        scaled = base.scaled_to_ratio(48.0, 12.0)
        assert scaled.b_v == pytest.approx(base.b_v * 0.5)

    def test_scaling_improves_efficiency_at_lower_ratio(self):
        base = dpmih_like()
        scaled = base.scaled_to_ratio(48.0, 12.0, v_out_new_v=1.0)
        assert scaled.efficiency(30.0) > base.efficiency(30.0)

    def test_rejects_zero_vin(self):
        with pytest.raises(ConfigError):
            dpmih_like().scaled_to_ratio(0.0, 12.0)


class TestParalleled:
    def test_imax_scales(self):
        assert dpmih_like().paralleled(4).i_max_a == pytest.approx(400.0)

    def test_equal_split_loss_matches(self):
        base = dpmih_like()
        four = base.paralleled(4)
        assert four.loss_w(120.0) == pytest.approx(4 * base.loss_w(30.0))

    def test_peak_current_scales(self):
        base = dpmih_like()
        assert base.paralleled(4).i_peak_a == pytest.approx(4 * base.i_peak_a)

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            dpmih_like().paralleled(0)


class TestValidation:
    def test_rejects_negative_coefficients(self):
        with pytest.raises(CalibrationError):
            QuadraticLossModel(
                v_out_v=1.0, a_w=-1.0, b_v=0.0, c_ohm=0.0, i_max_a=10.0
            )

    def test_rejects_zero_vout(self):
        with pytest.raises(ConfigError):
            QuadraticLossModel(
                v_out_v=0.0, a_w=1.0, b_v=0.0, c_ohm=1e-3, i_max_a=10.0
            )

    def test_rejects_zero_imax(self):
        with pytest.raises(ConfigError):
            QuadraticLossModel(
                v_out_v=1.0, a_w=1.0, b_v=0.0, c_ohm=1e-3, i_max_a=0.0
            )

    def test_zero_c_peak_current_is_imax(self):
        model = QuadraticLossModel(
            v_out_v=1.0, a_w=0.0, b_v=0.01, c_ohm=0.0, i_max_a=10.0
        )
        assert model.i_peak_a == 10.0
