"""Loss-analysis engine tests (the Fig. 7 physics)."""

from __future__ import annotations

import pytest

from repro import SystemSpec
from repro.converters.catalog import DPMIH, DSCH, StageModelMode
from repro.core.architectures import (
    dual_stage_a3,
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.loss_analysis import (
    LossAnalyzer,
    LossComponent,
    LossModelParameters,
)
from repro.errors import ConfigError


class TestA0Breakdown:
    @pytest.fixture(scope="class")
    def a0(self, analyzer):
        return analyzer.analyze(reference_a0(), DSCH)

    def test_total_loss_above_40pct(self, a0):
        assert a0.paper_loss_fraction > 0.40

    def test_horizontal_dominates(self, a0):
        assert a0.horizontal_loss_w > 0.5 * a0.total_loss_w

    def test_vertical_negligible(self, a0):
        assert a0.vertical_loss_w < 0.01 * a0.spec.pol_power_w

    def test_pcb_planes_is_largest_horizontal_term(self, a0):
        pcb = a0.component_loss_w("pcb-planes")
        assert pcb > 0.5 * a0.horizontal_loss_w

    def test_converter_loss_covers_downstream(self, a0):
        # The PCB converter sees POL power plus all interconnect loss
        # at 90%: loss = (P_pol + ppdn)/0.9 * 0.1.
        p_out = a0.spec.pol_power_w + a0.ppdn_loss_w
        expected = p_out * (1 / 0.9 - 1)
        assert a0.converter_loss_w == pytest.approx(expected, rel=1e-9)

    def test_single_stage_report(self, a0):
        assert len(a0.stages) == 1
        assert a0.stages[0].placement == "pcb"

    def test_efficiency_consistent(self, a0):
        assert a0.efficiency == pytest.approx(
            1000.0 / (1000.0 + a0.total_loss_w)
        )

    def test_fig7_bars_sum_to_total(self, a0):
        bars = a0.fig7_bars()
        assert sum(bars.values()) == pytest.approx(
            100 * a0.paper_loss_fraction, rel=1e-9
        )


class TestA1Breakdown:
    @pytest.fixture(scope="class")
    def a1(self, analyzer):
        return analyzer.analyze(single_stage_a1(), DSCH)

    def test_loss_down_vs_a0(self, analyzer, a1):
        a0 = analyzer.analyze(reference_a0(), DSCH)
        assert a1.total_loss_w < 0.5 * a0.total_loss_w

    def test_converter_above_10pct(self, a1):
        assert a1.converter_loss_w > 0.10 * a1.spec.pol_power_w

    def test_ppdn_below_10pct(self, a1):
        assert a1.ppdn_loss_w < 0.10 * a1.spec.pol_power_w

    def test_48_dsch_vrs(self, a1):
        assert a1.stages[0].vr_count == 48

    def test_per_vr_current_near_21a(self, a1):
        assert a1.stages[0].per_vr_current_a == pytest.approx(22.0, rel=0.05)

    def test_periphery_spreading_dominates_horizontal(self, a1):
        spread = a1.component_loss_w("interposer-spread")
        assert spread > 0.5 * a1.horizontal_loss_w

    def test_input_feed_loss_tiny(self, a1):
        # 48 V feed: ~25 A through the board is negligible.
        assert a1.component_loss_w("pcb-planes") < 1.0


class TestA2Breakdown:
    @pytest.fixture(scope="class")
    def a2(self, analyzer):
        return analyzer.analyze(single_stage_a2(), DSCH)

    def test_beats_a1_on_horizontal(self, analyzer, a2):
        a1 = analyzer.analyze(single_stage_a1(), DSCH)
        assert a2.horizontal_loss_w < 0.3 * a1.horizontal_loss_w

    def test_pol_plan_all_below_die(self, a2):
        assert a2.pol_plan.below_die_count == 48

    def test_dpmih_uses_overflow(self, analyzer):
        breakdown = analyzer.analyze(single_stage_a2(), DPMIH)
        assert breakdown.pol_plan.overflow_count > 0

    def test_dpmih_loss_higher_than_dsch(self, analyzer, a2):
        dpmih = analyzer.analyze(single_stage_a2(), DPMIH)
        assert dpmih.converter_loss_w > a2.converter_loss_w


class TestA3Breakdown:
    @pytest.fixture(scope="class")
    def a3_12(self, analyzer):
        return analyzer.analyze(dual_stage_a3(12.0), DSCH)

    @pytest.fixture(scope="class")
    def a3_6(self, analyzer):
        return analyzer.analyze(dual_stage_a3(6.0), DSCH)

    def test_two_stages_reported(self, a3_12):
        assert [s.name for s in a3_12.stages] == ["pol-stage", "stage1"]

    def test_stage1_is_dpmih(self, a3_12):
        assert a3_12.stages[1].converter == "DPMIH"

    def test_stage1_runs_near_peak_current(self, a3_12):
        assert a3_12.stages[1].per_vr_current_a == pytest.approx(
            30.0, rel=0.25
        )

    def test_intermediate_rail_loss_quadruples_at_6v(self, a3_12, a3_6):
        rail_12 = a3_12.component_loss_w("intermediate-rail")
        rail_6 = a3_6.component_loss_w("intermediate-rail")
        assert rail_6 == pytest.approx(4 * rail_12, rel=0.10)

    def test_dual_stage_less_efficient_than_single(self, analyzer, a3_12):
        a1 = analyzer.analyze(single_stage_a1(), DSCH)
        assert a3_12.efficiency < a1.efficiency

    def test_horizontal_far_below_a0(self, analyzer, a3_12):
        a0 = analyzer.analyze(reference_a0(), DSCH)
        ratio = a0.horizontal_loss_w / a3_12.horizontal_loss_w
        assert 10.0 < ratio < 30.0

    def test_6v_horizontal_reduction_smaller(self, analyzer, a3_12, a3_6):
        a0 = analyzer.analyze(reference_a0(), DSCH)
        r12 = a0.horizontal_loss_w / a3_12.horizontal_loss_w
        r6 = a0.horizontal_loss_w / a3_6.horizontal_loss_w
        assert r6 < r12

    def test_ratio_scaled_mode_flips_ordering(self):
        """The ablation: ratio-optimized stage converters make
        dual-stage competitive."""
        published = LossAnalyzer(
            params=LossModelParameters(
                stage_mode=StageModelMode.AS_PUBLISHED
            )
        ).analyze(dual_stage_a3(12.0), DSCH)
        scaled = LossAnalyzer(
            params=LossModelParameters(
                stage_mode=StageModelMode.RATIO_SCALED
            )
        ).analyze(dual_stage_a3(12.0), DSCH)
        assert scaled.total_loss_w < published.total_loss_w


class TestCategoryAccounting:
    def test_categories_partition_total(self, analyzer):
        breakdown = analyzer.analyze(single_stage_a1(), DSCH)
        total = (
            breakdown.vertical_loss_w
            + breakdown.horizontal_loss_w
            + breakdown.converter_loss_w
        )
        assert total == pytest.approx(breakdown.total_loss_w, rel=1e-12)

    def test_component_prefix_query(self, analyzer):
        breakdown = analyzer.analyze(single_stage_a1(), DSCH)
        assert breakdown.component_loss_w("vr-") == pytest.approx(
            breakdown.converter_loss_w
        )

    def test_all_components_nonnegative(self, analyzer):
        breakdown = analyzer.analyze(dual_stage_a3(6.0), DPMIH)
        for component in breakdown.components:
            assert component.loss_w >= 0

    def test_loss_component_category_validated(self):
        with pytest.raises(ConfigError):
            LossComponent(name="x", category="magic", loss_w=1.0)

    def test_loss_component_rejects_negative(self):
        with pytest.raises(ConfigError):
            LossComponent(name="x", category="vertical", loss_w=-1.0)


class TestScaling:
    def test_half_power_system_less_loss(self):
        full = LossAnalyzer(SystemSpec()).analyze(single_stage_a1(), DSCH)
        half = LossAnalyzer(SystemSpec().with_power(500.0)).analyze(
            single_stage_a1(), DSCH
        )
        assert half.total_loss_w < full.total_loss_w

    def test_a0_horizontal_scales_quadratically(self):
        full = LossAnalyzer(SystemSpec()).analyze(reference_a0(), DSCH)
        half = LossAnalyzer(SystemSpec().with_power(500.0)).analyze(
            reference_a0(), DSCH
        )
        # Same die-area... A0's PCB planes carry half the current on
        # the same geometry: ~4x lower loss (within array-size kinks).
        pcb_full = full.component_loss_w("pcb-planes")
        pcb_half = half.component_loss_w("pcb-planes")
        assert pcb_half == pytest.approx(pcb_full / 4, rel=0.05)

    def test_with_params_override(self, analyzer):
        modified = analyzer.with_params(die_grid_resistance_ohm=12e-6)
        base = analyzer.analyze(single_stage_a2(), DSCH)
        heavier = modified.analyze(single_stage_a2(), DSCH)
        assert heavier.component_loss_w("die-grid") == pytest.approx(
            2 * base.component_loss_w("die-grid"), rel=0.01
        )

    def test_params_validation(self):
        with pytest.raises(ConfigError):
            LossModelParameters(die_grid_resistance_ohm=0.0)
