"""Density scaling study tests."""

from __future__ import annotations

import pytest

from repro.core.architectures import reference_a0, single_stage_a2
from repro.core.scaling_study import (
    a0_density_limit,
    density_ceiling_a_per_mm2,
    density_scaling_study,
)


@pytest.fixture(scope="module")
def study():
    return density_scaling_study()


class TestCeilings:
    def test_a0_limit_near_paper(self):
        assert a0_density_limit() == pytest.approx(0.83, abs=0.05)

    def test_micro_bump_ceiling_matches_a0_limit(self):
        ceiling = density_ceiling_a_per_mm2(reference_a0())
        assert ceiling == pytest.approx(a0_density_limit(), rel=0.01)

    def test_cu_pad_ceiling_far_above_paper_system(self):
        # 8.5 mA at 20 um pitch -> ~10.6 A/mm2 (both polarities).
        ceiling = density_ceiling_a_per_mm2(single_stage_a2())
        assert ceiling > 5.0


class TestStudyShape:
    def test_point_count(self, study):
        assert len(study) == 5

    def test_a0_supported_only_below_limit(self, study):
        for point in study:
            expected = point.density_a_per_mm2 <= a0_density_limit() + 1e-9
            assert point.a0_supported == expected

    def test_paper_system_splits_the_field(self, study):
        at_2 = next(p for p in study if p.density_a_per_mm2 == 2.0)
        assert not at_2.a0_supported
        assert at_2.vertical_supported

    def test_vertical_holds_through_4(self, study):
        at_4 = next(p for p in study if p.density_a_per_mm2 == 4.0)
        assert at_4.vertical_supported
        assert at_4.vertical_loss_pct is not None

    def test_die_area_shrinks_with_density(self, study):
        areas = [p.die_area_mm2 for p in study]
        assert areas == sorted(areas, reverse=True)

    def test_loss_rises_as_die_shrinks(self, study):
        """Same current through a smaller die: the lateral paths
        shorten (good) but the converter count and feed stay fixed,
        so loss should not improve dramatically; assert it stays
        within a sane band and is reported."""
        losses = [
            p.vertical_loss_pct
            for p in study
            if p.vertical_loss_pct is not None
        ]
        assert losses
        assert all(5.0 < loss < 35.0 for loss in losses)


class TestCustomSweeps:
    def test_low_density_all_supported(self):
        study = density_scaling_study(densities=(0.25, 0.5))
        assert all(p.a0_supported for p in study)
        assert all(p.vertical_supported for p in study)

    def test_extreme_density_rejected_with_note(self):
        study = density_scaling_study(densities=(50.0,))
        point = study[0]
        assert not point.vertical_supported
        assert "ceiling" in point.note
