"""Netlist construction tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.pdn.network import (
    CurrentSource,
    Netlist,
    Resistor,
    VoltageSource,
    series_chain,
)


class TestElements:
    def test_resistor_valid(self):
        r = Resistor("r1", "a", "b", 1.0)
        assert r.resistance_ohm == 1.0

    def test_resistor_rejects_zero(self):
        with pytest.raises(ConfigError):
            Resistor("r1", "a", "b", 0.0)

    def test_resistor_rejects_short(self):
        with pytest.raises(ConfigError):
            Resistor("r1", "a", "a", 1.0)

    def test_current_source_rejects_negative(self):
        with pytest.raises(ConfigError):
            CurrentSource("i1", "a", "b", -1.0)

    def test_current_source_rejects_short(self):
        with pytest.raises(ConfigError):
            CurrentSource("i1", "a", "a", 1.0)

    def test_voltage_source_rejects_short(self):
        with pytest.raises(ConfigError):
            VoltageSource("v1", "a", "a", 1.0)


class TestNetlistBuilder:
    def test_add_resistor(self):
        net = Netlist()
        net.add_resistor("r1", "a", "b", 2.0)
        assert len(net.resistors) == 1

    def test_duplicate_names_rejected(self):
        net = Netlist()
        net.add_resistor("x", "a", "b", 1.0)
        with pytest.raises(ConfigError):
            net.add_resistor("x", "b", "c", 1.0)

    def test_duplicate_names_across_kinds_rejected(self):
        net = Netlist()
        net.add_resistor("x", "a", "b", 1.0)
        with pytest.raises(ConfigError):
            net.add_voltage_source("x", "a", 1.0)

    def test_add_load_sinks_to_ground(self):
        net = Netlist()
        load = net.add_load("l1", "a", 3.0)
        assert load.node_to == net.GROUND

    def test_source_with_impedance_creates_two_elements(self):
        net = Netlist()
        source, resistor = net.add_source_with_impedance("s", "out", 1.0, 1e-3)
        assert source.name == "s.v"
        assert resistor.name == "s.rout"
        assert resistor.node_b == "out"

    def test_nodes_excludes_ground(self):
        net = Netlist()
        net.add_resistor("r1", "a", net.GROUND, 1.0)
        assert net.nodes() == ["a"]

    def test_nodes_first_seen_order(self):
        net = Netlist()
        net.add_resistor("r1", "b", "a", 1.0)
        net.add_resistor("r2", "c", "a", 1.0)
        assert net.nodes() == ["b", "a", "c"]

    def test_element_count(self):
        net = Netlist()
        net.add_resistor("r1", "a", "b", 1.0)
        net.add_voltage_source("v1", "a", 5.0)
        net.add_load("l1", "b", 1.0)
        assert net.element_count == 3

    def test_total_load_current(self):
        net = Netlist()
        net.add_load("l1", "a", 2.0)
        net.add_load("l2", "b", 3.0)
        assert net.total_load_current_a() == pytest.approx(5.0)

    def test_validate_empty_rejected(self):
        with pytest.raises(ConfigError):
            Netlist().validate()

    def test_validate_loads_without_sources_rejected(self):
        net = Netlist()
        net.add_resistor("r", "a", "b", 1.0)
        net.add_load("l", "a", 1.0)
        with pytest.raises(ConfigError):
            net.validate()

    def test_extend_merges(self):
        first = Netlist()
        first.add_resistor("r1", "a", "b", 1.0)
        second = Netlist()
        second.add_resistor("r2", "b", "c", 1.0)
        second.add_voltage_source("v", "a", 1.0)
        first.extend(second)
        assert first.element_count == 3

    def test_extend_name_clash_rejected(self):
        first = Netlist()
        first.add_resistor("r1", "a", "b", 1.0)
        second = Netlist()
        second.add_resistor("r1", "b", "c", 1.0)
        with pytest.raises(ConfigError):
            first.extend(second)


class TestSeriesChain:
    def test_builds_chain(self):
        net = Netlist()
        resistors = series_chain(net, "c", ["a", "b", "c"], [1.0, 2.0])
        assert [r.name for r in resistors] == ["c[0]", "c[1]"]
        assert resistors[1].resistance_ohm == 2.0

    def test_length_mismatch_rejected(self):
        net = Netlist()
        with pytest.raises(ConfigError):
            series_chain(net, "c", ["a", "b"], [1.0, 2.0])
