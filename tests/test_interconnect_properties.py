"""Property-based tests of the vertical interconnect arrays."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError
from repro.pdn.interconnect import TABLE_I

technologies = st.sampled_from(list(TABLE_I))
counts = st.integers(min_value=1, max_value=100000)
currents = st.floats(min_value=0.01, max_value=2000.0)


@given(tech=technologies, count=counts)
@settings(max_examples=80, deadline=None)
def test_parallel_resistance_scales_inversely(tech, count):
    array = tech.array(count)
    assert array.resistance_one_polarity_ohm == pytest.approx(
        tech.element_resistance_ohm / count
    )
    assert array.resistance_rail_pair_ohm == pytest.approx(
        2 * array.resistance_one_polarity_ohm
    )


@given(tech=technologies, count=counts, current=currents)
@settings(max_examples=80, deadline=None)
def test_loss_nonnegative_and_quadratic(tech, count, current):
    array = tech.array(count)
    loss_1 = array.loss_w(current)
    loss_2 = array.loss_w(2 * current)
    assert loss_1 >= 0
    assert loss_2 == pytest.approx(4 * loss_1, rel=1e-9)


@given(tech=technologies, current=currents)
@settings(max_examples=80, deadline=None)
def test_array_for_current_respects_rating(tech, current):
    try:
        array = tech.array_for_current(current)
    except InfeasibleError:
        # Larger than the platform can carry: verify that's true.
        assert current > tech.max_current_a(1.0)
        return
    assert array.is_within_rating(current)
    # Minimality: one element fewer would violate the rating.
    if array.count_per_polarity > 1:
        smaller = tech.array(array.count_per_polarity - 1)
        assert not smaller.is_within_rating(current)


@given(tech=technologies, current=currents)
@settings(max_examples=80, deadline=None)
def test_utilization_in_unit_range_when_feasible(tech, current):
    try:
        array = tech.array_for_current(current)
    except InfeasibleError:
        return
    assert 0.0 < array.utilization <= 1.0 + 1e-9


@given(tech=technologies, cap=st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_max_current_monotone_in_cap(tech, cap):
    assume(cap < 0.95)
    assert tech.max_current_a(cap) <= tech.max_current_a(
        min(cap + 0.05, 1.0)
    ) + 1e-12


@given(tech=technologies)
@settings(max_examples=10, deadline=None)
def test_power_sites_never_exceed_geometric(tech):
    assert tech.power_sites <= tech.sites_total
    assert tech.power_sites_per_polarity <= tech.power_sites // 2
