"""Design optimizer tests."""

from __future__ import annotations

import pytest

from repro import SystemSpec
from repro.converters.catalog import StageModelMode
from repro.core.optimizer import (
    DesignConstraints,
    optimize_design,
)
from repro.errors import ConfigError, InfeasibleError


@pytest.fixture(scope="module")
def default_result():
    return optimize_design()


class TestSearchSpace:
    def test_candidate_count(self, default_result):
        # A0 (1) + {A1, A2, A3@6V, A3@12V} x 3 topologies.
        assert len(default_result.candidates) == 1 + 4 * 3

    def test_3lhd_rejected(self, default_result):
        rejected = {
            (c.architecture, c.topology) for c in default_result.rejected
        }
        assert all(topo == "3LHD" for _a, topo in rejected)

    def test_rejections_carry_reasons(self, default_result):
        for candidate in default_result.rejected:
            assert candidate.rejected_reason

    def test_without_a0(self):
        result = optimize_design(
            constraints=DesignConstraints(allow_pcb_conversion=False)
        )
        assert all(c.architecture != "A0" for c in result.candidates)


class TestRanking:
    def test_best_is_a2_dsch(self, default_result):
        best = default_result.best
        assert best.architecture == "A2"
        assert best.topology == "DSCH"

    def test_feasible_sorted_by_efficiency(self, default_result):
        efficiencies = [c.efficiency for c in default_result.feasible]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_a0_is_the_worst_feasible(self, default_result):
        assert default_result.feasible[-1].architecture == "A0"


class TestConstraints:
    def test_efficiency_floor_prunes(self):
        result = optimize_design(
            constraints=DesignConstraints(min_efficiency=0.84)
        )
        assert all(c.efficiency >= 0.84 for c in result.feasible)
        assert any(
            "below the" in (c.rejected_reason or "")
            for c in result.rejected
        )

    def test_vr_count_cap(self):
        # A cap of 20 VRs kills the 48-slot DSCH banks but leaves
        # DPMIH (12-13 VRs) alive.
        result = optimize_design(
            constraints=DesignConstraints(max_vr_count=20)
        )
        assert all(
            sum(s.vr_count for s in c.breakdown.stages) <= 20
            for c in result.feasible
            if c.architecture != "A0"
        )
        assert result.best.topology in ("DPMIH", "PCB stage")

    def test_area_cap(self):
        # DPMIH's 12 x 53 mm2 exceeds a 400 mm2 cap; DSCH fits.
        result = optimize_design(
            constraints=DesignConstraints(max_converter_area_mm2=400.0)
        )
        names = {
            (c.architecture, c.topology) for c in result.feasible
        }
        assert ("A1", "DSCH") in names
        assert ("A1", "DPMIH") not in names

    def test_impossible_constraints_raise_on_best(self):
        result = optimize_design(
            constraints=DesignConstraints(
                min_efficiency=0.99, allow_pcb_conversion=False
            )
        )
        with pytest.raises(InfeasibleError):
            _ = result.best

    def test_custom_rails(self):
        result = optimize_design(
            constraints=DesignConstraints(intermediate_rails_v=(8.0,))
        )
        names = {c.architecture for c in result.candidates}
        assert "A3@8V*" in names

    def test_validation(self):
        with pytest.raises(ConfigError):
            DesignConstraints(min_efficiency=1.5)
        with pytest.raises(ConfigError):
            DesignConstraints(max_vr_count=0)
        with pytest.raises(ConfigError):
            DesignConstraints(intermediate_rails_v=())


class TestModesAndSpecs:
    def test_ratio_scaled_promotes_dual_stage(self):
        published = optimize_design()
        scaled = optimize_design(stage_mode=StageModelMode.RATIO_SCALED)
        rank_published = [
            c.architecture for c in published.feasible
        ].index("A3@12V")
        rank_scaled = [c.architecture for c in scaled.feasible].index(
            "A3@12V"
        )
        assert rank_scaled < rank_published

    def test_small_system_keeps_3lhd(self):
        result = optimize_design(spec=SystemSpec().with_power(400.0))
        names = {
            (c.architecture, c.topology) for c in result.feasible
        }
        assert ("A2", "3LHD") in names
