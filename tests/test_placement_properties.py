"""Property-based tests of the placement planner."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.converters.catalog import CATALOG, DPMIH, DSCH
from repro.errors import InfeasibleError
from repro.placement.geometry import grid_positions, periphery_positions
from repro.placement.planner import PlacementStyle, plan_placement

currents = st.floats(min_value=10.0, max_value=1500.0)
specs = st.sampled_from(list(CATALOG))
styles = st.sampled_from(list(PlacementStyle))


@given(spec=specs, style=styles, current=currents)
@settings(max_examples=100, deadline=None)
def test_plans_always_respect_ratings(spec, style, current):
    """Any plan the planner returns keeps per-VR current feasible."""
    try:
        plan = plan_placement(spec, style, current, 500.0)
    except InfeasibleError:
        return
    assert plan.per_vr_current_a <= spec.max_load_a * (1 + 1e-9)
    assert plan.vr_count >= 1
    assert len(plan.positions) == plan.vr_count


@given(spec=specs, style=styles, current=currents)
@settings(max_examples=100, deadline=None)
def test_area_accounting_consistent(spec, style, current):
    try:
        plan = plan_placement(spec, style, current, 500.0)
    except InfeasibleError:
        return
    assert plan.area_used_mm2 == pytest.approx(
        plan.vr_count * spec.area_mm2
    )


@given(current=st.floats(min_value=10.0, max_value=1400.0))
@settings(max_examples=60, deadline=None)
def test_dsch_counts_monotone_in_current(current):
    """More demand can never yield fewer VRs."""
    lighter = plan_placement(
        DSCH, PlacementStyle.PERIPHERY, current, 500.0
    ).vr_count
    try:
        heavier = plan_placement(
            DSCH, PlacementStyle.PERIPHERY, current + 100.0, 500.0
        ).vr_count
    except InfeasibleError:
        return
    assert heavier >= lighter


@given(current=currents)
@settings(max_examples=60, deadline=None)
def test_dpmih_below_die_slots_never_exceeded(current):
    try:
        plan = plan_placement(DPMIH, PlacementStyle.BELOW_DIE, current, 500.0)
    except InfeasibleError:
        return
    assert plan.below_die_count <= DPMIH.vrs_below_die


@given(count=st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_periphery_positions_on_boundary_ring(count):
    inset = 0.02
    for p in periphery_positions(count, inset=inset):
        distance_to_ring = min(
            abs(p.x - inset),
            abs(p.x - (1 - inset)),
            abs(p.y - inset),
            abs(p.y - (1 - inset)),
        )
        assert distance_to_ring < 1e-9


@given(count=st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_grid_positions_count_and_bounds(count):
    positions = grid_positions(count)
    assert len(positions) == count
    for p in positions:
        assert 0.0 <= p.x <= 1.0
        assert 0.0 <= p.y <= 1.0


@given(
    count=st.integers(min_value=2, max_value=120),
)
@settings(max_examples=60, deadline=None)
def test_grid_positions_distinct(count):
    positions = grid_positions(count)
    unique = {(round(p.x, 9), round(p.y, 9)) for p in positions}
    assert len(unique) == count
