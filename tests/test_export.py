"""CSV export tests."""

from __future__ import annotations

import csv

import pytest

from repro.reporting.export import (
    export_all,
    export_fig1_csv,
    export_fig2_csv,
    export_fig3_csv,
    export_fig7_csv,
)


def read_csv(path) -> list[dict[str, str]]:
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


class TestFig1Export:
    def test_rows_and_columns(self, tmp_path):
        path = export_fig1_csv(str(tmp_path / "fig1.csv"))
        rows = read_csv(path)
        assert len(rows) >= 13
        assert {"kind", "name", "power_w"} <= set(rows[0])

    def test_kinds(self, tmp_path):
        rows = read_csv(export_fig1_csv(str(tmp_path / "f.csv")))
        kinds = {row["kind"] for row in rows}
        assert kinds == {"chip", "server"}


class TestFig2Export:
    def test_years_sorted(self, tmp_path):
        rows = read_csv(export_fig2_csv(str(tmp_path / "f.csv")))
        years = [int(row["year"]) for row in rows]
        assert years == sorted(years)

    def test_missing_cells_blank(self, tmp_path):
        rows = read_csv(export_fig2_csv(str(tmp_path / "f.csv")))
        # Some years only exist in one of the two series.
        assert any(
            row["die_current_a"] == "" or row["packaging_feature_um"] == ""
            for row in rows
        )


class TestFig3Export:
    def test_locations(self, tmp_path):
        rows = read_csv(export_fig3_csv(str(tmp_path / "f.csv")))
        assert [row["location"] for row in rows] == [
            "PCB",
            "package",
            "interposer-periphery",
            "below-die",
        ]

    def test_loss_monotonic(self, tmp_path):
        rows = read_csv(export_fig3_csv(str(tmp_path / "f.csv")))
        losses = [float(row["loss_pct"]) for row in rows]
        assert losses == sorted(losses, reverse=True)


class TestFig7Export:
    def test_thirteen_rows(self, tmp_path):
        rows = read_csv(export_fig7_csv(str(tmp_path / "f.csv")))
        assert len(rows) == 13

    def test_excluded_marked(self, tmp_path):
        rows = read_csv(export_fig7_csv(str(tmp_path / "f.csv")))
        excluded = [r for r in rows if r["total_pct"] == "excluded"]
        assert len(excluded) == 4

    def test_component_sum(self, tmp_path):
        rows = read_csv(export_fig7_csv(str(tmp_path / "f.csv")))
        for row in rows:
            if row["total_pct"] == "excluded":
                continue
            parts = sum(
                float(row[key])
                for key in (
                    "bga_pct",
                    "c4_pct",
                    "tsv_pct",
                    "die_attach_pct",
                    "horizontal_pct",
                    "vr_pct",
                )
            )
            assert parts == pytest.approx(float(row["total_pct"]), rel=1e-6)


class TestExportAll:
    def test_writes_four_files(self, tmp_path):
        paths = export_all(str(tmp_path / "csv"))
        assert len(paths) == 4
        for path in paths:
            assert read_csv(path)
