"""Property-based tests of the MNA solver (hypothesis).

Random ladder/grid-ish networks must satisfy physics invariants:
KCL at every node (checked internally), conservation of load current
into sources, superposition, and monotonicity of dissipation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.mna import solve_dc
from repro.pdn.network import Netlist

resistances = st.floats(
    min_value=1e-4, max_value=1e3, allow_nan=False, allow_infinity=False
)
currents = st.floats(
    min_value=0.01, max_value=500.0, allow_nan=False, allow_infinity=False
)


def build_ladder(
    rungs: list[float], rails: list[float], loads: list[float]
) -> Netlist:
    """A ladder: source -> rail resistors with rung loads to ground."""
    net = Netlist()
    net.add_voltage_source("v", "n0", 1.0)
    for i, rail in enumerate(rails):
        net.add_resistor(f"rail[{i}]", f"n{i}", f"n{i+1}", rail)
    for i, (rung, load) in enumerate(zip(rungs, loads)):
        node = f"n{min(i + 1, len(rails))}"
        net.add_resistor(f"rung[{i}]", node, f"m{i}", rung)
        net.add_load(f"load[{i}]", f"m{i}", load)
    return net


@given(
    rails=st.lists(resistances, min_size=1, max_size=6),
    rungs=st.lists(resistances, min_size=1, max_size=6),
    loads=st.lists(currents, min_size=1, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_source_supplies_total_load(rails, rungs, loads):
    """The single voltage source must deliver exactly the load sum."""
    n = min(len(rungs), len(loads))
    net = build_ladder(rungs[:n], rails, loads[:n])
    result = solve_dc(net)
    assert result.source_currents["v"] == pytest.approx(
        sum(loads[:n]), rel=1e-6
    )


@given(
    rails=st.lists(resistances, min_size=1, max_size=5),
    load=currents,
)
@settings(max_examples=60, deadline=None)
def test_superposition_of_loads(rails, load):
    """Doubling every load doubles every resistor current (linearity)."""
    net1 = build_ladder([1.0], rails, [load])
    net2 = build_ladder([1.0], rails, [2 * load])
    r1 = solve_dc(net1)
    r2 = solve_dc(net2)
    # abs tolerance scales with the load: branches carrying ~zero
    # current only see factorization noise.
    tolerance = 1e-6 * max(load, 1.0)
    for name, current in r1.resistor_currents.items():
        assert r2.resistor_currents[name] == pytest.approx(
            2 * current, rel=1e-6, abs=tolerance
        )


@given(
    rails=st.lists(resistances, min_size=1, max_size=5),
    load=currents,
)
@settings(max_examples=60, deadline=None)
def test_all_node_voltages_below_source(rails, load):
    """With one source and only sinks, no node can exceed the source."""
    net = build_ladder([1.0], rails, [load])
    result = solve_dc(net)
    for voltage in result.node_voltages.values():
        assert voltage <= 1.0 + 1e-9


@given(
    rails=st.lists(resistances, min_size=2, max_size=5),
    load=currents,
)
@settings(max_examples=60, deadline=None)
def test_voltage_monotonically_drops_along_ladder(rails, load):
    """A single end load makes the rail voltage strictly decreasing."""
    net = Netlist()
    net.add_voltage_source("v", "n0", 1.0)
    for i, rail in enumerate(rails):
        net.add_resistor(f"rail[{i}]", f"n{i}", f"n{i+1}", rail)
    net.add_load("load", f"n{len(rails)}", load)
    result = solve_dc(net)
    voltages = [result.voltage(f"n{i}") for i in range(len(rails) + 1)]
    for earlier, later in zip(voltages, voltages[1:]):
        assert later < earlier


@given(
    load=currents,
    r_feed=resistances,
)
@settings(max_examples=60, deadline=None)
def test_dissipation_matches_voltage_drop(load, r_feed):
    """P = I^2 R = I * dV on the single feed resistor."""
    net = Netlist()
    net.add_voltage_source("v", "in", 1.0)
    net.add_resistor("feed", "in", "out", r_feed)
    net.add_load("l", "out", load)
    result = solve_dc(net)
    drop = 1.0 - result.voltage("out")
    assert result.resistor_losses["feed"] == pytest.approx(
        load * drop, rel=1e-9
    )


@given(
    scale=st.floats(min_value=0.1, max_value=10.0),
    load=currents,
)
@settings(max_examples=60, deadline=None)
def test_resistance_scaling_scales_losses(scale, load):
    """Scaling all resistances by k scales all losses by k."""
    base = Netlist()
    base.add_voltage_source("v", "in", 1.0)
    base.add_resistor("r1", "in", "m", 1e-3)
    base.add_resistor("r2", "m", "out", 2e-3)
    base.add_load("l", "out", load)

    scaled = Netlist()
    scaled.add_voltage_source("v", "in", 1.0)
    scaled.add_resistor("r1", "in", "m", 1e-3 * scale)
    scaled.add_resistor("r2", "m", "out", 2e-3 * scale)
    scaled.add_load("l", "out", load)

    loss_base = solve_dc(base).total_resistive_loss_w
    loss_scaled = solve_dc(scaled).total_resistive_loss_w
    assert loss_scaled == pytest.approx(scale * loss_base, rel=1e-6)
