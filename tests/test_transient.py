"""PDN transient (droop) analysis tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.transient import (
    PDNStage,
    PDNTransient,
    default_board_regulated_pdn,
    default_interposer_regulated_pdn,
    droop_and_settle,
)


def simple_pdn(esr: float = 0.0) -> PDNTransient:
    return PDNTransient(
        1.0,
        [
            PDNStage("board", 1e-3, 10e-9, 1e-3, esr),
            PDNStage("die", 0.1e-3, 50e-12, 5e-6, esr),
        ],
    )


class TestDCState:
    def test_no_load_settles_at_supply(self):
        pdn = simple_pdn()
        state = pdn.dc_state(0.0)
        # Capacitor voltages are the last n states.
        assert state[2] == pytest.approx(1.0, abs=1e-9)
        assert state[3] == pytest.approx(1.0, abs=1e-9)

    def test_loaded_dc_drop_matches_ir(self):
        pdn = simple_pdn()
        state = pdn.dc_state(10.0)
        # Total series resistance 1.1 mOhm at 10 A -> 11 mV drop.
        assert state[3] == pytest.approx(1.0 - 10 * 1.1e-3, rel=1e-6)

    def test_dc_inductor_currents_carry_load(self):
        pdn = simple_pdn()
        state = pdn.dc_state(25.0)
        assert state[0] == pytest.approx(25.0, rel=1e-9)
        assert state[1] == pytest.approx(25.0, rel=1e-9)


class TestStepResponse:
    def test_droop_positive_on_load_step(self):
        result = simple_pdn().simulate_step(0.0, 20.0, duration_s=5e-6)
        assert result.droop_v > 0

    def test_no_step_no_droop(self):
        result = simple_pdn().simulate_step(10.0, 10.0, duration_s=2e-6)
        assert result.droop_v == pytest.approx(0.0, abs=1e-6)

    def test_bigger_step_bigger_droop(self):
        pdn = simple_pdn()
        small = pdn.simulate_step(0.0, 10.0, duration_s=5e-6)
        large = pdn.simulate_step(0.0, 30.0, duration_s=5e-6)
        assert large.droop_v > small.droop_v

    def test_final_value_matches_dc(self):
        # The board stage rings with tau = 2L/R = 20 us; simulate long
        # enough for the oscillation to die out.
        pdn = simple_pdn()
        result = pdn.simulate_step(
            0.0, 20.0, duration_s=300e-6, dt_s=20e-9
        )
        v_final_expected = 1.0 - 20 * 1.1e-3
        assert result.pol_voltage_v[-1] == pytest.approx(
            v_final_expected, rel=1e-3
        )

    def test_droop_exceeds_dc_drop(self):
        # The transient minimum undershoots the final DC value.
        pdn = simple_pdn()
        result = pdn.simulate_step(0.0, 20.0, duration_s=40e-6)
        dc_drop = 20 * 1.1e-3
        assert result.droop_v >= dc_drop * 0.99

    def test_settle_time_reported(self):
        result = simple_pdn().simulate_step(0.0, 20.0, duration_s=40e-6)
        assert 0.0 <= result.settle_time_s <= 40e-6

    def test_trajectory_shapes(self):
        result = simple_pdn().simulate_step(0.0, 5.0, duration_s=2e-6, dt_s=2e-9)
        assert len(result.time_s) == len(result.pol_voltage_v)
        assert result.stage_voltages_v.shape[0] == 2

    def test_decap_softens_droop(self):
        small_cap = PDNTransient(
            1.0,
            [
                PDNStage("board", 1e-3, 10e-9, 1e-3),
                PDNStage("die", 0.1e-3, 50e-12, 1e-6),
            ],
        )
        big_cap = PDNTransient(
            1.0,
            [
                PDNStage("board", 1e-3, 10e-9, 1e-3),
                PDNStage("die", 0.1e-3, 50e-12, 20e-6),
            ],
        )
        droop_small = small_cap.simulate_step(0.0, 20.0, 10e-6).droop_v
        droop_big = big_cap.simulate_step(0.0, 20.0, 10e-6).droop_v
        assert droop_big < droop_small


class TestArchitectureComparison:
    def test_interposer_regulation_beats_board_regulation(self):
        """Moving regulation closer to the POL (A1/A2-style) cuts the
        load-step droop — the dynamic counterpart of the paper's DC
        argument."""
        board = default_board_regulated_pdn()
        interposer = default_interposer_regulated_pdn()
        step = (5.0, 50.0)
        droop_board = board.simulate_step(*step, duration_s=30e-6).droop_v
        droop_interposer = interposer.simulate_step(
            *step, duration_s=30e-6
        ).droop_v
        assert droop_interposer < droop_board


class TestValidation:
    def test_rejects_empty_stages(self):
        with pytest.raises(ConfigError):
            PDNTransient(1.0, [])

    def test_rejects_zero_supply(self):
        with pytest.raises(ConfigError):
            PDNTransient(0.0, [PDNStage("x", 1e-3, 1e-9, 1e-6)])

    def test_stage_rejects_zero_r(self):
        with pytest.raises(ConfigError):
            PDNStage("x", 0.0, 1e-9, 1e-6)

    def test_stage_rejects_negative_esr(self):
        with pytest.raises(ConfigError):
            PDNStage("x", 1e-3, 1e-9, 1e-6, -1e-3)

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigError):
            simple_pdn().simulate_step(-1.0, 5.0)

    def test_rejects_short_duration(self):
        with pytest.raises(ConfigError):
            simple_pdn().simulate_step(0.0, 5.0, duration_s=1e-9, dt_s=1e-9)


class TestDroopAndSettleHelper:
    """The shared module-level helper matches what simulate_step reports."""

    def reference(self, time, trace, v_pre, v_final, band):
        droop = max(0.0, v_pre - float(np.min(trace)))
        settle = float(time[-1])
        inside = np.abs(trace - v_final) <= band
        for k in range(len(inside)):
            if inside[k:].all():
                settle = float(time[k])
                break
        return droop, settle

    def test_matches_simulate_step(self):
        pdn = simple_pdn(esr=0.3e-3)
        result = pdn.simulate_step(5.0, 40.0, duration_s=30e-6)
        band = 0.02 * abs(pdn.supply_voltage_v)
        v_final_state = pdn.dc_state(40.0).reshape(-1, 1)
        v_final = float(pdn._output_voltage(v_final_state, 40.0)[0])
        droop, settle = droop_and_settle(
            result.time_s, result.pol_voltage_v, result.pol_voltage_v[0],
            v_final, band,
        )
        assert droop == result.droop_v
        assert settle == result.settle_time_s

    def test_matches_reference_scan(self):
        rng = np.random.default_rng(7)
        time = np.linspace(0.0, 1e-6, 200)
        trace = 1.0 - 0.05 * np.exp(-time / 2e-7) + 0.002 * rng.normal(
            size=time.size
        )
        droop, settle = droop_and_settle(time, trace, 1.0, 0.999, 0.004)
        assert (droop, settle) == self.reference(time, trace, 1.0, 0.999, 0.004)

    def test_never_settling_reports_trace_end(self):
        time = np.linspace(0.0, 1e-6, 50)
        trace = np.full(50, 0.9)
        droop, settle = droop_and_settle(time, trace, 1.0, 1.0, 1e-6)
        assert droop == pytest.approx(0.1)
        assert settle == time[-1]

    def test_droop_clips_overshoot_to_zero(self):
        time = np.linspace(0.0, 1e-6, 50)
        trace = np.full(50, 1.2)
        droop, _ = droop_and_settle(time, trace, 1.0, 1.2, 0.01)
        assert droop == 0.0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigError):
            droop_and_settle(np.arange(4.0), np.arange(5.0), 1.0, 1.0, 0.01)

    def test_rejects_nonpositive_band(self):
        with pytest.raises(ConfigError):
            droop_and_settle(np.arange(4.0), np.arange(4.0), 1.0, 1.0, 0.0)


class TestSettleTimeScan:
    def settle_by_reference_scan(self, pdn, i0, i1, **kwargs):
        """The retained O(n^2) definition: first sample whose entire
        suffix stays inside the band."""
        result = pdn.simulate_step(i0, i1, **kwargs)
        band = kwargs.get("settle_band_v")
        if band is None:
            band = 0.02 * abs(pdn.supply_voltage_v)
        v_final_state = pdn.dc_state(i1).reshape(-1, 1)
        v_final = float(pdn._output_voltage(v_final_state, i1)[0])
        inside = np.abs(result.pol_voltage_v - v_final) <= band
        settle = float(result.time_s[-1])
        for k in range(len(inside)):
            if inside[k:].all():
                settle = float(result.time_s[k])
                break
        return result.settle_time_s, settle

    def test_vectorized_scan_equals_reference(self):
        pdn = simple_pdn(esr=0.3e-3)
        fast, reference = self.settle_by_reference_scan(pdn, 10.0, 60.0)
        assert fast == reference

    def test_equivalence_with_tight_band(self):
        pdn = default_board_regulated_pdn()
        fast, reference = self.settle_by_reference_scan(
            pdn, 0.0, 40.0, settle_band_v=1e-4
        )
        assert fast == reference

    def test_equivalence_when_never_settling(self):
        # A band of ~zero width is never continuously satisfied.
        pdn = simple_pdn(esr=0.3e-3)
        fast, reference = self.settle_by_reference_scan(
            pdn, 5.0, 80.0, settle_band_v=1e-15
        )
        assert fast == reference
        result = pdn.simulate_step(5.0, 80.0, settle_band_v=1e-15)
        assert result.settle_time_s == result.time_s[-1]
