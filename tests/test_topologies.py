"""Converter topology tests: buck, SC, and the three hybrids."""

from __future__ import annotations

import pytest

from repro.converters.devices import Capacitor, Inductor, PowerSwitch
from repro.converters.topologies.buck import SynchronousBuck
from repro.converters.topologies.dickson3l import ThreeLevelHybridDickson
from repro.converters.topologies.dpmih import DPMIHConverter
from repro.converters.topologies.dsch import DSCHConverter
from repro.converters.topologies.sc import SeriesParallelSC
from repro.converters.topologies.transformer_stage import (
    FixedEfficiencyConverter,
    pcb_reference_converter,
)
from repro.errors import ConfigError, InfeasibleError
from repro.materials import GAN_100V


def make_buck(v_in=12.0, v_out=1.0, frequency=1e6, n_phases=1) -> SynchronousBuck:
    return SynchronousBuck(
        v_in_v=v_in,
        v_out_v=v_out,
        frequency_hz=frequency,
        inductor=Inductor(220e-9, dcr_ohm=0.3e-3, rated_current_a=60.0),
        output_capacitor=Capacitor(100e-6, esr_ohm=0.2e-3),
        high_side=PowerSwitch.sized_for(2e-3),
        low_side=PowerSwitch.sized_for(1e-3),
        n_phases=n_phases,
        max_load_a=60.0,
    )


class TestBuck:
    def test_duty_is_ratio(self):
        assert make_buck().duty == pytest.approx(1.0 / 12.0)

    def test_48v_duty_is_2pct(self):
        # The paper's ultra-low on-time argument: 48V-to-1V -> ~2%.
        buck = make_buck(v_in=48.0, frequency=0.5e6)
        assert buck.duty == pytest.approx(0.0208, rel=0.01)

    def test_on_time_limits_frequency(self):
        # At 48V-to-1V and 20 ns minimum on-time, f_max ~ 1.04 MHz.
        buck = make_buck(v_in=48.0, frequency=0.5e6)
        assert buck.max_frequency_hz == pytest.approx(1.04e6, rel=0.01)

    def test_too_fast_for_on_time_rejected(self):
        with pytest.raises(InfeasibleError):
            make_buck(v_in=48.0, frequency=2e6)

    def test_efficiency_reasonable_at_medium_load(self):
        buck = make_buck()
        assert 0.85 < buck.efficiency(20.0) < 0.99

    def test_loss_grows_with_load(self):
        buck = make_buck()
        assert buck.loss_w(40.0) > buck.loss_w(10.0)

    def test_multiphase_reduces_output_ripple(self):
        single = make_buck(n_phases=1)
        quad = make_buck(n_phases=4)
        assert quad.output_ripple_v(40.0) < single.output_ripple_v(40.0)

    def test_inductor_ripple_formula(self):
        buck = make_buck()
        expected = (12.0 - 1.0) * (1 / 12.0) / (220e-9 * 1e6)
        assert buck.inductor_ripple_a() == pytest.approx(expected)

    def test_overload_rejected(self):
        with pytest.raises(InfeasibleError):
            make_buck().loss_w(100.0)

    def test_input_power_consistency(self):
        buck = make_buck()
        p_in = buck.input_power_w(20.0)
        assert p_in == pytest.approx(20.0 * 1.0 + buck.loss_w(20.0))

    def test_rejects_step_up(self):
        with pytest.raises(ConfigError):
            make_buck(v_in=1.0, v_out=2.0)


class TestSeriesParallelSC:
    def make(self, ratio=4, frequency=1e6, c_fly=10e-6) -> SeriesParallelSC:
        return SeriesParallelSC(
            v_in_v=48.0,
            ratio=ratio,
            fly_capacitance_f=c_fly,
            frequency_hz=frequency,
            switch=PowerSwitch.sized_for(5e-3, soft_switched=True),
        )

    def test_ideal_ratio(self):
        assert self.make(ratio=4).v_out_v == pytest.approx(12.0)

    def test_ssl_formula(self):
        sc = self.make(ratio=4, frequency=1e6, c_fly=10e-6)
        assert sc.r_ssl_ohm == pytest.approx(3 / (16 * 10e-6 * 1e6))

    def test_ssl_halves_with_double_frequency(self):
        slow = self.make(frequency=1e6)
        fast = self.make(frequency=2e6)
        assert fast.r_ssl_ohm == pytest.approx(slow.r_ssl_ohm / 2)

    def test_fsl_independent_of_frequency(self):
        slow = self.make(frequency=1e6)
        fast = self.make(frequency=4e6)
        assert fast.r_fsl_ohm == pytest.approx(slow.r_fsl_ohm)

    def test_rout_exceeds_both_asymptotes(self):
        sc = self.make()
        assert sc.r_out_ohm >= sc.r_ssl_ohm
        assert sc.r_out_ohm >= sc.r_fsl_ohm

    def test_output_droops_with_load(self):
        sc = self.make()
        assert sc.output_voltage_v(10.0) < sc.output_voltage_v(1.0)

    def test_efficiency_bounded_by_droop(self):
        sc = self.make()
        v_loaded = sc.output_voltage_v(10.0)
        assert sc.efficiency(10.0) <= v_loaded / sc.v_out_v + 1e-9

    def test_switch_count(self):
        assert self.make(ratio=4).switch_count == 10

    def test_collapse_detected(self):
        tiny = SeriesParallelSC(
            v_in_v=48.0,
            ratio=4,
            fly_capacitance_f=1e-9,
            frequency_hz=1e5,
            switch=PowerSwitch.sized_for(5e-3),
        )
        with pytest.raises(InfeasibleError):
            tiny.loss_w(20.0)

    def test_rejects_ratio_one(self):
        with pytest.raises(ConfigError):
            SeriesParallelSC(48.0, 1, 1e-6, 1e6, PowerSwitch.sized_for(5e-3))


class TestDSCH:
    def test_published_peak(self):
        converter = DSCHConverter()
        assert converter.efficiency(10.0) == pytest.approx(0.915, abs=1e-9)

    def test_max_load(self):
        assert DSCHConverter().max_load_a == 30.0

    def test_sc_front_divides_by_three(self):
        assert DSCHConverter().intermediate_voltage_v == pytest.approx(16.0)

    def test_buck_duty_improved_vs_direct(self):
        converter = DSCHConverter()
        direct_duty = 1.0 / 48.0
        assert converter.buck_duty == pytest.approx(3 / 48)
        assert converter.buck_duty > direct_duty

    def test_area_from_density(self):
        assert DSCHConverter().area_mm2 == pytest.approx(5 / 0.69, rel=1e-6)

    def test_phase_imbalance_sums_to_total(self):
        heavy, light = DSCHConverter().phase_current_imbalance(20.0)
        assert heavy + light == pytest.approx(20.0)
        assert heavy > light

    def test_overload_rejected(self):
        with pytest.raises(InfeasibleError):
            DSCHConverter().loss_w(31.0)


class TestDPMIH:
    def test_published_peak(self):
        assert DPMIHConverter().efficiency(30.0) == pytest.approx(
            0.909, abs=1e-9
        )

    def test_full_load_efficiency(self):
        assert DPMIHConverter().efficiency(100.0) == pytest.approx(
            0.865, abs=1e-9
        )

    def test_max_load_100a(self):
        assert DPMIHConverter().max_load_a == 100.0

    def test_soft_switching_flag(self):
        assert DPMIHConverter().is_soft_switched

    def test_area_is_large(self):
        # 8 switches at 0.15 /mm2 -> 53.3 mm2, the area-heavy option.
        assert DPMIHConverter().area_mm2 == pytest.approx(53.33, rel=0.01)


class TestThreeLevelHybridDickson:
    def test_published_peak(self):
        assert ThreeLevelHybridDickson().efficiency(3.0) == pytest.approx(
            0.904, abs=1e-9
        )

    def test_max_load_12a(self):
        assert ThreeLevelHybridDickson().max_load_a == 12.0

    def test_dickson_divides_by_ten(self):
        assert ThreeLevelHybridDickson().intermediate_voltage_v == (
            pytest.approx(4.8)
        )

    def test_on_time_relaxed_to_20pct(self):
        # The paper: on-time improves from 2% to ~20%.
        assert ThreeLevelHybridDickson().effective_on_time_fraction == (
            pytest.approx(0.208, rel=0.01)
        )

    def test_self_balancing(self):
        assert ThreeLevelHybridDickson().capacitors_self_balance

    def test_cannot_deliver_20a(self):
        # The exact reason the paper excludes 3LHD from Fig. 7.
        with pytest.raises(InfeasibleError):
            ThreeLevelHybridDickson().loss_w(20.8)


class TestFixedEfficiency:
    def test_pcb_reference_is_90pct(self):
        converter = pcb_reference_converter()
        assert converter.efficiency(100.0) == pytest.approx(0.90)

    def test_loss_from_efficiency(self):
        converter = FixedEfficiencyConverter(48.0, 1.0, 0.9)
        p_out = 1.0 * 100.0
        assert converter.loss_w(100.0) == pytest.approx(p_out / 0.9 - p_out)

    def test_zero_load_efficiency_zero(self):
        assert pcb_reference_converter().efficiency(0.0) == 0.0

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            FixedEfficiencyConverter(48.0, 1.0, 1.0)

    def test_conversion_ratio(self):
        assert pcb_reference_converter().conversion_ratio == pytest.approx(48.0)
