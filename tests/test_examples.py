"""Smoke tests: every example must run to completion.

Examples are the adoption surface; these tests keep them from rotting
as the library evolves.  Each runs in a subprocess exactly as a user
would invoke it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[e.stem for e in EXAMPLES]
)
def test_example_runs(example: pathlib.Path):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-1500:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_example_set():
    names = {e.stem for e in EXAMPLES}
    assert {
        "quickstart",
        "accelerator_1kw_study",
        "architecture_sweep",
        "converter_design_space",
        "transient_droop",
        "power_integrity_signoff",
        "design_optimizer",
        "custom_system",
    } <= names


def test_signoff_example_grants(capsys):
    """The sign-off example must end in GRANTED (its fixes work)."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "power_integrity_signoff.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "SIGN-OFF GRANTED" in result.stdout
