"""Sweep executor, factorization cache, and pickle-payload tests.

Covers the `repro.parallel` engine end to end:

* content-hash fingerprints and the bounded LRU factorization cache,
* the bounded influence-column cache in `FactorizedPDN`,
* pickle round-trips for the compiled payloads that cross process
  boundaries (`CompiledNetlist`, `CompiledACNetlist`, sweep payloads),
* the chunked executor (serial path, pool path, streaming, progress,
  error context, early cancellation),
* the equivalence contract: `jobs=N` results are **bit-identical** to
  `jobs=1` for the rewired variation / redundancy / decap sweeps.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import SystemSpec
from repro.converters.catalog import DSCH
from repro.core.architectures import single_stage_a1
from repro.core.exploration import conversion_location_sweep, decap_density_sweep
from repro.core.redundancy import failure_tolerance, multi_failure_samples
from repro.core.variation import (
    VariationSpec,
    monte_carlo_loss,
    sample_variation_factors,
    spawn_variation_seeds,
)
from repro.errors import ConfigError
from repro.parallel import (
    FactorizationCache,
    Scenario,
    SweepExecutionError,
    SweepPlan,
    compiled_fingerprint,
    process_cache,
    resolve_jobs,
    run_sweep,
    run_sweep_collect,
)
from repro.pdn.grid import GridPDN
from repro.pdn.mna import FactorizedPDN
from repro.pdn.powermap import PowerMap


def _small_grid(nx: int = 6, sheet: float = 1e-3) -> GridPDN:
    grid = GridPDN(
        width_m=0.02, height_m=0.02, sheet_ohm_sq=sheet, nx=nx, ny=nx
    )
    grid.set_sink_array(np.full((nx, nx), 100.0 / nx**2))
    for i, (x, y) in enumerate([(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]):
        grid.add_source(f"vr{i}", x, y, 1.0, 1e-3)
    return grid


# -- fingerprint + factorization cache ------------------------------------------


class TestFingerprint:
    def test_identical_topologies_match(self):
        a = _small_grid().compile()
        b = _small_grid().compile()
        assert compiled_fingerprint(a) == compiled_fingerprint(b)

    def test_structure_changes_fingerprint(self):
        a = _small_grid(sheet=1e-3).compile()
        b = _small_grid(sheet=2e-3).compile()
        assert compiled_fingerprint(a) != compiled_fingerprint(b)

    def test_rhs_values_change_fingerprint(self):
        a = _small_grid().compile()
        b = a.with_sources(vs_volt=a.vs_volt + 0.1)
        assert compiled_fingerprint(a) != compiled_fingerprint(b)

    def test_survives_pickle(self):
        compiled = _small_grid().compile()
        clone = pickle.loads(pickle.dumps(compiled))
        assert compiled_fingerprint(clone) == compiled_fingerprint(compiled)

    def test_extra_salt_changes_fingerprint(self):
        # The transient engine salts the key with its (dt, C_eff)
        # stamp: same topology, different salt -> different entry.
        compiled = _small_grid().compile()
        plain = compiled_fingerprint(compiled)
        salted = compiled_fingerprint(compiled, extra=b"dt=1e-9")
        other = compiled_fingerprint(compiled, extra=b"dt=2e-9")
        assert plain != salted
        assert salted != other

    def test_dtype_distinguishes_identical_bytes(self):
        # An int64 view of float64 data has the *same* byte payload;
        # the fingerprint must still separate them or a factorization
        # built for the wrong numeric interpretation could be reused.
        from types import SimpleNamespace

        compiled = _small_grid().compile()
        fields = (
            "res_a",
            "res_b",
            "res_ohm",
            "cs_from",
            "cs_to",
            "cs_amp",
            "vs_plus",
            "vs_minus",
            "vs_volt",
        )
        stub = SimpleNamespace(
            n_nodes=compiled.n_nodes,
            **{name: getattr(compiled, name) for name in fields},
        )
        assert compiled_fingerprint(stub) == compiled_fingerprint(compiled)
        stub.res_ohm = compiled.res_ohm.view(np.int64)
        assert stub.res_ohm.tobytes() == compiled.res_ohm.tobytes()
        assert compiled_fingerprint(stub) != compiled_fingerprint(compiled)

    def test_full_shape_distinguishes_identical_bytes(self):
        # Same bytes, same shape[0], different trailing dims: a (2,)
        # array vs a (2, 2) array starting with the same two rows.
        from types import SimpleNamespace

        compiled = _small_grid().compile()
        fields = (
            "res_a",
            "res_b",
            "res_ohm",
            "cs_from",
            "cs_to",
            "cs_amp",
            "vs_plus",
            "vs_minus",
            "vs_volt",
        )
        stub = SimpleNamespace(
            n_nodes=compiled.n_nodes,
            **{name: getattr(compiled, name) for name in fields},
        )
        flat = np.arange(4, dtype=float)
        stub.cs_amp = flat
        one = compiled_fingerprint(stub)
        stub.cs_amp = flat.reshape(2, 2)
        assert stub.cs_amp.tobytes() == flat.tobytes()
        assert compiled_fingerprint(stub) != one

    def test_extra_salt_separates_cache_entries(self):
        cache = FactorizationCache(maxsize=4)
        compiled = _small_grid().compile()
        a = cache.get(compiled, extra=b"stamp-a")
        b = cache.get(compiled, extra=b"stamp-b")
        again = cache.get(compiled, extra=b"stamp-a")
        assert a is not b
        assert a is again
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1


class TestFactorizationCache:
    def test_hit_returns_same_instance(self):
        cache = FactorizationCache(maxsize=4)
        compiled = _small_grid().compile()
        first = cache.get(compiled)
        second = cache.get(_small_grid().compile())
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = FactorizationCache(maxsize=2)
        grids = [_small_grid(sheet=s) for s in (1e-3, 2e-3, 3e-3)]
        for grid in grids:
            cache.get(grid.compile())
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest topology was evicted; re-requesting it rebuilds.
        cache.get(grids[0].compile())
        assert cache.stats.misses == 4

    def test_concurrent_miss_returns_single_instance(self, monkeypatch):
        # Two threads racing on the same cold key must converge on one
        # factorization: the loser of the race discards its build and
        # adopts the winner's entry instead of overwriting it.
        import threading

        import repro.parallel.cache as cache_module

        real_factory = cache_module.FactorizedPDN
        barrier = threading.Barrier(2, timeout=10.0)

        class RendezvousFactory:
            def __call__(self, compiled):
                # Both threads reach the expensive build before either
                # inserts, guaranteeing a duplicate-build race.
                barrier.wait()
                return real_factory(compiled)

        monkeypatch.setattr(
            cache_module, "FactorizedPDN", RendezvousFactory()
        )
        cache = FactorizationCache(maxsize=4)
        compiled = _small_grid().compile()
        results = [None, None]

        def worker(slot):
            results[slot] = cache.get(compiled)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert results[0] is not None
        assert results[0] is results[1]
        assert len(cache) == 1
        assert cache.stats.misses == 2
        assert cache.stats.evictions == 0

    def test_solutions_match_direct_factorization(self):
        cache = FactorizationCache()
        grid = _small_grid()
        compiled = grid.compile()
        direct = FactorizedPDN(compiled)
        cached = cache.get(compiled)
        rhs = direct.rhs()
        assert np.array_equal(direct.solve_rhs(rhs), cached.solve_rhs(rhs))

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ConfigError):
            FactorizationCache(maxsize=0)

    def test_grid_structure_uses_process_cache(self):
        process_cache().clear()
        a = _small_grid()
        b = _small_grid()
        sol_a = a.solve()
        sol_b = b.solve()
        assert process_cache().stats.hits >= 1
        assert np.array_equal(sol_a.voltage_map, sol_b.voltage_map)


class TestInfluenceCacheBound:
    def test_eviction_counter_and_bound(self):
        grid = _small_grid(nx=8)
        compiled = grid.compile()
        solver = FactorizedPDN(compiled, influence_cache_columns=4)
        # Sweep resistor removals over more elements than the cap.
        for i in range(12):
            solver.solve_modified(remove_resistors=(i,))
        assert len(solver._influence) <= 4
        assert solver.influence_evictions > 0

    def test_results_unaffected_by_tiny_cache(self):
        compiled = _small_grid(nx=8).compile()
        bounded = FactorizedPDN(compiled, influence_cache_columns=1)
        unbounded = FactorizedPDN(compiled)
        for failed in [(0,), (1,), (0, 2), (3,), (0,)]:
            a = bounded.solve_modified(disable_sources=failed)
            b = unbounded.solve_modified(disable_sources=failed)
            assert np.array_equal(
                np.asarray(list(a.node_voltages.values())),
                np.asarray(list(b.node_voltages.values())),
            )
        assert bounded.influence_evictions > 0

    def test_rejects_zero_cap(self):
        compiled = _small_grid().compile()
        with pytest.raises(Exception):
            FactorizedPDN(compiled, influence_cache_columns=0)


# -- pickle round-trips ----------------------------------------------------------


class TestPicklePayloads:
    def test_compiled_netlist_from_grid(self):
        compiled = _small_grid().compile()
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.n_nodes == compiled.n_nodes
        assert np.array_equal(clone.res_ohm, compiled.res_ohm)
        assert clone.nodes == compiled.nodes
        assert clone.res_names == compiled.res_names
        assert clone.vs_names == compiled.vs_names
        # The clone must be solvable on the other side.
        sol = FactorizedPDN(clone).solve()
        ref = FactorizedPDN(compiled).solve()
        assert np.array_equal(
            np.asarray(list(sol.node_voltages.values())),
            np.asarray(list(ref.node_voltages.values())),
        )

    def test_compiled_ac_netlist(self):
        from repro.pdn.ac import ACNetlist

        net = ACNetlist()
        net.add_voltage_source("vin", "in", "0", 1.0)
        net.add_resistor("r1", "in", "mid", 1e-3)
        net.add_inductor("l1", "mid", "out", 1e-9)
        net.add_capacitor("c1", "out", "0", 1e-6)
        compiled = net.compile_ac()
        clone = pickle.loads(pickle.dumps(compiled))
        freqs = np.logspace(4, 8, 9)
        ref = compiled.solve(freqs)
        got = clone.solve(freqs)
        assert ref.nodes == got.nodes
        assert np.array_equal(ref.voltage_matrix, got.voltage_matrix)

    def test_sweep_plan_payloads_pickle(self):
        spec = SystemSpec()
        sink_cells = PowerMap.hotspot_mixture().cell_currents(
            12, 12, spec.pol_current_a
        )
        payload = (spec, sink_cells, 12)
        clone = pickle.loads(pickle.dumps(payload))
        assert np.array_equal(clone[1], sink_cells)


# -- executor --------------------------------------------------------------------


def _square_chunk(payload, scenarios):
    return [scenario.params**2 + payload for scenario in scenarios]


def _failing_chunk(payload, scenarios):
    for scenario in scenarios:
        if scenario.params == 13:
            raise ValueError("unlucky scenario")
    return [scenario.params for scenario in scenarios]


class TestResolveJobs:
    def test_serial_defaults(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs("3") == 3

    def test_auto_is_positive(self):
        assert resolve_jobs("auto") >= 1

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            resolve_jobs("many")
        with pytest.raises(ConfigError):
            resolve_jobs(0)


class TestSweepPlan:
    def test_chunking_is_jobs_independent(self):
        plan = SweepPlan.from_params(_square_chunk, range(100), payload=0)
        chunks = plan.chunks()
        assert sum(len(c) for c in chunks) == 100
        assert all(len(c) == 32 for c in chunks[:-1])

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigError):
            SweepPlan(scenarios=(), runner=_square_chunk)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            SweepPlan(
                scenarios=(Scenario(0, 0),),
                runner=_square_chunk,
                chunk_size=0,
            )


class TestExecutorSerial:
    def test_results_in_order(self):
        plan = SweepPlan.from_params(
            _square_chunk, range(10), payload=1, chunk_size=3
        )
        results = run_sweep_collect(plan)
        assert results == [i**2 + 1 for i in range(10)]

    def test_streaming_yields_chunks(self):
        plan = SweepPlan.from_params(
            _square_chunk, range(10), payload=0, chunk_size=4
        )
        chunks = list(run_sweep(plan))
        assert [c.index for c in chunks] == [0, 1, 2]
        assert chunks[0].results == (0, 1, 4, 9)

    def test_progress_callback(self):
        plan = SweepPlan.from_params(
            _square_chunk, range(10), payload=0, chunk_size=5
        )
        seen = []
        run_sweep_collect(plan, progress=lambda c, done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_error_carries_scenario_context(self):
        plan = SweepPlan.from_params(
            _failing_chunk, range(20), chunk_size=5, label="unlucky"
        )
        with pytest.raises(SweepExecutionError) as err:
            run_sweep_collect(plan)
        assert "unlucky" in str(err.value)
        assert 13 in err.value.scenario_keys
        assert err.value.chunk_index == 2

    def test_early_stop_skips_remaining_chunks(self):
        evaluated = []

        plan = SweepPlan.from_params(
            _square_chunk, range(100), payload=0, chunk_size=10
        )
        stream = run_sweep(
            plan, progress=lambda c, done, total: evaluated.append(c.index)
        )
        for chunk in stream:
            if chunk.index == 1:
                stream.close()
                break
        assert evaluated == [0, 1]


class TestExecutorPool:
    def test_pool_matches_serial(self):
        plan = SweepPlan.from_params(
            _square_chunk, range(40), payload=7, chunk_size=8
        )
        assert run_sweep_collect(plan, jobs=2) == run_sweep_collect(plan)

    def test_pool_error_carries_worker_traceback(self):
        plan = SweepPlan.from_params(
            _failing_chunk, range(20), chunk_size=5, label="unlucky"
        )
        with pytest.raises(SweepExecutionError) as err:
            run_sweep_collect(plan, jobs=2)
        assert "unlucky scenario" in str(err.value)
        assert err.value.worker_traceback is not None

    def test_auto_jobs_runs(self):
        plan = SweepPlan.from_params(
            _square_chunk, range(8), payload=0, chunk_size=4
        )
        assert run_sweep_collect(plan, jobs="auto") == [
            i**2 for i in range(8)
        ]


# -- RNG sharding ----------------------------------------------------------------


class TestVariationRNG:
    def test_default_matches_seeded_generator(self):
        variation = VariationSpec(seed=99)
        a = sample_variation_factors(variation, 16)
        b = sample_variation_factors(
            variation, 16, rng=np.random.default_rng(99)
        )
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_explicit_generator_advances(self):
        variation = VariationSpec()
        rng = np.random.default_rng(7)
        a = sample_variation_factors(variation, 8, rng=rng)
        b = sample_variation_factors(variation, 8, rng=rng)
        assert not np.array_equal(a[0], b[0])

    def test_seed_sequence_accepted(self):
        variation = VariationSpec(seed=5)
        seeds = spawn_variation_seeds(variation, 4)
        draws = [
            sample_variation_factors(variation, 8, rng=seed) for seed in seeds
        ]
        # Spawned streams are pairwise distinct (non-overlapping).
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i][0], draws[j][0])

    def test_spawn_is_deterministic(self):
        variation = VariationSpec(seed=5)
        a = spawn_variation_seeds(variation, 3)
        b = spawn_variation_seeds(variation, 3)
        for x, y in zip(a, b):
            assert np.array_equal(
                np.random.default_rng(x).normal(size=4),
                np.random.default_rng(y).normal(size=4),
            )

    def test_spawn_rejects_zero(self):
        with pytest.raises(ConfigError):
            spawn_variation_seeds(VariationSpec(), 0)


# -- jobs=1 vs jobs=4 equivalence -------------------------------------------------


class TestParallelEquivalence:
    def test_monte_carlo_bit_identical(self):
        arch = single_stage_a1()
        serial = monte_carlo_loss(arch, DSCH, samples=64, jobs=1)
        parallel = monte_carlo_loss(arch, DSCH, samples=64, jobs=4)
        assert np.array_equal(serial.samples_w, parallel.samples_w)
        assert serial.infeasible_count == parallel.infeasible_count
        assert serial.nominal_loss_w == parallel.nominal_loss_w

    def test_failure_tolerance_bit_identical(self):
        arch = single_stage_a1()
        serial = failure_tolerance(arch, DSCH, jobs=1)
        parallel = failure_tolerance(arch, DSCH, jobs=4, chunk_size=8)
        assert serial == parallel

    def test_multi_failure_bit_identical(self):
        arch = single_stage_a1()
        serial = multi_failure_samples(arch, DSCH, 2, max_scenarios=24)
        parallel = multi_failure_samples(
            arch, DSCH, 2, max_scenarios=24, jobs=4
        )
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.failed_indices == b.failed_indices
            assert np.array_equal(a.survivor_currents_a, b.survivor_currents_a)
            assert a.worst_droop_v == b.worst_droop_v

    def test_decap_density_bit_identical(self):
        kwargs = dict(
            densities=(0.5, 1.0, 2.0),
            grid_nodes=8,
            frequencies_hz=np.logspace(5, 8, 13),
        )
        serial = decap_density_sweep(jobs=1, **kwargs)
        parallel = decap_density_sweep(jobs=4, **kwargs)
        assert serial == parallel

    def test_conversion_location_bit_identical(self):
        assert conversion_location_sweep() == conversion_location_sweep(
            jobs=4
        )

    def test_monte_carlo_early_stop_is_prefix(self):
        arch = single_stage_a1()
        full = monte_carlo_loss(arch, DSCH, samples=96, jobs=1, chunk_size=16)
        stopped = monte_carlo_loss(
            arch,
            DSCH,
            samples=96,
            jobs=1,
            chunk_size=16,
            target_ci_w=1e6,  # absurdly loose: stops after two chunks
        )
        assert len(stopped.samples_w) == 32
        assert np.array_equal(
            stopped.samples_w, full.samples_w[: len(stopped.samples_w)]
        )
