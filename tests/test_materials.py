"""Conductor and semiconductor material model tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.materials import (
    ALUMINUM,
    COPPER,
    GAN_100V,
    SI_POWER_MOSFET,
    SOLDER_SAC305,
    Conductor,
    TransistorTechnology,
    resistivity_at,
)


class TestConductors:
    def test_copper_resistivity(self):
        assert COPPER.resistivity() == pytest.approx(1.68e-8)

    def test_solder_is_much_worse_than_copper(self):
        assert SOLDER_SAC305.resistivity() > 5 * COPPER.resistivity()

    def test_aluminum_between_copper_and_solder(self):
        assert (
            COPPER.resistivity()
            < ALUMINUM.resistivity()
            < SOLDER_SAC305.resistivity()
        )

    def test_temperature_raises_resistivity(self):
        assert COPPER.resistivity(100.0) > COPPER.resistivity(25.0)

    def test_temperature_coefficient_linear(self):
        r25 = COPPER.resistivity(25.0)
        r125 = COPPER.resistivity(125.0)
        assert r125 / r25 == pytest.approx(1.0 + 100 * 3.9e-3)

    def test_resistivity_at_wrapper(self):
        assert resistivity_at(COPPER, 25.0) == COPPER.resistivity(25.0)

    def test_wire_resistance_formula(self):
        # rho * l / A for a 1 m, 1 mm2 copper wire.
        resistance = COPPER.wire_resistance(1.0, 1e-6)
        assert resistance == pytest.approx(1.68e-2)

    def test_wire_resistance_zero_length(self):
        assert COPPER.wire_resistance(0.0, 1e-6) == 0.0

    def test_wire_resistance_rejects_zero_area(self):
        with pytest.raises(ConfigError):
            COPPER.wire_resistance(1.0, 0.0)

    def test_sheet_resistance(self):
        # 35 um copper -> ~0.48 mOhm/sq
        assert COPPER.sheet_resistance(35e-6) == pytest.approx(4.8e-4, rel=0.01)

    def test_sheet_resistance_rejects_zero_thickness(self):
        with pytest.raises(ConfigError):
            COPPER.sheet_resistance(0.0)

    def test_rejects_nonpositive_resistivity(self):
        with pytest.raises(ConfigError):
            Conductor("bogus", 0.0, 0.0)

    def test_extreme_cold_out_of_model_range(self):
        with pytest.raises(ConfigError):
            COPPER.resistivity(-300.0)


class TestTransistorTechnologies:
    def test_gan_fom_better_than_si(self):
        assert GAN_100V.figure_of_merit < SI_POWER_MOSFET.figure_of_merit

    def test_fom_units(self):
        assert SI_POWER_MOSFET.figure_of_merit == pytest.approx(
            SI_POWER_MOSFET.r_on_ohm * SI_POWER_MOSFET.gate_charge_c
        )

    def test_scaling_preserves_fom(self):
        scaled = GAN_100V.scaled(1e-3)
        assert scaled.figure_of_merit == pytest.approx(
            GAN_100V.figure_of_merit
        )

    def test_scaling_sets_target_ron(self):
        scaled = GAN_100V.scaled(2e-3)
        assert scaled.r_on_ohm == pytest.approx(2e-3)

    def test_scaling_raises_charge_for_lower_ron(self):
        scaled = GAN_100V.scaled(GAN_100V.r_on_ohm / 4)
        assert scaled.gate_charge_c == pytest.approx(
            4 * GAN_100V.gate_charge_c
        )

    def test_device_area_scales_inverse_with_ron(self):
        area_hi = GAN_100V.device_area_mm2(10e-3)
        area_lo = GAN_100V.device_area_mm2(1e-3)
        assert area_lo == pytest.approx(10 * area_hi)

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigError):
            GAN_100V.scaled(0.0)

    def test_area_rejects_zero(self):
        with pytest.raises(ConfigError):
            GAN_100V.device_area_mm2(0.0)

    def test_material_validation(self):
        with pytest.raises(ConfigError):
            TransistorTechnology(
                name="x",
                material="SiC",
                voltage_rating_v=100,
                r_on_ohm=1e-3,
                gate_charge_c=1e-9,
                output_charge_c=1e-9,
                gate_drive_v=5,
                specific_r_on_ohm_mm2=1e-3,
            )

    def test_positive_field_validation(self):
        with pytest.raises(ConfigError):
            TransistorTechnology(
                name="x",
                material="Si",
                voltage_rating_v=100,
                r_on_ohm=-1e-3,
                gate_charge_c=1e-9,
                output_charge_c=1e-9,
                gate_drive_v=5,
                specific_r_on_ohm_mm2=1e-3,
            )
