"""Converter catalog (Table II) tests."""

from __future__ import annotations

import pytest

from repro.converters.catalog import (
    CATALOG,
    DPMIH,
    DSCH,
    THREE_LEVEL_HYBRID_DICKSON,
    StageModelMode,
    converter,
    table_ii_rows,
)
from repro.errors import ConfigError, InfeasibleError


class TestTableIIData:
    """Direct Table II values must match the paper."""

    def test_three_converters(self):
        assert len(CATALOG) == 3

    def test_names_in_paper_order(self):
        assert [c.name for c in CATALOG] == ["DPMIH", "DSCH", "3LHD"]

    def test_conversion_schemes(self):
        assert all(c.conversion_scheme == "48V-to-1V" for c in CATALOG)

    def test_max_loads(self):
        assert DPMIH.max_load_a == 100.0
        assert DSCH.max_load_a == 30.0
        assert THREE_LEVEL_HYBRID_DICKSON.max_load_a == 12.0

    def test_currents_at_peak(self):
        assert DPMIH.i_at_peak_a == 30.0
        assert DSCH.i_at_peak_a == 10.0
        assert THREE_LEVEL_HYBRID_DICKSON.i_at_peak_a == 3.0

    def test_peak_efficiencies(self):
        assert DPMIH.peak_efficiency == pytest.approx(0.909)
        assert DSCH.peak_efficiency == pytest.approx(0.915)
        assert THREE_LEVEL_HYBRID_DICKSON.peak_efficiency == pytest.approx(
            0.904
        )

    def test_switch_counts(self):
        assert DPMIH.switch_count == 8
        assert DSCH.switch_count == 5
        assert THREE_LEVEL_HYBRID_DICKSON.switch_count == 11

    def test_switch_densities(self):
        assert DPMIH.switches_per_mm2 == pytest.approx(0.15)
        assert DSCH.switches_per_mm2 == pytest.approx(0.69)
        assert THREE_LEVEL_HYBRID_DICKSON.switches_per_mm2 == pytest.approx(
            1.22
        )

    def test_inductors(self):
        assert DPMIH.inductor_count == 4
        assert DSCH.inductor_count == 2
        assert THREE_LEVEL_HYBRID_DICKSON.inductor_count == 3

    def test_total_inductances(self):
        assert DPMIH.total_inductance_h == pytest.approx(4e-6)
        assert DSCH.total_inductance_h == pytest.approx(0.88e-6)
        assert THREE_LEVEL_HYBRID_DICKSON.total_inductance_h == pytest.approx(
            1.86e-6
        )

    def test_capacitors(self):
        assert DPMIH.capacitor_count == 3
        assert DSCH.capacitor_count == 2
        assert THREE_LEVEL_HYBRID_DICKSON.capacitor_count == 5

    def test_total_capacitances(self):
        assert DPMIH.total_capacitance_f == pytest.approx(15e-6)
        assert DSCH.total_capacitance_f == pytest.approx(6.6e-6)
        assert THREE_LEVEL_HYBRID_DICKSON.total_capacitance_f == (
            pytest.approx(5e-6)
        )

    def test_vr_counts(self):
        assert (DPMIH.vrs_along_periphery, DPMIH.vrs_below_die) == (8, 7)
        assert (DSCH.vrs_along_periphery, DSCH.vrs_below_die) == (48, 48)
        assert (
            THREE_LEVEL_HYBRID_DICKSON.vrs_along_periphery,
            THREE_LEVEL_HYBRID_DICKSON.vrs_below_die,
        ) == (48, 48)

    def test_rows_export_complete(self):
        rows = table_ii_rows()
        assert len(rows) == 3
        assert {r["name"] for r in rows} == {"DPMIH", "DSCH", "3LHD"}
        assert rows[0]["total_inductance_uH"] == pytest.approx(4.0)


class TestDerived:
    def test_areas(self):
        assert DPMIH.area_mm2 == pytest.approx(53.33, rel=0.01)
        assert DSCH.area_mm2 == pytest.approx(7.25, rel=0.01)
        assert THREE_LEVEL_HYBRID_DICKSON.area_mm2 == pytest.approx(
            9.02, rel=0.01
        )

    def test_per_component_values(self):
        assert DPMIH.inductance_per_inductor_h == pytest.approx(1e-6)
        assert DSCH.capacitance_per_capacitor_f == pytest.approx(3.3e-6)

    def test_loss_models_calibrated(self):
        assert DPMIH.loss_model.efficiency(30.0) == pytest.approx(0.909)
        assert DSCH.loss_model.efficiency(10.0) == pytest.approx(0.915)
        assert THREE_LEVEL_HYBRID_DICKSON.loss_model.efficiency(
            3.0
        ) == pytest.approx(0.904)


class TestFeasibility:
    def test_dsch_feasible_at_21a(self):
        assert DSCH.is_feasible_load(20.8)

    def test_3lhd_infeasible_at_21a(self):
        # The paper's stated exclusion: 1000 A / 48 VRs ~ 20.8 A > 12 A.
        assert not THREE_LEVEL_HYBRID_DICKSON.is_feasible_load(20.8)

    def test_require_feasible_raises(self):
        with pytest.raises(InfeasibleError):
            THREE_LEVEL_HYBRID_DICKSON.require_feasible(20.8)

    def test_require_feasible_passes(self):
        DSCH.require_feasible(20.8)  # should not raise


class TestStageModels:
    def test_as_published_preserves_eta(self):
        stage = DPMIH.stage_loss_model(48.0, 12.0, StageModelMode.AS_PUBLISHED)
        assert stage.efficiency(30.0) == pytest.approx(0.909, abs=1e-9)

    def test_as_published_scales_watts(self):
        stage = DPMIH.stage_loss_model(48.0, 12.0, StageModelMode.AS_PUBLISHED)
        assert stage.loss_w(30.0) == pytest.approx(
            12 * DPMIH.loss_model.loss_w(30.0)
        )

    def test_ratio_scaled_better_at_lower_vin(self):
        published = DPMIH.stage_loss_model(
            48.0, 12.0, StageModelMode.AS_PUBLISHED
        )
        scaled = DPMIH.stage_loss_model(
            12.0, 1.0, StageModelMode.RATIO_SCALED
        )
        # Ratio-scaled 12->1 beats published 48->1 eta at the same I.
        assert scaled.efficiency(30.0) > DPMIH.loss_model.efficiency(30.0)
        assert published.efficiency(30.0) == pytest.approx(
            DPMIH.loss_model.efficiency(30.0)
        )

    def test_stage_must_step_down(self):
        with pytest.raises(ConfigError):
            DPMIH.stage_loss_model(12.0, 12.0)


class TestLookup:
    def test_converter_by_name(self):
        assert converter("dsch") is DSCH
        assert converter("3lhd") is THREE_LEVEL_HYBRID_DICKSON

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            converter("LLC")
