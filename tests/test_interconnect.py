"""Vertical interconnect (Table I) tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, InfeasibleError
from repro.pdn.interconnect import (
    ADVANCED_CU_PAD,
    BGA,
    C4_BUMP,
    MICRO_BUMP,
    TABLE_I,
    TSV,
    find_technology,
    table_i_rows,
)
from repro.units import um, um2


class TestTableIData:
    """Direct Table I values must match the paper."""

    def test_five_technologies(self):
        assert len(TABLE_I) == 5

    def test_bga_geometry(self):
        assert BGA.diameter_m == pytest.approx(um(400))
        assert BGA.cross_area_m2 == pytest.approx(um2(125664))
        assert BGA.height_m == pytest.approx(um(300))
        assert BGA.pitch_m == pytest.approx(um(800))

    def test_c4_geometry(self):
        assert C4_BUMP.diameter_m == pytest.approx(um(100))
        assert C4_BUMP.cross_area_m2 == pytest.approx(um2(7854))
        assert C4_BUMP.height_m == pytest.approx(um(70))
        assert C4_BUMP.pitch_m == pytest.approx(um(200))

    def test_tsv_geometry(self):
        assert TSV.diameter_m == pytest.approx(um(5))
        assert TSV.cross_area_m2 == pytest.approx(um2(20))
        assert TSV.height_m == pytest.approx(um(50))
        assert TSV.pitch_m == pytest.approx(um(10))

    def test_micro_bump_geometry(self):
        assert MICRO_BUMP.diameter_m == pytest.approx(um(30))
        assert MICRO_BUMP.cross_area_m2 == pytest.approx(um2(707))
        assert MICRO_BUMP.height_m == pytest.approx(um(25))
        assert MICRO_BUMP.pitch_m == pytest.approx(um(60))

    def test_cu_pad_geometry(self):
        assert ADVANCED_CU_PAD.cross_area_m2 == pytest.approx(um2(100))
        assert ADVANCED_CU_PAD.height_m == pytest.approx(um(10))
        assert ADVANCED_CU_PAD.pitch_m == pytest.approx(um(20))

    def test_platform_areas(self):
        assert BGA.platform_area_m2 == pytest.approx(1800e-6)
        assert C4_BUMP.platform_area_m2 == pytest.approx(1200e-6)
        assert TSV.platform_area_m2 == pytest.approx(1200e-6)
        assert MICRO_BUMP.platform_area_m2 == pytest.approx(500e-6)
        assert ADVANCED_CU_PAD.platform_area_m2 == pytest.approx(500e-6)

    def test_materials(self):
        assert BGA.material.name == "SAC305"
        assert C4_BUMP.material.name == "SAC305"
        assert MICRO_BUMP.material.name == "SAC305"
        assert TSV.material.name == "Cu"
        assert ADVANCED_CU_PAD.material.name == "Cu"

    def test_rows_export(self):
        rows = table_i_rows()
        assert len(rows) == 5
        assert rows[0]["type"] == "BGA"
        assert rows[0]["pitch_um"] == pytest.approx(800)

    def test_find_technology(self):
        assert find_technology("bga") is BGA
        assert find_technology("TSV") is TSV

    def test_find_unknown_raises(self):
        with pytest.raises(ConfigError):
            find_technology("wirebond")


class TestDerivedElectrical:
    def test_bga_element_resistance(self):
        # rho_solder * h / A = 1.32e-7 * 300e-6 / 1.25664e-7 ~ 0.315 mOhm
        assert BGA.element_resistance_ohm == pytest.approx(3.15e-4, rel=0.01)

    def test_c4_element_resistance(self):
        assert C4_BUMP.element_resistance_ohm == pytest.approx(
            1.18e-3, rel=0.01
        )

    def test_tsv_element_resistance(self):
        # Copper TSV: 1.68e-8 * 50e-6 / 20e-12 = 42 mOhm
        assert TSV.element_resistance_ohm == pytest.approx(0.042, rel=0.01)

    def test_micro_bump_element_resistance(self):
        assert MICRO_BUMP.element_resistance_ohm == pytest.approx(
            4.67e-3, rel=0.01
        )

    def test_cu_pad_element_resistance(self):
        assert ADVANCED_CU_PAD.element_resistance_ohm == pytest.approx(
            1.68e-3, rel=0.01
        )

    def test_bga_site_count(self):
        # 1800 mm2 at 800 um pitch -> 2812 sites.
        assert BGA.sites_total == 2812

    def test_c4_site_count(self):
        assert C4_BUMP.sites_total == 30000

    def test_micro_bump_site_count(self):
        assert MICRO_BUMP.sites_total == 138888

    def test_tsv_power_sites_restricted(self):
        # TSVs live in dedicated islands: far fewer than geometric sites.
        assert TSV.power_sites < TSV.sites_total / 100

    def test_sites_on_area_scales(self):
        half = MICRO_BUMP.sites_on_area(250e-6)
        full = MICRO_BUMP.sites_on_area(500e-6)
        assert full == pytest.approx(2 * half, rel=0.01)

    def test_sites_on_area_rejects_zero(self):
        with pytest.raises(ConfigError):
            MICRO_BUMP.sites_on_area(0.0)


class TestArrays:
    def test_parallel_resistance(self):
        array = BGA.array(10)
        assert array.resistance_one_polarity_ohm == pytest.approx(
            BGA.element_resistance_ohm / 10
        )

    def test_rail_pair_doubles(self):
        array = BGA.array(10)
        assert array.resistance_rail_pair_ohm == pytest.approx(
            2 * array.resistance_one_polarity_ohm
        )

    def test_loss_quadratic_in_current(self):
        array = C4_BUMP.array(100)
        assert array.loss_w(20.0) == pytest.approx(4 * array.loss_w(10.0))

    def test_loss_zero_current(self):
        assert BGA.array(5).loss_w(0.0) == 0.0

    def test_loss_rejects_negative(self):
        with pytest.raises(ConfigError):
            BGA.array(5).loss_w(-1.0)

    def test_current_per_element(self):
        array = BGA.array(20)
        assert array.current_per_element_a(30.0) == pytest.approx(1.5)

    def test_within_rating(self):
        array = BGA.array(20)
        assert array.is_within_rating(30.0)  # 1.5 A each, at the rating
        assert not array.is_within_rating(40.0)

    def test_utilization_counts_both_polarities(self):
        array = BGA.array(14)
        assert array.utilization == pytest.approx(28 / BGA.power_sites)

    def test_rejects_empty_array(self):
        with pytest.raises(ConfigError):
            BGA.array(0)


class TestArrayForCurrent:
    def test_sizes_by_rating(self):
        array = BGA.array_for_current(21.0)
        assert array.count_per_polarity == 14  # ceil(21 / 1.5)

    def test_respects_utilization_cap(self):
        with pytest.raises(InfeasibleError):
            # 60% of BGA sites can carry ~1.26 kA; 2 kA must fail.
            BGA.array_for_current(2000.0, utilization_cap=0.60)

    def test_max_current_at_cap(self):
        # 60% cap: int(2812/2 * 0.6) = 843 sites -> 1264.5 A
        assert BGA.max_current_a(0.60) == pytest.approx(843 * 1.5)

    def test_c4_platform_feeds_1ka_at_85pct(self):
        # The paper's 85% C4 cap must just cover the 1 kA reference.
        assert C4_BUMP.max_current_a(0.85) >= 1000.0

    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigError):
            BGA.array_for_current(10.0, utilization_cap=1.5)

    def test_rejects_zero_current(self):
        with pytest.raises(ConfigError):
            BGA.array_for_current(0.0)


class TestRatings:
    """The derated ratings behind the utilization reproduction."""

    def test_bga_rating(self):
        assert BGA.rated_current_a == pytest.approx(1.5)

    def test_c4_rating(self):
        assert C4_BUMP.rated_current_a == pytest.approx(0.080)

    def test_micro_bump_rating_forces_1200mm2(self):
        # 1 kA needs ceil(1000/0.006)=166667 bumps/polarity; at 60 um
        # pitch that is ~1200 mm2 of die - the paper's A0 die size.
        per_polarity = 1000.0 / MICRO_BUMP.rated_current_a
        area_mm2 = 2 * per_polarity * (60e-6) ** 2 / 1e-6
        assert area_mm2 == pytest.approx(1200.0, rel=0.01)

    def test_cu_pad_rating_keeps_util_under_20pct(self):
        per_polarity = 1000.0 / ADVANCED_CU_PAD.rated_current_a
        utilization = 2 * per_polarity / ADVANCED_CU_PAD.sites_total
        assert utilization < 0.20
