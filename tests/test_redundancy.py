"""VR fault-injection / redundancy tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemSpec
from repro.converters.catalog import DPMIH, DSCH
from repro.core.architectures import (
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.redundancy import (
    failure_tolerance,
    inject_failures,
    multi_failure_samples,
)
from repro.errors import ConfigError
from repro.pdn.powermap import PowerMap


class TestInjectFailures:
    def test_survivor_count(self):
        result = inject_failures(single_stage_a1(), DSCH, (0, 1))
        assert len(result.survivor_currents_a) == 46

    def test_survivors_carry_full_load(self):
        result = inject_failures(single_stage_a1(), DSCH, (3,))
        assert result.survivor_currents_a.sum() == pytest.approx(
            1000.0, rel=1e-6
        )

    def test_no_failure_baseline(self):
        result = inject_failures(single_stage_a1(), DSCH, ())
        assert len(result.survivor_currents_a) == 48
        assert result.survives

    def test_failure_raises_neighbour_load(self):
        baseline = inject_failures(single_stage_a1(), DSCH, ())
        failed = inject_failures(single_stage_a1(), DSCH, (0,))
        assert failed.survivor_currents_a.max() >= (
            baseline.survivor_currents_a.max()
        )

    def test_a2_hotspot_failure_overloads(self):
        """Killing the VR on the hotspot pushes its neighbours (already
        near the 30 A rating) over the edge."""
        sharing = inject_failures(single_stage_a2(), DSCH, ())
        hotspot_vr = int(np.argmax(sharing.survivor_currents_a))
        result = inject_failures(single_stage_a2(), DSCH, (hotspot_vr,))
        assert result.overloaded_count > 0
        assert not result.survives

    def test_validation(self):
        with pytest.raises(ConfigError):
            inject_failures(reference_a0(), DSCH, (0,))
        with pytest.raises(ConfigError):
            inject_failures(single_stage_a1(), DSCH, (99,))
        with pytest.raises(ConfigError):
            inject_failures(single_stage_a1(), DSCH, tuple(range(48)))


class TestFailureTolerance:
    def test_a1_uniform_map_tolerates_single_failures(self):
        """With a uniform die and ~21 A per VR, losing any one of 48
        units leaves ample margin to the 30 A rating."""
        report = failure_tolerance(
            single_stage_a1(),
            DSCH,
            power_map=PowerMap.uniform(),
            sample_limit=12,
        )
        assert report.tolerates_any_single_failure
        assert report.worst_single_overload_fraction < 1.0

    def test_a2_hotspot_map_does_not_tolerate(self):
        """The hotspot already drives center VRs past the 30 A rating
        even before a failure - N-1 cannot hold."""
        report = failure_tolerance(
            single_stage_a2(), DSCH, sample_limit=8
        )
        assert not report.tolerates_any_single_failure

    def test_worst_index_identified(self):
        report = failure_tolerance(
            single_stage_a1(),
            DSCH,
            power_map=PowerMap.uniform(),
            sample_limit=8,
        )
        assert 0 <= report.worst_single_failure_index < 48

    def test_dpmih_margin(self):
        """12 DPMIH VRs at ~84 A of a 100 A rating: a single failure
        pushes survivors close to (or beyond) the rating under the
        hotspot map - the analysis quantifies exactly how close."""
        report = failure_tolerance(
            single_stage_a2(), DPMIH, sample_limit=6
        )
        assert report.worst_single_overload_fraction > 0.9

    def test_sample_limit_validation(self):
        with pytest.raises(ConfigError):
            failure_tolerance(single_stage_a1(), DSCH, sample_limit=0)


class TestMultiFailure:
    def test_scenario_count(self):
        results = multi_failure_samples(
            single_stage_a1(), DSCH, failure_count=2, max_scenarios=5
        )
        assert len(results) == 5
        assert all(len(r.failed_indices) == 2 for r in results)

    def test_more_failures_more_stress(self):
        single = multi_failure_samples(
            single_stage_a1(), DSCH, 1, max_scenarios=3
        )
        triple = multi_failure_samples(
            single_stage_a1(), DSCH, 3, max_scenarios=3
        )
        worst_single = max(r.worst_overload_fraction for r in single)
        worst_triple = max(r.worst_overload_fraction for r in triple)
        assert worst_triple >= worst_single

    def test_validation(self):
        with pytest.raises(ConfigError):
            multi_failure_samples(single_stage_a1(), DSCH, 0)


class TestSmallSystem:
    def test_smaller_system_has_headroom(self):
        """At 600 W the same 48-VR bank runs at ~13 A each: N-1 passes
        even with the hotspot map."""
        spec = SystemSpec().with_power(600.0)
        report = failure_tolerance(
            single_stage_a1(), DSCH, spec=spec, sample_limit=8
        )
        assert report.tolerates_any_single_failure

class TestWoodburySweepParity:
    def test_scenario_matches_refactorized_oracle(self):
        """The sweep's Woodbury scenarios equal full refactorized
        solves of the same failure model (<= 1e-9 relative)."""
        from repro.core.redundancy import (
            DEFAULT_GRID_NODES,
            _attach_bank,
            _base_grid,
        )
        from repro.core.current_sharing import (
            DEFAULT_OUTPUT_RESISTANCE_OHM,
        )
        from repro.placement.planner import plan_placement

        spec = SystemSpec()
        power_map = PowerMap.hotspot_mixture()
        arch = single_stage_a1()
        plan = plan_placement(
            DSCH,
            arch.pol_stage_style,
            spec.pol_current_a,
            spec.die_area_mm2,
        )
        grid = _base_grid(spec, power_map, DEFAULT_GRID_NODES)
        _attach_bank(grid, plan, spec, DEFAULT_OUTPUT_RESISTANCE_OHM)
        for failed in [(0,), (7,), (3, 19)]:
            fast = grid.solve_disabled(failed, method="woodbury")
            oracle = grid.solve_disabled(failed, method="refactor")
            scale = float(np.abs(oracle.voltage_map).max())
            assert np.abs(
                fast.voltage_map - oracle.voltage_map
            ).max() <= 1e-9 * scale
            assert fast.source_currents_a == pytest.approx(
                oracle.source_currents_a, rel=1e-9, abs=1e-9
            )

    def test_sweep_reuses_one_factorization(self):
        """failure_tolerance must factorize at most once per topology.

        The process-wide content-hashed cache (repro.parallel.cache)
        shares factorizations across grid rebuilds, so a sweep costs
        one LU on a cold cache and zero on a warm one.
        """
        from unittest.mock import patch

        from repro.parallel import process_cache
        from repro.pdn.mna import FactorizedPDN

        original = FactorizedPDN.__init__
        calls = {"count": 0}

        def counting_init(self, netlist):
            calls["count"] += 1
            original(self, netlist)

        process_cache().clear()
        with patch.object(FactorizedPDN, "__init__", counting_init):
            failure_tolerance(
                single_stage_a1(),
                DSCH,
                power_map=PowerMap.uniform(),
                sample_limit=6,
            )
        assert calls["count"] == 1
