"""Die IR-drop analysis tests."""

from __future__ import annotations

import pytest

from repro.converters.catalog import DPMIH, DSCH
from repro.core.architectures import (
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.ir_drop import analyze_ir_drop, compare_architectures
from repro.errors import ConfigError
from repro.pdn.powermap import PowerMap


@pytest.fixture(scope="module")
def a1_report():
    return analyze_ir_drop(single_stage_a1(), DSCH)


@pytest.fixture(scope="module")
def a2_report():
    return analyze_ir_drop(single_stage_a2(), DSCH)


class TestBasics:
    def test_min_below_mean(self, a1_report):
        assert a1_report.min_voltage_v < a1_report.mean_voltage_v

    def test_droop_positive(self, a1_report):
        assert a1_report.worst_droop_v >= 0.0

    def test_voltage_map_shape(self, a1_report):
        assert a1_report.voltage_map.shape == (28, 28)

    def test_droop_fraction(self, a1_report):
        assert a1_report.droop_fraction == pytest.approx(
            a1_report.worst_droop_v / 1.0
        )

    def test_worst_node_in_die(self, a1_report):
        x, y = a1_report.worst_node
        assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0


class TestArchitectureComparison:
    def test_a2_beats_a1_on_worst_droop(self, a1_report, a2_report):
        """Distributed under-die VRs sit next to the hotspot; the
        periphery ring must push the hotspot current across half the
        die.  A2 therefore wins on worst-case droop."""
        assert a2_report.worst_droop_v < a1_report.worst_droop_v

    def test_a1_worst_node_near_center(self, a1_report):
        # Periphery feeding: the die center droops the most.
        x, y = a1_report.worst_node
        assert abs(x - 0.5) < 0.25 and abs(y - 0.5) < 0.25

    def test_compare_helper_order(self):
        reports = compare_architectures(
            [single_stage_a1(), single_stage_a2()], DSCH
        )
        assert [r.architecture for r in reports] == ["A1", "A2"]

    def test_dpmih_a2_works_too(self):
        report = analyze_ir_drop(single_stage_a2(), DPMIH)
        assert report.worst_droop_v >= 0.0


class TestBudget:
    def test_a2_meets_5pct_budget(self, a2_report):
        assert a2_report.within_budget

    def test_tight_budget_fails(self):
        report = analyze_ir_drop(
            single_stage_a1(), DSCH, droop_budget_fraction=0.005
        )
        assert not report.within_budget

    def test_budget_value(self, a1_report):
        assert a1_report.droop_budget_v == pytest.approx(0.05)


class TestMapSensitivity:
    def test_uniform_map_less_droop(self):
        hotspot = analyze_ir_drop(single_stage_a1(), DSCH)
        uniform = analyze_ir_drop(
            single_stage_a1(), DSCH, power_map=PowerMap.uniform()
        )
        assert uniform.worst_droop_v < hotspot.worst_droop_v

    def test_finer_grid_consistent(self):
        coarse = analyze_ir_drop(single_stage_a1(), DSCH, grid_nodes=20)
        fine = analyze_ir_drop(single_stage_a1(), DSCH, grid_nodes=36)
        assert fine.worst_droop_v == pytest.approx(
            coarse.worst_droop_v, rel=0.3
        )


class TestValidation:
    def test_a0_rejected(self):
        with pytest.raises(ConfigError):
            analyze_ir_drop(reference_a0(), DSCH)

    def test_budget_range(self):
        with pytest.raises(ConfigError):
            analyze_ir_drop(
                single_stage_a1(), DSCH, droop_budget_fraction=0.6
            )

    def test_empty_comparison_rejected(self):
        with pytest.raises(ConfigError):
            compare_architectures([], DSCH)
