"""Die IR-drop analysis tests."""

from __future__ import annotations

import pytest

from repro.converters.catalog import DPMIH, DSCH
from repro.core.architectures import (
    reference_a0,
    single_stage_a1,
    single_stage_a2,
)
from repro.core.ir_drop import analyze_ir_drop, compare_architectures
from repro.errors import ConfigError
from repro.pdn.powermap import PowerMap


@pytest.fixture(scope="module")
def a1_report():
    return analyze_ir_drop(single_stage_a1(), DSCH)


@pytest.fixture(scope="module")
def a2_report():
    return analyze_ir_drop(single_stage_a2(), DSCH)


class TestBasics:
    def test_min_below_mean(self, a1_report):
        assert a1_report.min_voltage_v < a1_report.mean_voltage_v

    def test_droop_positive(self, a1_report):
        assert a1_report.worst_droop_v >= 0.0

    def test_voltage_map_shape(self, a1_report):
        assert a1_report.voltage_map.shape == (28, 28)

    def test_droop_fraction(self, a1_report):
        assert a1_report.droop_fraction == pytest.approx(
            a1_report.worst_droop_v / 1.0
        )

    def test_worst_node_in_die(self, a1_report):
        x, y = a1_report.worst_node
        assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0


class TestArchitectureComparison:
    def test_a2_beats_a1_on_worst_droop(self, a1_report, a2_report):
        """Distributed under-die VRs sit next to the hotspot; the
        periphery ring must push the hotspot current across half the
        die.  A2 therefore wins on worst-case droop."""
        assert a2_report.worst_droop_v < a1_report.worst_droop_v

    def test_a1_worst_node_near_center(self, a1_report):
        # Periphery feeding: the die center droops the most.
        x, y = a1_report.worst_node
        assert abs(x - 0.5) < 0.25 and abs(y - 0.5) < 0.25

    def test_compare_helper_order(self):
        reports = compare_architectures(
            [single_stage_a1(), single_stage_a2()], DSCH
        )
        assert [r.architecture for r in reports] == ["A1", "A2"]

    def test_dpmih_a2_works_too(self):
        report = analyze_ir_drop(single_stage_a2(), DPMIH)
        assert report.worst_droop_v >= 0.0


class TestBudget:
    def test_a2_meets_5pct_budget(self, a2_report):
        assert a2_report.within_budget

    def test_tight_budget_fails(self):
        report = analyze_ir_drop(
            single_stage_a1(), DSCH, droop_budget_fraction=0.005
        )
        assert not report.within_budget

    def test_budget_value(self, a1_report):
        assert a1_report.droop_budget_v == pytest.approx(0.05)


class TestMapSensitivity:
    def test_uniform_map_less_droop(self):
        hotspot = analyze_ir_drop(single_stage_a1(), DSCH)
        uniform = analyze_ir_drop(
            single_stage_a1(), DSCH, power_map=PowerMap.uniform()
        )
        assert uniform.worst_droop_v < hotspot.worst_droop_v

    def test_finer_grid_consistent(self):
        coarse = analyze_ir_drop(single_stage_a1(), DSCH, grid_nodes=20)
        fine = analyze_ir_drop(single_stage_a1(), DSCH, grid_nodes=36)
        assert fine.worst_droop_v == pytest.approx(
            coarse.worst_droop_v, rel=0.3
        )


class TestValidation:
    def test_a0_rejected(self):
        with pytest.raises(ConfigError):
            analyze_ir_drop(reference_a0(), DSCH)

    def test_budget_range(self):
        with pytest.raises(ConfigError):
            analyze_ir_drop(
                single_stage_a1(), DSCH, droop_budget_fraction=0.6
            )

    def test_empty_comparison_rejected(self):
        with pytest.raises(ConfigError):
            compare_architectures([], DSCH)


class TestImpedanceMap:
    """Grid-level AC impedance maps on the same die grid."""

    @pytest.fixture(scope="class")
    def a2_impedance(self):
        import numpy as np

        from repro.core.ir_drop import analyze_impedance_map

        return analyze_impedance_map(
            single_stage_a2(),
            DSCH,
            grid_nodes=10,
            frequencies_hz=np.logspace(4, 9, 61),
        )

    def test_report_shape(self, a2_impedance):
        report = a2_impedance
        assert report.architecture == "A2"
        assert report.peak_impedance_ohm > 0
        assert 1e4 <= report.peak_frequency_hz <= 1e9
        x, y = report.worst_node
        assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0
        assert report.impedance.impedance_ohm.shape == (100, 61)

    def test_margin_is_target_over_peak(self, a2_impedance):
        assert a2_impedance.margin == pytest.approx(
            a2_impedance.target_ohm / a2_impedance.peak_impedance_ohm
        )

    def test_target_follows_standard_rule(self, a2_impedance):
        from repro.config import SystemSpec
        from repro.pdn.impedance import target_impedance_ohm

        spec = SystemSpec()
        assert a2_impedance.target_ohm == pytest.approx(
            target_impedance_ohm(
                spec.pol_voltage_v, 0.05, 0.5 * spec.pol_current_a
            )
        )

    def test_meets_target_consistent_with_map(self, a2_impedance):
        assert a2_impedance.meets_target == a2_impedance.impedance.meets_target(
            a2_impedance.target_ohm
        )

    def test_more_decap_lowers_peak(self):
        import numpy as np

        from repro.core.ir_drop import analyze_impedance_map

        freqs = np.logspace(4, 9, 41)
        sparse = analyze_impedance_map(
            single_stage_a2(),
            DSCH,
            grid_nodes=8,
            decap_density=0.25,
            frequencies_hz=freqs,
        )
        dense = analyze_impedance_map(
            single_stage_a2(),
            DSCH,
            grid_nodes=8,
            decap_density=8.0,
            frequencies_hz=freqs,
        )
        assert dense.peak_impedance_ohm < sparse.peak_impedance_ohm

    def test_rejects_non_vertical(self):
        from repro.core.ir_drop import analyze_impedance_map

        with pytest.raises(ConfigError):
            analyze_impedance_map(reference_a0(), DSCH)

    def test_rejects_bad_transient_fraction(self):
        from repro.core.ir_drop import analyze_impedance_map

        with pytest.raises(ConfigError):
            analyze_impedance_map(
                single_stage_a2(), DSCH, transient_fraction=0.0
            )

    def test_rejects_bad_density(self):
        from repro.core.ir_drop import analyze_impedance_map

        with pytest.raises(ConfigError):
            analyze_impedance_map(
                single_stage_a2(), DSCH, decap_density=-1.0
            )
