"""Monte-Carlo variation analysis tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converters.catalog import DSCH, THREE_LEVEL_HYBRID_DICKSON
from repro.core.architectures import single_stage_a1, single_stage_a2
from repro.core.variation import (
    VariationSpec,
    monte_carlo_loss,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def a1_variation():
    return monte_carlo_loss(single_stage_a1(), DSCH, samples=150)


class TestDistribution:
    def test_sample_count(self, a1_variation):
        assert len(a1_variation.samples_w) + a1_variation.infeasible_count == (
            150
        )

    def test_mean_near_nominal(self, a1_variation):
        assert a1_variation.mean_loss_w == pytest.approx(
            a1_variation.nominal_loss_w, rel=0.10
        )

    def test_spread_positive(self, a1_variation):
        assert a1_variation.std_loss_w > 0.0

    def test_percentiles_ordered(self, a1_variation):
        p5 = a1_variation.percentile_w(5)
        p50 = a1_variation.percentile_w(50)
        p95 = a1_variation.percentile_w(95)
        assert p5 < p50 < p95

    def test_p95_above_nominal(self, a1_variation):
        # The pessimistic corner must cost more than nominal.
        assert a1_variation.percentile_w(95) > a1_variation.nominal_loss_w


class TestDeterminism:
    def test_same_seed_same_samples(self):
        first = monte_carlo_loss(single_stage_a1(), DSCH, samples=50)
        second = monte_carlo_loss(single_stage_a1(), DSCH, samples=50)
        assert np.array_equal(first.samples_w, second.samples_w)

    def test_different_seed_differs(self):
        base = monte_carlo_loss(single_stage_a1(), DSCH, samples=50)
        other = monte_carlo_loss(
            single_stage_a1(),
            DSCH,
            samples=50,
            variation=VariationSpec(seed=7),
        )
        assert not np.array_equal(base.samples_w, other.samples_w)


class TestYield:
    def test_generous_floor_full_yield(self, a1_variation):
        assert a1_variation.yield_at_efficiency(0.5, 1000.0) == 1.0

    def test_tight_floor_partial_yield(self, a1_variation):
        nominal_eta = 1000.0 / (1000.0 + a1_variation.nominal_loss_w)
        result = a1_variation.yield_at_efficiency(nominal_eta, 1000.0)
        assert 0.0 < result < 1.0

    def test_impossible_floor_zero_yield(self, a1_variation):
        assert a1_variation.yield_at_efficiency(0.999, 1000.0) == 0.0

    def test_yield_validation(self, a1_variation):
        with pytest.raises(ConfigError):
            a1_variation.yield_at_efficiency(0.0, 1000.0)


class TestSensitivity:
    def test_larger_sigma_larger_spread(self):
        tight = monte_carlo_loss(
            single_stage_a2(),
            DSCH,
            samples=100,
            variation=VariationSpec(converter_loss_sigma=0.02, rdl_sigma=0.02),
        )
        loose = monte_carlo_loss(
            single_stage_a2(),
            DSCH,
            samples=100,
            variation=VariationSpec(converter_loss_sigma=0.10, rdl_sigma=0.15),
        )
        assert loose.std_loss_w > tight.std_loss_w

    def test_marginal_converter_yields_infeasible_samples(self):
        """At 500 A, 48x 3LHD run at 10.4 A - close to the 12 A limit;
        perturbing the load-dependent losses does not overload them
        (current split is unchanged), so all samples stay feasible.
        This documents that infeasibility only enters through the
        rating check on the shared current."""
        from repro import SystemSpec

        result = monte_carlo_loss(
            single_stage_a1(),
            THREE_LEVEL_HYBRID_DICKSON,
            spec=SystemSpec().with_power(500.0),
            samples=50,
        )
        assert result.infeasible_count == 0


class TestValidation:
    def test_rejects_one_sample(self):
        with pytest.raises(ConfigError):
            monte_carlo_loss(single_stage_a1(), DSCH, samples=1)

    def test_sigma_bounds(self):
        with pytest.raises(ConfigError):
            VariationSpec(converter_loss_sigma=0.6)

    def test_percentile_bounds(self, a1_variation):
        with pytest.raises(ConfigError):
            a1_variation.percentile_w(101.0)
