"""AC (phasor) MNA solver tests, including cross-validation against
the analytic ladder impedance model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.ac import ACNetlist, impedance_at, solve_ac
from repro.pdn.impedance import pdn_impedance
from repro.pdn.transient import PDNStage


class TestElements:
    def test_inductor_validation(self):
        net = ACNetlist()
        with pytest.raises(ConfigError):
            net.add_inductor("l", "a", "a", 1e-9)
        with pytest.raises(ConfigError):
            net.add_inductor("l2", "a", "b", 0.0)

    def test_capacitor_validation(self):
        net = ACNetlist()
        with pytest.raises(ConfigError):
            net.add_capacitor("c", "a", "b", 0.0)

    def test_reactive_nodes_discovered(self):
        net = ACNetlist()
        net.add_inductor("l", "a", "b", 1e-9)
        net.add_capacitor("c", "b", net.GROUND, 1e-6)
        assert set(net.nodes()) == {"a", "b"}

    def test_extend_ac(self):
        first = ACNetlist()
        first.add_resistor("r", "a", "0", 1.0)
        second = ACNetlist()
        second.add_inductor("l", "a", "b", 1e-9)
        first.extend_ac(second)
        assert len(first.inductors) == 1


class TestAnalyticCircuits:
    def test_rc_divider_cutoff(self):
        """R-C low-pass: |V_out/V_in| = 1/sqrt(2) at f = 1/(2 pi R C)."""
        r, c = 1e3, 1e-9
        f_c = 1.0 / (2 * math.pi * r * c)
        net = ACNetlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "out", r)
        net.add_capacitor("c", "out", net.GROUND, c)
        solution = solve_ac(net, f_c)
        assert solution.magnitude("out") == pytest.approx(
            1 / math.sqrt(2), rel=1e-6
        )

    def test_rl_divider_cutoff(self):
        """R-L high-pass: |V_L/V_in| = 1/sqrt(2) at f = R/(2 pi L)."""
        r, l = 10.0, 1e-6
        f_c = r / (2 * math.pi * l)
        net = ACNetlist()
        net.add_voltage_source("v", "in", 1.0)
        net.add_resistor("r", "in", "out", r)
        net.add_inductor("l", "out", net.GROUND, l)
        solution = solve_ac(net, f_c)
        assert solution.magnitude("out") == pytest.approx(
            1 / math.sqrt(2), rel=1e-6
        )

    def test_series_lc_resonance_short(self):
        """A series L-C branch is a near-short at resonance."""
        l, c = 1e-9, 1e-6
        f_0 = 1.0 / (2 * math.pi * math.sqrt(l * c))
        net = ACNetlist()
        net.add_resistor("damp", "in", net.GROUND, 1e6)
        net.add_inductor("l", "in", "mid", l)
        net.add_capacitor("c", "mid", net.GROUND, c)
        net.add_current_source("i", net.GROUND, "in", 1.0)
        z_at_res = solve_ac(net, f_0).magnitude("in")
        z_off_res = solve_ac(net, f_0 * 10).magnitude("in")
        assert z_at_res < z_off_res / 10

    def test_pure_resistive_matches_dc(self):
        net = ACNetlist()
        net.add_voltage_source("v", "in", 10.0)
        net.add_resistor("r1", "in", "mid", 1.0)
        net.add_resistor("r2", "mid", net.GROUND, 1.0)
        solution = solve_ac(net, 1e6)
        assert solution.magnitude("mid") == pytest.approx(5.0)

    def test_rejects_zero_frequency(self):
        net = ACNetlist()
        net.add_resistor("r", "a", "0", 1.0)
        with pytest.raises(ConfigError):
            solve_ac(net, 0.0)


class TestImpedanceProbe:
    def build_single_stage(self) -> ACNetlist:
        """One PDN stage as an explicit netlist: V source -> R, L ->
        die node with decap (C + ESR)."""
        net = ACNetlist()
        net.add_voltage_source("vrm", "src", 1.0)
        net.add_resistor("r_series", "src", "mid", 0.05e-3)
        net.add_inductor("l_series", "mid", "die", 1e-9)
        net.add_capacitor("c_decap", "die", "cap_tap", 1e-6)
        net.add_resistor("esr", "cap_tap", net.GROUND, 0.3e-3)
        return net

    def test_cross_validation_against_ladder_analytic(self):
        """The generic AC solve must match the analytic ladder model
        across the band."""
        stage = PDNStage("s", 0.05e-3, 1e-9, 1e-6, 0.3e-3)
        freqs = np.logspace(4, 9, 40)
        analytic = pdn_impedance(
            [stage], frequencies_hz=freqs, source_impedance_ohm=1e-9
        ).impedance_ohm

        net = self.build_single_stage()
        numeric = impedance_at(net, "die", freqs)
        assert np.allclose(numeric, analytic, rtol=1e-3)

    def test_probe_does_not_mutate(self):
        net = self.build_single_stage()
        before = net.element_count
        impedance_at(net, "die", np.array([1e6]))
        assert net.element_count == before

    def test_impedance_positive(self):
        net = self.build_single_stage()
        values = impedance_at(net, "die", np.logspace(4, 8, 10))
        assert np.all(values > 0)

    def test_rejects_bad_frequencies(self):
        net = self.build_single_stage()
        with pytest.raises(ConfigError):
            impedance_at(net, "die", np.array([]))
        with pytest.raises(ConfigError):
            impedance_at(net, "die", np.array([-1.0]))

    def test_bulk_decap_suppresses_the_peak(self):
        """A branched bulk decap (which the ladder analytic cannot
        express) must suppress the single-stage anti-resonance peak.
        Note it may *raise* |Z| slightly off-peak — the well-known
        anti-resonance interaction — so only the peak is asserted."""
        freqs = np.logspace(5, 7.5, 60)
        single = self.build_single_stage()
        z_single = impedance_at(single, "die", freqs)
        peak_index = int(np.argmax(z_single))

        branched = self.build_single_stage()
        branched.add_capacitor("c_bulk", "die", "bulk_tap", 100e-6)
        branched.add_resistor("esr_bulk", "bulk_tap", branched.GROUND, 1e-3)
        z_branched = impedance_at(branched, "die", freqs)
        assert z_branched[peak_index] < z_single[peak_index]
        assert z_branched.max() < z_single.max()
